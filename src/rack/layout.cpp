#include "rack/layout.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace imrdmd::rack {

namespace {

// Parses "A-B" or "A" into an inclusive count.
std::size_t parse_range_count(std::string_view text, std::string_view what) {
  const auto dash = text.find('-');
  if (dash == std::string_view::npos) {
    parse_long(text, what);  // validation only
    return 1;
  }
  const long lo = parse_long(text.substr(0, dash), what);
  const long hi = parse_long(text.substr(dash + 1), what);
  if (hi < lo) throw ParseError("inverted range in " + std::string(what));
  return static_cast<std::size_t>(hi - lo + 1);
}

int parse_alignment(const std::string& token) {
  const long value = parse_long(token, "alignment");
  if (value == -1 || value == 1 || value == 2) return static_cast<int>(value);
  return 0;  // paper: "default is top-to-bottom"
}

bool is_integer_token(const std::string& token) {
  if (token.empty()) return false;
  std::size_t i = token[0] == '-' ? 1 : 0;
  if (i == token.size()) return false;
  for (; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

struct Dims {
  double w = 0.0;
  double h = 0.0;
};

bool is_horizontal(int alignment) { return alignment == 1 || alignment == -1; }

Dims pack_size(std::size_t count, Dims child, int alignment, double gap) {
  const double n = static_cast<double>(count);
  if (is_horizontal(alignment)) {
    return {n * child.w + (n - 1.0) * gap, child.h};
  }
  return {child.w, n * child.h + (n - 1.0) * gap};
}

// Offset of child i within its packed parent.
Dims child_offset(std::size_t i, std::size_t count, Dims child, int alignment,
                  double gap) {
  if (is_horizontal(alignment)) {
    const std::size_t idx = alignment == -1 ? count - 1 - i : i;
    return {static_cast<double>(idx) * (child.w + gap), 0.0};
  }
  const std::size_t idx = alignment == 2 ? count - 1 - i : i;
  return {0.0, static_cast<double>(idx) * (child.h + gap)};
}

}  // namespace

LayoutSpec parse_layout(const std::string& text) {
  const std::vector<std::string> tokens = split_ws(text);
  if (tokens.size() < 4) {
    throw ParseError("layout spec too short: '" + text + "'");
  }
  LayoutSpec spec;
  spec.system = tokens[0];
  spec.rack_row_alignment = parse_alignment(tokens[1]);
  spec.rack_col_alignment = parse_alignment(tokens[2]);

  // Row segment: "row<r0>-<r1>:<c0>-<c1>".
  const std::string& rows = tokens[3];
  if (!starts_with(to_lower(rows), "row")) {
    throw ParseError("expected row segment, got '" + rows + "'");
  }
  const auto colon = rows.find(':');
  if (colon == std::string::npos) {
    throw ParseError("row segment missing ':' in '" + rows + "'");
  }
  spec.rack_rows = parse_range_count(
      std::string_view(rows).substr(3, colon - 3), "rack rows");
  spec.racks_per_row = parse_range_count(
      std::string_view(rows).substr(colon + 1), "racks per row");

  // Remaining segments: optional alignment numbers followed by
  // "<letter>:<range>".
  int pending_alignment = 0;
  bool have_pending = false;
  bool saw[4] = {false, false, false, false};
  for (std::size_t i = 4; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (is_integer_token(token)) {
      // One or two alignment numbers may precede a segment; the first wins.
      if (!have_pending) {
        pending_alignment = parse_alignment(token);
        have_pending = true;
      }
      continue;
    }
    const auto seg_colon = token.find(':');
    if (seg_colon == std::string::npos) {
      throw ParseError("malformed layout segment '" + token + "'");
    }
    const std::string key = to_lower(token.substr(0, seg_colon));
    const std::size_t count = parse_range_count(
        std::string_view(token).substr(seg_colon + 1), "segment " + key);
    LayoutLevel level{count, have_pending ? pending_alignment : 0};
    if (key == "c" || key == "cabinets" || key == "cages") {
      spec.cabinets = level;
      saw[0] = true;
    } else if (key == "s" || key == "slots") {
      spec.slots = level;
      saw[1] = true;
    } else if (key == "b" || key == "blades") {
      spec.blades = level;
      saw[2] = true;
    } else if (key == "n" || key == "nodes") {
      spec.nodes = level;
      saw[3] = true;
    } else {
      throw ParseError("unknown layout segment '" + token + "'");
    }
    pending_alignment = 0;
    have_pending = false;
  }
  if (!saw[0] || !saw[1] || !saw[2] || !saw[3]) {
    throw ParseError("layout spec missing a c:/s:/b:/n: segment: '" + text +
                     "'");
  }
  return spec;
}

std::string to_string(const LayoutSpec& spec) {
  std::ostringstream os;
  os << spec.system << ' ' << spec.rack_row_alignment << ' '
     << spec.rack_col_alignment << " row0-" << spec.rack_rows - 1 << ":0-"
     << spec.racks_per_row - 1 << ' ' << spec.cabinets.alignment << " c:0-"
     << spec.cabinets.count - 1 << ' ' << spec.slots.alignment << " s:0-"
     << spec.slots.count - 1 << ' ' << spec.blades.alignment << " b:0-"
     << spec.blades.count - 1 << ' ' << spec.nodes.alignment << " n:0-"
     << spec.nodes.count - 1;
  return os.str();
}

RackGeometry compute_geometry(const LayoutSpec& spec,
                              const GeometryOptions& options) {
  IMRDMD_REQUIRE_ARG(options.node_size > 0.0, "node_size must be positive");

  const Dims node_dims{options.node_size, options.node_size};
  const Dims blade_dims = pack_size(spec.nodes.count, node_dims,
                                    spec.nodes.alignment, options.node_gap);
  const Dims slot_dims = pack_size(spec.blades.count, blade_dims,
                                   spec.blades.alignment, options.blade_gap);
  const Dims cabinet_dims = pack_size(spec.slots.count, slot_dims,
                                      spec.slots.alignment, options.slot_gap);
  const Dims rack_dims =
      pack_size(spec.cabinets.count, cabinet_dims, spec.cabinets.alignment,
                options.cabinet_gap);

  RackGeometry geometry;
  geometry.node_cells.resize(spec.total_nodes());
  geometry.rack_frames.resize(spec.total_racks());
  geometry.width = options.margin * 2.0 +
                   static_cast<double>(spec.racks_per_row) * rack_dims.w +
                   static_cast<double>(spec.racks_per_row - 1) *
                       options.rack_gap;
  geometry.height = options.margin * 2.0 +
                    static_cast<double>(spec.rack_rows) * rack_dims.h +
                    static_cast<double>(spec.rack_rows - 1) * options.rack_gap;

  std::size_t node_id = 0;
  for (std::size_t row = 0; row < spec.rack_rows; ++row) {
    for (std::size_t col = 0; col < spec.racks_per_row; ++col) {
      // Rack placement honoring the machine-level alignments.
      const std::size_t draw_col =
          spec.rack_row_alignment == -1 ? spec.racks_per_row - 1 - col : col;
      const std::size_t draw_row =
          spec.rack_col_alignment == 2 ? spec.rack_rows - 1 - row : row;
      const double rack_x = options.margin +
                            static_cast<double>(draw_col) *
                                (rack_dims.w + options.rack_gap);
      const double rack_y = options.margin +
                            static_cast<double>(draw_row) *
                                (rack_dims.h + options.rack_gap);
      geometry.rack_frames[row * spec.racks_per_row + col] = {
          rack_x, rack_y, rack_dims.w, rack_dims.h};

      for (std::size_t cab = 0; cab < spec.cabinets.count; ++cab) {
        const Dims cab_off = child_offset(cab, spec.cabinets.count,
                                          cabinet_dims,
                                          spec.cabinets.alignment,
                                          options.cabinet_gap);
        for (std::size_t slot = 0; slot < spec.slots.count; ++slot) {
          const Dims slot_off =
              child_offset(slot, spec.slots.count, slot_dims,
                           spec.slots.alignment, options.slot_gap);
          for (std::size_t blade = 0; blade < spec.blades.count; ++blade) {
            const Dims blade_off =
                child_offset(blade, spec.blades.count, blade_dims,
                             spec.blades.alignment, options.blade_gap);
            for (std::size_t node = 0; node < spec.nodes.count; ++node) {
              const Dims node_off =
                  child_offset(node, spec.nodes.count, node_dims,
                               spec.nodes.alignment, options.node_gap);
              geometry.node_cells[node_id++] = {
                  rack_x + cab_off.w + slot_off.w + blade_off.w + node_off.w,
                  rack_y + cab_off.h + slot_off.h + blade_off.h + node_off.h,
                  node_dims.w, node_dims.h};
            }
          }
        }
      }
    }
  }
  return geometry;
}

}  // namespace imrdmd::rack
