// Rack-view rendering: the D3-in-Jupyter substitute.
//
// SVG output reproduces the content of the paper's Figs. 2/4/6 — a node
// grid colored by value (Turbo, -5..5 z-scores by default), darker outlines
// on event nodes, unpopulated slots greyed, a colorbar legend, and a title.
// The ANSI renderer puts the same view in a terminal (one glyph per node,
// or aggregated per chassis when the machine exceeds the terminal), which
// is what the streaming examples use as their live display.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "rack/colormap.hpp"
#include "rack/layout.hpp"

namespace imrdmd::rack {

struct RenderOptions {
  std::string title;
  /// Color scale bounds (paper colorbar: z in [-5, 5]).
  double value_min = -5.0;
  double value_max = 5.0;
  bool draw_legend = true;
  bool draw_rack_frames = true;
  /// Stroke color for outlined (event) nodes.
  std::string outline_color = "#000000";
  double outline_width = 1.6;
};

/// Per-node inputs for a rack view. All vectors are indexed by layout node
/// id; shorter vectors are treated as "absent" (unpopulated slots render
/// grey, un-outlined).
struct RackViewData {
  /// Value per node (z-score); NaN renders grey.
  std::vector<double> values;
  /// Nodes drawn with a dark outline (e.g. hardware-error nodes).
  std::vector<std::size_t> outlined;
  /// Populated node count (node ids >= this render as empty slots).
  std::size_t populated = 0;
};

/// Renders the rack view to an SVG document string.
std::string render_svg(const LayoutSpec& spec, const RackViewData& data,
                       const RenderOptions& options = {},
                       const GeometryOptions& geometry = {});

/// Writes `svg` to `path` (throws Error on I/O failure).
void write_svg_file(const std::string& path, const std::string& svg);

struct AnsiOptions {
  /// Maximum character columns available.
  std::size_t max_width = 150;
  double value_min = -5.0;
  double value_max = 5.0;
  bool use_color = true;
};

/// Renders an ANSI (24-bit color) view. One "▇" per node when it fits;
/// otherwise nodes aggregate (mean) per chassis, then per rack.
std::string render_ansi(const LayoutSpec& spec, const RackViewData& data,
                        const AnsiOptions& options = {});

/// A one-line unicode sparkline of a time series (the "hover" detail view).
std::string sparkline(std::span<const double> series, std::size_t width = 60);

}  // namespace imrdmd::rack
