// Parser and geometry engine for the paper's rack-layout specification
// string (Sec. III-B):
//
//   "<system> <rack-row-align> <rack-col-align> row<r0>-<r1>:<c0>-<c1>
//    <align...> c:<a>-<b>  <align...> s:<a>-<b>  <align...> b:<a>-<b>
//    n:<a>-<b>"
//
// e.g. "xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0" — an XC40 with two
// rack rows of eleven racks, rows left-to-right and bottom-to-top, eight
// cabinets stacked bottom-to-top, eight slots left-to-right, one blade, one
// node per blade.
//
// Alignment codes (paper): -1 right-to-left, 1 left-to-right, 2 bottom-to-
// top; anything else / omitted = top-to-bottom (encoded 0). Each of the
// c/s/b segments accepts one or two leading alignment numbers (the paper's
// prose names two, its example uses one; both appear in the wild) — with
// two, the first is used.
//
// Node ids follow hierarchical order (rack-major), matching
// telemetry::MachineSpec, so telemetry rows map onto layout cells directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace imrdmd::rack {

/// Child count + packing direction of one hierarchy level.
struct LayoutLevel {
  std::size_t count = 1;
  /// -1 right-to-left, 1 left-to-right, 2 bottom-to-top, 0 top-to-bottom.
  int alignment = 0;
};

struct LayoutSpec {
  std::string system;
  int rack_row_alignment = 1;
  int rack_col_alignment = 0;
  std::size_t rack_rows = 1;
  std::size_t racks_per_row = 1;
  LayoutLevel cabinets;
  LayoutLevel slots;
  LayoutLevel blades;
  LayoutLevel nodes;

  std::size_t total_racks() const { return rack_rows * racks_per_row; }
  std::size_t nodes_per_rack() const {
    return cabinets.count * slots.count * blades.count * nodes.count;
  }
  std::size_t total_nodes() const {
    return total_racks() * nodes_per_rack();
  }
};

/// Parses the layout grammar; throws ParseError with context on malformed
/// input.
LayoutSpec parse_layout(const std::string& text);

/// Serializes back to the grammar (round-trip tested).
std::string to_string(const LayoutSpec& spec);

/// Axis-aligned cell in abstract layout units (y grows downward, SVG-style).
struct CellRect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;
};

struct GeometryOptions {
  double node_size = 8.0;   // square node cell edge
  double node_gap = 1.0;    // spacing between node cells
  double blade_gap = 2.0;   // spacing between blades
  double slot_gap = 2.0;
  double cabinet_gap = 4.0;
  double rack_gap = 12.0;   // spacing between racks
  double margin = 14.0;     // outer margin
};

/// Full geometry: one cell per node slot, in hierarchical node-id order.
struct RackGeometry {
  double width = 0.0;
  double height = 0.0;
  std::vector<CellRect> node_cells;
  std::vector<CellRect> rack_frames;  // one per rack, row-major
};

/// Lays out every node cell of the spec.
RackGeometry compute_geometry(const LayoutSpec& spec,
                              const GeometryOptions& options = {});

}  // namespace imrdmd::rack
