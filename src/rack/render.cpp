#include "rack/render.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace imrdmd::rack {

namespace {

bool has_value(const RackViewData& data, std::size_t node) {
  return node < data.populated && node < data.values.size() &&
         std::isfinite(data.values[node]);
}

bool is_outlined(const RackViewData& data, std::size_t node) {
  return std::find(data.outlined.begin(), data.outlined.end(), node) !=
         data.outlined.end();
}

}  // namespace

std::string render_svg(const LayoutSpec& spec, const RackViewData& data,
                       const RenderOptions& options,
                       const GeometryOptions& geometry_options) {
  const RackGeometry geometry = compute_geometry(spec, geometry_options);
  const double legend_height = options.draw_legend ? 42.0 : 0.0;
  const double title_height = options.title.empty() ? 0.0 : 24.0;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << geometry.width << "\" height=\""
      << geometry.height + legend_height + title_height << "\" viewBox=\"0 0 "
      << geometry.width << ' ' << geometry.height + legend_height + title_height
      << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n";

  double y_offset = 0.0;
  if (!options.title.empty()) {
    svg << "<text x=\"" << geometry.width / 2.0
        << "\" y=\"16\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"14\">"
        << options.title << "</text>\n";
    y_offset = title_height;
  }

  if (options.draw_rack_frames) {
    for (const CellRect& frame : geometry.rack_frames) {
      svg << "<rect x=\"" << frame.x - 2 << "\" y=\"" << frame.y + y_offset - 2
          << "\" width=\"" << frame.w + 4 << "\" height=\"" << frame.h + 4
          << "\" fill=\"none\" stroke=\"#bbbbbb\" stroke-width=\"1\"/>\n";
    }
  }

  for (std::size_t node = 0; node < geometry.node_cells.size(); ++node) {
    const CellRect& cell = geometry.node_cells[node];
    std::string fill = "#dddddd";  // unpopulated / missing
    if (has_value(data, node)) {
      fill = turbo_diverging(data.values[node], options.value_min,
                             options.value_max)
                 .hex();
    }
    svg << "<rect x=\"" << cell.x << "\" y=\"" << cell.y + y_offset
        << "\" width=\"" << cell.w << "\" height=\"" << cell.h << "\" fill=\""
        << fill << '"';
    if (is_outlined(data, node)) {
      svg << " stroke=\"" << options.outline_color << "\" stroke-width=\""
          << options.outline_width << '"';
    }
    svg << "><title>node " << node;
    if (has_value(data, node)) svg << " value " << data.values[node];
    svg << "</title></rect>\n";
  }

  if (options.draw_legend) {
    // Horizontal Turbo colorbar with min/mid/max tick labels.
    const double bar_w = std::min(220.0, geometry.width - 40.0);
    const double bar_x = 20.0;
    const double bar_y = geometry.height + y_offset + 10.0;
    const int steps = 64;
    for (int i = 0; i < steps; ++i) {
      const double t = static_cast<double>(i) / (steps - 1);
      svg << "<rect x=\"" << bar_x + t * (bar_w - bar_w / steps) << "\" y=\""
          << bar_y << "\" width=\"" << bar_w / steps + 0.5
          << "\" height=\"10\" fill=\"" << turbo(t).hex() << "\"/>\n";
    }
    auto tick = [&](double frac, double value) {
      svg << "<text x=\"" << bar_x + frac * bar_w << "\" y=\"" << bar_y + 22
          << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
             "font-size=\"10\">"
          << value << "</text>\n";
    };
    tick(0.0, options.value_min);
    tick(0.5, 0.5 * (options.value_min + options.value_max));
    tick(1.0, options.value_max);
    svg << "<text x=\"" << bar_x + bar_w + 12 << "\" y=\"" << bar_y + 9
        << "\" font-family=\"sans-serif\" font-size=\"10\">z-score</text>\n";
  }
  svg << "</svg>\n";
  return svg.str();
}

void write_svg_file(const std::string& path, const std::string& svg) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open SVG for writing: " + path);
  out << svg;
}

std::string render_ansi(const LayoutSpec& spec, const RackViewData& data,
                        const AnsiOptions& options) {
  // Choose aggregation so a rack row fits in max_width: per node, per blade
  // group (slot), or per chassis.
  const std::size_t per_rack_nodes = spec.nodes_per_rack();
  const std::size_t per_chassis =
      spec.slots.count * spec.blades.count * spec.nodes.count;

  // Aggregation unit sizes to try, finest first.
  std::size_t unit = 1;
  for (std::size_t candidate :
       {std::size_t{1}, spec.nodes.count * spec.blades.count, per_chassis}) {
    if (candidate == 0) continue;
    const std::size_t cells_per_rack =
        (per_rack_nodes + candidate - 1) / candidate;
    const std::size_t row_width = spec.racks_per_row * (cells_per_rack + 1);
    unit = candidate;
    if (row_width <= options.max_width) break;
  }

  std::ostringstream out;
  const std::size_t cells_per_rack = (per_rack_nodes + unit - 1) / unit;
  for (std::size_t row = 0; row < spec.rack_rows; ++row) {
    for (std::size_t col = 0; col < spec.racks_per_row; ++col) {
      const std::size_t rack = row * spec.racks_per_row + col;
      const std::size_t base = rack * per_rack_nodes;
      for (std::size_t cell = 0; cell < cells_per_rack; ++cell) {
        double sum = 0.0;
        std::size_t count = 0;
        bool outlined = false;
        for (std::size_t k = 0; k < unit; ++k) {
          const std::size_t node = base + cell * unit + k;
          if (node >= base + per_rack_nodes) break;
          if (has_value(data, node)) {
            sum += data.values[node];
            ++count;
          }
          outlined = outlined || is_outlined(data, node);
        }
        if (count == 0) {
          out << (options.use_color ? "\x1b[90m.\x1b[0m" : ".");
          continue;
        }
        const double mean = sum / static_cast<double>(count);
        if (options.use_color) {
          const Rgb color =
              turbo_diverging(mean, options.value_min, options.value_max);
          out << "\x1b[38;2;" << static_cast<int>(color.r) << ';'
              << static_cast<int>(color.g) << ';' << static_cast<int>(color.b)
              << 'm' << (outlined ? "#" : "▇") << "\x1b[0m";
        } else {
          // Monochrome fallback: bucket by magnitude.
          const char* glyphs = " .:-=+*%@";
          const double t = std::clamp((mean - options.value_min) /
                                          (options.value_max -
                                           options.value_min),
                                      0.0, 1.0);
          out << (outlined ? '#' : glyphs[static_cast<int>(t * 8.0)]);
        }
      }
      out << ' ';
    }
    out << '\n';
  }
  return out.str();
}

std::string sparkline(std::span<const double> series, std::size_t width) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (series.empty() || width == 0) return "";
  double lo = series[0], hi = series[0];
  for (double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;
  std::ostringstream out;
  const std::size_t bins = std::min(width, series.size());
  for (std::size_t b = 0; b < bins; ++b) {
    // Mean over this bin's slice of the series.
    const std::size_t begin = b * series.size() / bins;
    const std::size_t end = std::max(begin + 1, (b + 1) * series.size() / bins);
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += series[i];
    const double mean = sum / static_cast<double>(end - begin);
    const int level = std::clamp(
        static_cast<int>((mean - lo) / range * 7.0 + 0.5), 0, 7);
    out << kBlocks[level];
  }
  return out.str();
}

}  // namespace imrdmd::rack
