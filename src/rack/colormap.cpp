#include "rack/colormap.hpp"

#include <algorithm>
#include <cstdio>

namespace imrdmd::rack {

std::string Rgb::hex() const {
  char buffer[8];
  std::snprintf(buffer, sizeof buffer, "#%02x%02x%02x", r, g, b);
  return buffer;
}

Rgb turbo(double t) {
  t = std::clamp(t, 0.0, 1.0);
  // Polynomial fit published with the Turbo colormap.
  const double r = 0.13572138 + t * (4.61539260 + t * (-42.66032258 +
                   t * (132.13108234 + t * (-152.94239396 + t * 59.28637943))));
  const double g = 0.09140261 + t * (2.19418839 + t * (4.84296658 +
                   t * (-14.18503333 + t * (4.27729857 + t * 2.82956604))));
  const double b = 0.10667330 + t * (12.64194608 + t * (-60.58204836 +
                   t * (110.36276771 + t * (-89.90310912 + t * 27.34824973))));
  auto quantize = [](double v) {
    return static_cast<std::uint8_t>(std::clamp(v, 0.0, 1.0) * 255.0 + 0.5);
  };
  return {quantize(r), quantize(g), quantize(b)};
}

Rgb turbo_diverging(double value, double lo, double hi) {
  if (hi <= lo) return turbo(0.5);
  return turbo((value - lo) / (hi - lo));
}

}  // namespace imrdmd::rack
