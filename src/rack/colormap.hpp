// The Turbo colormap (Google's improved rainbow) used by the paper's rack
// views: blue hues for negative z-scores, green near baseline, red hues for
// positive (Figs. 4/6, colorbar -5..5).
#pragma once

#include <cstdint>
#include <string>

namespace imrdmd::rack {

struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  /// "#rrggbb".
  std::string hex() const;
};

/// Turbo at t in [0, 1] (clamped); polynomial approximation.
Rgb turbo(double t);

/// Maps value in [lo, hi] onto Turbo (clamped); the paper's rack views use
/// lo = -5, hi = +5 on z-scores.
Rgb turbo_diverging(double value, double lo, double hi);

}  // namespace imrdmd::rack
