// AssessorService: the multi-tenant serving layer — N concurrent Assessor
// engines (one per tenant/facility stream) multiplexed over one shared
// ThreadPool, with per-tenant lifecycle, error isolation, and a shared
// MetricsRegistry (ROADMAP open item 2, "Assessor-as-a-service").
//
// Shape: each tenant registers an AssessorConfig + a borrowed ChunkSource
// and SnapshotSink. start() constructs the tenant's engine and spawns ONE
// lightweight run-loop thread driving Assessor::run_until; the engine's
// worker lanes all land on the service's shared pool, so compute
// parallelism is pooled across tenants while each tenant keeps its own
// models, z-score stage, and delivery chain. The delivery chain the engine
// pushes into is
//
//   engine -> [service sink: metrics + optional RingBufferSink]
//          -> [AsyncSink (bounded queue + worker), unless async_capacity=0]
//          -> tenant's own SnapshotSink
//
// and with the default lossless AsyncSink policy the tenant's sink
// receives a stream bitwise identical to a solo single-Assessor run of the
// same config (tests/serve_test.cpp gates N in {1, 4, 8}).
//
// Lifecycle: Idle -> Running -> {Completed, Stopped, Failed}.
//   * stop(name) requests a graceful stop through the sink verdict (the
//     engine finishes the in-flight chunk, loses nothing), joins the run
//     thread, and — when the tenant's checkpoint policy names a path —
//     writes a final checkpoint so a successor process can resume the
//     stream (pair with JsonlSink::Options::append on resume).
//   * drain(name) joins without requesting a stop (waits for end of
//     stream or the tenant's StopCondition).
//   * Error isolation: an exception on one tenant's run thread (a
//     StreamDesync, a sink failure, a numerical breakdown) marks THAT
//     tenant Failed — with the message in status() and a failure counter
//     in the registry — and touches nothing else; neighbors keep running.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/assessor.hpp"
#include "serve/async_sink.hpp"
#include "serve/metrics.hpp"
#include "serve/ring_sink.hpp"

namespace imrdmd::serve {

enum class TenantState { Idle, Running, Completed, Stopped, Failed };

const char* tenant_state_name(TenantState state);

/// One tenant's registration: the engine config plus the stream ends.
struct TenantOptions {
  /// Engine configuration. Must be a single-process topology (a
  /// distributed engine needs SPMD ranks, not a service thread); the
  /// worker pool defaults to the service's shared pool when unset.
  core::AssessorConfig config;
  /// Borrowed; must outlive the service (or the tenant's terminal join).
  core::ChunkSource* source = nullptr;
  /// Borrowed terminal sink; may be null when metrics/ring polling is the
  /// only consumer.
  core::SnapshotSink* sink = nullptr;
  /// Optional bounds for the run (0-fields = run to end of stream).
  core::StopCondition stop;
  /// Bounded queue depth of the AsyncSink decoupling the engine from
  /// `sink`; 0 delivers synchronously (no AsyncSink in the chain).
  std::size_t async_capacity = 64;
  /// What a full queue does to the delivering engine (see AsyncSink):
  /// Block = lossless backpressure (default), DropOldest = never stall.
  AsyncSink::Overflow overflow = AsyncSink::Overflow::Block;
  /// > 0 attaches a RingBufferSink of that capacity, pollable via
  /// AssessorService::ring() — the live-heatmap feed.
  std::size_t ring_capacity = 0;
};

/// Copy-out view of one tenant's lifecycle state.
struct TenantStatus {
  TenantState state = TenantState::Idle;
  /// The failure message (Failed only).
  std::string error;
  /// The run's summary (Completed/Stopped only).
  core::RunSummary summary;
};

class AssessorService {
 public:
  struct Options {
    /// Shared worker pool for every tenant's engine lanes; null =
    /// global_pool(). Borrowed; must outlive the service.
    ThreadPool* pool = nullptr;
    /// External registry (e.g. shared with other exporters); null = the
    /// service owns one. Borrowed; must outlive the service.
    MetricsRegistry* metrics = nullptr;
  };

  AssessorService() : AssessorService(Options{}) {}
  explicit AssessorService(Options options);

  /// Requests a stop on every running tenant and joins all run threads
  /// (checkpoint-on-stop included, per tenant policy).
  ~AssessorService();

  AssessorService(const AssessorService&) = delete;
  AssessorService& operator=(const AssessorService&) = delete;

  /// Registers a tenant (state Idle). Validates the registration: unique
  /// name, non-null source, single-process topology, armed checkpoint
  /// policies must name a path (engine rules apply at start()).
  void add_tenant(const std::string& name, TenantOptions options);

  /// Constructs the tenant's Assessor (configuration errors throw here,
  /// synchronously) and spawns its run thread. Idle -> Running.
  void start(const std::string& name);
  /// start() for every Idle tenant.
  void start_all();

  /// Requests a graceful stop, joins the run thread, and (when the
  /// tenant's checkpoint policy names a path and at least one chunk was
  /// processed) writes a final checkpoint. Running -> Stopped; a tenant
  /// already terminal just joins. No-op transitions are safe.
  void stop(const std::string& name);
  /// Waits for the tenant to finish on its own (end of stream, its
  /// StopCondition, or a failure) and joins.
  void drain(const std::string& name);
  /// drain() for every started tenant.
  void drain_all();

  TenantStatus status(const std::string& name) const;
  /// Registered tenant names, in name order.
  std::vector<std::string> tenants() const;
  /// The tenant's ring buffer, or null when ring_capacity was 0.
  RingBufferSink* ring(const std::string& name);

  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }
  ThreadPool& pool() { return *pool_; }

 private:
  class TenantSink;
  struct Tenant;

  Tenant& find(const std::string& name);
  const Tenant& find(const std::string& name) const;
  /// The tenant run thread's body: drive the engine, flush the async
  /// chain, settle the terminal state, checkpoint on stop.
  void run_tenant(Tenant& tenant);
  void join_tenant(Tenant& tenant);

  ThreadPool* pool_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  mutable std::mutex mutex_;
  /// Append-only (unique_ptr keeps tenant addresses stable across rehash).
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace imrdmd::serve
