#include "serve/ring_sink.hpp"

#include <utility>

#include "common/error.hpp"

namespace imrdmd::serve {

RingBufferSink::RingBufferSink(std::size_t capacity) : capacity_(capacity) {
  IMRDMD_REQUIRE_ARG(capacity >= 1, "RingBufferSink capacity must be >= 1");
}

void RingBufferSink::push(core::AssessmentSnapshot&& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  ring_.push_back(std::move(snapshot));
  ++delivered_;
}

bool RingBufferSink::on_snapshot(const core::AssessmentSnapshot& snapshot) {
  push(core::AssessmentSnapshot(snapshot));
  return true;
}

bool RingBufferSink::on_snapshot(core::AssessmentSnapshot&& snapshot) {
  push(std::move(snapshot));
  return true;
}

std::vector<core::AssessmentSnapshot> RingBufferSink::window() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::optional<core::AssessmentSnapshot> RingBufferSink::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return std::nullopt;
  return ring_.back();
}

std::size_t RingBufferSink::delivered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delivered_;
}

std::size_t RingBufferSink::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

std::vector<double> rack_view_values(
    const core::AssessmentSnapshot& snapshot) {
  return snapshot.zscores.zscores;
}

}  // namespace imrdmd::serve
