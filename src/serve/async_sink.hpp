// AsyncSink: a SnapshotSink adapter that decouples the engine's delivery
// from a slow consumer — the sink-side mirror of the ingestion layer's
// bounded prefetch queue (core/assessor.hpp IngestOptions).
//
// The engine's deliver() call only enqueues the event into a bounded queue;
// a dedicated worker thread dequeues and forwards to the wrapped sink. The
// overflow policy decides what happens when the consumer falls behind and
// the queue fills:
//
//   * Overflow::Block (default) — the delivering thread blocks until the
//     worker frees a slot: lossless backpressure, exactly the contract the
//     multi-tenant bitwise gate needs (the inner sink sees the identical
//     in-order, exactly-once event stream a synchronous run delivers).
//     Compute can stall behind the consumer by at most `capacity` events.
//   * Overflow::DropOldest — the oldest queued *snapshot* is discarded to
//     make room, and dropped() counts it: a live dashboard stays current
//     and compute NEVER stalls, at the cost of losing intermediate frames.
//     Checkpoint/end events are never dropped (they are O(1) per run and
//     sinks rely on seeing them), so the queue may transiently exceed
//     capacity by the in-flight non-snapshot events.
//
// Error and stop propagation are necessarily asynchronous: when the inner
// sink throws, the worker parks the exception and the NEXT delivery into
// the adapter (or flush()) rethrows it — the engine then parks THAT
// snapshot for exactly-once redelivery, but the snapshot whose forwarding
// threw is not redelivered to the inner sink: an async consumer that
// throws is treated as failed, and the serving layer surfaces the error as
// a tenant failure. When the inner sink requests a stop (returns false),
// deliveries after the worker observes it return false, so the engine
// stops one queue-depth later than a synchronous sink would.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <variant>

#include "core/assessor.hpp"

namespace imrdmd::serve {

class AsyncSink final : public core::SnapshotSink {
 public:
  enum class Overflow { Block, DropOldest };

  struct Options {
    /// Maximum queued events before the overflow policy applies (>= 1).
    std::size_t capacity = 64;
    Overflow overflow = Overflow::Block;
  };

  /// Wraps `inner` (borrowed; must outlive the adapter) and starts the
  /// worker thread.
  AsyncSink(core::SnapshotSink& inner, Options options);
  explicit AsyncSink(core::SnapshotSink& inner)
      : AsyncSink(inner, Options{}) {}

  /// Drains the queue (best effort — a parked inner-sink failure stops the
  /// drain) and joins the worker.
  ~AsyncSink() override;

  using core::SnapshotSink::on_snapshot;
  bool on_snapshot(const core::AssessmentSnapshot& snapshot) override;
  bool on_snapshot(core::AssessmentSnapshot&& snapshot) override;
  void on_checkpoint_written(const std::string& path,
                             std::size_t chunk_index) override;
  void on_end(const core::RunSummary& summary) override;

  /// Blocks until every event enqueued so far has been forwarded to the
  /// inner sink, then rethrows any parked inner-sink exception. Call this
  /// before reading state the inner sink accumulates (the multi-tenant
  /// tests flush before comparing streams).
  void flush();

  /// Snapshots discarded by Overflow::DropOldest so far.
  std::size_t dropped() const;
  /// Events forwarded to the inner sink so far.
  std::size_t forwarded() const;

 private:
  struct CheckpointEvent {
    std::string path;
    std::size_t chunk_index;
  };
  using Event = std::variant<core::AssessmentSnapshot, CheckpointEvent,
                             core::RunSummary>;

  /// Enqueues one event per the overflow policy; returns the keep-going
  /// verdict and rethrows a parked inner-sink exception.
  bool enqueue(Event event, bool droppable);
  void worker_loop();

  core::SnapshotSink& inner_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<Event> queue_;
  /// Queued snapshot events (the droppable subset of queue_).
  std::size_t queued_snapshots_ = 0;
  bool stopping_ = false;
  /// The inner sink returned false; subsequent deliveries return false.
  bool stop_requested_ = false;
  /// The inner sink threw; rethrown by the next delivery or flush().
  std::exception_ptr failure_;
  std::size_t dropped_ = 0;
  std::size_t forwarded_ = 0;
  std::size_t in_flight_ = 0;

  std::thread worker_;
};

}  // namespace imrdmd::serve
