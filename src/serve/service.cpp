#include "serve/service.hpp"

#include <exception>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "core/checkpoint.hpp"
#include "core/zscore.hpp"

namespace imrdmd::serve {

const char* tenant_state_name(TenantState state) {
  switch (state) {
    case TenantState::Idle: return "idle";
    case TenantState::Running: return "running";
    case TenantState::Completed: return "completed";
    case TenantState::Stopped: return "stopped";
    case TenantState::Failed: return "failed";
  }
  return "unknown";
}

/// The head of a tenant's delivery chain, run on the tenant's run-loop
/// thread: updates the shared registry, feeds the optional ring buffer,
/// forwards to the downstream sink (the AsyncSink, or the tenant's own),
/// and turns a stop() request into a graceful sink-verdict stop — AFTER
/// forwarding, so the in-flight snapshot is never lost.
class AssessorService::TenantSink final : public core::SnapshotSink {
 public:
  TenantSink(MetricsRegistry& metrics, std::string tenant,
             RingBufferSink* ring, core::SnapshotSink* downstream,
             const std::atomic<bool>& stop_requested)
      : metrics_(metrics),
        labels_({{"tenant", std::move(tenant)}}),
        ring_(ring),
        downstream_(downstream),
        stop_requested_(stop_requested) {}

  using core::SnapshotSink::on_snapshot;
  bool on_snapshot(const core::AssessmentSnapshot& snapshot) override {
    if (ring_ != nullptr) ring_->on_snapshot(snapshot);
    bool keep_going = true;
    if (downstream_ != nullptr) {
      keep_going = downstream_->on_snapshot(snapshot);
    }
    metrics_.counter_add("imrdmd_tenant_chunks_total", labels_, 1.0,
                         "Chunks processed and delivered.");
    metrics_.counter_add("imrdmd_tenant_snapshots_total", labels_,
                         static_cast<double>(snapshot.chunk_snapshots),
                         "Snapshot columns processed and delivered.");
    metrics_.counter_add("imrdmd_tenant_fit_seconds_total", labels_,
                         snapshot.fit_seconds,
                         "Wall seconds spent fitting and merging.");
    metrics_.gauge_set(
        "imrdmd_tenant_hot_sensors", labels_,
        static_cast<double>(
            snapshot.zscores.sensors_in_state(core::ThermalState::Hot)
                .size()),
        "Sensors above the hot threshold in the latest snapshot.");
    return keep_going && !stop_requested_.load(std::memory_order_relaxed);
  }

  void on_checkpoint_written(const std::string& path,
                             std::size_t chunk_index) override {
    metrics_.counter_add("imrdmd_tenant_checkpoints_total", labels_, 1.0,
                         "Checkpoints written.");
    std::error_code ec;
    const auto bytes = std::filesystem::file_size(path, ec);
    if (!ec) {
      metrics_.counter_add("imrdmd_tenant_checkpoint_bytes_total", labels_,
                           static_cast<double>(bytes),
                           "Bytes of checkpoint images written.");
    }
    if (downstream_ != nullptr) {
      downstream_->on_checkpoint_written(path, chunk_index);
    }
  }

  void on_end(const core::RunSummary& summary) override {
    if (downstream_ != nullptr) downstream_->on_end(summary);
  }

 private:
  MetricsRegistry& metrics_;
  MetricLabels labels_;
  RingBufferSink* ring_;
  core::SnapshotSink* downstream_;
  const std::atomic<bool>& stop_requested_;
};

struct AssessorService::Tenant {
  std::string name;
  TenantOptions options;

  /// Created at start(); stable address for the run thread.
  std::unique_ptr<core::Assessor> assessor;
  std::unique_ptr<RingBufferSink> ring;
  std::unique_ptr<AsyncSink> async;
  std::unique_ptr<TenantSink> head;
  std::thread runner;

  std::atomic<bool> stop_requested{false};
  /// Serializes start/stop/drain/join against each other (per tenant, so
  /// stopping one tenant never blocks operating on another).
  std::mutex lifecycle_mutex;
  /// Guards state/error/summary (written by the run thread at exit, read
  /// by status() from anywhere).
  mutable std::mutex state_mutex;
  TenantState state = TenantState::Idle;
  std::string error;
  core::RunSummary summary;
};

AssessorService::AssessorService(Options options)
    : pool_(options.pool != nullptr ? options.pool : &global_pool()),
      metrics_(options.metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
}

AssessorService::~AssessorService() {
  std::vector<Tenant*> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, tenant] : tenants_) all.push_back(tenant.get());
  }
  for (Tenant* tenant : all) {
    tenant->stop_requested.store(true, std::memory_order_relaxed);
  }
  for (Tenant* tenant : all) join_tenant(*tenant);
}

void AssessorService::add_tenant(const std::string& name,
                                 TenantOptions options) {
  IMRDMD_REQUIRE_ARG(!name.empty(), "tenant name must be non-empty");
  IMRDMD_REQUIRE_ARG(options.source != nullptr,
                     "tenant '" + name + "' needs a ChunkSource");
  IMRDMD_REQUIRE_ARG(
      options.config.comm == nullptr,
      "tenant '" + name +
          "' is configured distributed; AssessorService serves "
          "single-process topologies (run SPMD ranks as their own "
          "processes instead)");
  if (options.config.worker_pool == nullptr) {
    options.config.worker_pool = pool_;
  }
  auto tenant = std::make_unique<Tenant>();
  tenant->name = name;
  tenant->options = std::move(options);
  std::lock_guard<std::mutex> lock(mutex_);
  const bool inserted =
      tenants_.emplace(name, std::move(tenant)).second;
  IMRDMD_REQUIRE_ARG(inserted, "tenant '" + name + "' already registered");
  metrics_->gauge_set("imrdmd_service_tenants", {},
                      static_cast<double>(tenants_.size()),
                      "Registered tenants.");
}

AssessorService::Tenant& AssessorService::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  IMRDMD_REQUIRE_ARG(it != tenants_.end(), "unknown tenant '" + name + "'");
  return *it->second;
}

const AssessorService::Tenant& AssessorService::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  IMRDMD_REQUIRE_ARG(it != tenants_.end(), "unknown tenant '" + name + "'");
  return *it->second;
}

void AssessorService::start(const std::string& name) {
  Tenant& tenant = find(name);
  std::lock_guard<std::mutex> lifecycle(tenant.lifecycle_mutex);
  {
    std::lock_guard<std::mutex> state(tenant.state_mutex);
    IMRDMD_REQUIRE_ARG(tenant.state == TenantState::Idle,
                       "tenant '" + name + "' is " +
                           tenant_state_name(tenant.state) +
                           "; start() needs idle");
  }
  // Construct the engine on the caller's thread so configuration errors
  // throw here, synchronously, instead of surfacing as a Failed status.
  tenant.assessor = std::make_unique<core::Assessor>(tenant.options.config);
  if (tenant.options.ring_capacity > 0) {
    tenant.ring =
        std::make_unique<RingBufferSink>(tenant.options.ring_capacity);
  }
  core::SnapshotSink* downstream = tenant.options.sink;
  if (tenant.options.sink != nullptr && tenant.options.async_capacity > 0) {
    AsyncSink::Options async_options;
    async_options.capacity = tenant.options.async_capacity;
    async_options.overflow = tenant.options.overflow;
    tenant.async =
        std::make_unique<AsyncSink>(*tenant.options.sink, async_options);
    downstream = tenant.async.get();
  }
  tenant.head = std::make_unique<TenantSink>(*metrics_, tenant.name,
                                             tenant.ring.get(), downstream,
                                             tenant.stop_requested);
  {
    std::lock_guard<std::mutex> state(tenant.state_mutex);
    tenant.state = TenantState::Running;
  }
  metrics_->gauge_set("imrdmd_tenant_up", {{"tenant", tenant.name}}, 1.0,
                      "1 while the tenant's run loop is live.");
  tenant.runner = std::thread([this, &tenant] { run_tenant(tenant); });
}

void AssessorService::start_all() {
  for (const std::string& name : tenants()) {
    if (status(name).state == TenantState::Idle) start(name);
  }
}

void AssessorService::run_tenant(Tenant& tenant) {
  TenantState terminal = TenantState::Completed;
  std::string error;
  core::RunSummary summary;
  try {
    summary = tenant.assessor->run_until(*tenant.options.source, *tenant.head,
                                         tenant.options.stop);
    // Make the tenant's own sink fully caught up before the state flips to
    // terminal: after drain()/stop() return, the sink is readable.
    if (tenant.async != nullptr) tenant.async->flush();
    if (tenant.stop_requested.load(std::memory_order_relaxed)) {
      terminal = TenantState::Stopped;
      // Checkpoint on stop: leave a resumable image behind (the periodic
      // hook only fires every N chunks; this captures the rest).
      const core::CheckpointPolicy& policy =
          tenant.options.config.checkpoint_policy;
      if (!policy.path.empty() &&
          tenant.assessor->snapshots_processed() > 0) {
        core::save_assessor_checkpoint_file(policy.path, *tenant.assessor);
        tenant.head->on_checkpoint_written(
            policy.path, tenant.assessor->chunks_processed());
        if (tenant.async != nullptr) tenant.async->flush();
      }
    }
  } catch (const std::exception& e) {
    terminal = TenantState::Failed;
    error = e.what();
    metrics_->counter_add(
        "imrdmd_tenant_failures_total", {{"tenant", tenant.name}}, 1.0,
        "Run-loop failures (the tenant is isolated; neighbors keep "
        "running).");
  }
  // Retire the async worker on EVERY exit path — including failure, which
  // skips the flushes above. Once drain()/stop() return, no service thread
  // may touch the tenant's sink again (the caller is free to destroy it).
  tenant.async.reset();
  metrics_->gauge_set("imrdmd_tenant_up", {{"tenant", tenant.name}}, 0.0);
  std::lock_guard<std::mutex> state(tenant.state_mutex);
  tenant.state = terminal;
  tenant.error = std::move(error);
  tenant.summary = summary;
}

void AssessorService::join_tenant(Tenant& tenant) {
  std::lock_guard<std::mutex> lifecycle(tenant.lifecycle_mutex);
  if (tenant.runner.joinable()) tenant.runner.join();
}

void AssessorService::stop(const std::string& name) {
  Tenant& tenant = find(name);
  tenant.stop_requested.store(true, std::memory_order_relaxed);
  join_tenant(tenant);
}

void AssessorService::drain(const std::string& name) {
  join_tenant(find(name));
}

void AssessorService::drain_all() {
  for (const std::string& name : tenants()) drain(name);
}

TenantStatus AssessorService::status(const std::string& name) const {
  const Tenant& tenant = find(name);
  std::lock_guard<std::mutex> state(tenant.state_mutex);
  TenantStatus status;
  status.state = tenant.state;
  status.error = tenant.error;
  status.summary = tenant.summary;
  return status;
}

std::vector<std::string> AssessorService::tenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) names.push_back(name);
  return names;
}

RingBufferSink* AssessorService::ring(const std::string& name) {
  return find(name).ring.get();
}

}  // namespace imrdmd::serve
