// RingBufferSink: bounded window of the most recent snapshots, safe to
// poll from any thread — the live-dashboard sink of the serving layer. A
// renderer (e.g. src/rack's ANSI/SVG rack views, via rack_view_values
// below) polls window()/latest() while a run or an AsyncSink worker keeps
// delivering; old snapshots are evicted FIFO once the ring is full, and
// evicted() counts them, so a slow poller sees a gap, never a stall.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "core/assessor.hpp"

namespace imrdmd::serve {

class RingBufferSink final : public core::SnapshotSink {
 public:
  /// Keeps the `capacity` (>= 1) most recent snapshots.
  explicit RingBufferSink(std::size_t capacity);

  using core::SnapshotSink::on_snapshot;
  bool on_snapshot(const core::AssessmentSnapshot& snapshot) override;
  bool on_snapshot(core::AssessmentSnapshot&& snapshot) override;

  /// Copy of the buffered window, oldest first.
  std::vector<core::AssessmentSnapshot> window() const;
  /// Copy of the most recent snapshot, or nullopt before the first.
  std::optional<core::AssessmentSnapshot> latest() const;

  std::size_t capacity() const { return capacity_; }
  /// Snapshots delivered over the sink's lifetime.
  std::size_t delivered() const;
  /// Snapshots evicted to keep the window bounded.
  std::size_t evicted() const;

 private:
  void push(core::AssessmentSnapshot&& snapshot);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<core::AssessmentSnapshot> ring_;
  std::size_t delivered_ = 0;
  std::size_t evicted_ = 0;
};

/// Extracts a snapshot's reconciled per-sensor z-scores as the value vector
/// a rack::RackViewData wants (values[i] = z of sensor i), so a serving
/// dashboard can hand RingBufferSink::latest() straight to the rack
/// renderer.
std::vector<double> rack_view_values(const core::AssessmentSnapshot& snapshot);

}  // namespace imrdmd::serve
