#include "serve/async_sink.hpp"

#include <utility>

#include "common/error.hpp"

namespace imrdmd::serve {

AsyncSink::AsyncSink(core::SnapshotSink& inner, Options options)
    : inner_(inner), options_(options) {
  IMRDMD_REQUIRE_ARG(options_.capacity >= 1, "AsyncSink capacity must be >= 1");
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncSink::~AsyncSink() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  worker_.join();
}

bool AsyncSink::enqueue(Event event, bool droppable) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (failure_) {
    std::exception_ptr failure = std::exchange(failure_, nullptr);
    std::rethrow_exception(failure);
  }
  if (stop_requested_) return false;
  if (queued_snapshots_ >= options_.capacity && droppable) {
    if (options_.overflow == Overflow::Block) {
      not_full_.wait(lock, [this] {
        return queued_snapshots_ < options_.capacity || stopping_ ||
               stop_requested_ || failure_ != nullptr;
      });
      if (failure_) {
        std::exception_ptr failure = std::exchange(failure_, nullptr);
        std::rethrow_exception(failure);
      }
      if (stopping_ || stop_requested_) return false;
    } else {
      // DropOldest: discard the oldest queued snapshot (checkpoint/end
      // events are never dropped — skip over them).
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (std::holds_alternative<core::AssessmentSnapshot>(*it)) {
          queue_.erase(it);
          --queued_snapshots_;
          ++dropped_;
          break;
        }
      }
    }
  }
  if (droppable) ++queued_snapshots_;
  queue_.push_back(std::move(event));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool AsyncSink::on_snapshot(const core::AssessmentSnapshot& snapshot) {
  return enqueue(Event(snapshot), /*droppable=*/true);
}

bool AsyncSink::on_snapshot(core::AssessmentSnapshot&& snapshot) {
  return enqueue(Event(std::move(snapshot)), /*droppable=*/true);
}

void AsyncSink::on_checkpoint_written(const std::string& path,
                                      std::size_t chunk_index) {
  enqueue(Event(CheckpointEvent{path, chunk_index}), /*droppable=*/false);
}

void AsyncSink::on_end(const core::RunSummary& summary) {
  enqueue(Event(summary), /*droppable=*/false);
}

void AsyncSink::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_.wait(lock, [this] {
    return (queue_.empty() && in_flight_ == 0) || failure_ != nullptr;
  });
  if (failure_) {
    std::exception_ptr failure = std::exchange(failure_, nullptr);
    std::rethrow_exception(failure);
  }
}

std::size_t AsyncSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::size_t AsyncSink::forwarded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return forwarded_;
}

void AsyncSink::worker_loop() {
  for (;;) {
    Event event{core::RunSummary{}};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      event = std::move(queue_.front());
      queue_.pop_front();
      if (std::holds_alternative<core::AssessmentSnapshot>(event)) {
        --queued_snapshots_;
      }
      ++in_flight_;
    }
    not_full_.notify_one();

    bool keep_going = true;
    std::exception_ptr failure;
    try {
      if (auto* snapshot = std::get_if<core::AssessmentSnapshot>(&event)) {
        keep_going = inner_.on_snapshot(std::move(*snapshot));
      } else if (auto* checkpoint = std::get_if<CheckpointEvent>(&event)) {
        inner_.on_checkpoint_written(checkpoint->path,
                                     checkpoint->chunk_index);
      } else {
        inner_.on_end(std::get<core::RunSummary>(event));
      }
    } catch (...) {
      failure = std::current_exception();
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      ++forwarded_;
      if (failure && !failure_) failure_ = failure;
      if (!keep_going) stop_requested_ = true;
      if (queue_.empty() && in_flight_ == 0) drained_.notify_all();
      if (failure_ != nullptr || stop_requested_) {
        drained_.notify_all();
        not_full_.notify_all();
      }
    }
  }
}

}  // namespace imrdmd::serve
