#include "serve/http_exporter.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <utility>

namespace imrdmd::serve {

namespace {

/// Writes the whole buffer, ignoring a peer that hung up (EPIPE is the
/// scraper's problem, not ours). MSG_NOSIGNAL keeps a dead peer from
/// raising SIGPIPE process-wide.
void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string make_response(const std::string& status,
                          const std::string& content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(const MetricsRegistry& registry,
                           std::uint16_t port)
    : registry_(registry), listener_(port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  listener_.stop();
  if (acceptor_.joinable()) acceptor_.join();
}

void HttpExporter::accept_loop() {
  for (;;) {
    net::Socket connection = listener_.accept();
    if (!connection.valid()) return;  // retired by stop()
    handle_connection(connection.fd());
  }
}

void HttpExporter::handle_connection(int fd) {
  // Read until the end of the request headers (or a size cap — this is a
  // scrape endpoint, not a general server).
  std::string request;
  char buffer[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 8192) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buffer, static_cast<std::size_t>(n));
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(fd, make_response("400 Bad Request", "text/plain",
                               "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    send_all(fd, make_response("405 Method Not Allowed", "text/plain",
                               "only GET is served here\n"));
    return;
  }
  if (target == "/metrics") {
    send_all(fd, make_response(
                     "200 OK",
                     "application/openmetrics-text; version=1.0.0; "
                     "charset=utf-8",
                     registry_.render_openmetrics()));
  } else if (target == "/") {
    send_all(fd, make_response("200 OK", "text/plain",
                               "imrdmd assessor exporter — scrape /metrics\n"));
  } else {
    send_all(fd, make_response("404 Not Found", "text/plain",
                               "unknown path (try /metrics)\n"));
  }
}

}  // namespace imrdmd::serve
