// HttpExporter: a minimal blocking HTTP/1.1 listener that serves the
// MetricsRegistry's OpenMetrics rendering at GET /metrics — just enough
// protocol for a Prometheus scraper or `curl`, deliberately not a web
// framework: one accept loop on a dedicated thread, one short-lived
// connection per request, no keep-alive, no TLS.
//
// Routes: GET /metrics -> 200 with the OpenMetrics text (Content-Type
// application/openmetrics-text); GET / -> a one-line text pointer to
// /metrics; anything else -> 404. Malformed requests get 400. Every
// response closes the connection.
#pragma once

#include <cstdint>
#include <thread>

#include "net/socket.hpp"
#include "serve/metrics.hpp"

namespace imrdmd::serve {

class HttpExporter {
 public:
  /// Binds 127.0.0.1:`port` (port 0 picks an ephemeral port — tests use
  /// this; read the actual one back with port()), starts listening, and
  /// spawns the accept loop. Throws Error when the socket cannot be bound.
  /// `registry` is borrowed and must outlive the exporter.
  HttpExporter(const MetricsRegistry& registry, std::uint16_t port);

  /// stop()s if still running.
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The bound TCP port (the actual one when constructed with port 0).
  std::uint16_t port() const { return listener_.port(); }

  /// Closes the listening socket and joins the accept loop. Idempotent.
  /// In-flight responses finish; no new connections are accepted.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  const MetricsRegistry& registry_;
  /// The shared RAII listener (net/socket.hpp): its atomic-fd stop() is
  /// what lets stop() retire the socket from any thread while the accept
  /// loop blocks on it.
  net::Listener listener_;
  std::thread acceptor_;
};

}  // namespace imrdmd::serve
