#include "serve/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "common/error.hpp"

namespace imrdmd::serve {

namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_value(std::string& out, double value) {
  // OpenMetrics spells the non-finite values out; finite values use the
  // shortest round-trip form (same discipline as JsonWriter) so unchanged
  // state renders byte-identically scrape to scrape.
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buffer[32];
  const std::to_chars_result result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

}  // namespace

std::string render_labels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  MetricLabels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += "=\"";
    append_escaped(out, sorted[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

MetricsRegistry::Family& MetricsRegistry::touch(const std::string& name,
                                                Kind kind,
                                                const std::string& help) {
  auto [it, created] = families_.try_emplace(name);
  if (created) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    IMRDMD_REQUIRE_ARG(it->second.kind == kind,
                       "metric family '" + name +
                           "' already registered with the other type");
  }
  return it->second;
}

void MetricsRegistry::counter_add(const std::string& name,
                                  const MetricLabels& labels, double delta,
                                  const std::string& help) {
  IMRDMD_REQUIRE_ARG(delta >= 0.0,
                     "counter_add(" + name + "): negative delta");
  std::lock_guard<std::mutex> lock(mutex_);
  touch(name, Kind::Counter, help).series[render_labels(labels)] += delta;
}

void MetricsRegistry::gauge_set(const std::string& name,
                                const MetricLabels& labels, double value,
                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  touch(name, Kind::Gauge, help).series[render_labels(labels)] = value;
}

double MetricsRegistry::value(const std::string& name,
                              const MetricLabels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto family = families_.find(name);
  if (family == families_.end()) return 0.0;
  const auto series = family->second.series.find(render_labels(labels));
  return series == family->second.series.end() ? 0.0 : series->second;
}

std::size_t MetricsRegistry::family_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  families_.clear();
}

std::string MetricsRegistry::render_openmetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# TYPE ";
    out += name;
    out += family.kind == Kind::Counter ? " counter\n" : " gauge\n";
    if (!family.help.empty()) {
      out += "# HELP ";
      out += name;
      out += ' ';
      append_escaped(out, family.help);
      out += '\n';
    }
    for (const auto& [labels, value] : family.series) {
      out += name;
      out += labels;
      out += ' ';
      append_value(out, value);
      out += '\n';
    }
  }
  out += "# EOF\n";
  return out;
}

}  // namespace imrdmd::serve
