// Metrics for the serving layer: a small thread-safe registry of labeled
// counter/gauge series plus an OpenMetrics text-format renderer — the
// exposition format Prometheus scrapes (served by serve/http_exporter.hpp
// at GET /metrics).
//
// Model (a deliberately tiny subset of the OpenMetrics data model): a
// *family* is a named metric with a type and help string; a *series* is
// one (family, label set) pair carrying a double value. Counters are
// monotonically non-decreasing (add() rejects negative deltas); gauges are
// set to arbitrary values. Families and series are created on first touch,
// and the renderer emits them in deterministic (name, then label) order so
// successive scrapes of unchanged state are byte-identical.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace imrdmd::serve {

/// One metric's label set, e.g. {{"tenant", "frontier"}}. Order is
/// irrelevant (series identity uses the sorted form).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Thread-safe registry of counter/gauge families. All mutation and
/// rendering synchronizes on one internal mutex — scrape rates are a few
/// per second and update rates a few per chunk, so contention is not a
/// concern at this layer.
class MetricsRegistry {
 public:
  /// Adds `delta` (>= 0; InvalidArgument otherwise) to the counter series
  /// `name{labels}`, creating the family and series on first touch. By
  /// OpenMetrics convention counter names should end in "_total";
  /// `help` is recorded on first touch of the family.
  void counter_add(const std::string& name, const MetricLabels& labels,
                   double delta, const std::string& help = "");

  /// Sets the gauge series `name{labels}` to `value`, creating the family
  /// and series on first touch.
  void gauge_set(const std::string& name, const MetricLabels& labels,
                 double value, const std::string& help = "");

  /// Current value of series `name{labels}`, or 0 when it does not exist
  /// (reading a series never creates it).
  double value(const std::string& name, const MetricLabels& labels) const;

  /// Number of registered families.
  std::size_t family_count() const;

  /// Drops every family and series (a fresh registry).
  void clear();

  /// Renders the whole registry as OpenMetrics text: per family a
  /// "# TYPE"/"# HELP" header then one line per series, families in name
  /// order and series in label order, terminated by "# EOF\n". Values use
  /// shortest-round-trip formatting, so a scrape of unchanged state is
  /// byte-identical.
  std::string render_openmetrics() const;

 private:
  enum class Kind { Counter, Gauge };
  struct Family {
    Kind kind = Kind::Counter;
    std::string help;
    /// Keyed by the canonical rendered label string ("" for label-less).
    std::map<std::string, double> series;
  };

  Family& touch(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

/// The canonical label rendering: sorted by key, each value escaped per
/// OpenMetrics ('\\', '"', and newline), e.g. `{tenant="a",rack="r0"}` —
/// empty string for an empty label set. Exposed for tests.
std::string render_labels(const MetricLabels& labels);

}  // namespace imrdmd::serve
