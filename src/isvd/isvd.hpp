// Incremental (streaming) truncated SVD.
//
// This is the enabling kernel of the paper's contribution: I-mrDMD replaces
// the per-update batch SVD at mrDMD level 1 with an incremental update in
// the style of Brand (2006) / Kühl et al. (2024) [46]. Columns arrive in
// blocks (temporally serial); the maintained factors are
//     X_seen  ~=  U diag(s) V^T,   U: P x r,  V: T_seen x r.
//
// Column updates:   project the new block onto span(U), orthogonalize the
// residual (with one reorthogonalization pass), assemble the small core
// matrix K = [diag(s), U^T B; 0, R_resid], take its dense SVD and rotate the
// outer factors. Cost per update: O(P r c + (r+c)^3), independent of T_seen.
//
// Row updates (add_rows) implement the paper's "future work" extension of
// adding entire new sensors to an existing decomposition.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::isvd {

struct IsvdOptions {
  /// Hard cap on retained rank (0 = keep everything numerically nonzero).
  std::size_t max_rank = 0;
  /// Drop singular values <= truncation_tol * s_max after each update.
  double truncation_tol = 1e-12;
  /// Maintain V (needed by DMD); disable for PCA-style uses to save memory.
  bool track_v = true;
};

class Isvd {
 public:
  explicit Isvd(IsvdOptions options = {});

  /// Reconstitutes an Isvd from externally persisted factors (checkpoint
  /// restore). The factors are trusted as-is (shapes validated).
  static Isvd from_state(IsvdOptions options, linalg::Mat u,
                         std::vector<double> s, linalg::Mat v,
                         std::size_t cols_seen);

  /// Batch-decomposes the first column block. Must be called exactly once,
  /// before any update().
  void initialize(const linalg::Mat& block);

  /// Folds `new_cols` (P x c) into the decomposition.
  void update(const linalg::Mat& new_cols);

  /// Extends the decomposition with `new_rows` (w x cols_seen()): the
  /// new-sensor extension. V gains no rows; U gains w rows.
  void add_rows(const linalg::Mat& new_rows);

  bool initialized() const { return initialized_; }
  std::size_t rank() const { return s_.size(); }
  std::size_t rows() const { return u_.rows(); }
  std::size_t cols_seen() const { return cols_seen_; }

  const linalg::Mat& u() const { return u_; }
  const std::vector<double>& s() const { return s_; }
  /// V is only valid when options.track_v; rows correspond to seen columns.
  const linalg::Mat& v() const { return v_; }

  /// U diag(s) V^T — for tests and small problems only (forms the product).
  linalg::Mat reconstruct() const;

 private:
  void truncate();

  IsvdOptions options_;
  bool initialized_ = false;
  std::size_t cols_seen_ = 0;
  linalg::Mat u_;
  std::vector<double> s_;
  linalg::Mat v_;
};

}  // namespace imrdmd::isvd
