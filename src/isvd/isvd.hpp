// Incremental (streaming) truncated SVD.
//
// This is the enabling kernel of the paper's contribution: I-mrDMD replaces
// the per-update batch SVD at mrDMD level 1 with an incremental update in
// the style of Brand (2006) / Kühl et al. (2024) [46]. Columns arrive in
// blocks (temporally serial); the maintained factors are
//     X_seen  ~=  U diag(s) V^T,   U: P x r,  V: T_seen x r.
//
// Column updates:   project the new block onto span(U), orthogonalize the
// residual (with one reorthogonalization pass), assemble the small core
// matrix K = [diag(s), U^T B; 0, R_resid], take its dense SVD and rotate the
// outer factors. Cost per update: O(P r c + (r+c)^3), independent of T_seen.
//
// Row updates (add_rows) implement the paper's "future work" extension of
// adding entire new sensors to an existing decomposition.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::isvd {

struct IsvdOptions {
  /// Hard cap on retained rank (0 = keep everything numerically nonzero).
  std::size_t max_rank = 0;
  /// Drop singular values <= truncation_tol * s_max after each update.
  double truncation_tol = 1e-12;
  /// Maintain V (needed by DMD); disable for PCA-style uses to save memory.
  bool track_v = true;
};

/// Scratch for Isvd::update. Every temporary of the blocked fast path —
/// projection coefficients, residual, core matrix, extended/rotated outer
/// factors, and the QR/SVD workspaces — lives here and is reused across
/// updates, so once the buffers have warmed to the steady-state rank a
/// column update performs no heap allocation (V's unbounded growth is
/// amortized by geometric reservation). Isvd owns one internally; callers
/// interleaving updates of many decompositions can share an external one
/// via the two-argument update().
struct IsvdWorkspace {
  linalg::Mat block;         // gathered slice of a wider-than-P input
  linalg::Mat coeff;         // r x c projection coefficients ("M")
  linalg::Mat coeff_pass;    // per-pass coefficients of project_out
  linalg::Mat residual;      // P x c out-of-subspace residual
  linalg::Mat core;          // (r+c) x (r+c) core matrix K
  linalg::Mat u_ext;         // [U Q]
  linalg::Mat v_ext;         // [[V 0]; [0 I]]
  linalg::Mat u_next;        // rotated factors, swapped into the Isvd
  linalg::Mat v_next;
  linalg::QrResult qr;
  linalg::QrWorkspace qr_ws;
  linalg::SvdResult core_svd;
  linalg::SvdWorkspace svd_ws;
};

class Isvd {
 public:
  explicit Isvd(IsvdOptions options = {});

  /// Reconstitutes an Isvd from externally persisted factors (checkpoint
  /// restore). The factors are trusted as-is (shapes validated).
  static Isvd from_state(IsvdOptions options, linalg::Mat u,
                         std::vector<double> s, linalg::Mat v,
                         std::size_t cols_seen);

  /// Batch-decomposes the first column block. Must be called exactly once,
  /// before any update().
  void initialize(const linalg::Mat& block);

  /// Folds `new_cols` (P x c) into the decomposition using the internal
  /// workspace. One core SVD per P-column block; cost O(P r c + (r+c)^3),
  /// independent of cols_seen().
  void update(const linalg::Mat& new_cols);

  /// Same update through a caller-owned workspace (shareable across Isvd
  /// instances that update in turn; never concurrently).
  void update(const linalg::Mat& new_cols, IsvdWorkspace& workspace);

  /// Extends the decomposition with `new_rows` (w x cols_seen()): the
  /// new-sensor extension. V gains no rows; U gains w rows.
  void add_rows(const linalg::Mat& new_rows);

  bool initialized() const { return initialized_; }
  std::size_t rank() const { return s_.size(); }
  std::size_t rows() const { return u_.rows(); }
  std::size_t cols_seen() const { return cols_seen_; }

  const linalg::Mat& u() const { return u_; }
  const std::vector<double>& s() const { return s_; }
  /// V is only valid when options.track_v; rows correspond to seen columns.
  const linalg::Mat& v() const { return v_; }

  /// U diag(s) V^T — for tests and small problems only (forms the product).
  linalg::Mat reconstruct() const;

 private:
  /// Folds columns [c0, c0 + c) of `src` (one block, c <= rows) into the
  /// factors; the blocked core of update().
  void update_block(const linalg::Mat& src, std::size_t c0, std::size_t c,
                    IsvdWorkspace& ws);
  void truncate();

  IsvdOptions options_;
  bool initialized_ = false;
  std::size_t cols_seen_ = 0;
  linalg::Mat u_;
  std::vector<double> s_;
  linalg::Mat v_;
  IsvdWorkspace workspace_;
};

}  // namespace imrdmd::isvd
