#include "isvd/distributed_isvd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "isvd/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::isvd {

using linalg::Mat;

DistributedIsvd::DistributedIsvd(dist::Communicator& comm,
                                 IsvdOptions options)
    : comm_(comm), options_(options) {}

void DistributedIsvd::initialize(const Mat& local_block) {
  IMRDMD_REQUIRE_ARG(!initialized_, "DistributedIsvd::initialize called twice");
  // A = Q R (TSQR), R = Ur S V^T  =>  A = (Q Ur) S V^T.
  TsqrResult qr = tsqr(comm_, local_block);
  linalg::SvdResult core = linalg::svd(qr.r);
  u_local_ = linalg::matmul(qr.q_local, core.u);
  s_ = std::move(core.s);
  v_ = std::move(core.v);
  cols_seen_ = local_block.cols();
  initialized_ = true;
  truncate();
}

void DistributedIsvd::update(const Mat& local_new_cols) {
  IMRDMD_REQUIRE_ARG(initialized_, "DistributedIsvd::update before initialize");
  IMRDMD_REQUIRE_DIMS(local_new_cols.rows() == u_local_.rows(),
                      "DistributedIsvd::update local row mismatch");
  const std::size_t r = s_.size();
  const std::size_t c = local_new_cols.cols();
  if (c == 0) return;
  // TSQR needs every rank's local rows >= c; fold wider blocks serially.
  // The chunk width must be agreed collectively, hence the allreduce.
  const double min_rows =
      comm_.allreduce_min(static_cast<double>(u_local_.rows()));
  const std::size_t chunk = static_cast<std::size_t>(min_rows);
  if (c > chunk) {
    IMRDMD_REQUIRE_ARG(chunk > 0, "DistributedIsvd rank with zero rows");
    for (std::size_t c0 = 0; c0 < c; c0 += chunk) {
      const std::size_t w = std::min(chunk, c - c0);
      update(local_new_cols.block(0, c0, local_new_cols.rows(), w));
    }
    return;
  }

  // Global projection M = sum_ranks U_i^T B_i, replicated by allreduce.
  Mat m = linalg::matmul_at_b(u_local_, local_new_cols);  // r x c
  comm_.allreduce_sum(std::span<double>(m.data(), m.size()));

  Mat residual = local_new_cols - linalg::matmul(u_local_, m);
  {
    Mat m2 = linalg::matmul_at_b(u_local_, residual);
    comm_.allreduce_sum(std::span<double>(m2.data(), m2.size()));
    residual -= linalg::matmul(u_local_, m2);
    m += m2;
  }

  // Orthonormalize the distributed residual via TSQR.
  TsqrResult qr = tsqr(comm_, residual);

  // Replicated core problem, identical on every rank.
  Mat k(r + c, r + c);
  for (std::size_t i = 0; i < r; ++i) k(i, i) = s_[i];
  k.set_block(0, r, m);
  k.set_block(r, r, qr.r);
  linalg::SvdResult core = linalg::svd(k);

  Mat u_ext(u_local_.rows(), r + c);
  u_ext.set_block(0, 0, u_local_);
  u_ext.set_block(0, r, qr.q_local);
  u_local_ = linalg::matmul(u_ext, core.u);

  if (options_.track_v) {
    Mat v_ext(cols_seen_ + c, r + c);
    v_ext.set_block(0, 0, v_);
    for (std::size_t j = 0; j < c; ++j) v_ext(cols_seen_ + j, r + j) = 1.0;
    v_ = linalg::matmul(v_ext, core.v);
  }
  s_ = std::move(core.s);
  cols_seen_ += c;
  truncate();
}

void DistributedIsvd::truncate() {
  std::size_t keep = s_.size();
  if (!s_.empty() && options_.truncation_tol > 0.0) {
    const double cutoff = options_.truncation_tol * s_.front();
    while (keep > 1 && s_[keep - 1] <= cutoff) --keep;
  }
  if (options_.max_rank > 0) keep = std::min(keep, options_.max_rank);
  if (keep == s_.size()) return;
  s_.resize(keep);
  u_local_ = u_local_.block(0, 0, u_local_.rows(), keep);
  if (options_.track_v && !v_.empty()) v_ = v_.block(0, 0, v_.rows(), keep);
}

}  // namespace imrdmd::isvd
