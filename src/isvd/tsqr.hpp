// TSQR: QR factorization of a tall-skinny matrix row-partitioned across the
// ranks of a dist::Communicator.
//
// Each rank factors its local block, the small R factors are allgathered and
// re-factored identically on every rank (deterministic — thin_qr's
// non-negative-diagonal convention makes R unique), and the local Q is
// patched with that rank's slice of the second-stage Q. This is the
// communication pattern of the "spatially parallel" incremental SVD of
// Kühl et al. [46].
#pragma once

#include "dist/communicator.hpp"
#include "linalg/matrix.hpp"

namespace imrdmd::isvd {

struct TsqrResult {
  /// This rank's rows of the global Q (local_rows x n).
  linalg::Mat q_local;
  /// Global R factor (n x n), replicated on every rank.
  linalg::Mat r;
};

/// Collective. `local_block` is this rank's rows (local_rows x n); the
/// logical matrix is the rank-ordered stack of all local blocks and must be
/// tall: sum(local_rows) >= n and every local_rows >= n (blocks skinnier
/// than n would need a tree with padding; the library always partitions
/// sensors, of which there are far more than SVD columns).
TsqrResult tsqr(dist::Communicator& comm, const linalg::Mat& local_block);

}  // namespace imrdmd::isvd
