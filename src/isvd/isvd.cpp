#include "isvd/isvd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace imrdmd::isvd {

using linalg::Mat;

Isvd::Isvd(IsvdOptions options) : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.truncation_tol >= 0.0,
                     "truncation_tol must be non-negative");
}

Isvd Isvd::from_state(IsvdOptions options, linalg::Mat u,
                      std::vector<double> s, linalg::Mat v,
                      std::size_t cols_seen) {
  IMRDMD_REQUIRE_DIMS(u.cols() == s.size(), "from_state U/s rank mismatch");
  IMRDMD_REQUIRE_DIMS(!options.track_v || v.cols() == s.size(),
                      "from_state V/s rank mismatch");
  IMRDMD_REQUIRE_DIMS(!options.track_v || v.rows() == cols_seen,
                      "from_state V rows must equal cols_seen");
  Isvd isvd(options);
  isvd.u_ = std::move(u);
  isvd.s_ = std::move(s);
  isvd.v_ = std::move(v);
  isvd.cols_seen_ = cols_seen;
  isvd.initialized_ = true;
  return isvd;
}

void Isvd::initialize(const Mat& block) {
  IMRDMD_REQUIRE_ARG(!initialized_, "Isvd::initialize called twice");
  IMRDMD_REQUIRE_DIMS(!block.empty(), "Isvd::initialize on empty block");
  linalg::SvdResult f = linalg::svd(block);
  u_ = std::move(f.u);
  s_ = std::move(f.s);
  if (options_.track_v) v_ = std::move(f.v);
  cols_seen_ = block.cols();
  initialized_ = true;
  truncate();
}

void Isvd::update(const Mat& new_cols) { update(new_cols, workspace_); }

void Isvd::update(const Mat& new_cols, IsvdWorkspace& ws) {
  IMRDMD_REQUIRE_ARG(initialized_, "Isvd::update before initialize");
  IMRDMD_REQUIRE_DIMS(new_cols.rows() == u_.rows(),
                      "Isvd::update row count mismatch");
  // The residual QR needs P >= c; wider inputs fold in as a loop of
  // full-width blocks (mathematically identical, one core SVD per block).
  const std::size_t width = u_.rows();
  for (std::size_t c0 = 0; c0 < new_cols.cols(); c0 += width) {
    update_block(new_cols, c0, std::min(width, new_cols.cols() - c0), ws);
  }
}

void Isvd::update_block(const Mat& src, std::size_t c0, std::size_t c,
                        IsvdWorkspace& ws) {
  const std::size_t p = u_.rows();
  const std::size_t r = rank();
  const Mat* block = &src;
  if (c0 != 0 || c != src.cols()) {
    ws.block.assign_zero(p, c);
    for (std::size_t i = 0; i < p; ++i) {
      const double* from = src.data() + i * src.cols() + c0;
      std::copy(from, from + c, ws.block.data() + i * c);
    }
    block = &ws.block;
  }

  // Projection onto the current left subspace and out-of-subspace residual:
  // two passes of the fused project_out primitive — the second is the
  // classical reorthogonalization (Kühl et al. recommend it; without it the
  // residual loses orthogonality once s spans many decades).
  ws.coeff.assign_zero(r, c);
  ws.residual = *block;
  linalg::project_out(u_, ws.residual, ws.coeff, ws.coeff_pass);
  linalg::project_out(u_, ws.residual, ws.coeff, ws.coeff_pass);
  linalg::thin_qr_into(ws.residual, ws.qr, ws.qr_ws);  // Q: P x c, R: c x c

  // Core matrix K = [diag(s), M; 0, R] of size (r+c) x (r+c).
  ws.core.assign_zero(r + c, r + c);
  for (std::size_t i = 0; i < r; ++i) ws.core(i, i) = s_[i];
  ws.core.set_block(0, r, ws.coeff);
  ws.core.set_block(r, r, ws.qr.r);
  linalg::svd_into(ws.core, ws.core_svd, ws.svd_ws);

  // Rotate the outer factors: U <- [U Q] Uk, V <- [[V 0];[0 I]] Vk. The
  // rotated factor is built in a workspace buffer and swapped into place.
  ws.u_ext.assign_zero(p, r + c);
  ws.u_ext.set_block(0, 0, u_);
  ws.u_ext.set_block(0, r, ws.qr.q);
  linalg::matmul_into(ws.u_ext, ws.core_svd.u, ws.u_next);
  std::swap(u_, ws.u_next);

  s_.assign(ws.core_svd.s.begin(), ws.core_svd.s.end());

  if (options_.track_v) {
    // V gains a row per seen column; reserve geometrically so the growth
    // allocations amortize away in steady state.
    const std::size_t need = (cols_seen_ + c) * (r + c);
    if (ws.v_ext.capacity() < need) ws.v_ext.reserve(2 * need);
    if (ws.v_next.capacity() < need) ws.v_next.reserve(2 * need);
    ws.v_ext.assign_zero(cols_seen_ + c, r + c);
    ws.v_ext.set_block(0, 0, v_);
    for (std::size_t j = 0; j < c; ++j) ws.v_ext(cols_seen_ + j, r + j) = 1.0;
    linalg::matmul_into(ws.v_ext, ws.core_svd.v, ws.v_next);
    std::swap(v_, ws.v_next);
  }
  cols_seen_ += c;
  truncate();
}

void Isvd::add_rows(const Mat& new_rows) {
  IMRDMD_REQUIRE_ARG(initialized_, "Isvd::add_rows before initialize");
  IMRDMD_REQUIRE_ARG(options_.track_v,
                     "add_rows needs track_v (it projects onto V)");
  IMRDMD_REQUIRE_DIMS(new_rows.cols() == cols_seen_,
                      "Isvd::add_rows column count mismatch");
  if (new_rows.rows() == 0) return;
  // The row-space residual QR needs cols_seen >= w; split taller blocks.
  if (new_rows.rows() > cols_seen_) {
    for (std::size_t r0 = 0; r0 < new_rows.rows(); r0 += cols_seen_) {
      const std::size_t h = std::min(cols_seen_, new_rows.rows() - r0);
      add_rows(new_rows.block(r0, 0, h, new_rows.cols()));
    }
    return;
  }
  const std::size_t r = rank();
  const std::size_t w = new_rows.rows();

  // [X; W] = [U 0; 0 I] [diag(s), 0; W V, R_w^T] [V Q_w]^T where
  // (I - V V^T) W^T = Q_w R_w orthogonalizes the new rows' row space.
  Mat wv = linalg::matmul(new_rows, v_);            // w x r
  Mat wt = new_rows.transposed();                   // T x w
  Mat residual = wt - linalg::matmul(v_, wv.transposed());
  {
    const Mat m2 = linalg::matmul_at_b(v_, residual);
    residual -= linalg::matmul(v_, m2);
    wv += m2.transposed();
  }
  linalg::QrResult qr = linalg::thin_qr(residual);  // Q_w: T x w, R_w: w x w

  Mat k(r + w, r + w);
  for (std::size_t i = 0; i < r; ++i) k(i, i) = s_[i];
  k.set_block(r, 0, wv);
  k.set_block(r, r, qr.r.transposed());
  linalg::SvdResult core = linalg::svd(k);

  Mat u_ext(u_.rows() + w, r + w);
  u_ext.set_block(0, 0, u_);
  for (std::size_t i = 0; i < w; ++i) u_ext(u_.rows() + i, r + i) = 1.0;
  u_ = linalg::matmul(u_ext, core.u);

  Mat v_ext(cols_seen_, r + w);
  v_ext.set_block(0, 0, v_);
  v_ext.set_block(0, r, qr.q);
  v_ = linalg::matmul(v_ext, core.v);

  s_ = std::move(core.s);
  truncate();
}

linalg::Mat Isvd::reconstruct() const {
  IMRDMD_REQUIRE_ARG(initialized_ && options_.track_v,
                     "reconstruct needs an initialized, V-tracking Isvd");
  Mat us = u_;
  for (std::size_t j = 0; j < s_.size(); ++j) linalg::scale_col(us, j, s_[j]);
  return linalg::matmul_a_bt(us, v_);
}

void Isvd::truncate() {
  std::size_t keep = s_.size();
  if (!s_.empty() && options_.truncation_tol > 0.0) {
    const double cutoff = options_.truncation_tol * s_.front();
    while (keep > 1 && s_[keep - 1] <= cutoff) --keep;
  }
  if (options_.max_rank > 0) keep = std::min(keep, options_.max_rank);
  if (keep == s_.size()) return;
  s_.resize(keep);
  u_.shrink_cols(keep);
  if (options_.track_v && !v_.empty()) v_.shrink_cols(keep);
}

}  // namespace imrdmd::isvd
