#include "isvd/isvd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace imrdmd::isvd {

using linalg::Mat;

Isvd::Isvd(IsvdOptions options) : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.truncation_tol >= 0.0,
                     "truncation_tol must be non-negative");
}

Isvd Isvd::from_state(IsvdOptions options, linalg::Mat u,
                      std::vector<double> s, linalg::Mat v,
                      std::size_t cols_seen) {
  IMRDMD_REQUIRE_DIMS(u.cols() == s.size(), "from_state U/s rank mismatch");
  IMRDMD_REQUIRE_DIMS(!options.track_v || v.cols() == s.size(),
                      "from_state V/s rank mismatch");
  IMRDMD_REQUIRE_DIMS(!options.track_v || v.rows() == cols_seen,
                      "from_state V rows must equal cols_seen");
  Isvd isvd(options);
  isvd.u_ = std::move(u);
  isvd.s_ = std::move(s);
  isvd.v_ = std::move(v);
  isvd.cols_seen_ = cols_seen;
  isvd.initialized_ = true;
  return isvd;
}

void Isvd::initialize(const Mat& block) {
  IMRDMD_REQUIRE_ARG(!initialized_, "Isvd::initialize called twice");
  IMRDMD_REQUIRE_DIMS(!block.empty(), "Isvd::initialize on empty block");
  linalg::SvdResult f = linalg::svd(block);
  u_ = std::move(f.u);
  s_ = std::move(f.s);
  if (options_.track_v) v_ = std::move(f.v);
  cols_seen_ = block.cols();
  initialized_ = true;
  truncate();
}

void Isvd::update(const Mat& new_cols) {
  IMRDMD_REQUIRE_ARG(initialized_, "Isvd::update before initialize");
  IMRDMD_REQUIRE_DIMS(new_cols.rows() == u_.rows(),
                      "Isvd::update row count mismatch");
  if (new_cols.cols() == 0) return;
  // The residual QR needs P >= c; fold wider blocks in as a sequence of
  // narrower updates (mathematically identical).
  if (new_cols.cols() > u_.rows()) {
    for (std::size_t c0 = 0; c0 < new_cols.cols(); c0 += u_.rows()) {
      const std::size_t w = std::min(u_.rows(), new_cols.cols() - c0);
      update(new_cols.block(0, c0, new_cols.rows(), w));
    }
    return;
  }
  const std::size_t r = rank();
  const std::size_t c = new_cols.cols();

  // Projection onto the current left subspace and out-of-subspace residual,
  // with one classical reorthogonalization pass (Kühl et al. recommend it;
  // without it the residual loses orthogonality once s spans many decades).
  Mat m = linalg::matmul_at_b(u_, new_cols);       // r x c
  Mat residual = new_cols - linalg::matmul(u_, m);  // P x c
  {
    const Mat m2 = linalg::matmul_at_b(u_, residual);
    residual -= linalg::matmul(u_, m2);
    m += m2;
  }
  linalg::QrResult qr = linalg::thin_qr(residual);  // Q: P x c, R: c x c

  // Core matrix K = [diag(s), M; 0, R] of size (r+c) x (r+c).
  Mat k(r + c, r + c);
  for (std::size_t i = 0; i < r; ++i) k(i, i) = s_[i];
  k.set_block(0, r, m);
  k.set_block(r, r, qr.r);
  linalg::SvdResult core = linalg::svd(k);

  // Rotate the outer factors: U <- [U Q] Uk, V <- [[V 0];[0 I]] Vk.
  Mat u_ext(u_.rows(), r + c);
  u_ext.set_block(0, 0, u_);
  u_ext.set_block(0, r, qr.q);
  u_ = linalg::matmul(u_ext, core.u);

  s_ = std::move(core.s);

  if (options_.track_v) {
    Mat v_ext(cols_seen_ + c, r + c);
    v_ext.set_block(0, 0, v_);
    for (std::size_t j = 0; j < c; ++j) v_ext(cols_seen_ + j, r + j) = 1.0;
    v_ = linalg::matmul(v_ext, core.v);
  }
  cols_seen_ += c;
  truncate();
}

void Isvd::add_rows(const Mat& new_rows) {
  IMRDMD_REQUIRE_ARG(initialized_, "Isvd::add_rows before initialize");
  IMRDMD_REQUIRE_ARG(options_.track_v,
                     "add_rows needs track_v (it projects onto V)");
  IMRDMD_REQUIRE_DIMS(new_rows.cols() == cols_seen_,
                      "Isvd::add_rows column count mismatch");
  if (new_rows.rows() == 0) return;
  // The row-space residual QR needs cols_seen >= w; split taller blocks.
  if (new_rows.rows() > cols_seen_) {
    for (std::size_t r0 = 0; r0 < new_rows.rows(); r0 += cols_seen_) {
      const std::size_t h = std::min(cols_seen_, new_rows.rows() - r0);
      add_rows(new_rows.block(r0, 0, h, new_rows.cols()));
    }
    return;
  }
  const std::size_t r = rank();
  const std::size_t w = new_rows.rows();

  // [X; W] = [U 0; 0 I] [diag(s), 0; W V, R_w^T] [V Q_w]^T where
  // (I - V V^T) W^T = Q_w R_w orthogonalizes the new rows' row space.
  Mat wv = linalg::matmul(new_rows, v_);            // w x r
  Mat wt = new_rows.transposed();                   // T x w
  Mat residual = wt - linalg::matmul(v_, wv.transposed());
  {
    const Mat m2 = linalg::matmul_at_b(v_, residual);
    residual -= linalg::matmul(v_, m2);
    wv += m2.transposed();
  }
  linalg::QrResult qr = linalg::thin_qr(residual);  // Q_w: T x w, R_w: w x w

  Mat k(r + w, r + w);
  for (std::size_t i = 0; i < r; ++i) k(i, i) = s_[i];
  k.set_block(r, 0, wv);
  k.set_block(r, r, qr.r.transposed());
  linalg::SvdResult core = linalg::svd(k);

  Mat u_ext(u_.rows() + w, r + w);
  u_ext.set_block(0, 0, u_);
  for (std::size_t i = 0; i < w; ++i) u_ext(u_.rows() + i, r + i) = 1.0;
  u_ = linalg::matmul(u_ext, core.u);

  Mat v_ext(cols_seen_, r + w);
  v_ext.set_block(0, 0, v_);
  v_ext.set_block(0, r, qr.q);
  v_ = linalg::matmul(v_ext, core.v);

  s_ = std::move(core.s);
  truncate();
}

linalg::Mat Isvd::reconstruct() const {
  IMRDMD_REQUIRE_ARG(initialized_ && options_.track_v,
                     "reconstruct needs an initialized, V-tracking Isvd");
  Mat us = u_;
  for (std::size_t j = 0; j < s_.size(); ++j) linalg::scale_col(us, j, s_[j]);
  return linalg::matmul_a_bt(us, v_);
}

void Isvd::truncate() {
  std::size_t keep = s_.size();
  if (!s_.empty() && options_.truncation_tol > 0.0) {
    const double cutoff = options_.truncation_tol * s_.front();
    while (keep > 1 && s_[keep - 1] <= cutoff) --keep;
  }
  if (options_.max_rank > 0) keep = std::min(keep, options_.max_rank);
  if (keep == s_.size()) return;
  s_.resize(keep);
  u_ = u_.block(0, 0, u_.rows(), keep);
  if (options_.track_v && !v_.empty()) v_ = v_.block(0, 0, v_.rows(), keep);
}

}  // namespace imrdmd::isvd
