// Spatially-parallel / temporally-serial incremental SVD (Kühl et al. [46]).
//
// The sensor dimension (rows) is partitioned across the ranks of a
// dist::Communicator; each rank holds only its rows of U while the small
// factors (s, V, and every core-matrix computation) are replicated. Column
// blocks arrive serially in time, exactly like the serial Isvd. All methods
// are collective: every rank of the world must call them in the same order.
//
// Communication per update: one allreduce of an r x c projection, one
// allreduce for the reorthogonalization pass, and one TSQR (allgather of
// c x c R factors) — independent of the global row count, which is what
// makes the scheme scale to full-machine sensor counts.
#pragma once

#include <cstddef>
#include <vector>

#include "dist/communicator.hpp"
#include "isvd/isvd.hpp"
#include "linalg/matrix.hpp"

namespace imrdmd::isvd {

class DistributedIsvd {
 public:
  /// `comm` must outlive the object.
  DistributedIsvd(dist::Communicator& comm, IsvdOptions options = {});

  /// Collective batch factorization of the first block (this rank's rows).
  void initialize(const linalg::Mat& local_block);

  /// Collective column update with this rank's rows of the new block.
  void update(const linalg::Mat& local_new_cols);

  bool initialized() const { return initialized_; }
  std::size_t rank_of_factorization() const { return s_.size(); }
  std::size_t cols_seen() const { return cols_seen_; }

  /// This rank's rows of U.
  const linalg::Mat& u_local() const { return u_local_; }
  /// Replicated singular values.
  const std::vector<double>& s() const { return s_; }
  /// Replicated right factor (cols_seen x rank).
  const linalg::Mat& v() const { return v_; }

 private:
  void truncate();

  dist::Communicator& comm_;
  IsvdOptions options_;
  bool initialized_ = false;
  std::size_t cols_seen_ = 0;
  linalg::Mat u_local_;
  std::vector<double> s_;
  linalg::Mat v_;
};

}  // namespace imrdmd::isvd
