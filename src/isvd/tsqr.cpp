#include "isvd/tsqr.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace imrdmd::isvd {

using linalg::Mat;

TsqrResult tsqr(dist::Communicator& comm, const Mat& local_block) {
  const std::size_t n = local_block.cols();
  IMRDMD_REQUIRE_DIMS(local_block.rows() >= n,
                      "tsqr local block must have rows >= cols");

  // Stage 1: local factorization.
  linalg::QrResult local = linalg::thin_qr(local_block);

  // Stage 2: gather all R factors (n x n each, flattened row-major) and
  // re-factor the stack. Every rank performs the identical computation on
  // identical data, so the replicated R needs no broadcast. The gather is
  // ragged-aware (allgatherv): each rank's block is validated individually,
  // so a rank that disagrees on the column count fails the collective with
  // a precise error on every rank instead of one rank misparsing a flat
  // concatenation whose total length happens to match.
  std::vector<double> flat(local.r.data(), local.r.data() + local.r.size());
  const std::vector<std::vector<double>> all = comm.allgatherv(flat);
  const std::size_t ranks = static_cast<std::size_t>(comm.size());
  for (const auto& block : all) {
    IMRDMD_REQUIRE_DIMS(block.size() == n * n,
                        "tsqr: ranks disagree on column count");
  }

  Mat stacked(ranks * n, n);
  for (std::size_t r = 0; r < ranks; ++r) {
    std::copy(all[r].begin(), all[r].end(), stacked.data() + r * n * n);
  }
  linalg::QrResult second = linalg::thin_qr(stacked);

  // Stage 3: patch the local Q with this rank's n x n slice of stage-2 Q.
  const Mat q2_slice =
      second.q.block(static_cast<std::size_t>(comm.rank()) * n, 0, n, n);

  TsqrResult result;
  result.q_local = linalg::matmul(local.q, q2_slice);
  result.r = std::move(second.r);
  return result;
}

}  // namespace imrdmd::isvd
