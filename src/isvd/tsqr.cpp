#include "isvd/tsqr.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace imrdmd::isvd {

using linalg::Mat;

TsqrResult tsqr(dist::Communicator& comm, const Mat& local_block) {
  const std::size_t n = local_block.cols();
  IMRDMD_REQUIRE_DIMS(local_block.rows() >= n,
                      "tsqr local block must have rows >= cols");

  // Stage 1: local factorization.
  linalg::QrResult local = linalg::thin_qr(local_block);

  // Stage 2: gather all R factors (n x n each, flattened row-major) and
  // re-factor the stack. Every rank performs the identical computation on
  // identical data, so the replicated R needs no broadcast.
  std::vector<double> flat(local.r.data(), local.r.data() + local.r.size());
  const std::vector<double> all = comm.allgather(flat);
  const std::size_t ranks = static_cast<std::size_t>(comm.size());
  IMRDMD_REQUIRE_DIMS(all.size() == ranks * n * n,
                      "tsqr: ranks disagree on column count");

  Mat stacked(ranks * n, n);
  std::copy(all.begin(), all.end(), stacked.data());
  linalg::QrResult second = linalg::thin_qr(stacked);

  // Stage 3: patch the local Q with this rank's n x n slice of stage-2 Q.
  const Mat q2_slice =
      second.q.block(static_cast<std::size_t>(comm.rank()) * n, 0, n, n);

  TsqrResult result;
  result.q_local = linalg::matmul(local.q, q2_slice);
  result.r = std::move(second.r);
  return result;
}

}  // namespace imrdmd::isvd
