// AVX2/FMA kernels for the GEMM family.
//
// This translation unit — and ONLY this one — is compiled with
// -mavx2 -mfma (see the set_source_files_properties call in
// CMakeLists.txt), so nothing outside the guarded block below may be
// reached on a CPU without those extensions. Backend dispatch and the
// runtime CPU check live in backend.cpp, which is built with the project's
// baseline flags; the kernels here are invoked only after both
// kernels_compiled() and the CPU check pass.
//
// Vectorization strategy: the reference kernels' outer structure is kept
// verbatim (OpenMP row panels, each output row owned by one thread, same
// k-loop order), and only the innermost contiguous j-loops become 256-bit
// FMA lanes. That preserves the per-backend determinism contract — a fixed
// operation order for any thread count — while replacing the two-rounding
// multiply-add with single-rounding FMA, which is why avx2 results sit in
// the banded (not bitwise) equivalence class against reference.

#include "linalg/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define IMRDMD_AVX2_KERNELS 1
#endif

namespace imrdmd::linalg::avx2 {

bool kernels_compiled() {
#ifdef IMRDMD_AVX2_KERNELS
  return true;
#else
  return false;
#endif
}

#ifdef IMRDMD_AVX2_KERNELS

namespace {

// crow[0..n) += aik * brow[0..n): one broadcast FMA pass, 8 doubles per
// iteration (two 256-bit lanes) to keep both FMA ports busy.
inline void axpy_row(double aik, const double* __restrict__ brow,
                     double* __restrict__ crow, std::size_t n) {
  const __m256d va = _mm256_set1_pd(aik);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    __m256d c1 = _mm256_loadu_pd(crow + j + 4);
    c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j), c0);
    c1 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j + 4), c1);
    _mm256_storeu_pd(crow + j, c0);
    _mm256_storeu_pd(crow + j + 4, c1);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    c0 = _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j), c0);
    _mm256_storeu_pd(crow + j, c0);
  }
  for (; j < n; ++j) crow[j] += aik * brow[j];
}

// crow[0..n) -= aik * brow[0..n).
inline void axmy_row(double aik, const double* __restrict__ brow,
                     double* __restrict__ crow, std::size_t n) {
  const __m256d va = _mm256_set1_pd(aik);
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    __m256d c1 = _mm256_loadu_pd(crow + j + 4);
    c0 = _mm256_fnmadd_pd(va, _mm256_loadu_pd(brow + j), c0);
    c1 = _mm256_fnmadd_pd(va, _mm256_loadu_pd(brow + j + 4), c1);
    _mm256_storeu_pd(crow + j, c0);
    _mm256_storeu_pd(crow + j + 4, c1);
  }
  for (; j + 4 <= n; j += 4) {
    __m256d c0 = _mm256_loadu_pd(crow + j);
    c0 = _mm256_fnmadd_pd(va, _mm256_loadu_pd(brow + j), c0);
    _mm256_storeu_pd(crow + j, c0);
  }
  for (; j < n; ++j) crow[j] -= aik * brow[j];
}

// sum(arow[0..k) * brow[0..k)) with two independent accumulators; the
// horizontal reduction at the end fixes the lane-sum order, keeping the
// kernel deterministic run-to-run.
inline double dot_row(const double* __restrict__ arow,
                      const double* __restrict__ brow, std::size_t k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  std::size_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                           _mm256_loadu_pd(brow + kk), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk + 4),
                           _mm256_loadu_pd(brow + kk + 4), acc1);
  }
  for (; kk + 4 <= k; kk += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(arow + kk),
                           _mm256_loadu_pd(brow + kk), acc0);
  }
  acc0 = _mm256_add_pd(acc0, acc1);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc0);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; kk < k; ++kk) sum += arow[kk] * brow[kk];
  return sum;
}

}  // namespace

void matmul_into(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  const double* __restrict__ bp = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = a.data() + i * k;
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      // Zero-skip kept from the reference kernel: the iSVD core matrices
      // are mostly structural zeros and the branch wins there.
      if (aik == 0.0) continue;
      axpy_row(aik, bp + kk * n, crow, n);
    }
  }
}

void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aki = a(kk, i);
      if (aki == 0.0) continue;
      axpy_row(aki, b.data() + kk * n, crow, n);
    }
  }
}

void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  if (m == 0 || k == 0 || n == 0) return;
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = a.data() + i * k;
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      crow[j] = dot_row(arow, b.data() + j * k, k);
    }
  }
}

void matmul_sub(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  const double* __restrict__ bp = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = a.data() + i * k;
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;
      axmy_row(aik, bp + kk * n, crow, n);
    }
  }
}

#else  // !IMRDMD_AVX2_KERNELS

// Unreachable by construction (backend.cpp gates on kernels_compiled()),
// but defined so the symbol set is identical on every target.
void matmul_into(const Mat& a, const Mat& b, Mat& out) {
  ref::matmul_into(a, b, out);
}
void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) {
  ref::matmul_at_b_into(a, b, out);
}
void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) {
  ref::matmul_a_bt_into(a, b, out);
}
void matmul_sub(const Mat& a, const Mat& b, Mat& out) {
  ref::matmul_sub(a, b, out);
}

#endif  // IMRDMD_AVX2_KERNELS

}  // namespace imrdmd::linalg::avx2
