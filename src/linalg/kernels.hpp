// Internal kernel declarations shared by the linalg backends.
//
// ref::   — the cache-blocked scalar kernels (defined in blas.cpp, qr.cpp,
//           svd.cpp). These are the pre-seam implementations verbatim: the
//           "reference" backend is bitwise-identical to the library's
//           historical output, and other backends reuse them as fallbacks
//           for kernels they do not accelerate.
// avx2::  — the AVX2/FMA translation unit (backend_avx2.cpp), compiled
//           with -mavx2 -mfma when the toolchain supports it. Callers must
//           gate on kernels_compiled() AND a runtime CPU check before
//           invoking; see backend.cpp.
//
// All kernels follow the Backend contract (backend.hpp): inputs validated,
// GEMM outputs pre-shaped and zero-filled by the dispatcher.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::linalg::ref {

void matmul_into(const Mat& a, const Mat& b, Mat& out);
void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out);
void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out);
void matmul_sub(const Mat& a, const Mat& b, Mat& out);
void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws);
void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws);

}  // namespace imrdmd::linalg::ref

namespace imrdmd::linalg::avx2 {

/// True when backend_avx2.cpp was built with AVX2+FMA codegen (x86-64
/// toolchains that accept -mavx2 -mfma). When false the kernels below
/// delegate to ref:: and must not be treated as accelerated.
bool kernels_compiled();

void matmul_into(const Mat& a, const Mat& b, Mat& out);
void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out);
void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out);
void matmul_sub(const Mat& a, const Mat& b, Mat& out);

}  // namespace imrdmd::linalg::avx2
