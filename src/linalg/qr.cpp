#include "linalg/qr.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/kernels.hpp"

namespace imrdmd::linalg {

namespace {

// In-place Householder factorization. On exit `work` holds R in its upper
// triangle and the Householder vectors below the diagonal; `taus` holds the
// reflector scales.
void householder_factor(Mat& work, std::vector<double>& taus) {
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  taus.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Build the reflector annihilating work(k+1..m-1, k).
    double norm_x = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_x += work(i, k) * work(i, k);
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;  // column already zero below diagonal
    const double alpha = work(k, k) >= 0.0 ? -norm_x : norm_x;
    double v0 = work(k, k) - alpha;
    // v = x - alpha*e1, normalized so v[0] = 1.
    double v_norm_sq = v0 * v0;
    for (std::size_t i = k + 1; i < m; ++i) v_norm_sq += work(i, k) * work(i, k);
    if (v_norm_sq == 0.0) continue;
    const double tau = 2.0 * v0 * v0 / v_norm_sq;
    // Store normalized v below the diagonal (implicit v[0] = 1).
    for (std::size_t i = k + 1; i < m; ++i) work(i, k) /= v0;
    work(k, k) = alpha;
    taus[k] = tau;
    // Apply (I - tau v v^T) to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = work(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += work(i, k) * work(i, j);
      s *= tau;
      work(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) work(i, j) -= s * work(i, k);
    }
  }
}

// Accumulates the thin Q (m x n) from the factored form into `q`.
void accumulate_q_into(const Mat& work, const std::vector<double>& taus,
                       Mat& q) {
  const std::size_t m = work.rows();
  const std::size_t n = work.cols();
  q.assign_zero(m, n);
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  // Apply reflectors in reverse order: Q = H_0 H_1 ... H_{n-1} E.
  for (std::size_t kk = n; kk-- > 0;) {
    const double tau = taus[kk];
    if (tau == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      double s = q(kk, j);
      for (std::size_t i = kk + 1; i < m; ++i) s += work(i, kk) * q(i, j);
      s *= tau;
      q(kk, j) -= s;
      for (std::size_t i = kk + 1; i < m; ++i) q(i, j) -= s * work(i, kk);
    }
  }
}

// Extracts R (n x n upper triangle) into `r`; flips signs so diag(R) >= 0
// and flips the matching Q columns via the sign vector.
void extract_r_into(const Mat& work, std::vector<double>& signs, Mat& r) {
  const std::size_t n = work.cols();
  r.assign_zero(n, n);
  signs.assign(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (work(i, i) < 0.0) signs[i] = -1.0;
    for (std::size_t j = i; j < n; ++j) r(i, j) = signs[i] * work(i, j);
  }
}

}  // namespace

// Reference Householder kernel (the "reference" backend; see kernels.hpp).
void ref::thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) {
  ws.work = a;
  householder_factor(ws.work, ws.taus);
  extract_r_into(ws.work, ws.signs, out.r);
  accumulate_q_into(ws.work, ws.taus, out.q);
  // Apply the diagonal sign normalization to Q columns: A = (Q S)(S R).
  for (std::size_t j = 0; j < out.q.cols(); ++j) {
    if (ws.signs[j] < 0.0) scale_col(out.q, j, -1.0);
  }
}

void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) {
  IMRDMD_REQUIRE_DIMS(a.rows() >= a.cols(), "thin_qr requires rows >= cols");
  active_backend().thin_qr_into(a, out, ws);
}

QrResult thin_qr(const Mat& a) {
  QrResult result;
  QrWorkspace ws;
  thin_qr_into(a, result, ws);
  return result;
}

Mat qr_r_only(const Mat& a) {
  IMRDMD_REQUIRE_DIMS(a.rows() >= a.cols(), "qr_r_only requires rows >= cols");
  Mat work = a;
  std::vector<double> taus;
  householder_factor(work, taus);
  std::vector<double> signs;
  Mat r;
  extract_r_into(work, signs, r);
  return r;
}

std::vector<double> solve_upper(const Mat& r, std::span<const double> b) {
  IMRDMD_REQUIRE_DIMS(r.rows() == r.cols() && r.rows() == b.size(),
                      "solve_upper shape mismatch");
  const std::size_t n = r.rows();
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    max_diag = std::max(max_diag, std::abs(r(i, i)));
  std::vector<double> x(b.begin(), b.end());
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    const double d = r(ii, ii);
    if (std::abs(d) <= 1e-14 * max_diag || d == 0.0) {
      throw NumericalError("solve_upper: singular triangular factor");
    }
    x[ii] = s / d;
  }
  return x;
}

}  // namespace imrdmd::linalg
