#include "linalg/eig.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace imrdmd::linalg {

namespace {

// Reduces A to upper Hessenberg form H = Q^H A Q with complex Householder
// reflectors, accumulating Q (so A = Q H Q^H).
void hessenberg(CMat& h, CMat& q) {
  const std::size_t n = h.rows();
  q = to_complex(Mat::identity(n));
  if (n < 3) return;
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Reflector annihilating h(k+2..n-1, k).
    double norm_x = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) norm_x += std::norm(h(i, k));
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;
    const Complex x0 = h(k + 1, k);
    const double ax0 = std::abs(x0);
    // alpha = -e^{i arg(x0)} ||x||, the standard stable choice.
    const Complex phase = ax0 > 0.0 ? x0 / ax0 : Complex(1.0, 0.0);
    const Complex alpha = -phase * norm_x;
    std::vector<Complex> v(n, Complex{});
    v[k + 1] = x0 - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = h(i, k);
    double vnorm_sq = 0.0;
    for (std::size_t i = k + 1; i < n; ++i) vnorm_sq += std::norm(v[i]);
    if (vnorm_sq == 0.0) continue;
    const double beta = 2.0 / vnorm_sq;

    // H <- (I - beta v v^H) H : updates rows k+1..n-1.
    for (std::size_t j = 0; j < n; ++j) {
      Complex s{};
      for (std::size_t i = k + 1; i < n; ++i) s += std::conj(v[i]) * h(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) h(i, j) -= s * v[i];
    }
    // H <- H (I - beta v v^H) : updates columns k+1..n-1.
    for (std::size_t i = 0; i < n; ++i) {
      Complex s{};
      for (std::size_t j = k + 1; j < n; ++j) s += h(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) h(i, j) -= s * std::conj(v[j]);
    }
    // Q <- Q (I - beta v v^H).
    for (std::size_t i = 0; i < n; ++i) {
      Complex s{};
      for (std::size_t j = k + 1; j < n; ++j) s += q(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) q(i, j) -= s * std::conj(v[j]);
    }
    // The reflector maps column k exactly onto alpha e_{k+1}.
    h(k + 1, k) = alpha;
    for (std::size_t i = k + 2; i < n; ++i) h(i, k) = Complex{};
  }
}

// Complex Givens rotation G = [c, s; -conj(s), c] (c real) chosen so that
// G * (a, b)^T = (r, 0)^T.
void givens(Complex a, Complex b, double& c, Complex& s) {
  const double ab = std::abs(b);
  if (ab == 0.0) {
    c = 1.0;
    s = Complex{};
    return;
  }
  const double aa = std::abs(a);
  if (aa == 0.0) {
    c = 0.0;
    s = std::conj(b) / ab;
    return;
  }
  const double r = std::hypot(aa, ab);
  c = aa / r;
  s = std::conj(b) * (a / aa) / r;
}

// Wilkinson shift: eigenvalue of the trailing 2x2 block closest to h(hi,hi).
Complex wilkinson_shift(const CMat& h, std::size_t hi) {
  const Complex a = h(hi - 1, hi - 1);
  const Complex b = h(hi - 1, hi);
  const Complex c = h(hi, hi - 1);
  const Complex d = h(hi, hi);
  const Complex tr = a + d;
  const Complex det = a * d - b * c;
  const Complex disc = std::sqrt(tr * tr - 4.0 * det);
  const Complex l1 = 0.5 * (tr + disc);
  const Complex l2 = 0.5 * (tr - disc);
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

// One explicit shifted QR step on the active block [lo, hi]:
//   H - sI = Q R,  H <- R Q + sI  (applied through Givens rotations),
// accumulating the same right-rotations into q for the Schur vectors.
void qr_sweep(CMat& h, CMat* q, std::size_t lo, std::size_t hi,
              Complex shift) {
  const std::size_t n = h.rows();
  for (std::size_t i = lo; i <= hi; ++i) h(i, i) -= shift;

  std::vector<double> cs(hi - lo, 0.0);
  std::vector<Complex> ss(hi - lo, Complex{});
  // Left sweep: G_k zeroes the subdiagonal entry h(k+1, k).
  for (std::size_t k = lo; k < hi; ++k) {
    double c;
    Complex s;
    givens(h(k, k), h(k + 1, k), c, s);
    cs[k - lo] = c;
    ss[k - lo] = s;
    for (std::size_t j = k; j < n; ++j) {
      const Complex hkj = h(k, j);
      const Complex hk1j = h(k + 1, j);
      h(k, j) = c * hkj + s * hk1j;
      h(k + 1, j) = -std::conj(s) * hkj + c * hk1j;
    }
    h(k + 1, k) = Complex{};
  }
  // Right sweep: H <- H G_k^H restores the Hessenberg profile.
  for (std::size_t k = lo; k < hi; ++k) {
    const double c = cs[k - lo];
    const Complex s = ss[k - lo];
    for (std::size_t i = 0; i <= k + 1; ++i) {
      const Complex hik = h(i, k);
      const Complex hik1 = h(i, k + 1);
      h(i, k) = c * hik + std::conj(s) * hik1;
      h(i, k + 1) = -s * hik + c * hik1;
    }
    if (q != nullptr) {
      for (std::size_t i = 0; i < n; ++i) {
        const Complex qik = (*q)(i, k);
        const Complex qik1 = (*q)(i, k + 1);
        (*q)(i, k) = c * qik + std::conj(s) * qik1;
        (*q)(i, k + 1) = -s * qik + c * qik1;
      }
    }
  }
  for (std::size_t i = lo; i <= hi; ++i) h(i, i) += shift;
}

// Reduces the Hessenberg matrix to upper triangular (Schur) form in place.
void schur(CMat& h, CMat* q) {
  const std::size_t n = h.rows();
  if (n == 0) return;
  const double eps = 1e-15;
  std::size_t hi = n - 1;
  std::size_t iterations_on_block = 0;

  while (hi > 0) {
    // Deflation scan: shrink the active block from the bottom and find its
    // top (the first negligible subdiagonal above hi).
    const double off_hi = std::abs(h(hi, hi - 1));
    const double scale_hi = std::abs(h(hi - 1, hi - 1)) + std::abs(h(hi, hi));
    if (off_hi <= eps * (scale_hi > 0.0 ? scale_hi : 1.0)) {
      h(hi, hi - 1) = Complex{};
      --hi;
      iterations_on_block = 0;
      continue;
    }
    std::size_t lo = hi;
    while (lo > 0) {
      const double off = std::abs(h(lo, lo - 1));
      const double scale = std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo));
      if (off <= eps * (scale > 0.0 ? scale : 1.0)) {
        h(lo, lo - 1) = Complex{};
        break;
      }
      --lo;
    }

    Complex shift = wilkinson_shift(h, hi);
    if (iterations_on_block > 0 && iterations_on_block % 20 == 0) {
      // Exceptional shift to break limit cycles.
      shift = Complex(std::abs(h(hi, hi - 1)) + std::abs(h(hi, hi)), 0.0);
    }
    qr_sweep(h, q, lo, hi, shift);
    if (++iterations_on_block > 100 * (hi - lo + 1)) {
      throw NumericalError("complex QR iteration failed to converge");
    }
  }
}

// Right eigenvectors of the Schur form T via back substitution, rotated back
// through Q (columns of the result are eigenvectors of the original matrix).
CMat triangular_eigenvectors(const CMat& t, const CMat& q) {
  const std::size_t n = t.rows();
  CMat vectors(n, n);
  const double tnorm = frobenius_norm(t);
  const double small = 1e-300 + 1e-15 * tnorm;
  for (std::size_t k = 0; k < n; ++k) {
    const Complex lambda = t(k, k);
    std::vector<Complex> y(n, Complex{});
    y[k] = Complex(1.0, 0.0);
    for (std::size_t ii = k; ii-- > 0;) {
      Complex s{};
      for (std::size_t j = ii + 1; j <= k; ++j) s += t(ii, j) * y[j];
      Complex denom = t(ii, ii) - lambda;
      if (std::abs(denom) < small) {
        // Repeated/defective eigenvalue: perturb to keep the solve finite;
        // the result is one representative from the eigenspace.
        denom = Complex(small, small);
      }
      y[ii] = -s / denom;
    }
    std::vector<Complex> x = matvec(q, std::span<const Complex>(y.data(), n));
    const double nrm = norm2(std::span<const Complex>(x.data(), n));
    const double inv = nrm > 0.0 ? 1.0 / nrm : 0.0;
    for (std::size_t i = 0; i < n; ++i) vectors(i, k) = x[i] * inv;
  }
  return vectors;
}

}  // namespace

EigResult eig(const CMat& a, bool compute_vectors) {
  IMRDMD_REQUIRE_DIMS(a.rows() == a.cols(), "eig requires a square matrix");
  const std::size_t n = a.rows();
  EigResult result;
  if (n == 0) return result;
  if (n == 1) {
    result.values = {a(0, 0)};
    if (compute_vectors) {
      result.vectors = CMat(1, 1);
      result.vectors(0, 0) = Complex(1.0, 0.0);
    }
    return result;
  }

  CMat h = a;
  CMat q;
  hessenberg(h, q);
  schur(h, compute_vectors ? &q : nullptr);

  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = h(i, i);
  if (compute_vectors) result.vectors = triangular_eigenvectors(h, q);
  return result;
}

EigResult eig(const Mat& a, bool compute_vectors) {
  return eig(to_complex(a), compute_vectors);
}

std::vector<Complex> complex_solve(const CMat& a, std::vector<Complex> b) {
  IMRDMD_REQUIRE_DIMS(a.rows() == a.cols() && a.rows() == b.size(),
                      "complex_solve shape mismatch");
  const std::size_t n = a.rows();
  CMat lu = a;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    double best = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::abs(lu(i, k));
      if (mag > best) {
        best = mag;
        pivot = i;
      }
    }
    if (best == 0.0) throw NumericalError("complex_solve: singular matrix");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    const Complex inv = Complex(1.0, 0.0) / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const Complex factor = lu(i, k) * inv;
      lu(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
      b[i] -= factor * b[k];
    }
  }
  for (std::size_t ii = n; ii-- > 0;) {
    Complex s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu(ii, j) * b[j];
    b[ii] = s / lu(ii, ii);
  }
  return b;
}

std::vector<Complex> lstsq_complex(const CMat& a, std::span<const Complex> b) {
  IMRDMD_REQUIRE_DIMS(a.rows() == b.size(), "lstsq_complex shape mismatch");
  CMat gram = matmul_ah_b(a, a);
  CMat bm(b.size(), 1);
  for (std::size_t i = 0; i < b.size(); ++i) bm(i, 0) = b[i];
  const CMat rhs_m = matmul_ah_b(a, bm);
  std::vector<Complex> rhs(a.cols());
  for (std::size_t i = 0; i < a.cols(); ++i) rhs[i] = rhs_m(i, 0);
  try {
    return complex_solve(gram, rhs);
  } catch (const NumericalError&) {
    // Ridge fallback: a singular Gram matrix means collinear modes; a tiny
    // diagonal shift yields a stable (near-minimum-norm) solution instead of
    // failing the whole decomposition.
    double trace = 0.0;
    for (std::size_t i = 0; i < gram.rows(); ++i) trace += gram(i, i).real();
    const double ridge = 1e-12 * (trace > 0.0 ? trace : 1.0);
    for (std::size_t i = 0; i < gram.rows(); ++i) gram(i, i) += ridge;
    return complex_solve(gram, rhs);
  }
}

}  // namespace imrdmd::linalg
