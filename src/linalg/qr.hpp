// Householder QR factorizations (real).
//
// Thin QR underpins the incremental SVD (orthogonalizing the out-of-subspace
// residual of each new column block) and TSQR's per-rank local factor.
#pragma once

#include "linalg/matrix.hpp"

namespace imrdmd::linalg {

/// Thin QR of an m x n matrix with m >= n: A = Q R, Q m x n with
/// orthonormal columns, R n x n upper triangular with non-negative diagonal
/// (sign-normalized so factorizations are unique and comparable in tests).
struct QrResult {
  Mat q;
  Mat r;
};

/// Computes the thin QR of `a`. Requires rows >= cols.
QrResult thin_qr(const Mat& a);

/// Reusable scratch for thin_qr_into; buffers grow on demand and are never
/// shrunk, so repeated factorizations of same-or-smaller shapes allocate
/// nothing.
struct QrWorkspace {
  Mat work;
  std::vector<double> taus;
  std::vector<double> signs;
};

/// Workspace variant of thin_qr: identical algorithm and results, but every
/// temporary and both output factors reuse caller-provided storage.
void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws);

/// R factor only (same sign convention); cheaper when Q is not needed.
Mat qr_r_only(const Mat& a);

/// Solves the upper-triangular system R x = b by back substitution.
/// Throws NumericalError when a diagonal entry is ~0 relative to ||R||.
std::vector<double> solve_upper(const Mat& r, std::span<const double> b);

}  // namespace imrdmd::linalg
