#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/kernels.hpp"
#include "linalg/qr.hpp"

namespace imrdmd::linalg {

void SvdResult::truncate(std::size_t rank) {
  rank = std::min(rank, s.size());
  u = u.block(0, 0, u.rows(), rank);
  v = v.block(0, 0, v.rows(), rank);
  s.resize(rank);
}

namespace {

// One-sided Jacobi on a tall matrix A (m >= n): rotates column pairs until
// they are mutually orthogonal; the rotations accumulate into V, the final
// column norms are the singular values and the normalized columns form U.
// Every temporary lives in `ws` and the factors land in `result`, both
// reused across calls by the streaming hot paths.
void jacobi_svd_tall_into(const Mat& input, SvdResult& result,
                          SvdWorkspace& ws) {
  const std::size_t m = input.rows();
  const std::size_t n = input.cols();
  Mat& a = ws.a;
  a = input;
  // Pre-scale so squared column norms can neither overflow nor underflow
  // for inputs anywhere near the double range; undone on the spectrum.
  double max_abs = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(a.data()[i]));
  }
  const double prescale = max_abs > 0.0 ? 1.0 / max_abs : 1.0;
  if (prescale != 1.0) a *= prescale;
  Mat& v = ws.v;
  v.assign_zero(n, n);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  const double eps = 1e-15;
  // Columns whose squared norm has fallen to rounding-noise level (relative
  // to the matrix norm) are numerically zero; rotating against them chases
  // correlated cancellation residue forever, so they are skipped.
  double total_sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) total_sq += a.data()[i] * a.data()[i];
  const double noise_floor_sq = (eps * eps) * total_sq;
  const std::size_t max_sweeps = 60;
  bool converged = false;
  for (std::size_t sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Column moments. Column-pair access in a row-major matrix walks the
        // rows once for all three sums.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double* row = a.data() + i * n;
          app += row[p] * row[p];
          aqq += row[q] * row[q];
          apq += row[p] * row[q];
        }
        if (app <= noise_floor_sq || aqq <= noise_floor_sq) continue;
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        // Closed-form Jacobi rotation diagonalizing [[app, apq], [apq, aqq]].
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          double* row = a.data() + i * n;
          const double ap = row[p];
          const double aq = row[q];
          row[p] = c * ap - s * aq;
          row[q] = s * ap + c * aq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          double* row = v.data() + i * n;
          const double vp = row[p];
          const double vq = row[q];
          row[p] = c * vp - s * vq;
          row[q] = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    // Jacobi converges quadratically; 60 sweeps not sufficing signals NaNs
    // or infinities in the input rather than a hard problem.
    throw NumericalError("jacobi_svd did not converge (input finite?)");
  }

  std::vector<double>& norms = ws.norms;
  norms.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* row = a.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) norms[j] += row[j] * row[j];
  }
  for (auto& norm : norms) norm = std::sqrt(norm);
  std::vector<std::size_t>& order = ws.order;
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t i, std::size_t j) { return norms[i] > norms[j]; });

  result.s.resize(n);
  result.u.assign_zero(m, n);
  result.v.assign_zero(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = order[k];
    result.s[k] = norms[j] * (max_abs > 0.0 ? max_abs : 1.0);
    if (norms[j] > 0.0) {
      const double inv = 1.0 / norms[j];
      for (std::size_t i = 0; i < m; ++i) result.u(i, k) = a(i, j) * inv;
    }
    for (std::size_t i = 0; i < n; ++i) result.v(i, k) = v(i, j);
  }
}

}  // namespace

// Reference Jacobi kernel (the "reference" backend; see kernels.hpp).
void ref::svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) {
  if (x.rows() >= x.cols()) {
    jacobi_svd_tall_into(x, out, ws);
    return;
  }
  // Factor the transpose and swap the singular vector roles.
  x.transposed_into(ws.xt);
  jacobi_svd_tall_into(ws.xt, out, ws);
  std::swap(out.u, out.v);
}

void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) {
  IMRDMD_REQUIRE_DIMS(!x.empty(), "svd of an empty matrix");
  active_backend().svd_into(x, out, ws);
}

SvdResult svd(const Mat& x) {
  SvdResult result;
  SvdWorkspace ws;
  svd_into(x, result, ws);
  return result;
}

SvdResult randomized_svd(const Mat& x, std::size_t k, Rng& rng,
                         std::size_t oversample, std::size_t power_iters) {
  IMRDMD_REQUIRE_DIMS(!x.empty(), "randomized_svd of an empty matrix");
  IMRDMD_REQUIRE_ARG(k >= 1, "randomized_svd rank must be >= 1");
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  const std::size_t sketch = std::min(std::min(m, n), k + oversample);

  Mat omega(n, sketch);
  for (std::size_t i = 0; i < omega.size(); ++i) omega.data()[i] = rng.normal();

  Mat y = matmul(x, omega);            // m x sketch range sample
  Mat q = thin_qr(y).q;
  for (std::size_t it = 0; it < power_iters; ++it) {
    // Subspace iteration sharpens the spectrum: Q <- orth(X X^T Q).
    Mat z = matmul_at_b(x, q);         // n x sketch
    z = thin_qr(z).q;
    y = matmul(x, z);
    q = thin_qr(y).q;
  }

  Mat b = matmul_at_b(q, x);           // sketch x n projected problem
  SvdResult small = svd(b);
  SvdResult result;
  result.u = matmul(q, small.u);
  result.s = std::move(small.s);
  result.v = std::move(small.v);
  result.truncate(std::min(k, result.s.size()));
  return result;
}

Mat pinv(const Mat& x, double rcond) {
  SvdResult f = svd(x);
  const double cutoff = f.s.empty() ? 0.0 : rcond * f.s.front();
  // pinv = V diag(1/s) U^T, dropping negligible singular values.
  Mat vs = f.v;  // n x r, columns scaled by 1/s
  for (std::size_t j = 0; j < f.s.size(); ++j) {
    const double inv = f.s[j] > cutoff ? 1.0 / f.s[j] : 0.0;
    scale_col(vs, j, inv);
  }
  return matmul_a_bt(vs, f.u);
}

std::size_t svht_rank(const std::vector<double>& singular_values,
                      std::size_t rows, std::size_t cols) {
  if (singular_values.empty() || singular_values.front() <= 0.0) return 0;
  IMRDMD_REQUIRE_ARG(rows > 0 && cols > 0, "svht_rank needs a real shape");
  const double beta =
      static_cast<double>(std::min(rows, cols)) / static_cast<double>(std::max(rows, cols));
  // Gavish-Donoho rational approximation of omega(beta) for unknown noise.
  const double omega = 0.56 * beta * beta * beta - 0.95 * beta * beta +
                       1.82 * beta + 1.43;
  // Median of the (descending) spectrum.
  std::vector<double> sorted = singular_values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  const double median = n % 2 == 1
                            ? sorted[n / 2]
                            : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
  const double tau = omega * median;
  std::size_t rank = 0;
  for (double s : singular_values) {
    if (s > tau) ++rank;
  }
  return std::max<std::size_t>(rank, 1);
}

}  // namespace imrdmd::linalg
