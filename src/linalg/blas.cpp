#include "linalg/blas.hpp"

#include <cmath>

#include "linalg/backend.hpp"
#include "linalg/kernels.hpp"

namespace imrdmd::linalg {

namespace {

// Row-panel blocking: each OpenMP thread owns a stripe of C rows; the inner
// k-j loop order streams B rows sequentially, which is the cache-friendly
// order for row-major storage. Each output row is owned by exactly one
// thread, so results are bitwise deterministic for any thread count.
// `c` arrives pre-shaped and zero-filled (Backend kernel contract).
template <typename T>
void matmul_into_impl(const Matrix<T>& a, const Matrix<T>& b, Matrix<T>& c) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  const T* __restrict__ bp = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const T* __restrict__ arow = a.data() + i * k;
    T* __restrict__ crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const T aik = arow[kk];
      if (aik == T{}) continue;
      const T* __restrict__ brow = bp + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace

// --- Reference kernels (the "reference" backend; see kernels.hpp) --------

namespace ref {

void matmul_into(const Mat& a, const Mat& b, Mat& out) {
  matmul_into_impl(a, b, out);
}

void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  // C += a_row(kk)^T * b_row(kk): rank-1 accumulation keeps both inputs in
  // row-major streaming order. Parallelizing over kk would race on C, so we
  // parallelize over output rows with a transposed access into A instead
  // when the problem is big enough.
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aki = a(kk, i);
      if (aki == 0.0) continue;
      const double* __restrict__ brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  if (m == 0 || k == 0 || n == 0) return;
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = a.data() + i * k;
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const double* __restrict__ brow = b.data() + j * k;
      double sum = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      crow[j] = sum;
    }
  }
}

void matmul_sub(const Mat& a, const Mat& b, Mat& out) {
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  if (m == 0 || k == 0 || n == 0) return;
  const double* __restrict__ bp = b.data();
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    const double* __restrict__ arow = a.data() + i * k;
    double* __restrict__ crow = out.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;
      const double* __restrict__ brow = bp + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] -= aik * brow[j];
    }
  }
}

}  // namespace ref

// --- Dispatching entry points --------------------------------------------
// Validation and output shaping stay here, in exactly one place, so every
// backend sees the same contract (backend.hpp). The complex overloads are
// not part of the seam: no hot path funnels complex GEMMs.

Mat matmul(const Mat& a, const Mat& b) {
  Mat c;
  matmul_into(a, b, c);
  return c;
}
CMat matmul(const CMat& a, const CMat& b) {
  CMat c;
  matmul_into(a, b, c);
  return c;
}

void matmul_into(const Mat& a, const Mat& b, Mat& out) {
  IMRDMD_REQUIRE_DIMS(a.cols() == b.rows(), "matmul inner dimension mismatch");
  out.assign_zero(a.rows(), b.cols());
  active_backend().matmul_into(a, b, out);
}
void matmul_into(const CMat& a, const CMat& b, CMat& out) {
  IMRDMD_REQUIRE_DIMS(a.cols() == b.rows(), "matmul inner dimension mismatch");
  out.assign_zero(a.rows(), b.cols());
  matmul_into_impl(a, b, out);
}

void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) {
  IMRDMD_REQUIRE_DIMS(a.rows() == b.rows(), "matmul_at_b dimension mismatch");
  out.assign_zero(a.cols(), b.cols());
  active_backend().matmul_at_b_into(a, b, out);
}

void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) {
  IMRDMD_REQUIRE_DIMS(a.cols() == b.cols(), "matmul_a_bt dimension mismatch");
  out.assign_zero(a.rows(), b.rows());
  active_backend().matmul_a_bt_into(a, b, out);
}

void matmul_sub(const Mat& a, const Mat& b, Mat& out) {
  IMRDMD_REQUIRE_DIMS(a.cols() == b.rows(), "matmul inner dimension mismatch");
  IMRDMD_REQUIRE_DIMS(out.rows() == a.rows() && out.cols() == b.cols(),
                      "matmul_sub output shape mismatch");
  active_backend().matmul_sub(a, b, out);
}

void project_out(const Mat& u, Mat& residual, Mat& coeff_accum,
                 Mat& coeff_ws) {
  IMRDMD_REQUIRE_DIMS(u.rows() == residual.rows(),
                      "matmul_at_b dimension mismatch");
  IMRDMD_REQUIRE_DIMS(coeff_accum.rows() == u.cols() &&
                          coeff_accum.cols() == residual.cols(),
                      "operator+= shape mismatch");
  active_backend().project_out(u, residual, coeff_accum, coeff_ws);
}

Mat matmul_at_b(const Mat& a, const Mat& b) {
  Mat c;
  matmul_at_b_into(a, b, c);
  return c;
}

Mat matmul_a_bt(const Mat& a, const Mat& b) {
  Mat c;
  matmul_a_bt_into(a, b, c);
  return c;
}

CMat matmul_ah_b(const CMat& a, const CMat& b) {
  IMRDMD_REQUIRE_DIMS(a.rows() == b.rows(), "matmul_ah_b dimension mismatch");
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  CMat c(m, n);
  if (m == 0 || k == 0 || n == 0) return c;
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 14)
  for (std::size_t i = 0; i < m; ++i) {
    Complex* __restrict__ crow = c.data() + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const Complex aki = std::conj(a(kk, i));
      const Complex* __restrict__ brow = b.data() + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
  return c;
}

std::vector<double> matvec(const Mat& a, std::span<const double> x) {
  IMRDMD_REQUIRE_DIMS(a.cols() == x.size(), "matvec dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* __restrict__ arow = a.data() + i * a.cols();
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += arow[j] * x[j];
    y[i] = sum;
  }
  return y;
}

std::vector<Complex> matvec(const CMat& a, std::span<const Complex> x) {
  IMRDMD_REQUIRE_DIMS(a.cols() == x.size(), "matvec dimension mismatch");
  std::vector<Complex> y(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Complex* __restrict__ arow = a.data() + i * a.cols();
    Complex sum{};
    for (std::size_t j = 0; j < a.cols(); ++j) sum += arow[j] * x[j];
    y[i] = sum;
  }
  return y;
}

std::vector<double> matvec_t(const Mat& a, std::span<const double> x) {
  IMRDMD_REQUIRE_DIMS(a.rows() == x.size(), "matvec_t dimension mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* __restrict__ arow = a.data() + i * a.cols();
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += arow[j] * xi;
  }
  return y;
}

std::vector<Complex> matvec_h(const CMat& a, std::span<const Complex> x) {
  IMRDMD_REQUIRE_DIMS(a.rows() == x.size(), "matvec_h dimension mismatch");
  std::vector<Complex> y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const Complex* __restrict__ arow = a.data() + i * a.cols();
    const Complex xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += std::conj(arow[j]) * xi;
  }
  return y;
}

double frobenius_norm(const Mat& m) {
  double sum = 0.0;
  const double* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) sum += p[i] * p[i];
  return std::sqrt(sum);
}

double frobenius_norm(const CMat& m) {
  double sum = 0.0;
  const Complex* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) sum += std::norm(p[i]);
  return std::sqrt(sum);
}

double frobenius_diff(const Mat& a, const Mat& b) {
  IMRDMD_REQUIRE_DIMS(a.rows() == b.rows() && a.cols() == b.cols(),
                      "frobenius_diff shape mismatch");
  double sum = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = pa[i] - pb[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

double norm2(std::span<const double> x) {
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum);
}

double norm2(std::span<const Complex> x) {
  double sum = 0.0;
  for (const Complex& v : x) sum += std::norm(v);
  return std::sqrt(sum);
}

double dot(std::span<const double> a, std::span<const double> b) {
  IMRDMD_REQUIRE_DIMS(a.size() == b.size(), "dot length mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

Complex cdot(std::span<const Complex> a, std::span<const Complex> b) {
  IMRDMD_REQUIRE_DIMS(a.size() == b.size(), "cdot length mismatch");
  Complex sum{};
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::conj(a[i]) * b[i];
  return sum;
}

std::vector<double> col_norms(const Mat& m) {
  std::vector<double> norms(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.data() + i * m.cols();
    for (std::size_t j = 0; j < m.cols(); ++j) norms[j] += row[j] * row[j];
  }
  for (auto& n : norms) n = std::sqrt(n);
  return norms;
}

void scale_col(Mat& m, std::size_t j, double s) {
  IMRDMD_REQUIRE_DIMS(j < m.cols(), "scale_col index out of range");
  for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) *= s;
}

CMat to_complex(const Mat& m) {
  CMat out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = m.data()[i];
  return out;
}

Mat real_part(const CMat& m) {
  Mat out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = m.data()[i].real();
  return out;
}

Mat abs_part(const CMat& m) {
  Mat out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) out.data()[i] = std::abs(m.data()[i]);
  return out;
}

}  // namespace imrdmd::linalg
