// Dense row-major matrix, instantiated for double and std::complex<double>.
//
// Design notes:
//   * Row-major storage: sensor-major layouts (P rows of T samples) dominate
//     this codebase and row-major keeps a sensor's time series contiguous.
//   * No expression templates — the heavy kernels live in blas.hpp where they
//     can be blocked and OpenMP-parallelized explicitly; Matrix itself only
//     carries cheap element-wise operators.
//   * Shapes are validated with IMRDMD_REQUIRE_DIMS; an empty (0x0) matrix is
//     a valid value (the result of decomposing nothing).
#pragma once

#include <complex>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <new>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace imrdmd::linalg {

/// Alignment (bytes) of Matrix backing storage. 32 bytes covers AVX2
/// 256-bit vector loads on double data; wider ISAs with unaligned-load
/// parity (AVX-512 on current cores) lose nothing.
inline constexpr std::size_t kMatrixAlignment = 32;

/// Minimal stateless allocator handing out kMatrixAlignment-aligned
/// buffers, so SIMD backends may assume data() alignment whenever the
/// row stride cooperates. Always-equal semantics match std::allocator.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kMatrixAlignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kMatrixAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

template <typename T>
class Matrix {
 public:
  using value_type = T;

  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialized to zero.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, T fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer lists; all rows must agree in length.
  Matrix(std::initializer_list<std::initializer_list<T>> rows) {
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
      IMRDMD_REQUIRE_DIMS(row.size() == cols_, "ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  /// n x n identity.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  const T& operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked element access (used by parsers and tests).
  T& at(std::size_t i, std::size_t j) {
    IMRDMD_REQUIRE_DIMS(i < rows_ && j < cols_, "Matrix::at out of range");
    return (*this)(i, j);
  }
  const T& at(std::size_t i, std::size_t j) const {
    IMRDMD_REQUIRE_DIMS(i < rows_ && j < cols_, "Matrix::at out of range");
    return (*this)(i, j);
  }

  /// Contiguous view of row i.
  std::span<T> row_span(std::size_t i) {
    return std::span<T>(data_.data() + i * cols_, cols_);
  }
  std::span<const T> row_span(std::size_t i) const {
    return std::span<const T>(data_.data() + i * cols_, cols_);
  }

  /// Copy of column j.
  std::vector<T> col(std::size_t j) const {
    IMRDMD_REQUIRE_DIMS(j < cols_, "column index out of range");
    std::vector<T> out(rows_);
    for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
    return out;
  }

  /// Overwrites column j.
  void set_col(std::size_t j, std::span<const T> values) {
    IMRDMD_REQUIRE_DIMS(j < cols_ && values.size() == rows_,
                        "set_col shape mismatch");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
  }

  /// Copies the sub-block starting at (r0, c0) of shape nr x nc.
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const {
    IMRDMD_REQUIRE_DIMS(r0 + nr <= rows_ && c0 + nc <= cols_,
                        "block out of range");
    Matrix out(nr, nc);
    for (std::size_t i = 0; i < nr; ++i) {
      const T* src = data_.data() + (r0 + i) * cols_ + c0;
      T* dst = out.data() + i * nc;
      std::copy(src, src + nc, dst);
    }
    return out;
  }

  /// Overwrites the sub-block starting at (r0, c0) with `m`.
  void set_block(std::size_t r0, std::size_t c0, const Matrix& m) {
    IMRDMD_REQUIRE_DIMS(r0 + m.rows() <= rows_ && c0 + m.cols() <= cols_,
                        "set_block out of range");
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const T* src = m.data() + i * m.cols();
      T* dst = data_.data() + (r0 + i) * cols_ + c0;
      std::copy(src, src + m.cols(), dst);
    }
  }

  /// Plain transpose (no conjugation; see blas.hpp for adjoints).
  Matrix transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
    return out;
  }

  /// Resizes destructively; contents become zero. Backing storage is
  /// reused when capacity suffices, so workspace buffers cycled through
  /// assign_zero are allocation-free once warmed to their peak size.
  void assign_zero(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, T{});
  }

  /// Pre-allocates backing storage for `elements` values without changing
  /// the shape (the Matrix analogue of std::vector::reserve).
  void reserve(std::size_t elements) { data_.reserve(elements); }
  std::size_t capacity() const { return data_.capacity(); }

  /// Keeps only the leading `keep` columns, repacking rows in place —
  /// no allocation, unlike block().
  void shrink_cols(std::size_t keep) {
    IMRDMD_REQUIRE_DIMS(keep <= cols_, "shrink_cols beyond column count");
    if (keep == cols_) return;
    for (std::size_t i = 0; i < rows_; ++i) {
      T* dst = data_.data() + i * keep;
      const T* src = data_.data() + i * cols_;
      std::memmove(dst, src, keep * sizeof(T));
    }
    cols_ = keep;
    data_.resize(rows_ * keep);
  }

  /// Writes this matrix's transpose into `out` (reusing its storage).
  void transposed_into(Matrix& out) const {
    out.assign_zero(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
  }

  Matrix& operator+=(const Matrix& other) {
    IMRDMD_REQUIRE_DIMS(rows_ == other.rows_ && cols_ == other.cols_,
                        "operator+= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }

  Matrix& operator-=(const Matrix& other) {
    IMRDMD_REQUIRE_DIMS(rows_ == other.rows_ && cols_ == other.cols_,
                        "operator-= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }

  Matrix& operator*=(T scalar) {
    for (auto& v : data_) v *= scalar;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T scalar) { return a *= scalar; }
  friend Matrix operator*(T scalar, Matrix a) { return a *= scalar; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

using Mat = Matrix<double>;
using CMat = Matrix<std::complex<double>>;
using Complex = std::complex<double>;

/// Widens a real matrix to complex.
CMat to_complex(const Mat& m);

/// Real part of a complex matrix.
Mat real_part(const CMat& m);

/// Element-wise |.| of a complex matrix.
Mat abs_part(const CMat& m);

}  // namespace imrdmd::linalg
