// Dense kernels: products, norms, and simple transforms.
//
// GEMM is cache-blocked and OpenMP-parallel over row panels; everything in
// dmd/core funnels its heavy products through these entry points so there is
// exactly one place to tune. Adjoint variants avoid materializing transposes.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::linalg {

/// C = A * B.
Mat matmul(const Mat& a, const Mat& b);
CMat matmul(const CMat& a, const CMat& b);

/// C = A^T * B (real) — A is used transposed without copying.
Mat matmul_at_b(const Mat& a, const Mat& b);

/// C = A * B^T (real).
Mat matmul_a_bt(const Mat& a, const Mat& b);

// --- Workspace-accepting variants ----------------------------------------
// Write into `out`, reshaping it as needed; the backing storage is reused
// when capacity suffices, so a caller cycling the same `out` through these
// entry points performs zero heap allocations in steady state. The hot
// streaming paths (isvd::Isvd::update, the per-bin mrDMD fits) funnel their
// products through these instead of the value-returning forms above.

/// out = A * B.
void matmul_into(const Mat& a, const Mat& b, Mat& out);
void matmul_into(const CMat& a, const CMat& b, CMat& out);

/// out = A^T * B.
void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out);

/// out = A * B^T.
void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out);

/// out -= A * B; `out` must already have shape (A.rows x B.cols).
void matmul_sub(const Mat& a, const Mat& b, Mat& out);

/// One fused (re)orthogonalization pass of the incremental SVD:
///   coeff_ws    = U^T residual      (projection onto span(U))
///   residual   -= U * coeff_ws      (out-of-subspace remainder)
///   coeff_accum += coeff_ws         (accumulated projection coefficients)
/// Calling it twice is the classical "project + one reorthogonalization"
/// recipe; every temporary lives in the caller's workspace.
void project_out(const Mat& u, Mat& residual, Mat& coeff_accum,
                 Mat& coeff_ws);

/// C = A^H * B (complex adjoint).
CMat matmul_ah_b(const CMat& a, const CMat& b);

/// y = A * x.
std::vector<double> matvec(const Mat& a, std::span<const double> x);
std::vector<Complex> matvec(const CMat& a, std::span<const Complex> x);

/// y = A^T * x (real) / y = A^H * x (complex).
std::vector<double> matvec_t(const Mat& a, std::span<const double> x);
std::vector<Complex> matvec_h(const CMat& a, std::span<const Complex> x);

/// Frobenius norm.
double frobenius_norm(const Mat& m);
double frobenius_norm(const CMat& m);

/// ||a - b||_F without forming the difference.
double frobenius_diff(const Mat& a, const Mat& b);

/// Euclidean norm of a vector.
double norm2(std::span<const double> x);
double norm2(std::span<const Complex> x);

/// Dot products.
double dot(std::span<const double> a, std::span<const double> b);
/// conj(a) . b
Complex cdot(std::span<const Complex> a, std::span<const Complex> b);

/// Per-column Euclidean norms.
std::vector<double> col_norms(const Mat& m);

/// Scales column j of m in place by s.
void scale_col(Mat& m, std::size_t j, double s);

}  // namespace imrdmd::linalg
