#include "linalg/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels.hpp"

namespace imrdmd::linalg {

void Backend::project_out(const Mat& u, Mat& residual, Mat& coeff_accum,
                          Mat& coeff_ws) {
  coeff_ws.assign_zero(u.cols(), residual.cols());
  matmul_at_b_into(u, residual, coeff_ws);
  matmul_sub(u, coeff_ws, residual);
  coeff_accum += coeff_ws;
}

namespace {

// True when the running CPU executes AVX2 and FMA. Compiled without any
// -m flags (this TU carries none), so querying is safe on every x86 CPU;
// non-x86 targets simply report false.
bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

class ReferenceBackend final : public Backend {
 public:
  const char* name() const override { return "reference"; }
  std::string capabilities() const override {
    return "cache-blocked scalar kernels, OpenMP row panels; bitwise "
           "deterministic";
  }
  void matmul_into(const Mat& a, const Mat& b, Mat& out) override {
    ref::matmul_into(a, b, out);
  }
  void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) override {
    ref::matmul_at_b_into(a, b, out);
  }
  void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) override {
    ref::matmul_a_bt_into(a, b, out);
  }
  void matmul_sub(const Mat& a, const Mat& b, Mat& out) override {
    ref::matmul_sub(a, b, out);
  }
  void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) override {
    ref::thin_qr_into(a, out, ws);
  }
  void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) override {
    ref::svd_into(x, out, ws);
  }
};

// AVX2/FMA for the GEMM family; QR and SVD stay on the reference kernels
// (their runtime is dominated by the same small shapes where Householder/
// Jacobi arithmetic is latency-bound, not throughput-bound). Selecting
// this backend is always legal: without compiled kernels or CPU support
// every call falls back to ref::, and capabilities() says which path runs.
class Avx2Backend final : public Backend {
 public:
  Avx2Backend() : simd_(avx2::kernels_compiled() && cpu_has_avx2_fma()) {}

  const char* name() const override { return "avx2"; }
  std::string capabilities() const override {
    if (simd_) return "AVX2+FMA vector kernels (runtime-detected)";
    if (!avx2::kernels_compiled()) {
      return "scalar fallback (toolchain built without AVX2 codegen)";
    }
    return "scalar fallback (CPU lacks AVX2/FMA)";
  }
  void matmul_into(const Mat& a, const Mat& b, Mat& out) override {
    simd_ ? avx2::matmul_into(a, b, out) : ref::matmul_into(a, b, out);
  }
  void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) override {
    simd_ ? avx2::matmul_at_b_into(a, b, out)
          : ref::matmul_at_b_into(a, b, out);
  }
  void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) override {
    simd_ ? avx2::matmul_a_bt_into(a, b, out)
          : ref::matmul_a_bt_into(a, b, out);
  }
  void matmul_sub(const Mat& a, const Mat& b, Mat& out) override {
    simd_ ? avx2::matmul_sub(a, b, out) : ref::matmul_sub(a, b, out);
  }
  void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) override {
    ref::thin_qr_into(a, out, ws);
  }
  void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) override {
    ref::svd_into(x, out, ws);
  }

 private:
  const bool simd_;
};

struct Registry {
  std::mutex mutex;
  // Never shrinks; Backend pointers handed out stay valid for the process
  // lifetime so the atomic active pointer can skip refcounting.
  std::vector<std::unique_ptr<Backend>> backends;
  std::atomic<Backend*> active{nullptr};
  std::once_flag env_applied;

  Backend* find_locked(const std::string& name) {
    for (const auto& backend : backends) {
      if (name == backend->name()) return backend.get();
    }
    return nullptr;
  }
};

Registry& registry() {
  static Registry* instance = [] {
    auto* r = new Registry;
    r->backends.push_back(std::make_unique<ReferenceBackend>());
    r->backends.push_back(std::make_unique<Avx2Backend>());
    if (auto openblas = detail::make_openblas_backend()) {
      r->backends.push_back(std::move(openblas));
    }
    return r;
  }();
  return *instance;
}

[[noreturn]] void throw_unknown_backend(Registry& reg,
                                        const std::string& name,
                                        const char* origin) {
  std::ostringstream msg;
  msg << "unknown linalg backend \"" << name << "\" (" << origin
      << "); registered:";
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& backend : reg.backends) msg << ' ' << backend->name();
  throw InvalidArgument(msg.str());
}

}  // namespace

const char* default_backend_name() { return "reference"; }

std::vector<std::string> backend_names() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.backends.size());
  for (const auto& backend : reg.backends) names.push_back(backend->name());
  return names;
}

Backend* find_backend(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.find_locked(name);
}

void register_backend(std::unique_ptr<Backend> backend) {
  IMRDMD_REQUIRE_ARG(backend != nullptr, "register_backend: null backend");
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.find_locked(backend->name()) != nullptr) {
    throw InvalidArgument(std::string("linalg backend \"") + backend->name() +
                          "\" is already registered");
  }
  reg.backends.push_back(std::move(backend));
}

void set_active_backend(const std::string& name) {
  Registry& reg = registry();
  Backend* backend = find_backend(name);
  if (backend == nullptr) {
    throw_unknown_backend(reg, name, "set_active_backend");
  }
  // Explicit selection wins over the environment variable: mark the env
  // var consumed so a later lazy init cannot override this choice.
  std::call_once(reg.env_applied, [] {});
  reg.active.store(backend, std::memory_order_release);
}

Backend& active_backend() {
  Registry& reg = registry();
  std::call_once(reg.env_applied, [&reg] {
    const char* env = std::getenv("IMRDMD_LINALG_BACKEND");
    const std::string name =
        (env != nullptr && *env != '\0') ? env : default_backend_name();
    Backend* backend = find_backend(name);
    if (backend == nullptr) {
      throw_unknown_backend(reg, name, "IMRDMD_LINALG_BACKEND");
    }
    reg.active.store(backend, std::memory_order_release);
  });
  return *reg.active.load(std::memory_order_acquire);
}

}  // namespace imrdmd::linalg
