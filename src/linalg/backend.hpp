// Pluggable linalg backend seam.
//
// Every heavy kernel the streaming hot paths hit — the GEMM family,
// project_out, thin QR, and the Jacobi SVD — dispatches through exactly one
// seam: the active linalg::Backend. The workspace-accepting entry points in
// blas.hpp/qr.hpp/svd.hpp keep their signatures and validation, so isvd,
// dmd, and core/mrdmd call sites never see the indirection; they validate
// shapes, pre-shape the output, and forward to active_backend().
//
// Three backends ship in-tree:
//   * "reference" — today's cache-blocked OpenMP kernels, bitwise-identical
//     to the pre-seam output and always the default.
//   * "avx2"      — hand-vectorized AVX2/FMA kernels for the small-block
//     shapes the incremental SVD update hits. Runtime-detected: selecting
//     it on a CPU without AVX2+FMA silently runs the scalar reference
//     kernels (capabilities() reports which path is live).
//   * "openblas"  — the entry points mapped onto cblas/LAPACKE; only
//     registered when the library was configured with IMRDMD_WITH_OPENBLAS.
//
// Selection precedence: explicit set_active_backend() — e.g. from
// core::AssessorConfig::linalg() — beats the IMRDMD_LINALG_BACKEND
// environment variable, which beats the "reference" default. A future
// CUDA/HIP backend slots in through register_backend() plus the same
// selection surface; nothing above this layer changes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::linalg {

/// One implementation of the heavy linalg kernels. Shape validation and
/// output pre-shaping happen in the dispatching entry points (blas.cpp,
/// qr.cpp, svd.cpp); a backend may assume conforming inputs, and — for the
/// GEMM family — an `out` already shaped and zero-filled (matmul_sub
/// accumulates into the caller's existing values instead).
class Backend {
 public:
  virtual ~Backend() = default;

  /// Stable registry name ("reference", "avx2", "openblas", ...).
  virtual const char* name() const = 0;

  /// One-line human-readable capability report, e.g. which instruction
  /// set is live after runtime detection or which vendor library backs
  /// the kernels.
  virtual std::string capabilities() const = 0;

  /// out = A * B (out pre-shaped to A.rows x B.cols, zero-filled).
  virtual void matmul_into(const Mat& a, const Mat& b, Mat& out) = 0;

  /// out = A^T * B (out pre-shaped to A.cols x B.cols, zero-filled).
  virtual void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) = 0;

  /// out = A * B^T (out pre-shaped to A.rows x B.rows, zero-filled).
  virtual void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) = 0;

  /// out -= A * B (out already holds the minuend; not zero-filled).
  virtual void matmul_sub(const Mat& a, const Mat& b, Mat& out) = 0;

  /// Fused projection pass of the incremental SVD (see blas.hpp). The
  /// default composes this backend's own GEMM kernels; backends may
  /// override to fuse further.
  virtual void project_out(const Mat& u, Mat& residual, Mat& coeff_accum,
                           Mat& coeff_ws);

  /// Thin QR with the sign-normalized R convention of qr.hpp
  /// (diag(R) >= 0). Input satisfies rows >= cols.
  virtual void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) = 0;

  /// Thin SVD with the contract of svd.hpp (s descending, U m x r0,
  /// V n x r0, r0 = min(m, n)). Input is non-empty but may be wide.
  virtual void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) = 0;
};

/// Registered backend names in registration order ("reference" first).
std::vector<std::string> backend_names();

/// Looks a backend up by name; nullptr when unknown. The pointer stays
/// valid for the process lifetime.
Backend* find_backend(const std::string& name);

/// Registers an out-of-tree backend (the CUDA/HIP extension point). The
/// registry takes ownership; re-registering an existing name throws
/// InvalidArgument.
void register_backend(std::unique_ptr<Backend> backend);

/// The backend every linalg entry point dispatches to. First use applies
/// the IMRDMD_LINALG_BACKEND environment variable (unknown names throw
/// InvalidArgument, listing what is registered) and falls back to
/// "reference".
Backend& active_backend();

/// Selects the active backend by name; throws InvalidArgument for names
/// not in the registry. Explicit selection overrides the environment
/// variable. Not safe to call concurrently with in-flight kernels.
void set_active_backend(const std::string& name);

/// The compiled-in default selection ("reference").
const char* default_backend_name();

namespace detail {

/// Factory for the optional cblas/LAPACKE backend (backend_openblas.cpp);
/// returns nullptr when the library was configured without
/// IMRDMD_WITH_OPENBLAS, in which case the name is simply not registered.
std::unique_ptr<Backend> make_openblas_backend();

}  // namespace detail

}  // namespace imrdmd::linalg
