// Optional cblas/LAPACKE backend ("openblas").
//
// Compiled into the registry only when CMake was configured with
// -DIMRDMD_WITH_OPENBLAS=ON; otherwise this TU contributes just the
// nullptr factory so backend.cpp needs no conditional compilation. The
// mapping targets the stable netlib cblas/LAPACKE C interfaces, so any
// conforming provider links — OpenBLAS is simply the one CI installs.
//
// Contract notes (vs the reference kernels, see backend.hpp):
//   * GEMM family: identical up to floating-point summation order
//     (banded equivalence).
//   * thin_qr_into: dgeqrf/dorgqr plus the repo's diag(R) >= 0 sign
//     normalization, so factors are comparable with reference QR.
//   * svd_into: dgesdd. Singular vectors may differ from Jacobi by column
//     sign (and rotation within degenerate clusters), and exactly-zero
//     singular values get an arbitrary orthonormal basis column rather
//     than the reference's zero column — both inside the banded contract,
//     which checks s, reconstruction, and orthonormality.

#include "linalg/backend.hpp"

#ifdef IMRDMD_WITH_OPENBLAS

#include <cblas.h>
#include <lapacke.h>

#include <algorithm>
#include <cstddef>

#include "common/error.hpp"

namespace imrdmd::linalg {

namespace {

class OpenBlasBackend final : public Backend {
 public:
  const char* name() const override { return "openblas"; }
  std::string capabilities() const override {
    return "cblas dgemm + LAPACKE dgeqrf/dorgqr/dgesdd (vendor-threaded)";
  }

  void matmul_into(const Mat& a, const Mat& b, Mat& out) override {
    gemm(CblasNoTrans, CblasNoTrans, a.rows(), b.cols(), a.cols(), 1.0, a, b,
         0.0, out);
  }
  void matmul_at_b_into(const Mat& a, const Mat& b, Mat& out) override {
    gemm(CblasTrans, CblasNoTrans, a.cols(), b.cols(), a.rows(), 1.0, a, b,
         0.0, out);
  }
  void matmul_a_bt_into(const Mat& a, const Mat& b, Mat& out) override {
    gemm(CblasNoTrans, CblasTrans, a.rows(), b.rows(), a.cols(), 1.0, a, b,
         0.0, out);
  }
  void matmul_sub(const Mat& a, const Mat& b, Mat& out) override {
    gemm(CblasNoTrans, CblasNoTrans, a.rows(), b.cols(), a.cols(), -1.0, a, b,
         1.0, out);
  }

  void thin_qr_into(const Mat& a, QrResult& out, QrWorkspace& ws) override {
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    ws.work = a;
    ws.taus.assign(n, 0.0);
    if (n > 0) {
      const lapack_int info = LAPACKE_dgeqrf(
          LAPACK_ROW_MAJOR, static_cast<lapack_int>(m),
          static_cast<lapack_int>(n), ws.work.data(),
          static_cast<lapack_int>(n), ws.taus.data());
      if (info != 0) throw NumericalError("LAPACKE_dgeqrf failed");
    }
    // Extract R with the repo's sign normalization: diag(R) >= 0, the
    // matching Q columns flipped below, so A = (Q S)(S R) still holds.
    out.r.assign_zero(n, n);
    ws.signs.assign(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      if (ws.work(i, i) < 0.0) ws.signs[i] = -1.0;
      for (std::size_t j = i; j < n; ++j) {
        out.r(i, j) = ws.signs[i] * ws.work(i, j);
      }
    }
    if (n > 0) {
      const lapack_int info = LAPACKE_dorgqr(
          LAPACK_ROW_MAJOR, static_cast<lapack_int>(m),
          static_cast<lapack_int>(n), static_cast<lapack_int>(n),
          ws.work.data(), static_cast<lapack_int>(n), ws.taus.data());
      if (info != 0) throw NumericalError("LAPACKE_dorgqr failed");
    }
    out.q.assign_zero(m, n);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out.q(i, j) = ws.signs[j] * ws.work(i, j);
      }
    }
  }

  void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws) override {
    const std::size_t m = x.rows();
    const std::size_t n = x.cols();
    const std::size_t r0 = std::min(m, n);
    ws.a = x;  // dgesdd destroys its input
    out.s.resize(r0);
    out.u.assign_zero(m, r0);
    ws.xt.assign_zero(r0, n);  // receives V^T
    const lapack_int info = LAPACKE_dgesdd(
        LAPACK_ROW_MAJOR, 'S', static_cast<lapack_int>(m),
        static_cast<lapack_int>(n), ws.a.data(), static_cast<lapack_int>(n),
        out.s.data(), out.u.data(), static_cast<lapack_int>(r0),
        ws.xt.data(), static_cast<lapack_int>(n));
    if (info != 0) throw NumericalError("LAPACKE_dgesdd did not converge");
    out.v.assign_zero(n, r0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < r0; ++j) out.v(i, j) = ws.xt(j, i);
    }
  }

 private:
  static void gemm(CBLAS_TRANSPOSE trans_a, CBLAS_TRANSPOSE trans_b,
                   std::size_t m, std::size_t n, std::size_t k, double alpha,
                   const Mat& a, const Mat& b, double beta, Mat& out) {
    if (m == 0 || n == 0) return;
    if (k == 0) return;  // out is pre-zeroed / already holds the minuend
    cblas_dgemm(CblasRowMajor, trans_a, trans_b, static_cast<int>(m),
                static_cast<int>(n), static_cast<int>(k), alpha,
                a.data(), static_cast<int>(a.cols()), b.data(),
                static_cast<int>(b.cols()), beta, out.data(),
                static_cast<int>(n));
  }
};

}  // namespace

namespace detail {

std::unique_ptr<Backend> make_openblas_backend() {
  return std::make_unique<OpenBlasBackend>();
}

}  // namespace detail

}  // namespace imrdmd::linalg

#else  // !IMRDMD_WITH_OPENBLAS

namespace imrdmd::linalg::detail {

std::unique_ptr<Backend> make_openblas_backend() { return nullptr; }

}  // namespace imrdmd::linalg::detail

#endif  // IMRDMD_WITH_OPENBLAS
