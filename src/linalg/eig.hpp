// Dense complex eigensolver for small matrices.
//
// DMD reduces the dynamics operator to an r x r projected matrix (r = SVHT
// rank, typically < 30), so a robust small-matrix solver is all the pipeline
// needs: Householder Hessenberg reduction, explicit Wilkinson-shifted QR
// iteration to Schur form, then triangular back-substitution for the
// eigenvectors.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::linalg {

struct EigResult {
  /// Eigenvalues (unordered beyond the deflation sequence).
  std::vector<Complex> values;
  /// Unit-norm right eigenvectors as columns; empty when not requested.
  CMat vectors;
};

/// Eigendecomposition of a square complex matrix.
/// Throws NumericalError if the QR iteration fails to deflate (non-finite
/// input is the only practical trigger).
EigResult eig(const CMat& a, bool compute_vectors = true);

/// Convenience overload widening a real matrix.
EigResult eig(const Mat& a, bool compute_vectors = true);

/// Solves the square complex system A x = b by LU with partial pivoting.
std::vector<Complex> complex_solve(const CMat& a,
                                   std::vector<Complex> b);

/// Complex least squares: minimizes ||A x - b||_2 for tall A via the normal
/// equations (A is r-column slim everywhere this is used; conditioning is
/// guarded by a scaled ridge retry on singular systems).
std::vector<Complex> lstsq_complex(const CMat& a,
                                   std::span<const Complex> b);

}  // namespace imrdmd::linalg
