// Singular value decompositions.
//
// Two algorithms cover the repository's needs:
//   * svd(): one-sided Jacobi — high accuracy, O(max_dim * min_dim^2) per
//     sweep. Every mrDMD bin is tall-and-skinny after the 4x-Nyquist
//     subsampling (a handful of columns), so Jacobi is both simple and fast
//     where it matters.
//   * randomized_svd(): Halko-Martinsson-Tropp sketching for low-rank
//     approximations of large matrices (used by PCA with n_components=2,
//     mirroring scikit-learn's svd_solver='auto'->'randomized' choice).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace imrdmd::linalg {

/// Thin SVD: x = U diag(s) V^T with s descending, U: m x r0, V: n x r0 where
/// r0 = min(m, n). Columns of U/V matching exactly-zero singular values are
/// zero vectors (callers truncate via svht_rank or a tolerance).
struct SvdResult {
  Mat u;
  std::vector<double> s;
  Mat v;

  /// Keeps only the leading `rank` triplets.
  void truncate(std::size_t rank);
};

/// Full-accuracy thin SVD by one-sided Jacobi (on the transposed input when
/// cols > rows, so the iteration always runs on the skinny side).
SvdResult svd(const Mat& x);

/// Reusable scratch for svd_into; buffers grow on demand and are never
/// shrunk, so repeated decompositions of same-or-smaller shapes (the
/// steady-state core matrices of the incremental SVD, the per-bin mrDMD
/// factorizations) allocate nothing.
struct SvdWorkspace {
  Mat a;
  Mat v;
  Mat xt;
  std::vector<double> norms;
  std::vector<std::size_t> order;
};

/// Workspace variant of svd(): identical algorithm and results, but every
/// temporary and all three output factors reuse caller-provided storage.
void svd_into(const Mat& x, SvdResult& out, SvdWorkspace& ws);

/// Rank-k approximate SVD by randomized range finding.
/// `oversample` extra sketch columns and `power_iters` subspace iterations
/// trade time for accuracy (defaults follow Halko et al.'s recommendations).
SvdResult randomized_svd(const Mat& x, std::size_t k, Rng& rng,
                         std::size_t oversample = 8,
                         std::size_t power_iters = 2);

/// Moore-Penrose pseudoinverse via svd(); singular values below
/// rcond * s_max are treated as zero.
Mat pinv(const Mat& x, double rcond = 1e-13);

/// Optimal singular value hard threshold of Gavish & Donoho (2014) for
/// unknown noise level: rank = #{ s_i > omega(beta) * median(s) } where
/// beta is the matrix aspect ratio. Returns at least 1 when s[0] > 0 so a
/// DMD step on a noisy-but-nonzero bin always retains one mode; returns 0
/// for an all-zero spectrum.
std::size_t svht_rank(const std::vector<double>& singular_values,
                      std::size_t rows, std::size_t cols);

}  // namespace imrdmd::linalg
