// Thread-SPMD "distributed" runtime: a World of N ranks, each a thread
// running the same function, talking through a Communicator of MPI-shaped
// collectives (barrier, broadcast, allreduce, allgather, gather).
//
// The point is to exercise the *communication pattern* of the spatially
// parallel algorithms (TSQR, DistributedIsvd, distributed_dmd) with
// deterministic, testable semantics on one node. Every collective combines
// contributions in rank order, so results are bitwise identical across
// ranks and across runs — a drop-in MPI backend only has to preserve that
// ordering contract.
//
// All collectives are, as in MPI, *collective*: every rank of the world
// must call them in the same order with agreeing root arguments. Unlike
// MPI, a rank that throws out of the ranked function *poisons* the world's
// collectives: peers blocked inside (or later entering) a collective unwind
// with CollectiveAborted instead of deadlocking the join, and World::run
// rethrows the lowest-rank *original* exception (poison-unwind exceptions
// are surfaced only when no rank recorded a primary failure).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace imrdmd::dist {

class World;

/// Thrown by a collective when a peer rank has already failed: the world's
/// collectives are poisoned so every surviving rank unwinds instead of
/// blocking forever on a barrier the failed rank will never enter. SPMD
/// code may catch it to release local resources, but must not attempt
/// further collectives on the same World::run invocation.
class CollectiveAborted : public Error {
 public:
  explicit CollectiveAborted(const std::string& what) : Error(what) {}
};

/// One rank's endpoint into the world's collectives. Created by World::run;
/// valid only for the duration of the ranked function.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocks until every rank has entered the barrier.
  void barrier();

  /// Replicates `buffer` from `root` to every rank (in place).
  void broadcast(std::span<double> buffer, int root);

  /// Element-wise sum over ranks, result replicated in place. Contributions
  /// are added in rank order (deterministic floating point).
  void allreduce_sum(std::span<double> buffer);

  /// Scalar min/max over ranks.
  double allreduce_min(double value);
  double allreduce_max(double value);

  /// Concatenates every rank's contribution in rank order, replicated on
  /// all ranks. Contributions may differ in length — but the flat result
  /// erases the per-rank boundaries, so a caller that needs to know where
  /// rank r's bytes start (or wants to *validate* per-rank lengths rather
  /// than assume them uniform) must use allgatherv instead.
  std::vector<double> allgather(std::span<const double> local);

  /// Ragged allgather: every rank's contribution, in rank order, with the
  /// per-rank boundaries preserved (result[r] is rank r's contribution,
  /// possibly empty). Replicated on all ranks. This is the primitive for
  /// collectives whose per-rank payload sizes legitimately differ (e.g. a
  /// fleet rank owning an uneven share of sensor groups) and for callers
  /// that must *check* an agreed-uniform-length contract instead of
  /// silently misparsing a flat concatenation.
  std::vector<std::vector<double>> allgatherv(std::span<const double> local);

  /// Like allgather, but only `root` receives; other ranks get {}.
  std::vector<double> gather(std::span<const double> local, int root);

  /// Ragged gather: only `root` receives the per-rank contributions (with
  /// boundaries preserved); other ranks get {}.
  std::vector<std::vector<double>> gatherv(std::span<const double> local,
                                           int root);

  /// Ragged scatter: `root` supplies `send` as the rank-order concatenation
  /// of per-rank slices whose lengths are `counts` (counts.size() == world
  /// size, sum(counts) == send.size() at root; `send` is ignored
  /// elsewhere). Every rank passes the same `counts` — the agreement is
  /// validated collectively so a desynced rank makes all ranks throw
  /// together — and receives its own slice. This is the O(P·T) ingestion
  /// primitive: each rank's wire cost is its slice, not the whole buffer.
  std::vector<double> scatterv(std::span<const double> send,
                               const std::vector<std::size_t>& counts,
                               int root);

  /// Element-wise sum over ranks delivered to `root` only (other ranks'
  /// buffers are left untouched). Contributions are added in rank order,
  /// so the root's result is bitwise identical to allreduce_sum's.
  void reduce_sum(std::span<double> buffer, int root);

  /// Bytes this rank has *received* from remote ranks across all
  /// collectives since construction (or the last reset). Models the wire
  /// cost an MPI backend would pay: broadcast charges non-roots the full
  /// buffer, scatterv charges non-roots only their slice, gathers charge
  /// the root the sum of remote contributions, allgathers charge everyone
  /// the sum of remote contributions. Barriers are free.
  std::uint64_t wire_bytes() const { return wire_bytes_; }
  void reset_wire_bytes() { wire_bytes_ = 0; }

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  /// Deposits this rank's contribution, waits for all ranks, then applies
  /// `combine` (reading every slot) before the exit barrier releases the
  /// slots for the next collective.
  void exchange(std::span<const double> local,
                const std::function<void(const std::vector<std::vector<double>>&)>& combine);

  World* world_;
  int rank_;
  std::uint64_t wire_bytes_ = 0;
};

/// Owns the shared collective state for `ranks` SPMD participants.
class World {
 public:
  /// Throws InvalidArgument when ranks == 0.
  explicit World(int ranks);

  int size() const { return ranks_; }

  /// Spawns one thread per rank, runs `fn(comm)` on each, joins all, and
  /// rethrows if any rank threw: the first rank failure poisons the world's
  /// collectives (peers unwind with CollectiveAborted instead of blocking
  /// forever), and the lowest-rank non-CollectiveAborted exception is
  /// rethrown — the original failure, not a secondary unwind.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  void barrier_wait();
  /// Marks the world failed and wakes every rank blocked in a barrier.
  void poison();

  int ranks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  /// Set by the first rank to fail; collectives then throw on entry/wake.
  bool failed_ = false;
  /// Per-rank deposit slots, stable between the two barriers of a
  /// collective (write -> barrier -> read -> barrier).
  std::vector<std::vector<double>> slots_;
};

}  // namespace imrdmd::dist
