// Thread-SPMD "distributed" runtime: a World of N ranks, each a thread
// running the same function, talking through a Communicator of MPI-shaped
// collectives (barrier, broadcast, allreduce, allgather, gather).
//
// The point is to exercise the *communication pattern* of the spatially
// parallel algorithms (TSQR, DistributedIsvd, distributed_dmd) with
// deterministic, testable semantics on one node. Every collective combines
// contributions in rank order, so results are bitwise identical across
// ranks and across runs — a drop-in MPI backend only has to preserve that
// ordering contract.
//
// All collectives are, as in MPI, *collective*: every rank of the world
// must call them in the same order with agreeing root arguments. A rank
// that exits (or throws) between two collectives while its peers are
// blocked inside one is a program bug, mirrored from the MPI semantics;
// World::run rethrows the first (lowest-rank) exception after the join.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

namespace imrdmd::dist {

class World;

/// One rank's endpoint into the world's collectives. Created by World::run;
/// valid only for the duration of the ranked function.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocks until every rank has entered the barrier.
  void barrier();

  /// Replicates `buffer` from `root` to every rank (in place).
  void broadcast(std::span<double> buffer, int root);

  /// Element-wise sum over ranks, result replicated in place. Contributions
  /// are added in rank order (deterministic floating point).
  void allreduce_sum(std::span<double> buffer);

  /// Scalar min/max over ranks.
  double allreduce_min(double value);
  double allreduce_max(double value);

  /// Concatenates every rank's contribution in rank order, replicated on
  /// all ranks. Contributions may differ in length.
  std::vector<double> allgather(std::span<const double> local);

  /// Like allgather, but only `root` receives; other ranks get {}.
  std::vector<double> gather(std::span<const double> local, int root);

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(&world), rank_(rank) {}

  /// Deposits this rank's contribution, waits for all ranks, then applies
  /// `combine` (reading every slot) before the exit barrier releases the
  /// slots for the next collective.
  void exchange(std::span<const double> local,
                const std::function<void(const std::vector<std::vector<double>>&)>& combine);

  World* world_;
  int rank_;
};

/// Owns the shared collective state for `ranks` SPMD participants.
class World {
 public:
  /// Throws InvalidArgument when ranks == 0.
  explicit World(int ranks);

  int size() const { return ranks_; }

  /// Spawns one thread per rank, runs `fn(comm)` on each, joins all, and
  /// rethrows the lowest-rank exception if any rank threw.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  friend class Communicator;

  void barrier_wait();

  int ranks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  /// Per-rank deposit slots, stable between the two barriers of a
  /// collective (write -> barrier -> read -> barrier).
  std::vector<std::vector<double>> slots_;
};

}  // namespace imrdmd::dist
