#include "dist/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace imrdmd::dist {

int Communicator::size() const { return world_->ranks_; }

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::size_t gen = generation_;
  if (++arrived_ == static_cast<std::size_t>(ranks_)) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return generation_ != gen; });
  }
}

void Communicator::barrier() { world_->barrier_wait(); }

void Communicator::exchange(
    std::span<const double> local,
    const std::function<void(const std::vector<std::vector<double>>&)>&
        combine) {
  auto& slots = world_->slots_;
  slots[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
  world_->barrier_wait();  // every deposit visible
  combine(slots);
  world_->barrier_wait();  // every read done; slots reusable
}

void Communicator::broadcast(std::span<double> buffer, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "broadcast root out of range");
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    // Validate against *every* slot, not just the root's: on a size
    // mismatch all ranks then throw together and none is left blocking in
    // the exit barrier on a rank that bailed out.
    for (const auto& slot : slots) {
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "broadcast buffer sizes disagree across ranks");
    }
    const auto& src = slots[static_cast<std::size_t>(root)];
    std::copy(src.begin(), src.end(), buffer.begin());
  });
}

void Communicator::allreduce_sum(std::span<double> buffer) {
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    std::fill(buffer.begin(), buffer.end(), 0.0);
    for (const auto& slot : slots) {  // rank order: deterministic FP sums
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "allreduce_sum buffer sizes disagree across ranks");
      for (std::size_t i = 0; i < buffer.size(); ++i) buffer[i] += slot[i];
    }
  });
}

double Communicator::allreduce_min(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::min(value, slot.at(0));
             }
           });
  return value;
}

double Communicator::allreduce_max(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::max(value, slot.at(0));
             }
           });
  return value;
}

std::vector<double> Communicator::allgather(std::span<const double> local) {
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  return all;
}

std::vector<double> Communicator::gather(std::span<const double> local,
                                         int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "gather root out of range");
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    if (rank_ != root) return;
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  return all;
}

World::World(int ranks) : ranks_(ranks) {
  IMRDMD_REQUIRE_ARG(ranks >= 1, "World needs at least one rank");
  slots_.resize(static_cast<std::size_t>(ranks));
}

void World::run(const std::function<void(Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  threads.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace imrdmd::dist
