#include "dist/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace imrdmd::dist {

int Communicator::size() const { return world_->ranks_; }

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (failed_) {
    throw CollectiveAborted("collective aborted: a peer rank failed");
  }
  const std::size_t gen = generation_;
  if (++arrived_ == static_cast<std::size_t>(ranks_)) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen || failed_; });
  if (generation_ == gen) {
    // Woken by poison before the barrier filled: withdraw this rank's
    // arrival so the count stays coherent, then unwind. (When the barrier
    // completed concurrently with the poison, fall through — the *next*
    // collective throws on entry instead.)
    --arrived_;
    throw CollectiveAborted("collective aborted: a peer rank failed");
  }
}

void World::poison() {
  std::lock_guard<std::mutex> lock(mutex_);
  failed_ = true;
  cv_.notify_all();
}

void Communicator::barrier() { world_->barrier_wait(); }

void Communicator::exchange(
    std::span<const double> local,
    const std::function<void(const std::vector<std::vector<double>>&)>&
        combine) {
  auto& slots = world_->slots_;
  slots[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
  world_->barrier_wait();  // every deposit visible
  combine(slots);
  world_->barrier_wait();  // every read done; slots reusable
}

void Communicator::broadcast(std::span<double> buffer, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "broadcast root out of range");
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    // Validate against *every* slot, not just the root's: on a size
    // mismatch all ranks then throw together and none is left blocking in
    // the exit barrier on a rank that bailed out.
    for (const auto& slot : slots) {
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "broadcast buffer sizes disagree across ranks");
    }
    const auto& src = slots[static_cast<std::size_t>(root)];
    std::copy(src.begin(), src.end(), buffer.begin());
  });
}

void Communicator::allreduce_sum(std::span<double> buffer) {
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    std::fill(buffer.begin(), buffer.end(), 0.0);
    for (const auto& slot : slots) {  // rank order: deterministic FP sums
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "allreduce_sum buffer sizes disagree across ranks");
      for (std::size_t i = 0; i < buffer.size(); ++i) buffer[i] += slot[i];
    }
  });
}

double Communicator::allreduce_min(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::min(value, slot.at(0));
             }
           });
  return value;
}

double Communicator::allreduce_max(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::max(value, slot.at(0));
             }
           });
  return value;
}

std::vector<double> Communicator::allgather(std::span<const double> local) {
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  return all;
}

std::vector<std::vector<double>> Communicator::allgatherv(
    std::span<const double> local) {
  std::vector<std::vector<double>> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    all = slots;  // copy inside the barriers: slots are reused afterwards
  });
  return all;
}

std::vector<std::vector<double>> Communicator::gatherv(
    std::span<const double> local, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "gatherv root out of range");
  std::vector<std::vector<double>> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    if (rank_ == root) all = slots;
  });
  return all;
}

std::vector<double> Communicator::gather(std::span<const double> local,
                                         int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "gather root out of range");
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    if (rank_ != root) return;
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  return all;
}

World::World(int ranks) : ranks_(ranks) {
  IMRDMD_REQUIRE_ARG(ranks >= 1, "World needs at least one rank");
  slots_.resize(static_cast<std::size_t>(ranks));
}

void World::run(const std::function<void(Communicator&)>& fn) {
  {
    // A World is reusable across run() calls; clear any poison left by a
    // previous failed invocation.
    std::lock_guard<std::mutex> lock(mutex_);
    failed_ = false;
    arrived_ = 0;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  threads.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // First failure poisons every collective so peers blocked between
        // this rank's past and future collective calls unwind instead of
        // waiting forever on a barrier this rank will never enter.
        poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the lowest-rank *primary* failure; the CollectiveAborted
  // unwinds it triggered on the peers are secondary noise.
  std::exception_ptr chosen;
  for (const auto& error : errors) {
    if (!error) continue;
    bool aborted = false;
    try {
      std::rethrow_exception(error);
    } catch (const CollectiveAborted&) {
      aborted = true;
    } catch (...) {
    }
    if (!aborted) {
      chosen = error;
      break;
    }
    if (!chosen) chosen = error;
  }
  if (chosen) std::rethrow_exception(chosen);
}

}  // namespace imrdmd::dist
