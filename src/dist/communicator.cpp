#include "dist/communicator.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace imrdmd::dist {

int Communicator::size() const { return world_->ranks_; }

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (failed_) {
    throw CollectiveAborted("collective aborted: a peer rank failed");
  }
  const std::size_t gen = generation_;
  if (++arrived_ == static_cast<std::size_t>(ranks_)) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [&] { return generation_ != gen || failed_; });
  if (generation_ == gen) {
    // Woken by poison before the barrier filled: withdraw this rank's
    // arrival so the count stays coherent, then unwind. (When the barrier
    // completed concurrently with the poison, fall through — the *next*
    // collective throws on entry instead.)
    --arrived_;
    throw CollectiveAborted("collective aborted: a peer rank failed");
  }
}

void World::poison() {
  std::lock_guard<std::mutex> lock(mutex_);
  failed_ = true;
  cv_.notify_all();
}

void Communicator::barrier() { world_->barrier_wait(); }

void Communicator::exchange(
    std::span<const double> local,
    const std::function<void(const std::vector<std::vector<double>>&)>&
        combine) {
  auto& slots = world_->slots_;
  slots[static_cast<std::size_t>(rank_)].assign(local.begin(), local.end());
  world_->barrier_wait();  // every deposit visible
  combine(slots);
  world_->barrier_wait();  // every read done; slots reusable
}

void Communicator::broadcast(std::span<double> buffer, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "broadcast root out of range");
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    // Validate against *every* slot, not just the root's: on a size
    // mismatch all ranks then throw together and none is left blocking in
    // the exit barrier on a rank that bailed out.
    for (const auto& slot : slots) {
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "broadcast buffer sizes disagree across ranks");
    }
    const auto& src = slots[static_cast<std::size_t>(root)];
    std::copy(src.begin(), src.end(), buffer.begin());
  });
  if (rank_ != root) wire_bytes_ += buffer.size() * sizeof(double);
}

std::vector<double> Communicator::scatterv(std::span<const double> send,
                                           const std::vector<std::size_t>& counts,
                                           int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "scatterv root out of range");
  IMRDMD_REQUIRE_ARG(counts.size() == static_cast<std::size_t>(size()),
                     "scatterv counts must have one entry per rank");
  std::size_t total = 0;
  for (const std::size_t c : counts) total += c;
  // Slot layout: [counts as doubles..., payload (root only)]. Depositing
  // the counts from every rank lets the combine validate the agreement
  // collectively — a desynced rank makes all ranks throw together instead
  // of one rank misparsing the root's payload.
  std::vector<double> deposit;
  deposit.reserve(counts.size() +
                  (rank_ == root ? send.size() : std::size_t{0}));
  for (const std::size_t c : counts) {
    deposit.push_back(static_cast<double>(c));
  }
  if (rank_ == root) {
    IMRDMD_REQUIRE_DIMS(send.size() == total,
                        "scatterv send buffer does not match counts");
    deposit.insert(deposit.end(), send.begin(), send.end());
  }
  std::vector<double> mine;
  exchange(deposit, [&](const std::vector<std::vector<double>>& slots) {
    for (int r = 0; r < size(); ++r) {
      const auto& slot = slots[static_cast<std::size_t>(r)];
      const std::size_t expected =
          counts.size() + (r == root ? total : std::size_t{0});
      IMRDMD_REQUIRE_DIMS(slot.size() == expected,
                          "scatterv slot sizes disagree across ranks");
      for (std::size_t i = 0; i < counts.size(); ++i) {
        IMRDMD_REQUIRE_DIMS(slot[i] == static_cast<double>(counts[i]),
                            "scatterv counts disagree across ranks");
      }
    }
    const auto& src = slots[static_cast<std::size_t>(root)];
    std::size_t offset = counts.size();
    for (int r = 0; r < rank_; ++r) offset += counts[static_cast<std::size_t>(r)];
    const std::size_t count = counts[static_cast<std::size_t>(rank_)];
    mine.assign(src.begin() + static_cast<std::ptrdiff_t>(offset),
                src.begin() + static_cast<std::ptrdiff_t>(offset + count));
  });
  if (rank_ != root) wire_bytes_ += mine.size() * sizeof(double);
  return mine;
}

void Communicator::allreduce_sum(std::span<double> buffer) {
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    std::fill(buffer.begin(), buffer.end(), 0.0);
    for (const auto& slot : slots) {  // rank order: deterministic FP sums
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "allreduce_sum buffer sizes disagree across ranks");
      for (std::size_t i = 0; i < buffer.size(); ++i) buffer[i] += slot[i];
    }
  });
  wire_bytes_ += static_cast<std::uint64_t>(size() - 1) * buffer.size() *
                 sizeof(double);
}

void Communicator::reduce_sum(std::span<double> buffer, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(),
                     "reduce_sum root out of range");
  exchange(buffer, [&](const std::vector<std::vector<double>>& slots) {
    for (const auto& slot : slots) {
      IMRDMD_REQUIRE_DIMS(slot.size() == buffer.size(),
                          "reduce_sum buffer sizes disagree across ranks");
    }
    if (rank_ != root) return;
    std::fill(buffer.begin(), buffer.end(), 0.0);
    for (const auto& slot : slots) {  // rank order: matches allreduce_sum
      for (std::size_t i = 0; i < buffer.size(); ++i) buffer[i] += slot[i];
    }
  });
  if (rank_ == root) {
    wire_bytes_ += static_cast<std::uint64_t>(size() - 1) * buffer.size() *
                   sizeof(double);
  }
}

double Communicator::allreduce_min(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::min(value, slot.at(0));
             }
           });
  wire_bytes_ += static_cast<std::uint64_t>(size() - 1) * sizeof(double);
  return value;
}

double Communicator::allreduce_max(double value) {
  exchange(std::span<const double>(&value, 1),
           [&](const std::vector<std::vector<double>>& slots) {
             for (const auto& slot : slots) {
               value = std::max(value, slot.at(0));
             }
           });
  wire_bytes_ += static_cast<std::uint64_t>(size() - 1) * sizeof(double);
  return value;
}

std::vector<double> Communicator::allgather(std::span<const double> local) {
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  wire_bytes_ += (all.size() - local.size()) * sizeof(double);
  return all;
}

std::vector<std::vector<double>> Communicator::allgatherv(
    std::span<const double> local) {
  std::vector<std::vector<double>> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    all = slots;  // copy inside the barriers: slots are reused afterwards
  });
  for (int r = 0; r < size(); ++r) {
    if (r == rank_) continue;
    wire_bytes_ += all[static_cast<std::size_t>(r)].size() * sizeof(double);
  }
  return all;
}

std::vector<std::vector<double>> Communicator::gatherv(
    std::span<const double> local, int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "gatherv root out of range");
  std::vector<std::vector<double>> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    if (rank_ == root) all = slots;
  });
  for (int r = 0; r < size(); ++r) {
    if (r == rank_ || rank_ != root) continue;
    wire_bytes_ += all[static_cast<std::size_t>(r)].size() * sizeof(double);
  }
  return all;
}

std::vector<double> Communicator::gather(std::span<const double> local,
                                         int root) {
  IMRDMD_REQUIRE_ARG(root >= 0 && root < size(), "gather root out of range");
  std::vector<double> all;
  exchange(local, [&](const std::vector<std::vector<double>>& slots) {
    if (rank_ != root) return;
    std::size_t total = 0;
    for (const auto& slot : slots) total += slot.size();
    all.reserve(total);
    for (const auto& slot : slots) {
      all.insert(all.end(), slot.begin(), slot.end());
    }
  });
  if (rank_ == root && all.size() >= local.size()) {
    wire_bytes_ += (all.size() - local.size()) * sizeof(double);
  }
  return all;
}

World::World(int ranks) : ranks_(ranks) {
  IMRDMD_REQUIRE_ARG(ranks >= 1, "World needs at least one rank");
  slots_.resize(static_cast<std::size_t>(ranks));
}

void World::run(const std::function<void(Communicator&)>& fn) {
  {
    // A World is reusable across run() calls; clear any poison left by a
    // previous failed invocation.
    std::lock_guard<std::mutex> lock(mutex_);
    failed_ = false;
    arrived_ = 0;
  }
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks_));
  threads.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    threads.emplace_back([this, &fn, &errors, r] {
      Communicator comm(*this, r);
      try {
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        // First failure poisons every collective so peers blocked between
        // this rank's past and future collective calls unwind instead of
        // waiting forever on a barrier this rank will never enter.
        poison();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Prefer the lowest-rank *primary* failure; the CollectiveAborted
  // unwinds it triggered on the peers are secondary noise.
  std::exception_ptr chosen;
  for (const auto& error : errors) {
    if (!error) continue;
    bool aborted = false;
    try {
      std::rethrow_exception(error);
    } catch (const CollectiveAborted&) {
      aborted = true;
    } catch (...) {
    }
    if (!aborted) {
      chosen = error;
      break;
    }
    if (!chosen) chosen = error;
  }
  if (chosen) std::rethrow_exception(chosen);
}

}  // namespace imrdmd::dist
