#include "telemetry/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace imrdmd::telemetry {

MachineSpec scale_machine(const MachineSpec& spec, double scale) {
  IMRDMD_REQUIRE_ARG(scale > 0.0 && scale <= 1.0,
                     "machine scale must be in (0, 1]");
  if (scale == 1.0) return spec;
  MachineSpec scaled = spec;
  scaled.racks = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(scale * spec.racks)));
  const double keep = static_cast<double>(scaled.racks) /
                      static_cast<double>(spec.racks);
  scaled.node_count = std::min(
      scaled.slots(),
      std::max<std::size_t>(
          2, static_cast<std::size_t>(keep * spec.node_count)));
  return scaled;
}

Scenario make_case_study_1(ScenarioOptions options) {
  Scenario scenario;
  scenario.machine = scale_machine(MachineSpec::theta(), options.machine_scale);
  scenario.horizon = options.horizon;

  JobLogOptions job_options;
  job_options.seed = options.seed;
  job_options.projects = {"climate-sim", "qcd-lattice"};
  job_options.mean_interarrival = 30.0;
  job_options.mean_duration =
      static_cast<double>(options.horizon) * 0.4;
  scenario.jobs =
      std::make_unique<JobLogSimulator>(scenario.machine, job_options);
  scenario.jobs->simulate_until(options.horizon);

  SensorModelOptions sensor_options;
  sensor_options.seed = options.seed * 1000003;
  scenario.sensors =
      std::make_unique<SensorModel>(scenario.machine, sensor_options);
  scenario.sensors->attach_jobs(scenario.jobs.get());

  // The analyzed population: nodes used by the two projects (871 in the
  // paper; proportional here).
  scenario.analyzed_nodes = scenario.jobs->nodes_of_project(
      "climate-sim", 0, options.horizon);
  const auto qcd =
      scenario.jobs->nodes_of_project("qcd-lattice", 0, options.horizon);
  scenario.analyzed_nodes.insert(scenario.analyzed_nodes.end(), qcd.begin(),
                                 qcd.end());
  std::sort(scenario.analyzed_nodes.begin(), scenario.analyzed_nodes.end());
  scenario.analyzed_nodes.erase(std::unique(scenario.analyzed_nodes.begin(),
                                            scenario.analyzed_nodes.end()),
                                scenario.analyzed_nodes.end());
  if (scenario.analyzed_nodes.empty()) {
    // Degenerate tiny machines: analyze everything.
    for (std::size_t n = 0; n < scenario.machine.node_count; ++n) {
      scenario.analyzed_nodes.push_back(n);
    }
  }

  // Faults: ~1% of analyzed nodes overheat, ~0.5% stall, and a disjoint
  // ~1% report correctable memory errors with no thermal signature.
  Rng rng(options.seed * 77);
  const std::size_t population = scenario.analyzed_nodes.size();
  auto pick = [&](std::size_t count, std::vector<std::size_t>& out,
                  const std::vector<std::size_t>& avoid) {
    std::size_t guard = 0;
    while (out.size() < count && guard++ < population * 20) {
      const std::size_t node =
          scenario.analyzed_nodes[rng.uniform_index(population)];
      if (std::find(out.begin(), out.end(), node) != out.end()) continue;
      if (std::find(avoid.begin(), avoid.end(), node) != avoid.end()) continue;
      out.push_back(node);
    }
  };
  const std::size_t hot_count = std::max<std::size_t>(2, population / 100);
  const std::size_t stall_count = std::max<std::size_t>(1, population / 200);
  const std::size_t mem_count = std::max<std::size_t>(2, population / 100);
  pick(hot_count, scenario.hot_nodes, {});
  pick(stall_count, scenario.stalled_nodes, scenario.hot_nodes);
  {
    std::vector<std::size_t> avoid = scenario.hot_nodes;
    avoid.insert(avoid.end(), scenario.stalled_nodes.begin(),
                 scenario.stalled_nodes.end());
    pick(mem_count, scenario.memory_error_nodes, avoid);
  }

  const std::size_t fault_start = options.horizon / 8;
  for (std::size_t node : scenario.hot_nodes) {
    scenario.sensors->add_fault({FaultSpec::Kind::Overheat, node, fault_start,
                                 options.horizon, 12.0});
  }
  for (std::size_t node : scenario.stalled_nodes) {
    scenario.sensors->add_fault(
        {FaultSpec::Kind::Stall, node, fault_start, options.horizon, 0.0});
  }
  for (std::size_t node : scenario.memory_error_nodes) {
    scenario.sensors->add_fault({FaultSpec::Kind::MemoryErrors, node,
                                 fault_start, options.horizon, 0.0});
  }

  scenario.hardware = std::make_unique<HardwareLogSimulator>(
      *scenario.sensors, options.horizon);
  return scenario;
}

Scenario make_case_study_2(ScenarioOptions options) {
  Scenario scenario;
  scenario.machine = scale_machine(MachineSpec::theta(), options.machine_scale);
  scenario.horizon = options.horizon;

  // Busy, churning first half vs a drained second half: many short jobs
  // arrive early (fast transients -> higher-frequency dynamics, the Fig. 7
  // contrast), and arrivals stop early enough that almost everything ends
  // by mid-horizon.
  JobLogOptions job_options;
  job_options.seed = options.seed;
  job_options.mean_interarrival = 6.0;
  job_options.mean_duration = static_cast<double>(options.horizon) * 0.06;
  job_options.max_fraction = 0.4;
  // Only let jobs arrive during the first (hot) window, with margin for
  // their tails to drain before the cool window starts.
  job_options.arrival_cutoff = (options.horizon * 2) / 5;
  scenario.jobs =
      std::make_unique<JobLogSimulator>(scenario.machine, job_options);
  scenario.jobs->simulate_until(options.horizon / 2);

  SensorModelOptions sensor_options;
  sensor_options.seed = options.seed * 1000003 + 1;
  // The facility cools machine-wide between the two windows (Fig. 6(a) hot
  // state -> Fig. 6(b) cool state).
  sensor_options.regime_shift_c = 8.0;
  sensor_options.regime_mid_t = options.horizon / 2;
  sensor_options.regime_width_t =
      static_cast<double>(options.horizon) / 40.0;
  scenario.sensors =
      std::make_unique<SensorModel>(scenario.machine, sensor_options);
  scenario.sensors->attach_jobs(scenario.jobs.get());

  for (std::size_t n = 0; n < scenario.machine.node_count; ++n) {
    scenario.analyzed_nodes.push_back(n);
  }

  // Persistent hardware-error nodes (the Fig. 6(b) outlined nodes).
  Rng rng(options.seed * 31);
  const std::size_t mem_count =
      std::max<std::size_t>(3, scenario.machine.node_count / 150);
  while (scenario.memory_error_nodes.size() < mem_count) {
    const std::size_t node = rng.uniform_index(scenario.machine.node_count);
    if (std::find(scenario.memory_error_nodes.begin(),
                  scenario.memory_error_nodes.end(),
                  node) == scenario.memory_error_nodes.end()) {
      scenario.memory_error_nodes.push_back(node);
    }
  }
  for (std::size_t node : scenario.memory_error_nodes) {
    scenario.sensors->add_fault(
        {FaultSpec::Kind::MemoryErrors, node, 0, options.horizon, 0.0});
  }
  // A few overheating nodes in the first (hot) window only.
  const std::size_t hot_count =
      std::max<std::size_t>(2, scenario.machine.node_count / 200);
  while (scenario.hot_nodes.size() < hot_count) {
    const std::size_t node = rng.uniform_index(scenario.machine.node_count);
    if (std::find(scenario.hot_nodes.begin(), scenario.hot_nodes.end(),
                  node) == scenario.hot_nodes.end()) {
      scenario.hot_nodes.push_back(node);
    }
  }
  for (std::size_t node : scenario.hot_nodes) {
    scenario.sensors->add_fault({FaultSpec::Kind::Overheat, node,
                                 options.horizon / 16, options.horizon / 2,
                                 10.0});
  }

  scenario.hardware = std::make_unique<HardwareLogSimulator>(
      *scenario.sensors, options.horizon);
  return scenario;
}

Scenario make_coherent_drift(ScenarioOptions options) {
  Scenario scenario;
  scenario.machine = scale_machine(MachineSpec::theta(), options.machine_scale);
  scenario.horizon = options.horizon;

  SensorModelOptions sensor_options;
  sensor_options.seed = options.seed * 1000003 + 2;
  // Heterogeneous per-sensor swings keep every rack's variance dominated
  // by its own dynamics, so the shared drift stays below any single
  // group's truncation floor (the Fig. 8 setting).
  sensor_options.oscillation_amplitude_spread = 0.4;
  scenario.sensors =
      std::make_unique<SensorModel>(scenario.machine, sensor_options);

  for (std::size_t n = 0; n < scenario.machine.node_count; ++n) {
    scenario.analyzed_nodes.push_back(n);
  }

  // The drift band: the leading ~20% of racks warm together by ~1 degree
  // — under the 0.8 C oscillation and the noise terms per sensor, but
  // coherent across hundreds of sensors. The majority of racks stay at
  // baseline and anchor the z-score population.
  const std::size_t drift_racks =
      std::max<std::size_t>(1, scenario.machine.racks / 5);
  const std::size_t drift_begin = options.horizon / 3;
  for (std::size_t node = 0; node < scenario.machine.node_count; ++node) {
    if (place_of(scenario.machine, node).rack >= drift_racks) continue;
    scenario.drift_nodes.push_back(node);
    scenario.sensors->add_fault({FaultSpec::Kind::Overheat, node, drift_begin,
                                 options.horizon, 1.2});
  }

  scenario.hardware = std::make_unique<HardwareLogSimulator>(
      *scenario.sensors, options.horizon);
  return scenario;
}

Scenario make_multi_rack_event(ScenarioOptions options) {
  Scenario scenario;
  scenario.machine = scale_machine(MachineSpec::theta(), options.machine_scale);
  scenario.horizon = options.horizon;

  SensorModelOptions sensor_options;
  sensor_options.seed = options.seed * 1000003 + 3;
  scenario.sensors =
      std::make_unique<SensorModel>(scenario.machine, sensor_options);

  for (std::size_t n = 0; n < scenario.machine.node_count; ++n) {
    scenario.analyzed_nodes.push_back(n);
  }

  // A cooling failure spanning a contiguous band of adjacent racks: every
  // node of the band overheats together over one mid-horizon window. Large
  // enough per node to flag on its own; the spatial and temporal coherence
  // is what distinguishes the event from scattered single-node faults.
  const std::size_t event_racks = std::min<std::size_t>(
      std::max<std::size_t>(1, scenario.machine.racks - 1),
      std::max<std::size_t>(2, scenario.machine.racks / 8));
  const std::size_t first_rack = std::min<std::size_t>(
      scenario.machine.racks / 4, scenario.machine.racks - event_racks);
  const std::size_t t_begin = (options.horizon * 2) / 5;
  const std::size_t t_end = (options.horizon * 3) / 4;
  for (std::size_t node = 0; node < scenario.machine.node_count; ++node) {
    const std::size_t rack = place_of(scenario.machine, node).rack;
    if (rack < first_rack || rack >= first_rack + event_racks) continue;
    scenario.hot_nodes.push_back(node);
    scenario.sensors->add_fault(
        {FaultSpec::Kind::Overheat, node, t_begin, t_end, 6.0});
  }

  scenario.hardware = std::make_unique<HardwareLogSimulator>(
      *scenario.sensors, options.horizon);
  return scenario;
}

}  // namespace imrdmd::telemetry
