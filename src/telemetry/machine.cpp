#include "telemetry/machine.hpp"

#include "common/error.hpp"

namespace imrdmd::telemetry {

MachineSpec MachineSpec::theta() {
  MachineSpec spec;
  spec.name = "theta-xc40";
  spec.racks = 24;
  spec.chassis_per_rack = 3;
  spec.blades_per_chassis = 16;
  spec.nodes_per_blade = 4;
  spec.node_count = 4392;  // 4,608 slots, 4,392 populated (paper Sec. IV)
  spec.sensors_per_node = 1;
  spec.dt_seconds = 15.0;
  // Two rows of twelve racks, chassis stacked bottom-to-top, sixteen blades
  // left-to-right, four nodes per blade (paper Sec. III-B grammar).
  spec.layout_string = "xc40 1 2 row0-1:0-11 2 c:0-2 1 s:0-15 1 b:0-3 n:0";
  return spec;
}

MachineSpec MachineSpec::polaris() {
  MachineSpec spec;
  spec.name = "polaris-apollo6500";
  spec.racks = 40;
  spec.chassis_per_rack = 7;
  spec.blades_per_chassis = 2;
  spec.nodes_per_blade = 1;
  spec.node_count = 560;
  spec.sensors_per_node = 4;  // one temperature channel per A100 GPU
  spec.dt_seconds = 3.0;
  spec.layout_string = "apollo 1 2 row0-3:0-9 2 c:0-6 1 s:0-1 1 b:0 n:0";
  return spec;
}

MachineSpec MachineSpec::testbed() {
  MachineSpec spec;
  spec.name = "testbed";
  spec.racks = 4;
  spec.chassis_per_rack = 2;
  spec.blades_per_chassis = 4;
  spec.nodes_per_blade = 2;
  spec.node_count = 64;
  spec.sensors_per_node = 1;
  spec.dt_seconds = 15.0;
  spec.layout_string = "testbed 1 2 row0-1:0-1 2 c:0-1 1 s:0-3 1 b:0-1 n:0";
  return spec;
}

NodePlace place_of(const MachineSpec& spec, std::size_t node_id) {
  IMRDMD_REQUIRE_ARG(node_id < spec.slots(), "node id beyond machine slots");
  NodePlace place;
  const std::size_t per_rack =
      spec.chassis_per_rack * spec.blades_per_chassis * spec.nodes_per_blade;
  const std::size_t per_chassis =
      spec.blades_per_chassis * spec.nodes_per_blade;
  place.rack = node_id / per_rack;
  std::size_t rest = node_id % per_rack;
  place.chassis = rest / per_chassis;
  rest %= per_chassis;
  place.blade = rest / spec.nodes_per_blade;
  place.node_in_blade = rest % spec.nodes_per_blade;
  return place;
}

bool same_blade(const MachineSpec& spec, std::size_t a, std::size_t b) {
  const NodePlace pa = place_of(spec, a);
  const NodePlace pb = place_of(spec, b);
  return pa.rack == pb.rack && pa.chassis == pb.chassis &&
         pa.blade == pb.blade;
}

bool same_chassis(const MachineSpec& spec, std::size_t a, std::size_t b) {
  const NodePlace pa = place_of(spec, a);
  const NodePlace pb = place_of(spec, b);
  return pa.rack == pb.rack && pa.chassis == pb.chassis;
}

std::vector<std::size_t> neighbors_of(const MachineSpec& spec,
                                      std::size_t node_id) {
  const NodePlace place = place_of(spec, node_id);
  std::vector<std::size_t> neighbors;
  const std::size_t per_chassis =
      spec.blades_per_chassis * spec.nodes_per_blade;
  const std::size_t chassis_base =
      (place.rack * spec.chassis_per_rack + place.chassis) * per_chassis;
  // Blade mates.
  const std::size_t blade_base =
      chassis_base + place.blade * spec.nodes_per_blade;
  for (std::size_t n = 0; n < spec.nodes_per_blade; ++n) {
    const std::size_t id = blade_base + n;
    if (id != node_id && id < spec.node_count) neighbors.push_back(id);
  }
  // Matching node position in the adjacent blades (above/below airflow).
  for (int delta : {-1, 1}) {
    const long blade = static_cast<long>(place.blade) + delta;
    if (blade < 0 ||
        blade >= static_cast<long>(spec.blades_per_chassis)) {
      continue;
    }
    const std::size_t id = chassis_base +
                           static_cast<std::size_t>(blade) *
                               spec.nodes_per_blade +
                           place.node_in_blade;
    if (id < spec.node_count) neighbors.push_back(id);
  }
  return neighbors;
}

}  // namespace imrdmd::telemetry
