#include "telemetry/sharded_env.hpp"

#include "common/error.hpp"
#include "core/assessor.hpp"

namespace imrdmd::telemetry {

std::vector<std::vector<std::size_t>> rack_groups(const MachineSpec& spec) {
  std::vector<std::vector<std::size_t>> groups(spec.racks);
  for (std::size_t node = 0; node < spec.node_count; ++node) {
    const std::size_t rack = place_of(spec, node).rack;
    for (std::size_t c = 0; c < spec.sensors_per_node; ++c) {
      groups[rack].push_back(node * spec.sensors_per_node + c);
    }
  }
  std::erase_if(groups, [](const auto& group) { return group.empty(); });
  return groups;
}

ShardedEnvSource::ShardedEnvSource(const SensorModel& model,
                                   ShardedEnvOptions options)
    : model_(model), stream_options_(options.stream),
      stream_(model, options.stream) {
  IMRDMD_REQUIRE_ARG(options.stream.sensor_subset.empty(),
                     "ShardedEnvSource streams the whole machine; restrict "
                     "sensors through the groups instead");
  groups_ = options.group_by == ShardedEnvOptions::GroupBy::Rack
                ? rack_groups(model_.machine())
                : core::contiguous_groups(model_.sensors(),
                                          options.group_count);
}

std::optional<Mat> ShardedEnvSource::next_chunk() {
  return stream_.next_chunk();
}

std::size_t ShardedEnvSource::sensors() const { return model_.sensors(); }

EnvLogStream ShardedEnvSource::rank_source(std::size_t ranks,
                                           std::size_t rank) const {
  IMRDMD_REQUIRE_ARG(ranks > 0 && rank < ranks,
                     "rank_source rank out of range");
  const auto [g0, g1] = core::rank_group_range(groups_.size(), ranks, rank);
  EnvStreamOptions options = stream_options_;
  options.sensor_subset.clear();
  for (std::size_t g = g0; g < g1; ++g) {
    options.sensor_subset.insert(options.sensor_subset.end(),
                                 groups_[g].begin(), groups_[g].end());
  }
  return EnvLogStream(model_, std::move(options));
}

Mat ShardedEnvSource::group_window(std::size_t g, std::size_t t0,
                                   std::size_t count) const {
  IMRDMD_REQUIRE_ARG(g < groups_.size(), "group index out of range");
  return model_.window_for(
      std::span<const std::size_t>(groups_[g].data(), groups_[g].size()), t0,
      count);
}

}  // namespace imrdmd::telemetry
