#include "telemetry/log_io.hpp"

#include <cstdio>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"

namespace imrdmd::telemetry {

void write_env_window_csv(const std::string& path, const linalg::Mat& window,
                          std::size_t t0) {
  std::vector<std::string> header;
  header.reserve(window.cols() + 1);
  header.push_back("sensor");
  for (std::size_t t = 0; t < window.cols(); ++t) {
    header.push_back("t" + std::to_string(t0 + t));
  }
  CsvWriter writer(path, header);
  std::vector<std::string> row(window.cols() + 1);
  for (std::size_t p = 0; p < window.rows(); ++p) {
    row[0] = std::to_string(p);
    for (std::size_t t = 0; t < window.cols(); ++t) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "%.10g", window(p, t));
      row[t + 1] = buffer;
    }
    writer.write_row(row);
  }
  writer.close();
}

linalg::Mat read_env_window_csv(const std::string& path, std::size_t& t0) {
  const CsvTable table = read_csv(path);
  if (table.header.size() < 2 || !starts_with(table.header[1], "t")) {
    throw ParseError("not an env window CSV: " + path);
  }
  t0 = static_cast<std::size_t>(
      parse_long(std::string_view(table.header[1]).substr(1), path));
  linalg::Mat window(table.rows.size(), table.header.size() - 1);
  for (std::size_t p = 0; p < table.rows.size(); ++p) {
    for (std::size_t t = 0; t + 1 < table.header.size(); ++t) {
      window(p, t) = parse_double(table.rows[p][t + 1], path);
    }
  }
  return window;
}

void write_job_log_csv(const std::string& path,
                       const std::vector<JobRecord>& jobs) {
  CsvWriter writer(path, {"job_id", "project", "node_begin", "node_count",
                          "t_start", "t_end"});
  for (const JobRecord& job : jobs) {
    writer.write_row({std::to_string(job.job_id), job.project,
                      std::to_string(job.node_begin),
                      std::to_string(job.node_count),
                      std::to_string(job.t_start), std::to_string(job.t_end)});
  }
  writer.close();
}

std::vector<JobRecord> read_job_log_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  std::vector<JobRecord> jobs;
  jobs.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    JobRecord job;
    job.job_id = static_cast<std::size_t>(parse_long(row[0], path));
    job.project = row[1];
    job.node_begin = static_cast<std::size_t>(parse_long(row[2], path));
    job.node_count = static_cast<std::size_t>(parse_long(row[3], path));
    job.t_start = static_cast<std::size_t>(parse_long(row[4], path));
    job.t_end = static_cast<std::size_t>(parse_long(row[5], path));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void write_hardware_log_csv(const std::string& path,
                            const std::vector<HardwareEvent>& events) {
  CsvWriter writer(path, {"t", "node", "category", "message"});
  for (const HardwareEvent& event : events) {
    writer.write_row({std::to_string(event.t), std::to_string(event.node),
                      to_string(event.category), event.message});
  }
  writer.close();
}

std::vector<HardwareEvent> read_hardware_log_csv(const std::string& path) {
  const CsvTable table = read_csv(path);
  std::vector<HardwareEvent> events;
  events.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    HardwareEvent event;
    event.t = static_cast<std::size_t>(parse_long(row[0], path));
    event.node = static_cast<std::size_t>(parse_long(row[1], path));
    const std::string& category = row[2];
    if (category == "correctable-memory") {
      event.category = HardwareEventCategory::CorrectableMemory;
    } else if (category == "thermal-warning") {
      event.category = HardwareEventCategory::ThermalWarning;
    } else if (category == "node-down") {
      event.category = HardwareEventCategory::NodeDown;
    } else if (category == "pcie-error") {
      event.category = HardwareEventCategory::PcieError;
    } else {
      throw ParseError("unknown hardware event category: " + category);
    }
    event.message = row[3];
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace imrdmd::telemetry
