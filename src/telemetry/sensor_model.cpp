#include "telemetry/sensor_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace imrdmd::telemetry {

namespace {

constexpr double kTwoPi = 6.283185307179586476925287;

// Counter-based hashing: stateless, O(1) pseudo-randomness per key.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double hash_uniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  const std::uint64_t h = mix(seed ^ mix(a ^ mix(b)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double hash_normal(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  double u1 = hash_uniform(seed, a, b * 2);
  if (u1 <= 1e-300) u1 = 1e-300;
  const double u2 = hash_uniform(seed, a, b * 2 + 1);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

// First-order thermal envelope of a job interval evaluated at time t
// (snapshot units); tau in snapshots.
double thermal_envelope(double t, double t_start, double t_end, double tau) {
  if (t < t_start) return 0.0;
  const double rise_at = [&](double x) {
    return 1.0 - std::exp(-(x - t_start) / tau);
  }(std::min(t, t_end));
  if (t < t_end) return rise_at;
  return rise_at * std::exp(-(t - t_end) / tau);
}

}  // namespace

SensorModel::SensorModel(MachineSpec spec, SensorModelOptions options)
    : spec_(std::move(spec)), options_(options) {
  IMRDMD_REQUIRE_ARG(spec_.node_count >= 1, "machine needs nodes");
  IMRDMD_REQUIRE_ARG(spec_.sensors_per_node >= 1, "machine needs sensors");
  IMRDMD_REQUIRE_ARG(options_.thermal_tau_s > 0.0, "thermal_tau_s > 0");
}

void SensorModel::add_fault(const FaultSpec& fault) {
  IMRDMD_REQUIRE_ARG(fault.node < spec_.node_count,
                     "fault node beyond machine");
  IMRDMD_REQUIRE_ARG(fault.t_begin <= fault.t_end, "fault window inverted");
  faults_.push_back(fault);
}

std::vector<std::size_t> SensorModel::fault_nodes(FaultSpec::Kind kind,
                                                  std::size_t t0,
                                                  std::size_t t1) const {
  std::vector<std::size_t> nodes;
  for (const FaultSpec& fault : faults_) {
    if (fault.kind == kind && fault.t_begin < t1 && fault.t_end > t0) {
      nodes.push_back(fault.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

double SensorModel::job_heat_at(std::size_t node, double t) const {
  if (jobs_ == nullptr) return 0.0;
  const double tau = options_.thermal_tau_s / spec_.dt_seconds;
  double heat = 0.0;
  for (const JobRecord& job : jobs_->jobs()) {
    if (node < job.node_begin || node >= job.node_begin + job.node_count) {
      continue;
    }
    heat += thermal_envelope(t, static_cast<double>(job.t_start),
                             static_cast<double>(job.t_end), tau);
  }
  return options_.job_heat_c * std::min(heat, 1.5);  // saturating stack-up
}

double SensorModel::raw_value(std::size_t sensor, std::size_t t) const {
  const std::size_t node = sensor / spec_.sensors_per_node;
  const std::size_t channel = sensor % spec_.sensors_per_node;
  const NodePlace place = place_of(spec_, node);
  const double seconds = static_cast<double>(t) * spec_.dt_seconds;
  const std::uint64_t seed = options_.seed;

  // Static offsets.
  double value = options_.base_temp_c;
  value += options_.node_spread_c * (2.0 * hash_uniform(seed, node, 0) - 1.0);
  value += options_.channel_step_c * static_cast<double>(channel);

  // Facility trend and rack-phased diurnal cycle.
  const double trend_phase = kTwoPi * hash_uniform(seed, 1, 1);
  value += options_.trend_amplitude_c *
           std::sin(kTwoPi * seconds / options_.trend_period_s + trend_phase);
  const double rack_phase =
      kTwoPi * static_cast<double>(place.rack) /
      std::max<double>(1.0, static_cast<double>(spec_.racks));
  value += options_.diurnal_amplitude_c *
           std::sin(kTwoPi * seconds / options_.diurnal_period_s + rack_phase);

  // Job heat with spatial leak from chassis neighbors.
  const double td = static_cast<double>(t);
  double heat = job_heat_at(node, td);
  bool stalled = false;
  for (const FaultSpec& fault : faults_) {
    if (fault.node != node) continue;
    if (t < fault.t_begin || t >= fault.t_end) continue;
    switch (fault.kind) {
      case FaultSpec::Kind::Overheat: {
        const double tau = options_.thermal_tau_s / spec_.dt_seconds;
        value += fault.magnitude *
                 thermal_envelope(td, static_cast<double>(fault.t_begin),
                                  static_cast<double>(fault.t_end), tau);
        break;
      }
      case FaultSpec::Kind::Stall:
        stalled = true;
        break;
      case FaultSpec::Kind::MemoryErrors:
      case FaultSpec::Kind::SensorDropout:
        break;  // no direct thermal effect here
    }
  }
  if (stalled) {
    heat = 0.0;  // the job is pinned but doing no work
    value -= options_.stall_cool_c;
  }
  value += heat;
  if (options_.spatial_coupling > 0.0 && jobs_ != nullptr) {
    const auto neighbors = neighbors_of(spec_, node);
    if (!neighbors.empty()) {
      double leak = 0.0;
      for (std::size_t n : neighbors) leak += job_heat_at(n, td);
      value += options_.spatial_coupling * leak /
               static_cast<double>(neighbors.size());
    }
  }

  // Machine-wide regime shift (hot -> cool across a sigmoid).
  if (options_.regime_shift_c != 0.0) {
    const double z = (td - static_cast<double>(options_.regime_mid_t)) /
                     options_.regime_width_t;
    value -= options_.regime_shift_c / (1.0 + std::exp(-z));
  }

  // Mid-frequency cooling oscillation, phase- and amplitude-hashed per node.
  const double osc_phase = kTwoPi * hash_uniform(seed, node, 2);
  const double osc_spread =
      1.0 + options_.oscillation_amplitude_spread *
                (2.0 * hash_uniform(seed, node, 3) - 1.0);
  value += options_.oscillation_amplitude_c * osc_spread *
           std::sin(kTwoPi * seconds / options_.oscillation_period_s +
                    osc_phase);

  // Colored noise: three random-phase tones per sensor.
  for (std::uint64_t k = 0; k < 3; ++k) {
    const double period =
        options_.colored_min_period_s +
        (options_.colored_max_period_s - options_.colored_min_period_s) *
            hash_uniform(seed, sensor, 10 + 2 * k);
    const double phase = kTwoPi * hash_uniform(seed, sensor, 11 + 2 * k);
    value += (options_.colored_noise_c / 3.0) *
             std::sin(kTwoPi * seconds / period + phase);
  }

  // White measurement noise.
  value += options_.white_noise_c * hash_normal(seed, sensor, 1000003 + t);
  return value;
}

double SensorModel::value(std::size_t sensor, std::size_t t) const {
  IMRDMD_REQUIRE_ARG(sensor < sensors(), "sensor index beyond machine");
  const std::size_t node = sensor / spec_.sensors_per_node;
  // A dropout freezes the reading at its window-start value.
  for (const FaultSpec& fault : faults_) {
    if (fault.kind == FaultSpec::Kind::SensorDropout && fault.node == node &&
        t >= fault.t_begin && t < fault.t_end) {
      return raw_value(sensor, fault.t_begin);
    }
  }
  return raw_value(sensor, t);
}

Mat SensorModel::window(std::size_t t0, std::size_t count) const {
  if (jobs_ != nullptr) jobs_->simulate_until(t0 + count);
  Mat out(sensors(), count);
  parallel_for(0, sensors(), [&](std::size_t p) {
    double* row = out.data() + p * count;
    for (std::size_t t = 0; t < count; ++t) row[t] = value(p, t0 + t);
  });
  return out;
}

Mat SensorModel::window_for(std::span<const std::size_t> sensor_ids,
                            std::size_t t0, std::size_t count) const {
  if (jobs_ != nullptr) jobs_->simulate_until(t0 + count);
  Mat out(sensor_ids.size(), count);
  parallel_for(0, sensor_ids.size(), [&](std::size_t i) {
    double* row = out.data() + i * count;
    for (std::size_t t = 0; t < count; ++t) {
      row[t] = value(sensor_ids[i], t0 + t);
    }
  });
  return out;
}

}  // namespace imrdmd::telemetry
