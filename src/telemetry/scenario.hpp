// Canned case-study scenarios (paper Sec. V) shared by benches, examples,
// and integration tests.
//
// Scenario 1 ("case study 1"): a Theta-like machine where two projects
// occupy 871 nodes; a handful of nodes overheat, a few idle-stall, and a
// disjoint cluster reports correctable memory errors with no thermal
// signature.
//
// Scenario 2 ("case study 2"): the full machine over two 8-hour windows —
// a hot, busy first window and a cooler, less-utilized second window (the
// Fig. 6(a)/(b) contrast), with per-window baseline ranges.
//
// Coherent-drift scenario: a facility-wide thermal drift — a small,
// sustained warm-up coherent across a broad band of racks. Per rack it
// hides below the rack's own dynamics; only a facility-level model that
// pools sensors across groups sees the shared mode (the multifidelity
// hierarchy's motivating case).
//
// Multi-rack-event scenario: a correlated thermal event hitting every node
// of several adjacent racks at once — large enough per node to flag, and
// spatially coherent so the coarse facility model confirms it as one
// event rather than scattered coincidences.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "telemetry/hardware_log.hpp"
#include "telemetry/job_log.hpp"
#include "telemetry/sensor_model.hpp"

namespace imrdmd::telemetry {

/// Owns the coupled simulators of one scenario.
struct Scenario {
  MachineSpec machine;
  std::unique_ptr<JobLogSimulator> jobs;
  std::unique_ptr<SensorModel> sensors;
  std::unique_ptr<HardwareLogSimulator> hardware;

  /// Nodes analyzed by the case study (subset or whole machine).
  std::vector<std::size_t> analyzed_nodes;
  /// Snapshot horizon the hardware log was generated for.
  std::size_t horizon = 0;

  /// Ground-truth fault node sets (for verification in tests/benches).
  std::vector<std::size_t> hot_nodes;
  std::vector<std::size_t> stalled_nodes;
  std::vector<std::size_t> memory_error_nodes;
  /// Nodes carrying the facility-wide coherent drift (coherent-drift
  /// scenario only; per node the drift is below the local noise floor).
  std::vector<std::size_t> drift_nodes;
};

struct ScenarioOptions {
  /// Scale factor on the machine's node count (1.0 = paper size). Benches
  /// default below 1 so the suite runs on small machines; `--full` restores
  /// paper scale.
  double machine_scale = 1.0;
  std::size_t horizon = 2000;
  std::uint64_t seed = 7;
};

/// Case study 1: two projects on ~20% of the machine, faults injected.
Scenario make_case_study_1(ScenarioOptions options = {});

/// Case study 2: whole machine, hot-then-cool regime across two windows of
/// horizon/2 snapshots each.
Scenario make_case_study_2(ScenarioOptions options = {});

/// Facility-wide coherent thermal drift: a small sustained warm-up shared
/// by a contiguous band of racks (`drift_nodes`), starting a third of the
/// way into the horizon. Per sensor the drift is below the oscillation and
/// noise amplitudes; the undrifted racks anchor the baseline.
Scenario make_coherent_drift(ScenarioOptions options = {});

/// Correlated multi-rack event: every node of a few adjacent racks
/// overheats together over a mid-horizon window (`hot_nodes`).
Scenario make_multi_rack_event(ScenarioOptions options = {});

/// Shrinks a MachineSpec by `scale` (keeps the hierarchy, reduces racks).
MachineSpec scale_machine(const MachineSpec& spec, double scale);

}  // namespace imrdmd::telemetry
