// Canned case-study scenarios (paper Sec. V) shared by benches, examples,
// and integration tests.
//
// Scenario 1 ("case study 1"): a Theta-like machine where two projects
// occupy 871 nodes; a handful of nodes overheat, a few idle-stall, and a
// disjoint cluster reports correctable memory errors with no thermal
// signature.
//
// Scenario 2 ("case study 2"): the full machine over two 8-hour windows —
// a hot, busy first window and a cooler, less-utilized second window (the
// Fig. 6(a)/(b) contrast), with per-window baseline ranges.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "telemetry/hardware_log.hpp"
#include "telemetry/job_log.hpp"
#include "telemetry/sensor_model.hpp"

namespace imrdmd::telemetry {

/// Owns the coupled simulators of one scenario.
struct Scenario {
  MachineSpec machine;
  std::unique_ptr<JobLogSimulator> jobs;
  std::unique_ptr<SensorModel> sensors;
  std::unique_ptr<HardwareLogSimulator> hardware;

  /// Nodes analyzed by the case study (subset or whole machine).
  std::vector<std::size_t> analyzed_nodes;
  /// Snapshot horizon the hardware log was generated for.
  std::size_t horizon = 0;

  /// Ground-truth fault node sets (for verification in tests/benches).
  std::vector<std::size_t> hot_nodes;
  std::vector<std::size_t> stalled_nodes;
  std::vector<std::size_t> memory_error_nodes;
};

struct ScenarioOptions {
  /// Scale factor on the machine's node count (1.0 = paper size). Benches
  /// default below 1 so the suite runs on small machines; `--full` restores
  /// paper scale.
  double machine_scale = 1.0;
  std::size_t horizon = 2000;
  std::uint64_t seed = 7;
};

/// Case study 1: two projects on ~20% of the machine, faults injected.
Scenario make_case_study_1(ScenarioOptions options = {});

/// Case study 2: whole machine, hot-then-cool regime across two windows of
/// horizon/2 snapshots each.
Scenario make_case_study_2(ScenarioOptions options = {});

/// Shrinks a MachineSpec by `scale` (keeps the hierarchy, reduces racks).
MachineSpec scale_machine(const MachineSpec& spec, double scale);

}  // namespace imrdmd::telemetry
