// Hardware error log substrate (paper's fidelity (iii)).
//
// Emits discrete error events correlated with the sensor model's injected
// faults: MemoryErrors faults produce bursts of correctable-memory events
// (with NO thermal signature — the case-study-1 situation), Overheat faults
// may produce thermal warnings, SensorDropout produces node-down events.
// A low-rate background of uncorrelated events is mixed in so the alignment
// analysis (core::align_events) has realistic negatives.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/sensor_model.hpp"

namespace imrdmd::telemetry {

enum class HardwareEventCategory {
  CorrectableMemory,
  ThermalWarning,
  NodeDown,
  PcieError,
};

const char* to_string(HardwareEventCategory category);

struct HardwareEvent {
  std::size_t t = 0;  // snapshot index
  std::size_t node = 0;
  HardwareEventCategory category = HardwareEventCategory::CorrectableMemory;
  std::string message;
};

struct HardwareLogOptions {
  /// Mean events per fault snapshot for a MemoryErrors fault.
  double memory_burst_rate = 0.2;
  /// Probability an Overheat fault snapshot emits a thermal warning.
  double thermal_warning_rate = 0.02;
  /// Background uncorrelated event rate per node per snapshot.
  double background_rate = 2e-6;
  std::uint64_t seed = 4242;
};

class HardwareLogSimulator {
 public:
  /// Generates the event log for `model`'s faults over [0, horizon).
  HardwareLogSimulator(const SensorModel& model, std::size_t horizon,
                       HardwareLogOptions options = {});

  const std::vector<HardwareEvent>& events() const { return events_; }

  /// Events in [t0, t1), optionally category-filtered.
  std::vector<const HardwareEvent*> events_in_window(std::size_t t0,
                                                     std::size_t t1) const;

  /// Distinct nodes reporting `category` events within [t0, t1).
  std::vector<std::size_t> nodes_with(HardwareEventCategory category,
                                      std::size_t t0, std::size_t t1) const;

 private:
  std::vector<HardwareEvent> events_;
};

}  // namespace imrdmd::telemetry
