#include "telemetry/job_log.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace imrdmd::telemetry {

JobLogSimulator::JobLogSimulator(const MachineSpec& machine,
                                 JobLogOptions options)
    : machine_(machine), options_(std::move(options)), rng_(options_.seed) {
  IMRDMD_REQUIRE_ARG(options_.mean_interarrival > 0.0,
                     "mean_interarrival must be positive");
  IMRDMD_REQUIRE_ARG(options_.mean_duration > 0.0,
                     "mean_duration must be positive");
  IMRDMD_REQUIRE_ARG(!options_.projects.empty(), "need at least one project");
  next_arrival_ = rng_.exponential(1.0 / options_.mean_interarrival);
}

void JobLogSimulator::simulate_until(std::size_t horizon) {
  while (next_arrival_ < static_cast<double>(horizon)) {
    const std::size_t t = static_cast<std::size_t>(next_arrival_);
    next_arrival_ += rng_.exponential(1.0 / options_.mean_interarrival);
    if (options_.arrival_cutoff > 0 && t >= options_.arrival_cutoff) continue;

    // Node request: power-law-ish — most jobs are small, a few span a large
    // slice of the machine.
    const double u = rng_.uniform();
    const double frac = options_.max_fraction * u * u * u;
    std::size_t count = std::max<std::size_t>(
        1, static_cast<std::size_t>(frac * static_cast<double>(
                                               machine_.node_count)));
    const std::size_t duration = std::max<std::size_t>(
        8, static_cast<std::size_t>(rng_.exponential(
               1.0 / options_.mean_duration)));

    const auto start = first_fit(count, t);
    if (!start.has_value()) continue;  // machine full: job bounces

    JobRecord job;
    job.job_id = next_job_id_++;
    job.project = options_.projects[job.job_id % options_.projects.size()];
    job.node_begin = *start;
    job.node_count = count;
    job.t_start = t;
    job.t_end = t + duration;
    jobs_.push_back(std::move(job));
  }
  simulated_until_ = std::max(simulated_until_, horizon);
}

std::optional<std::size_t> JobLogSimulator::first_fit(std::size_t count,
                                                      std::size_t t) const {
  if (count > machine_.node_count) return std::nullopt;
  // Occupancy profile at time t from jobs still running.
  std::vector<char> busy(machine_.node_count, 0);
  for (const JobRecord& job : jobs_) {
    if (t >= job.t_start && t < job.t_end) {
      for (std::size_t n = job.node_begin;
           n < job.node_begin + job.node_count; ++n) {
        busy[n] = 1;
      }
    }
  }
  std::size_t run = 0;
  for (std::size_t n = 0; n < machine_.node_count; ++n) {
    run = busy[n] ? 0 : run + 1;
    if (run >= count) return n + 1 - count;
  }
  return std::nullopt;
}

std::vector<const JobRecord*> JobLogSimulator::jobs_in_window(
    std::size_t t0, std::size_t t1) const {
  std::vector<const JobRecord*> result;
  for (const JobRecord& job : jobs_) {
    if (job.t_start < t1 && job.t_end > t0) result.push_back(&job);
  }
  return result;
}

std::vector<std::size_t> JobLogSimulator::nodes_busy_at(std::size_t t) const {
  std::vector<char> busy(machine_.node_count, 0);
  for (const JobRecord& job : jobs_) {
    if (t >= job.t_start && t < job.t_end) {
      for (std::size_t n = job.node_begin;
           n < job.node_begin + job.node_count; ++n) {
        busy[n] = 1;
      }
    }
  }
  std::vector<std::size_t> nodes;
  for (std::size_t n = 0; n < busy.size(); ++n) {
    if (busy[n]) nodes.push_back(n);
  }
  return nodes;
}

std::vector<std::size_t> JobLogSimulator::nodes_of_project(
    const std::string& project, std::size_t t0, std::size_t t1) const {
  std::vector<char> used(machine_.node_count, 0);
  for (const JobRecord& job : jobs_) {
    if (job.project != project || job.t_start >= t1 || job.t_end <= t0) {
      continue;
    }
    for (std::size_t n = job.node_begin; n < job.node_begin + job.node_count;
         ++n) {
      used[n] = 1;
    }
  }
  std::vector<std::size_t> nodes;
  for (std::size_t n = 0; n < used.size(); ++n) {
    if (used[n]) nodes.push_back(n);
  }
  return nodes;
}

double JobLogSimulator::utilization_at(std::size_t t) const {
  return static_cast<double>(nodes_busy_at(t).size()) /
         static_cast<double>(machine_.node_count);
}

}  // namespace imrdmd::telemetry
