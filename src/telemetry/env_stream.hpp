// Streaming replay of the environment log: a core::ChunkSource that yields
// fixed-width windows from a SensorModel, simulating the online arrival of
// sensor data that the paper's evaluation reproduces ("we simulate a
// practical streaming analysis context by introducing new time points").
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/stream.hpp"
#include "telemetry/sensor_model.hpp"

namespace imrdmd::telemetry {

struct EnvStreamOptions {
  /// First chunk width (the initial-fit window); 0 = same as chunk width.
  std::size_t initial_snapshots = 0;
  /// Width of each subsequent chunk.
  std::size_t chunk_snapshots = 1000;
  /// Total snapshots to stream (the horizon).
  std::size_t total_snapshots = 2000;
  /// Restrict the stream to a sensor subset (empty = all sensors).
  std::vector<std::size_t> sensor_subset;
};

class EnvLogStream final : public core::ChunkSource {
 public:
  /// `model` must outlive the stream.
  EnvLogStream(const SensorModel& model, EnvStreamOptions options);

  std::optional<Mat> next_chunk() override;
  std::size_t sensors() const override;

  /// Snapshots emitted so far.
  std::size_t position() const override { return position_; }

  /// Seekable: the sensor model regenerates any window, so a checkpointed
  /// run resumes mid-stream from the recorded snapshot index.
  void seek(std::size_t snapshot) override;

 private:
  const SensorModel& model_;
  EnvStreamOptions options_;
  std::size_t position_ = 0;
};

}  // namespace imrdmd::telemetry
