#include "telemetry/hardware_log.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imrdmd::telemetry {

const char* to_string(HardwareEventCategory category) {
  switch (category) {
    case HardwareEventCategory::CorrectableMemory:
      return "correctable-memory";
    case HardwareEventCategory::ThermalWarning:
      return "thermal-warning";
    case HardwareEventCategory::NodeDown:
      return "node-down";
    case HardwareEventCategory::PcieError:
      return "pcie-error";
  }
  return "unknown";
}

HardwareLogSimulator::HardwareLogSimulator(const SensorModel& model,
                                           std::size_t horizon,
                                           HardwareLogOptions options) {
  Rng rng(options.seed);

  // Fault-correlated events.
  for (const FaultSpec& fault : model.faults()) {
    const std::size_t t_end = std::min<std::size_t>(fault.t_end, horizon);
    for (std::size_t t = fault.t_begin; t < t_end; ++t) {
      switch (fault.kind) {
        case FaultSpec::Kind::MemoryErrors: {
          const std::uint64_t burst = rng.poisson(options.memory_burst_rate);
          for (std::uint64_t i = 0; i < burst; ++i) {
            events_.push_back({t, fault.node,
                               HardwareEventCategory::CorrectableMemory,
                               "MCE: corrected DRAM ECC error"});
          }
          break;
        }
        case FaultSpec::Kind::Overheat:
          if (rng.uniform() < options.thermal_warning_rate) {
            events_.push_back({t, fault.node,
                               HardwareEventCategory::ThermalWarning,
                               "thermal threshold warning"});
          }
          break;
        case FaultSpec::Kind::SensorDropout:
          if (t == fault.t_begin) {
            events_.push_back({t, fault.node, HardwareEventCategory::NodeDown,
                               "node heartbeat lost"});
          }
          break;
        case FaultSpec::Kind::Stall:
          break;  // stalls are software-visible only
      }
    }
  }

  // Background noise: a thin scatter of uncorrelated PCIe errors.
  const double expected = options.background_rate *
                          static_cast<double>(model.machine().node_count) *
                          static_cast<double>(horizon);
  const std::uint64_t background = rng.poisson(expected);
  for (std::uint64_t i = 0; i < background; ++i) {
    events_.push_back(
        {static_cast<std::size_t>(rng.uniform_index(horizon)),
         static_cast<std::size_t>(rng.uniform_index(model.machine().node_count)),
         HardwareEventCategory::PcieError, "PCIe link correctable error"});
  }

  std::sort(events_.begin(), events_.end(),
            [](const HardwareEvent& a, const HardwareEvent& b) {
              return a.t < b.t;
            });
}

std::vector<const HardwareEvent*> HardwareLogSimulator::events_in_window(
    std::size_t t0, std::size_t t1) const {
  std::vector<const HardwareEvent*> result;
  for (const HardwareEvent& event : events_) {
    if (event.t >= t0 && event.t < t1) result.push_back(&event);
  }
  return result;
}

std::vector<std::size_t> HardwareLogSimulator::nodes_with(
    HardwareEventCategory category, std::size_t t0, std::size_t t1) const {
  std::vector<std::size_t> nodes;
  for (const HardwareEvent& event : events_) {
    if (event.category == category && event.t >= t0 && event.t < t1) {
      nodes.push_back(event.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace imrdmd::telemetry
