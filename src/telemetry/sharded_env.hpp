// Sensor-group slicing adapter over SensorModel for the unified engine
// (core/assessor.hpp): derives shard groupings from the machine topology and
// streams whole-machine chunks, while also exposing per-group windows so a
// consumer can materialize just one shard's rows.
//
// Grouping rules:
//   * Rack — one group per populated rack (node ids are rack-major, so each
//     group is a contiguous sensor range). The natural fleet partition: the
//     paper's case studies reason rack-by-rack, and rack-local models keep
//     the strongest thermal couplings (blade/chassis neighbors) together.
//   * Contiguous — `group_count` near-equal contiguous index blocks,
//     topology-blind; useful for load-balancing experiments.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/stream.hpp"
#include "telemetry/env_stream.hpp"
#include "telemetry/sensor_model.hpp"

namespace imrdmd::telemetry {

/// Sensor groups by rack: group r holds the sensors of every populated node
/// whose place_of().rack == r, in machine sensor order. Racks without
/// populated nodes are omitted.
std::vector<std::vector<std::size_t>> rack_groups(const MachineSpec& spec);

struct ShardedEnvOptions {
  /// Chunking/horizon of the underlying stream (sensor_subset must stay
  /// empty — the fleet driver consumes whole-machine chunks).
  EnvStreamOptions stream;
  /// How the machine's sensors are partitioned into groups.
  enum class GroupBy { Rack, Contiguous };
  GroupBy group_by = GroupBy::Rack;
  /// Group count for GroupBy::Contiguous (ignored for Rack).
  std::size_t group_count = 1;
};

/// A full core::ChunkSource: position()/seek()/replay obey the seekable-
/// source contract (seek-then-read ≡ straight read, bitwise; seek past the
/// horizon throws without corrupting the stream), verified by the shared
/// conformance harness in tests/chunk_source_conformance.hpp — which is
/// what lets this source sit under checkpointed fleet runs, including as
/// the rank-0 ingestion source of the distributed core::Assessor topology.
class ShardedEnvSource final : public core::ChunkSource {
 public:
  /// `model` must outlive the source.
  ShardedEnvSource(const SensorModel& model, ShardedEnvOptions options);

  /// Whole-machine chunk (all sensors), as the fleet driver expects.
  std::optional<Mat> next_chunk() override;
  std::size_t sensors() const override;

  /// The derived sensor partition, ready for AssessorConfig::groups.
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }

  /// Rows of group `g` over snapshots [t0, t0 + count), generated directly
  /// from the sensor model without materializing the full machine window.
  Mat group_window(std::size_t g, std::size_t t0, std::size_t count) const;

  /// Per-rank ingestion source (core::IngestMode::PerRank): a seekable
  /// EnvLogStream restricted to exactly the sensor rows rank `rank` of
  /// `ranks` owns under the engine's contiguous ownership rule
  /// (core::rank_group_range over groups(), rows in owned_sensor_rows()
  /// order), generated straight from the sensor model — no process ever
  /// materializes rows it will not fit. Same chunking/horizon as this
  /// source, so the replicas advance in lockstep.
  EnvLogStream rank_source(std::size_t ranks, std::size_t rank) const;

  std::size_t position() const override { return stream_.position(); }
  void seek(std::size_t snapshot) override { stream_.seek(snapshot); }

 private:
  const SensorModel& model_;
  std::vector<std::vector<std::size_t>> groups_;
  EnvStreamOptions stream_options_;
  EnvLogStream stream_;
};

}  // namespace imrdmd::telemetry
