// Job log substrate (paper's fidelity (ii): "job logs detailing the
// applications utilizing the systems and their attributes — nodes used,
// start and end times").
//
// A deterministic scheduler simulation: jobs arrive as a Poisson process,
// request power-law-ish node counts and exponential durations, and are
// placed first-fit on contiguous node ranges (Cray-style allocation keeps
// heat loads spatially clustered, which is what makes the rack views of the
// paper's Figs. 4/6 show coherent colored regions).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "telemetry/machine.hpp"

namespace imrdmd::telemetry {

struct JobRecord {
  std::size_t job_id = 0;
  std::string project;
  /// Allocated nodes: [node_begin, node_begin + node_count).
  std::size_t node_begin = 0;
  std::size_t node_count = 0;
  /// Snapshot-index extent [t_start, t_end).
  std::size_t t_start = 0;
  std::size_t t_end = 0;

  bool covers(std::size_t node, std::size_t t) const {
    return node >= node_begin && node < node_begin + node_count &&
           t >= t_start && t < t_end;
  }
};

struct JobLogOptions {
  /// Mean snapshots between job arrivals.
  double mean_interarrival = 40.0;
  /// Mean job duration in snapshots.
  double mean_duration = 400.0;
  /// Largest node request as a fraction of the machine.
  double max_fraction = 0.25;
  /// No arrivals at or after this snapshot (0 = unlimited). Running jobs
  /// still finish; used by scenarios that drain the machine.
  std::size_t arrival_cutoff = 0;
  /// Project names cycled through by arriving jobs.
  std::vector<std::string> projects = {"climate-sim", "qcd-lattice",
                                       "cosmo-nbody", "ai-training"};
  std::uint64_t seed = 1234;
};

/// Generates and queries a deterministic job schedule over [0, horizon).
class JobLogSimulator {
 public:
  JobLogSimulator(const MachineSpec& machine, JobLogOptions options = {});

  /// Simulates arrivals up to snapshot `horizon` (idempotent; extends on
  /// repeated calls with a larger horizon).
  void simulate_until(std::size_t horizon);

  const std::vector<JobRecord>& jobs() const { return jobs_; }

  /// Jobs whose extent intersects [t0, t1).
  std::vector<const JobRecord*> jobs_in_window(std::size_t t0,
                                               std::size_t t1) const;

  /// Nodes allocated to any job at snapshot t.
  std::vector<std::size_t> nodes_busy_at(std::size_t t) const;

  /// Nodes used by jobs of `project` anywhere in [t0, t1).
  std::vector<std::size_t> nodes_of_project(const std::string& project,
                                            std::size_t t0,
                                            std::size_t t1) const;

  /// Machine utilization (busy node fraction) at snapshot t.
  double utilization_at(std::size_t t) const;

 private:
  std::optional<std::size_t> first_fit(std::size_t count, std::size_t t) const;

  MachineSpec machine_;
  JobLogOptions options_;
  Rng rng_;
  std::size_t simulated_until_ = 0;
  double next_arrival_ = 0.0;
  std::size_t next_job_id_ = 0;
  std::vector<JobRecord> jobs_;
};

}  // namespace imrdmd::telemetry
