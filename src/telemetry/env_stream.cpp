#include "telemetry/env_stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imrdmd::telemetry {

EnvLogStream::EnvLogStream(const SensorModel& model, EnvStreamOptions options)
    : model_(model), options_(std::move(options)) {
  IMRDMD_REQUIRE_ARG(options_.chunk_snapshots > 0,
                     "chunk_snapshots must be positive");
  if (options_.initial_snapshots == 0) {
    options_.initial_snapshots = options_.chunk_snapshots;
  }
  for (std::size_t s : options_.sensor_subset) {
    IMRDMD_REQUIRE_ARG(s < model_.sensors(), "sensor subset out of range");
  }
}

void EnvLogStream::seek(std::size_t snapshot) {
  IMRDMD_REQUIRE_ARG(snapshot <= options_.total_snapshots,
                     "seek past the stream horizon");
  position_ = snapshot;
}

std::size_t EnvLogStream::sensors() const {
  return options_.sensor_subset.empty() ? model_.sensors()
                                        : options_.sensor_subset.size();
}

std::optional<Mat> EnvLogStream::next_chunk() {
  if (position_ >= options_.total_snapshots) return std::nullopt;
  const std::size_t want =
      position_ == 0 ? options_.initial_snapshots : options_.chunk_snapshots;
  const std::size_t count =
      std::min(want, options_.total_snapshots - position_);
  Mat chunk =
      options_.sensor_subset.empty()
          ? model_.window(position_, count)
          : model_.window_for(
                std::span<const std::size_t>(options_.sensor_subset.data(),
                                             options_.sensor_subset.size()),
                position_, count);
  position_ += count;
  return chunk;
}

}  // namespace imrdmd::telemetry
