// Generative environment-log model (the repository's substitute for the
// proprietary Theta/Polaris sensor datasets — see DESIGN.md, substitutions).
//
// Each sensor reading is a deterministic function of (seed, sensor, t):
//
//   value = base(node) + facility_trend(t) + diurnal(t, rack)
//         + job_heat(node, t)           (attached job schedule, thermal ramp)
//         + neighbor_leak(node, t)      (spatial coupling within the chassis)
//         + cooling_oscillation(t, node)     (mid-frequency)
//         + colored_noise(t, sensor) + white_noise(t, sensor)   (fast)
//         + fault effects               (overheat ramp / stall / dropout)
//
// Every term is O(1) to evaluate at any (sensor, t) — no temporal recursion
// — so a streaming consumer can pull arbitrary chunk boundaries and always
// observe the same series (tested). The timescale split (trend, diurnal,
// job transients, oscillation, noise) mirrors what the paper's mrDMD levels
// are designed to separate.
//
// Fault kinds and their observable signatures:
//   Overheat      -> sustained +magnitude on the node (z > 2 in Fig. 4/6)
//   Stall         -> job heat suppressed, slight cooling (negative z)
//   MemoryErrors  -> NO thermal signature; hardware-log events only
//                    (the case-study-1 narrative: error nodes are not hot)
//   SensorDropout -> the reading freezes at its t_begin value
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "telemetry/job_log.hpp"
#include "telemetry/machine.hpp"

namespace imrdmd::telemetry {

using linalg::Mat;

struct FaultSpec {
  enum class Kind { Overheat, Stall, MemoryErrors, SensorDropout };
  Kind kind = Kind::Overheat;
  std::size_t node = 0;
  /// Snapshot extent [t_begin, t_end).
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
  /// Degrees C for Overheat; ignored otherwise.
  double magnitude = 10.0;
};

struct SensorModelOptions {
  double base_temp_c = 48.0;
  /// Per-node static offset range (uniform +-).
  double node_spread_c = 1.5;
  /// Per-channel (GPU) static offset step.
  double channel_step_c = 1.0;
  /// Slow facility trend.
  double trend_amplitude_c = 2.0;
  double trend_period_s = 6.0 * 3600.0;
  /// Diurnal cycle, phase-shifted per rack (cooling loop order).
  double diurnal_amplitude_c = 3.0;
  double diurnal_period_s = 24.0 * 3600.0;
  /// Heat added by a running job, with first-order thermal ramp.
  double job_heat_c = 9.0;
  double thermal_tau_s = 180.0;
  /// Fraction of neighbor job heat leaking into a node.
  double spatial_coupling = 0.25;
  /// Cooling-loop oscillation (mid frequency).
  double oscillation_amplitude_c = 0.8;
  double oscillation_period_s = 600.0;
  /// Per-node heterogeneity of the oscillation amplitude: the effective
  /// amplitude is amplitude_c * (1 + spread * u), u hashed in [-1, 1].
  /// Real fleets show wildly different swing sizes per sensor; this is what
  /// makes raw-series variance dynamics-dominated (Fig. 8's setting).
  double oscillation_amplitude_spread = 0.0;
  /// Colored noise: three random-phase tones per sensor in this period
  /// band (short periods = the "high-frequency noise" mrDMD strips).
  double colored_noise_c = 0.35;
  double colored_min_period_s = 45.0;
  double colored_max_period_s = 240.0;
  /// White measurement noise.
  double white_noise_c = 0.25;
  /// Stall fault cooling offset (negative pull toward idle).
  double stall_cool_c = 4.0;
  /// Machine-wide regime shift: the facility cools by `regime_shift_c`
  /// degrees across a sigmoid centered at snapshot `regime_mid_t` with the
  /// given width (0 disables). Models the hot-then-cool day of case study 2.
  double regime_shift_c = 0.0;
  std::size_t regime_mid_t = 0;
  double regime_width_t = 50.0;
  std::uint64_t seed = 99;
};

class SensorModel {
 public:
  explicit SensorModel(MachineSpec spec, SensorModelOptions options = {});

  /// Attaches a job schedule whose allocations produce heat; the simulator
  /// is advanced lazily as windows are generated. May be null.
  void attach_jobs(JobLogSimulator* jobs) { jobs_ = jobs; }

  void add_fault(const FaultSpec& fault);
  const std::vector<FaultSpec>& faults() const { return faults_; }

  /// Nodes with a fault of `kind` intersecting [t0, t1).
  std::vector<std::size_t> fault_nodes(FaultSpec::Kind kind, std::size_t t0,
                                       std::size_t t1) const;

  const MachineSpec& machine() const { return spec_; }
  std::size_t sensors() const { return spec_.sensor_count(); }
  double dt_seconds() const { return spec_.dt_seconds; }

  /// Reading of sensor `sensor` at snapshot `t`. O(1).
  double value(std::size_t sensor, std::size_t t) const;

  /// Dense window: all sensors x [t0, t0 + count).
  Mat window(std::size_t t0, std::size_t count) const;

  /// Window restricted to a sensor subset (rows in subset order).
  Mat window_for(std::span<const std::size_t> sensors, std::size_t t0,
                 std::size_t count) const;

 private:
  double raw_value(std::size_t sensor, std::size_t t) const;
  double job_heat_at(std::size_t node, double t) const;

  MachineSpec spec_;
  SensorModelOptions options_;
  JobLogSimulator* jobs_ = nullptr;
  std::vector<FaultSpec> faults_;
};

}  // namespace imrdmd::telemetry
