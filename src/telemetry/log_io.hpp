// CSV persistence for the three log fidelities.
//
// The paper's pipeline consumes logs collected by facility infrastructure;
// this module is the interchange layer: environment windows, job records,
// and hardware events round-trip through plain CSV so external data can be
// substituted for the simulators.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "telemetry/hardware_log.hpp"
#include "telemetry/job_log.hpp"

namespace imrdmd::telemetry {

/// Writes an environment window (sensors x snapshots) with a header of
/// snapshot indices starting at t0; one row per sensor.
void write_env_window_csv(const std::string& path, const linalg::Mat& window,
                          std::size_t t0);

/// Reads a window written by write_env_window_csv; returns the matrix and
/// fills t0.
linalg::Mat read_env_window_csv(const std::string& path, std::size_t& t0);

void write_job_log_csv(const std::string& path,
                       const std::vector<JobRecord>& jobs);
std::vector<JobRecord> read_job_log_csv(const std::string& path);

void write_hardware_log_csv(const std::string& path,
                            const std::vector<HardwareEvent>& events);
std::vector<HardwareEvent> read_hardware_log_csv(const std::string& path);

}  // namespace imrdmd::telemetry
