#include "baselines/pca.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::baselines {

namespace {

std::vector<double> feature_means(const Mat& samples) {
  std::vector<double> mean(samples.cols(), 0.0);
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const double* row = samples.data() + i * samples.cols();
    for (std::size_t j = 0; j < samples.cols(); ++j) mean[j] += row[j];
  }
  const double inv = 1.0 / static_cast<double>(samples.rows());
  for (double& m : mean) m *= inv;
  return mean;
}

Mat centered(const Mat& samples, const std::vector<double>& mean) {
  Mat out = samples;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* row = out.data() + i * out.cols();
    for (std::size_t j = 0; j < out.cols(); ++j) row[j] -= mean[j];
  }
  return out;
}

}  // namespace

Pca::Pca(PcaOptions options) : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.components >= 1, "need >= 1 component");
}

void Pca::fit(const Mat& samples) {
  IMRDMD_REQUIRE_DIMS(samples.rows() >= 2, "PCA needs >= 2 samples");
  const std::size_t k =
      std::min(options_.components, std::min(samples.rows(), samples.cols()));
  mean_ = feature_means(samples);
  const Mat x = centered(samples, mean_);

  linalg::SvdResult f;
  const std::size_t min_dim = std::min(x.rows(), x.cols());
  if (options_.allow_randomized && min_dim > 4 * k && min_dim > 32) {
    Rng rng(options_.seed);
    f = linalg::randomized_svd(x, k, rng);
  } else {
    f = linalg::svd(x);
    f.truncate(k);
  }
  components_ = f.v.transposed();  // k x f
  explained_variance_.assign(f.s.size(), 0.0);
  for (std::size_t i = 0; i < f.s.size(); ++i) {
    explained_variance_[i] =
        f.s[i] * f.s[i] / static_cast<double>(samples.rows() - 1);
  }
  fitted_ = true;
}

Mat Pca::transform(const Mat& samples) const {
  IMRDMD_REQUIRE_ARG(fitted_, "PCA transform before fit");
  IMRDMD_REQUIRE_DIMS(samples.cols() == mean_.size(),
                      "PCA feature count mismatch");
  const Mat x = centered(samples, mean_);
  return linalg::matmul_a_bt(x, components_);
}

Mat Pca::fit_transform(const Mat& samples) {
  fit(samples);
  return transform(samples);
}

IncrementalPca::IncrementalPca(IncrementalPcaOptions options)
    : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.components >= 1, "need >= 1 component");
}

void IncrementalPca::partial_fit(const Mat& batch) {
  IMRDMD_REQUIRE_DIMS(batch.rows() >= 1, "empty IPCA batch");
  const std::size_t n_new = batch.rows();
  const std::size_t f = batch.cols();

  if (samples_seen_ == 0) {
    mean_.assign(f, 0.0);
  } else {
    IMRDMD_REQUIRE_DIMS(f == mean_.size(), "IPCA feature count changed");
  }
  const std::size_t n_total = samples_seen_ + n_new;

  // Updated mean and the mean-correction row of Ross et al. (2008).
  const std::vector<double> batch_mean = feature_means(batch);
  std::vector<double> new_mean(f);
  for (std::size_t j = 0; j < f; ++j) {
    new_mean[j] = (mean_[j] * static_cast<double>(samples_seen_) +
                   batch_mean[j] * static_cast<double>(n_new)) /
                  static_cast<double>(n_total);
  }

  // Stack: [ diag(s) * components ; batch - batch_mean ; correction ].
  const std::size_t k_prev = singular_values_.size();
  const bool correction =
      samples_seen_ > 0;  // rank-1 term linking old and new means
  Mat stack(k_prev + n_new + (correction ? 1 : 0), f);
  for (std::size_t i = 0; i < k_prev; ++i) {
    const double s = singular_values_[i];
    for (std::size_t j = 0; j < f; ++j) {
      stack(i, j) = s * components_(i, j);
    }
  }
  for (std::size_t i = 0; i < n_new; ++i) {
    for (std::size_t j = 0; j < f; ++j) {
      stack(k_prev + i, j) = batch(i, j) - batch_mean[j];
    }
  }
  if (correction) {
    const double scale = std::sqrt(static_cast<double>(samples_seen_) *
                                   static_cast<double>(n_new) /
                                   static_cast<double>(n_total));
    for (std::size_t j = 0; j < f; ++j) {
      stack(k_prev + n_new, j) = scale * (mean_[j] - batch_mean[j]);
    }
  }

  linalg::SvdResult fsvd = linalg::svd(stack);
  const std::size_t keep =
      std::min(options_.components, std::min(fsvd.s.size(), n_total));
  fsvd.truncate(keep);
  components_ = fsvd.v.transposed();
  singular_values_ = std::move(fsvd.s);
  mean_ = std::move(new_mean);
  samples_seen_ = n_total;
}

Mat IncrementalPca::transform(const Mat& samples) const {
  IMRDMD_REQUIRE_ARG(samples_seen_ > 0, "IPCA transform before partial_fit");
  IMRDMD_REQUIRE_DIMS(samples.cols() == mean_.size(),
                      "IPCA feature count mismatch");
  const Mat x = centered(samples, mean_);
  return linalg::matmul_a_bt(x, components_);
}

}  // namespace imrdmd::baselines
