#include "baselines/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "baselines/tsne.hpp"

namespace imrdmd::baselines {

double silhouette_score(const linalg::Mat& embedding,
                        std::span<const int> labels) {
  const std::size_t n = embedding.rows();
  IMRDMD_REQUIRE_DIMS(labels.size() == n, "label count mismatch");
  std::size_t count[2] = {0, 0};
  for (int label : labels) {
    IMRDMD_REQUIRE_ARG(label == 0 || label == 1, "labels must be 0/1");
    ++count[label];
  }
  IMRDMD_REQUIRE_ARG(count[0] >= 2 && count[1] >= 2,
                     "silhouette needs >= 2 points per class");

  const linalg::Mat d2 = pairwise_sq_distances(embedding);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double sum_same = 0.0, sum_other = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double d = std::sqrt(d2(i, j));
      if (labels[j] == labels[i]) {
        sum_same += d;
      } else {
        sum_other += d;
      }
    }
    const double a = sum_same / static_cast<double>(count[labels[i]] - 1);
    const double b =
        sum_other / static_cast<double>(count[1 - labels[i]]);
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return total / static_cast<double>(n);
}

double cohens_d(std::span<const double> values, std::span<const int> labels) {
  IMRDMD_REQUIRE_DIMS(values.size() == labels.size(), "label count mismatch");
  double sum[2] = {0.0, 0.0};
  double sum_sq[2] = {0.0, 0.0};
  std::size_t count[2] = {0, 0};
  for (std::size_t i = 0; i < values.size(); ++i) {
    IMRDMD_REQUIRE_ARG(labels[i] == 0 || labels[i] == 1, "labels must be 0/1");
    sum[labels[i]] += values[i];
    sum_sq[labels[i]] += values[i] * values[i];
    ++count[labels[i]];
  }
  IMRDMD_REQUIRE_ARG(count[0] >= 2 && count[1] >= 2,
                     "cohens_d needs >= 2 points per class");
  const double mean0 = sum[0] / count[0];
  const double mean1 = sum[1] / count[1];
  const double var0 =
      (sum_sq[0] - sum[0] * mean0) / static_cast<double>(count[0] - 1);
  const double var1 =
      (sum_sq[1] - sum[1] * mean1) / static_cast<double>(count[1] - 1);
  const double pooled = std::sqrt(
      ((count[0] - 1) * var0 + (count[1] - 1) * var1) /
      static_cast<double>(count[0] + count[1] - 2));
  if (pooled == 0.0) return mean0 == mean1 ? 0.0 : 1e9;
  return std::abs(mean1 - mean0) / pooled;
}

double knn_accuracy(const linalg::Mat& embedding, std::span<const int> labels,
                    std::size_t k) {
  const std::size_t n = embedding.rows();
  IMRDMD_REQUIRE_DIMS(labels.size() == n, "label count mismatch");
  IMRDMD_REQUIRE_ARG(k >= 1 && k < n, "k must be in [1, n)");
  const linalg::Mat d2 = pairwise_sq_distances(embedding);
  std::size_t correct = 0;
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + k + 1, order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return d2(i, a) < d2(i, b);
                      });
    std::size_t votes = 0;
    std::size_t seen = 0;
    for (std::size_t m = 0; m < n && seen < k; ++m) {
      if (order[m] == i) continue;
      votes += static_cast<std::size_t>(labels[order[m]]);
      ++seen;
    }
    const int predicted = 2 * votes > k ? 1 : 0;
    correct += (predicted == labels[i]);
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace imrdmd::baselines
