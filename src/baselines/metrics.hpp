// Embedding-quality metrics used to quantify the paper's Fig. 8 claim
// (only mrDMD/I-mrDMD separate baseline from non-baseline readings).
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"

namespace imrdmd::baselines {

/// Mean silhouette coefficient of a 2-class labeling over an embedding
/// (rows = points). Returns a value in [-1, 1]; higher = better separated.
/// Requires at least 2 points per class.
double silhouette_score(const linalg::Mat& embedding,
                        std::span<const int> labels);

/// 1-D separation score for scalar summaries (e.g. z-scores):
/// |mean_1 - mean_0| / pooled standard deviation (Cohen's d).
double cohens_d(std::span<const double> values, std::span<const int> labels);

/// Leave-one-out k-NN classification accuracy of a 0/1 labeling over an
/// embedding: the local class purity. Robust to multi-modal classes (e.g.
/// "anomalous" readings split between hot and cold extremes), which
/// silhouette punishes. Ties broken toward label 0.
double knn_accuracy(const linalg::Mat& embedding, std::span<const int> labels,
                    std::size_t k = 1);

}  // namespace imrdmd::baselines
