#include "baselines/tsne.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/pca.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/blas.hpp"

namespace imrdmd::baselines {

Mat pairwise_sq_distances(const Mat& samples) {
  const std::size_t n = samples.rows();
  // ||xi - xj||^2 = ||xi||^2 + ||xj||^2 - 2 xi.xj through one GEMM.
  const Mat gram = linalg::matmul_a_bt(samples, samples);
  Mat d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double v = gram(i, i) + gram(j, j) - 2.0 * gram(i, j);
      d(i, j) = v > 0.0 ? v : 0.0;
    }
  }
  return d;
}

namespace {

// Row-stochastic conditional affinities at the target perplexity (binary
// search over the Gaussian bandwidth beta = 1/(2 sigma^2) per point).
Mat conditional_affinities(const Mat& d2, double perplexity) {
  const std::size_t n = d2.rows();
  const double target_entropy = std::log(perplexity);
  Mat p(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double beta = 1.0;
    double beta_lo = 0.0;
    double beta_hi = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
      // Entropy and affinities at the current beta.
      double sum = 0.0;
      double weighted = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double w = std::exp(-beta * d2(i, j));
        sum += w;
        weighted += w * d2(i, j);
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + (std::isfinite(beta_hi) ? beta_hi : beta * 2));
        continue;
      }
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::abs(diff) < 1e-5) break;
      if (diff > 0.0) {
        beta_lo = beta;
        beta = std::isfinite(beta_hi) ? 0.5 * (beta + beta_hi) : beta * 2.0;
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta + beta_lo);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      p(i, j) = std::exp(-beta * d2(i, j));
      sum += p(i, j);
    }
    const double inv = sum > 0.0 ? 1.0 / sum : 0.0;
    for (std::size_t j = 0; j < n; ++j) p(i, j) *= inv;
  }
  return p;
}

}  // namespace

Tsne::Tsne(TsneOptions options) : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.components >= 1, "need >= 1 component");
  IMRDMD_REQUIRE_ARG(options_.perplexity > 1.0, "perplexity must exceed 1");
}

Mat Tsne::fit_transform(const Mat& samples) {
  const std::size_t n = samples.rows();
  IMRDMD_REQUIRE_DIMS(n >= 4, "t-SNE needs at least 4 samples");
  IMRDMD_REQUIRE_ARG(options_.perplexity < static_cast<double>(n),
                     "perplexity must be below the sample count");

  // Optional PCA pre-reduction for wide inputs.
  Mat x = samples;
  if (options_.pca_dims > 0 && samples.cols() > options_.pca_dims &&
      n > options_.pca_dims) {
    PcaOptions pca_options;
    pca_options.components = options_.pca_dims;
    pca_options.seed = options_.seed;
    Pca pca(pca_options);
    x = pca.fit_transform(samples);
  }

  // Symmetrized joint affinities with early exaggeration.
  const Mat d2 = pairwise_sq_distances(x);
  const Mat cond = conditional_affinities(d2, options_.perplexity);
  Mat p(n, n);
  double p_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) = cond(i, j) + cond(j, i);
      p_sum += p(i, j);
    }
  }
  for (std::size_t i = 0; i < p.size(); ++i) {
    p.data()[i] = std::max(p.data()[i] / p_sum, 1e-12);
  }

  // Random small init (sklearn default scale 1e-4).
  const std::size_t k = options_.components;
  Rng rng(options_.seed);
  Mat y(n, k);
  for (std::size_t i = 0; i < y.size(); ++i) y.data()[i] = 1e-4 * rng.normal();

  Mat velocity(n, k);
  Mat gains(n, k, 1.0);
  Mat gradient(n, k);
  std::vector<double> q_num(n * n);

  // learning_rate == 0 selects sklearn's 'auto' heuristic:
  // max(n / early_exaggeration / 4, 50).
  const double eta =
      options_.learning_rate > 0.0
          ? options_.learning_rate
          : std::max(static_cast<double>(n) /
                         (4.0 * options_.early_exaggeration),
                     50.0);

  for (std::size_t iter = 0; iter < options_.iterations; ++iter) {
    const double exaggeration =
        iter < options_.exaggeration_iters ? options_.early_exaggeration : 1.0;
    const double momentum = iter < options_.exaggeration_iters
                                ? options_.initial_momentum
                                : options_.final_momentum;

    // Student-t low-dimensional affinities.
    double q_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) {
          q_num[i * n + j] = 0.0;
          continue;
        }
        double dist = 0.0;
        for (std::size_t c = 0; c < k; ++c) {
          const double d = y(i, c) - y(j, c);
          dist += d * d;
        }
        const double w = 1.0 / (1.0 + dist);
        q_num[i * n + j] = w;
        q_sum += w;
      }
    }
    const double q_inv = q_sum > 0.0 ? 1.0 / q_sum : 0.0;

    // Full-batch gradient: 4 sum_j (p_ij*ex - q_ij) w_ij (y_i - y_j).
    // All gradients are computed from the same snapshot of y — interleaving
    // updates with gradient evaluation is violently unstable at the tiny
    // initialization scale (stale kernel sums meet moved points).
    kl_ = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) gradient(i, c) = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q_num[i * n + j];
        const double qij = std::max(w * q_inv, 1e-12);
        const double coeff = 4.0 * (exaggeration * p(i, j) - qij) * w;
        for (std::size_t c = 0; c < k; ++c) {
          gradient(i, c) += coeff * (y(i, c) - y(j, c));
        }
        if (exaggeration == 1.0) kl_ += p(i, j) * std::log(p(i, j) / qij);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        // Adaptive gains (Jacobs rule), as in the reference implementation.
        const bool same_sign = (gradient(i, c) > 0.0) == (velocity(i, c) > 0.0);
        gains(i, c) = std::max(0.01, same_sign ? gains(i, c) * 0.8
                                               : gains(i, c) + 0.2);
        velocity(i, c) =
            momentum * velocity(i, c) - eta * gains(i, c) * gradient(i, c);
        y(i, c) += velocity(i, c);
      }
    }
    // Re-center to keep the embedding from drifting.
    for (std::size_t c = 0; c < k; ++c) {
      double mean = 0.0;
      for (std::size_t i = 0; i < n; ++i) mean += y(i, c);
      mean /= static_cast<double>(n);
      for (std::size_t i = 0; i < n; ++i) y(i, c) -= mean;
    }
  }
  return y;
}

}  // namespace imrdmd::baselines
