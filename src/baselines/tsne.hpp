// Exact t-SNE (van der Maaten & Hinton), one of the paper's Fig. 8/9
// comparison methods (scikit-learn TSNE(n_components=2, perplexity=30,
// learning_rate=0.01) in the paper's settings).
//
// Implementation notes: exact O(N^2) gradients (the sample counts in the
// paper's comparisons are ~10^3), per-point bandwidths by binary search to
// the target perplexity, early exaggeration, momentum gradient descent.
// Inputs with many features are pre-reduced by PCA (sklearn's standard
// pipeline for wide data) — controlled by `pca_dims`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/matrix.hpp"

namespace imrdmd::baselines {

using linalg::Mat;

struct TsneOptions {
  std::size_t components = 2;
  double perplexity = 30.0;
  /// 0 = sklearn's 'auto' heuristic (max(n / (4 early_exaggeration), 50)).
  double learning_rate = 0.0;
  std::size_t iterations = 500;
  std::size_t exaggeration_iters = 250;
  double early_exaggeration = 12.0;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  /// Pre-reduce features with PCA when wider than this (0 disables).
  std::size_t pca_dims = 50;
  std::uint64_t seed = 23;
};

class Tsne {
 public:
  explicit Tsne(TsneOptions options = {});

  /// Embeds samples (n x f) into n x components. Requires n >= 4 and
  /// perplexity < n.
  Mat fit_transform(const Mat& samples);

  /// Final Kullback-Leibler divergence of the fit.
  double kl_divergence() const { return kl_; }

 private:
  TsneOptions options_;
  double kl_ = 0.0;
};

/// Squared Euclidean distance matrix between sample rows (shared by t-SNE
/// and UMAP).
Mat pairwise_sq_distances(const Mat& samples);

}  // namespace imrdmd::baselines
