#include "baselines/umap.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "baselines/pca.hpp"
#include "baselines/tsne.hpp"  // pairwise_sq_distances
#include "common/error.hpp"
#include "common/rng.hpp"

namespace imrdmd::baselines {

namespace {

struct Edge {
  std::size_t i;
  std::size_t j;
  double weight;
};

// Reference membership curve the (a, b) parameters approximate.
double target_curve(double d, double min_dist, double spread) {
  return d <= min_dist ? 1.0 : std::exp(-(d - min_dist) / spread);
}

double curve_error(double a, double b, double min_dist, double spread) {
  double err = 0.0;
  for (int s = 1; s <= 60; ++s) {
    const double d = 3.0 * spread * s / 60.0;
    const double fit = 1.0 / (1.0 + a * std::pow(d, 2.0 * b));
    const double want = target_curve(d, min_dist, spread);
    err += (fit - want) * (fit - want);
  }
  return err;
}

}  // namespace

void fit_umap_curve(double min_dist, double spread, double& a, double& b) {
  // Coarse-to-fine grid search; the surface is smooth and unimodal in the
  // region of interest.
  double best_a = 1.0, best_b = 1.0;
  double best = curve_error(best_a, best_b, min_dist, spread);
  double a_lo = 0.2, a_hi = 4.0, b_lo = 0.4, b_hi = 2.5;
  for (int refine = 0; refine < 4; ++refine) {
    for (int ia = 0; ia <= 24; ++ia) {
      for (int ib = 0; ib <= 24; ++ib) {
        const double ca = a_lo + (a_hi - a_lo) * ia / 24.0;
        const double cb = b_lo + (b_hi - b_lo) * ib / 24.0;
        const double err = curve_error(ca, cb, min_dist, spread);
        if (err < best) {
          best = err;
          best_a = ca;
          best_b = cb;
        }
      }
    }
    const double a_span = (a_hi - a_lo) / 6.0;
    const double b_span = (b_hi - b_lo) / 6.0;
    a_lo = std::max(0.05, best_a - a_span);
    a_hi = best_a + a_span;
    b_lo = std::max(0.1, best_b - b_span);
    b_hi = best_b + b_span;
  }
  a = best_a;
  b = best_b;
}

Umap::Umap(UmapOptions options) : options_(options) {
  IMRDMD_REQUIRE_ARG(options_.n_neighbors >= 2, "n_neighbors must be >= 2");
  IMRDMD_REQUIRE_ARG(options_.components >= 1, "need >= 1 component");
}

Mat Umap::fit_transform(const Mat& samples) {
  return fit_transform_anchored(samples, Mat(), 0.0);
}

Mat Umap::fit_transform_anchored(const Mat& samples, const Mat& anchor,
                                 double anchor_weight) {
  const std::size_t n = samples.rows();
  const std::size_t k_neighbors = std::min(options_.n_neighbors, n - 1);
  IMRDMD_REQUIRE_DIMS(n > options_.n_neighbors,
                      "UMAP needs more samples than n_neighbors");
  if (!anchor.empty()) {
    IMRDMD_REQUIRE_DIMS(anchor.rows() == n &&
                            anchor.cols() == options_.components,
                        "anchor shape mismatch");
  }

  // Exact k-NN.
  const Mat d2 = pairwise_sq_distances(samples);
  std::vector<std::vector<std::size_t>> knn(n);
  std::vector<std::vector<double>> knn_d(n);
  {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::iota(order.begin(), order.end(), 0);
      std::partial_sort(order.begin(), order.begin() + k_neighbors + 1,
                        order.end(), [&](std::size_t a, std::size_t b) {
                          return d2(i, a) < d2(i, b);
                        });
      for (std::size_t m = 0; m <= k_neighbors; ++m) {
        if (order[m] == i) continue;
        knn[i].push_back(order[m]);
        knn_d[i].push_back(std::sqrt(d2(i, order[m])));
        if (knn[i].size() == k_neighbors) break;
      }
    }
  }

  // Smooth-kNN-distances: rho_i = nearest distance, sigma_i by binary
  // search so sum_j exp(-(d_ij - rho_i)_+ / sigma_i) = log2(k).
  const double target = std::log2(static_cast<double>(k_neighbors));
  std::vector<double> rho(n, 0.0), sigma(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    rho[i] = *std::min_element(knn_d[i].begin(), knn_d[i].end());
    double lo = 1e-8, hi = 1e4;
    for (int iter = 0; iter < 64; ++iter) {
      const double mid = 0.5 * (lo + hi);
      double sum = 0.0;
      for (double d : knn_d[i]) {
        sum += std::exp(-std::max(0.0, d - rho[i]) / mid);
      }
      if (sum > target) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    sigma[i] = 0.5 * (lo + hi);
  }

  // Fuzzy simplicial set: directed weights, then probabilistic union.
  Mat w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < knn[i].size(); ++m) {
      const std::size_t j = knn[i][m];
      w(i, j) = std::exp(-std::max(0.0, knn_d[i][m] - rho[i]) / sigma[i]);
    }
  }
  std::vector<Edge> edges;
  double w_max = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double weight = w(i, j) + w(j, i) - w(i, j) * w(j, i);
      if (weight > 1e-6) {
        edges.push_back({i, j, weight});
        w_max = std::max(w_max, weight);
      }
    }
  }

  double a, b;
  fit_umap_curve(options_.min_dist, options_.spread, a, b);

  // PCA init scaled into a ~[-10, 10] box (spectral-init scale).
  const std::size_t kc = options_.components;
  Mat y;
  {
    PcaOptions pca_options;
    pca_options.components = kc;
    pca_options.seed = options_.seed;
    Pca pca(pca_options);
    y = pca.fit_transform(samples);
    double extent = 1e-12;
    for (std::size_t i = 0; i < y.size(); ++i) {
      extent = std::max(extent, std::abs(y.data()[i]));
    }
    y *= 10.0 / extent;
  }

  Rng rng(options_.seed);
  const double clip = 4.0;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double alpha =
        options_.learning_rate *
        (1.0 - static_cast<double>(epoch) / static_cast<double>(options_.epochs));
    for (const Edge& edge : edges) {
      // Edge-strength-proportional update (reference schedules whole-epoch
      // passes per edge; scaling the step by w/w_max is the dense-graph
      // equivalent).
      const double strength = edge.weight / w_max;
      double dist2 = 0.0;
      for (std::size_t c = 0; c < kc; ++c) {
        const double d = y(edge.i, c) - y(edge.j, c);
        dist2 += d * d;
      }
      // Attractive force along the edge.
      if (dist2 > 0.0) {
        const double pd = std::pow(dist2, b - 1.0);
        const double coeff = -2.0 * a * b * pd / (1.0 + a * pd * dist2);
        for (std::size_t c = 0; c < kc; ++c) {
          const double g = std::clamp(
              coeff * (y(edge.i, c) - y(edge.j, c)), -clip, clip);
          y(edge.i, c) += alpha * strength * g;
          y(edge.j, c) -= alpha * strength * g;
        }
      }
      // Negative samples repel edge.i.
      for (std::size_t s = 0; s < options_.negative_samples; ++s) {
        const std::size_t j = rng.uniform_index(n);
        if (j == edge.i) continue;
        double nd2 = 0.0;
        for (std::size_t c = 0; c < kc; ++c) {
          const double d = y(edge.i, c) - y(j, c);
          nd2 += d * d;
        }
        const double coeff =
            2.0 * b / ((0.001 + nd2) * (1.0 + a * std::pow(nd2, b)));
        for (std::size_t c = 0; c < kc; ++c) {
          const double g =
              std::clamp(coeff * (y(edge.i, c) - y(j, c)), -clip, clip);
          y(edge.i, c) += alpha * strength * g;
        }
      }
    }
    // Anchor pull (Aligned-UMAP's longitudinal regularization).
    if (!anchor.empty() && anchor_weight > 0.0) {
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < kc; ++c) {
          y(i, c) += alpha * anchor_weight * (anchor(i, c) - y(i, c));
        }
      }
    }
  }
  return y;
}

AlignedUmap::AlignedUmap(AlignedUmapOptions options) : options_(options) {}

Mat AlignedUmap::fit(const Mat& samples) {
  Umap umap(options_.umap);
  embedding_ = umap.fit_transform(samples);
  fitted_ = true;
  return embedding_;
}

Mat AlignedUmap::update(const Mat& samples) {
  IMRDMD_REQUIRE_ARG(fitted_, "AlignedUmap::update before fit");
  IMRDMD_REQUIRE_DIMS(samples.rows() == embedding_.rows(),
                      "AlignedUmap window sample count changed");
  Umap umap(options_.umap);
  embedding_ = umap.fit_transform_anchored(samples, embedding_,
                                           options_.alignment_weight);
  return embedding_;
}

}  // namespace imrdmd::baselines
