// PCA and incremental PCA — two of the comparison methods in the paper's
// Figs. 8/9 (scikit-learn's PCA(svd_solver='auto') and IncrementalPCA).
//
// Convention (scikit-learn's): rows are samples, columns are features.
// fit() centers features and keeps the leading right singular vectors;
// transform() projects. PCA switches to randomized SVD for large inputs,
// mirroring sklearn's 'auto' policy. IncrementalPca implements the
// mean-corrected SVD update of Ross et al. (2008), processing sample
// batches with O(batch x features) work per call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::baselines {

using linalg::Mat;

struct PcaOptions {
  std::size_t components = 2;
  /// Use randomized SVD when min(shape) exceeds 4x components (sklearn's
  /// 'auto' heuristic); exact Jacobi otherwise.
  bool allow_randomized = true;
  std::uint64_t seed = 17;
};

class Pca {
 public:
  explicit Pca(PcaOptions options = {});

  /// Fits on samples (n x f). Requires n >= 2.
  void fit(const Mat& samples);

  /// Projects samples onto the fitted components (n x k).
  Mat transform(const Mat& samples) const;

  Mat fit_transform(const Mat& samples);

  bool fitted() const { return fitted_; }
  /// k x f row-space basis.
  const Mat& components() const { return components_; }
  /// Per-feature mean.
  const std::vector<double>& mean() const { return mean_; }
  /// Variance explained by each component.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

 private:
  PcaOptions options_;
  bool fitted_ = false;
  Mat components_;
  std::vector<double> mean_;
  std::vector<double> explained_variance_;
};

struct IncrementalPcaOptions {
  std::size_t components = 2;
};

class IncrementalPca {
 public:
  explicit IncrementalPca(IncrementalPcaOptions options = {});

  /// Folds a batch of samples (n_b x f) into the model. The first call
  /// initializes; later calls must keep the feature count. Batches must
  /// satisfy n_b >= 1 (and the cumulative sample count must reach
  /// `components` before transform()).
  void partial_fit(const Mat& batch);

  Mat transform(const Mat& samples) const;

  bool fitted() const { return samples_seen_ > 0; }
  std::size_t samples_seen() const { return samples_seen_; }
  const Mat& components() const { return components_; }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& singular_values() const {
    return singular_values_;
  }

 private:
  IncrementalPcaOptions options_;
  std::size_t samples_seen_ = 0;
  Mat components_;  // k x f
  std::vector<double> singular_values_;
  std::vector<double> mean_;
};

}  // namespace imrdmd::baselines
