// UMAP (McInnes et al.) and Aligned-UMAP (Dadu et al. [64]) — the remaining
// comparison methods of the paper's Figs. 8/9.
//
// This is a faithful compact implementation of the reference algorithm on
// exact k-NN (sample counts here are ~10^3): smooth-kNN-distance bandwidth
// search (target log2(k)), fuzzy simplicial set union w = w1 + w2 - w1 w2,
// PCA initialization, and negative-sampling SGD on the cross-entropy with
// the standard (a, b) curve fitted from min_dist/spread.
//
// AlignedUmap embeds a *sequence* of windows over the same points, adding an
// anchor term that pulls each point toward its position in the previous
// window's embedding — the longitudinal alignment the paper's comparison
// uses for streaming data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::baselines {

using linalg::Mat;

struct UmapOptions {
  std::size_t components = 2;
  std::size_t n_neighbors = 15;
  double min_dist = 0.1;
  double spread = 1.0;
  std::size_t epochs = 200;
  double learning_rate = 1.0;
  std::size_t negative_samples = 5;
  std::uint64_t seed = 29;
};

class Umap {
 public:
  explicit Umap(UmapOptions options = {});

  /// Embeds samples (n x f) into n x components; requires n > n_neighbors.
  Mat fit_transform(const Mat& samples);

  /// Embed with an anchor: each row i is pulled toward `anchor` row i with
  /// strength `anchor_weight` (used by AlignedUmap; anchor may be empty).
  Mat fit_transform_anchored(const Mat& samples, const Mat& anchor,
                             double anchor_weight);

 private:
  UmapOptions options_;
};

struct AlignedUmapOptions {
  UmapOptions umap;
  /// Pull strength toward the previous window's embedding.
  double alignment_weight = 0.05;
};

class AlignedUmap {
 public:
  explicit AlignedUmap(AlignedUmapOptions options = {});

  /// Initial window (like the paper's initial fit).
  Mat fit(const Mat& samples);

  /// Subsequent window over the same points (partial fit): aligned to the
  /// previous embedding.
  Mat update(const Mat& samples);

  bool fitted() const { return fitted_; }
  const Mat& embedding() const { return embedding_; }

 private:
  AlignedUmapOptions options_;
  bool fitted_ = false;
  Mat embedding_;
};

/// Fits the UMAP (a, b) curve parameters from min_dist and spread by
/// least-squares on the reference curve (exposed for tests).
void fit_umap_curve(double min_dist, double spread, double& a, double& b);

}  // namespace imrdmd::baselines
