#include "dmd/spectrum.hpp"

#include <cmath>

namespace imrdmd::dmd {

std::vector<SpectrumPoint> spectrum(const DmdResult& result) {
  const std::vector<double> freq = result.frequencies();
  const std::vector<double> pow = result.powers();
  const std::vector<Complex> psi = result.continuous_eigenvalues();
  std::vector<SpectrumPoint> points(freq.size());
  for (std::size_t i = 0; i < freq.size(); ++i) {
    points[i].frequency_hz = freq[i];
    points[i].power = pow[i];
    points[i].amplitude = std::sqrt(pow[i]);
    points[i].growth_rate = psi[i].real();
    points[i].mode_index = i;
  }
  return points;
}

std::vector<std::size_t> select_modes(const DmdResult& result,
                                      const ModeBand& band) {
  const std::vector<double> freq = result.frequencies();
  const std::vector<double> pow = result.powers();
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < freq.size(); ++i) {
    if (band.contains(freq[i], pow[i])) kept.push_back(i);
  }
  return kept;
}

}  // namespace imrdmd::dmd
