// Row-partitioned (spatially distributed) exact DMD.
//
// The paper's scalability pressure is the sensor dimension P (4,392 nodes x
// 150 sensors on Theta); the time dimension after mrDMD subsampling is tiny.
// This module computes DMD with the snapshot matrix partitioned by rows
// across the ranks of a dist::Communicator: TSQR factors X, the projected
// r x r operator is assembled from allreduced local products, the small
// eigenproblem is solved redundantly on every rank, and each rank ends up
// with its own rows of the DMD modes. No rank ever materializes the global
// matrix. Communication: one TSQR + two allreduces of r x r / r-vector
// payloads.
//
// Verified against the serial dmd() in tests (eigenvalues equal to 1e-10,
// stacked modes span equal).
#pragma once

#include "dist/communicator.hpp"
#include "dmd/dmd.hpp"

namespace imrdmd::dmd {

/// This rank's slice of a distributed DMD.
struct DistributedDmdResult {
  /// Local rows of the modes (local sensor rows x r).
  CMat modes_local;
  /// Replicated eigenvalues.
  std::vector<Complex> eigenvalues;
  /// Replicated amplitudes.
  std::vector<Complex> amplitudes;
  double dt = 1.0;
  std::size_t svd_rank = 0;

  std::size_t mode_count() const { return eigenvalues.size(); }
};

/// Collective. `local_data` is this rank's sensor rows of the full snapshot
/// matrix (local_rows x T, T >= 2, identical T on every rank).
DistributedDmdResult distributed_dmd(dist::Communicator& comm,
                                     const Mat& local_data, double dt,
                                     const DmdOptions& options = {});

}  // namespace imrdmd::dmd
