#include "dmd/distributed_dmd.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "isvd/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/eig.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::dmd {

namespace {

// Allreduces a complex matrix in place (interleaved re/im doubles).
void allreduce_cmat(dist::Communicator& comm, CMat& m) {
  // std::complex<double> is layout-compatible with double[2].
  comm.allreduce_sum(std::span<double>(
      reinterpret_cast<double*>(m.data()), m.size() * 2));
}

}  // namespace

DistributedDmdResult distributed_dmd(dist::Communicator& comm,
                                     const Mat& local_data, double dt,
                                     const DmdOptions& options) {
  IMRDMD_REQUIRE_ARG(dt > 0.0, "distributed_dmd requires dt > 0");
  IMRDMD_REQUIRE_DIMS(local_data.cols() >= 2,
                      "distributed_dmd needs at least two snapshots");
  const std::size_t k = local_data.cols() - 1;
  const Mat x_local = local_data.block(0, 0, local_data.rows(), k);
  const Mat y_local = local_data.block(0, 1, local_data.rows(), k);

  // Global sensor count (SVHT's aspect ratio needs it).
  std::vector<double> rows_buf{static_cast<double>(local_data.rows())};
  comm.allreduce_sum(std::span<double>(rows_buf.data(), 1));
  const std::size_t global_rows = static_cast<std::size_t>(rows_buf[0]);

  // SVD of the distributed X. Two paths, chosen collectively:
  //  * TSQR (more accurate) when every rank's block is tall enough;
  //  * Gram (X^T X allreduce, K x K eigenproblem) otherwise — K is small
  //    after mrDMD subsampling, and SVHT truncates aggressively, so the
  //    squared conditioning is acceptable.
  const double min_rows =
      comm.allreduce_min(static_cast<double>(local_data.rows()));
  const bool use_tsqr = static_cast<std::size_t>(min_rows) >= k;

  std::vector<double> sigma;  // singular values of X, replicated
  Mat v;                      // right singular vectors (k x r0), replicated
  Mat u_local_full;           // local rows of U (computed after truncation
                              // for the Gram path)
  isvd::TsqrResult qr;
  if (use_tsqr) {
    qr = isvd::tsqr(comm, x_local);
    linalg::SvdResult core_svd = linalg::svd(qr.r);
    sigma = std::move(core_svd.s);
    v = std::move(core_svd.v);
    u_local_full = linalg::matmul(qr.q_local, core_svd.u);
  } else {
    Mat gram = linalg::matmul_at_b(x_local, x_local);  // k x k partial
    comm.allreduce_sum(std::span<double>(gram.data(), gram.size()));
    linalg::SvdResult gram_svd = linalg::svd(gram);  // symmetric PSD
    v = std::move(gram_svd.u);
    sigma.resize(v.cols());
    for (std::size_t i = 0; i < sigma.size(); ++i) {
      sigma[i] = std::sqrt(std::max(0.0, gram_svd.s[i]));
    }
    // U_local = X_local V S^-1, formed after the rank is known (below).
  }

  std::size_t rank = std::min(sigma.size(), k);
  if (options.use_svht) {
    rank = std::min(rank, linalg::svht_rank(sigma, global_rows, k));
  }
  if (options.max_rank > 0) rank = std::min(rank, options.max_rank);
  // The Gram path squares the conditioning: its numerical-noise singular
  // values sit near sqrt(eps) of the maximum, so its floor must be wider.
  const double floor_rel = use_tsqr ? 1e-12 : 1e-7;
  const double floor = sigma.empty() ? 0.0 : floor_rel * sigma.front();
  while (rank > 0 && sigma[rank - 1] <= floor) --rank;

  DistributedDmdResult result;
  result.dt = dt;
  result.svd_rank = rank;
  if (rank == 0) {
    result.modes_local = CMat(local_data.rows(), 0);
    return result;
  }

  const Mat vr = v.block(0, 0, v.rows(), rank);
  Mat u_local;
  if (use_tsqr) {
    u_local = u_local_full.block(0, 0, u_local_full.rows(), rank);
  } else {
    u_local = linalg::matmul(x_local, vr);
    for (std::size_t j = 0; j < rank; ++j) {
      linalg::scale_col(u_local, j, 1.0 / sigma[j]);
    }
  }
  // YV = Y V_r S_r^-1 (local rows); Atilde = sum_ranks U_local^T YV_local.
  Mat yv_local = linalg::matmul(y_local, vr);
  for (std::size_t j = 0; j < rank; ++j) {
    linalg::scale_col(yv_local, j, 1.0 / sigma[j]);
  }
  Mat atilde = linalg::matmul_at_b(u_local, yv_local);  // r x r partial
  comm.allreduce_sum(std::span<double>(atilde.data(), atilde.size()));

  // Identical small eigenproblem on every rank (deterministic solver).
  const linalg::EigResult eigen = linalg::eig(atilde, true);
  result.eigenvalues = eigen.values;
  result.modes_local =
      linalg::matmul(linalg::to_complex(yv_local), eigen.vectors);

  // Amplitudes from allreduced inner products (see fit_amplitudes_from_
  // products): gram and proj are sums over sensor rows.
  CMat gram = linalg::matmul_ah_b(result.modes_local, result.modes_local);
  CMat proj = linalg::matmul_ah_b(result.modes_local,
                                  linalg::to_complex(x_local));
  allreduce_cmat(comm, gram);
  allreduce_cmat(comm, proj);
  result.amplitudes =
      fit_amplitudes_from_products(gram, proj, result.eigenvalues);
  return result;
}

}  // namespace imrdmd::dmd
