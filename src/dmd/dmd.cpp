#include "dmd/dmd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/eig.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::dmd {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;
}

std::vector<Complex> DmdResult::continuous_eigenvalues() const {
  std::vector<Complex> psi(eigenvalues.size());
  for (std::size_t i = 0; i < eigenvalues.size(); ++i) {
    psi[i] = std::log(eigenvalues[i]) / dt;
  }
  return psi;
}

std::vector<double> DmdResult::frequencies() const {
  std::vector<double> freq(eigenvalues.size());
  const std::vector<Complex> psi = continuous_eigenvalues();
  for (std::size_t i = 0; i < psi.size(); ++i) {
    freq[i] = std::abs(psi[i].imag()) / kTwoPi;
  }
  return freq;
}

std::vector<double> DmdResult::powers() const {
  std::vector<double> power(eigenvalues.size(), 0.0);
  for (std::size_t j = 0; j < modes.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < modes.rows(); ++i) sum += std::norm(modes(i, j));
    power[j] = sum;
  }
  return power;
}

Mat DmdResult::reconstruct(std::size_t steps) const {
  const std::size_t p = modes.rows();
  const std::size_t r = mode_count();
  if (r == 0) return Mat(p, steps);
  // Dynamics matrix: dyn(i, t) = b_i * lambda_i^t.
  CMat dyn(r, steps);
  for (std::size_t i = 0; i < r; ++i) {
    const Complex log_lambda = std::log(eigenvalues[i]);
    for (std::size_t t = 0; t < steps; ++t) {
      dyn(i, t) = amplitudes[i] * std::exp(log_lambda * static_cast<double>(t));
    }
  }
  // Re(Phi * dyn) via two real products (cheaper than a complex GEMM).
  const Mat re_phi = linalg::real_part(modes);
  const Mat im_phi = [&] {
    Mat m(p, r);
    for (std::size_t i = 0; i < p; ++i)
      for (std::size_t j = 0; j < r; ++j) m(i, j) = modes(i, j).imag();
    return m;
  }();
  Mat re_dyn(r, steps), im_dyn(r, steps);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t t = 0; t < steps; ++t) {
      re_dyn(i, t) = dyn(i, t).real();
      im_dyn(i, t) = dyn(i, t).imag();
    }
  }
  Mat out = linalg::matmul(re_phi, re_dyn);
  out -= linalg::matmul(im_phi, im_dyn);
  return out;
}

std::vector<Complex> fit_amplitudes(const CMat& modes,
                                    const std::vector<Complex>& eigenvalues,
                                    const Mat& snapshots, AmplitudeFit method) {
  IMRDMD_REQUIRE_DIMS(modes.cols() == eigenvalues.size(),
                      "fit_amplitudes mode/eigenvalue count mismatch");
  IMRDMD_REQUIRE_DIMS(modes.rows() == snapshots.rows(),
                      "fit_amplitudes sensor dimension mismatch");
  IMRDMD_REQUIRE_DIMS(snapshots.cols() >= 1, "fit_amplitudes needs snapshots");
  const std::size_t m = eigenvalues.size();
  if (m == 0) return {};

  if (method == AmplitudeFit::FirstSnapshot) {
    std::vector<Complex> x0(snapshots.rows());
    for (std::size_t p = 0; p < snapshots.rows(); ++p) x0[p] = snapshots(p, 0);
    return linalg::lstsq_complex(modes,
                                 std::span<const Complex>(x0.data(), x0.size()));
  }
  const CMat gram = linalg::matmul_ah_b(modes, modes);  // m x m
  const CMat proj = linalg::matmul_ah_b(modes, linalg::to_complex(snapshots));
  return fit_amplitudes_from_products(gram, proj, eigenvalues);
}

std::vector<Complex> fit_amplitudes_from_products(
    const CMat& gram, const CMat& proj,
    const std::vector<Complex>& eigenvalues) {
  const std::size_t m = eigenvalues.size();
  IMRDMD_REQUIRE_DIMS(gram.rows() == m && gram.cols() == m,
                      "fit_amplitudes gram shape mismatch");
  IMRDMD_REQUIRE_DIMS(proj.rows() == m && proj.cols() >= 1,
                      "fit_amplitudes proj shape mismatch");
  if (m == 0) return {};
  // AllSnapshots: minimize sum_t ||Phi diag(lambda^t) b - x_t||^2.
  // Normal equations: A_ij = (Phi^H Phi)_ij * sum_t conj(l_i)^t l_j^t,
  //                   r_i  = sum_t conj(l_i)^t (Phi^H x_t)_i.
  const std::size_t steps = proj.cols();
  CMat a(m, m);
  std::vector<Complex> rhs(m, Complex{});
  // Accumulate the Vandermonde sums incrementally: powers[i] = lambda_i^t.
  std::vector<Complex> powers(m, Complex(1.0, 0.0));
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t i = 0; i < m; ++i) {
      const Complex ci = std::conj(powers[i]);
      rhs[i] += ci * proj(i, t);
      for (std::size_t j = 0; j < m; ++j) {
        a(i, j) += ci * powers[j] * gram(i, j);
      }
    }
    for (std::size_t i = 0; i < m; ++i) powers[i] *= eigenvalues[i];
  }
  try {
    return linalg::complex_solve(a, rhs);
  } catch (const NumericalError&) {
    double trace = 0.0;
    for (std::size_t i = 0; i < m; ++i) trace += a(i, i).real();
    const double ridge = 1e-12 * (trace > 0.0 ? trace : 1.0);
    for (std::size_t i = 0; i < m; ++i) a(i, i) += ridge;
    return linalg::complex_solve(a, rhs);
  }
}

DmdResult dmd_from_svd(const Mat& u, const std::vector<double>& s,
                       const Mat& v, const Mat& y, const Mat& snapshots,
                       double dt, const DmdOptions& options) {
  IMRDMD_REQUIRE_ARG(dt > 0.0, "dmd requires dt > 0");
  IMRDMD_REQUIRE_DIMS(u.rows() == y.rows() && u.rows() == snapshots.rows(),
                      "dmd_from_svd sensor dimension mismatch");
  IMRDMD_REQUIRE_DIMS(v.rows() == y.cols(),
                      "dmd_from_svd snapshot dimension mismatch");

  // Rank selection on the available spectrum.
  std::size_t rank = std::min({u.cols(), v.cols(), s.size()});
  if (options.use_svht) {
    rank = std::min(rank, linalg::svht_rank(s, u.rows(), v.rows()));
  }
  if (options.max_rank > 0) rank = std::min(rank, options.max_rank);
  // Guard the inverse below against numerically-zero singular values (SVHT's
  // median rule can admit them when the data is exactly low rank).
  const double floor = s.empty() ? 0.0 : 1e-12 * s.front();
  while (rank > 0 && s[rank - 1] <= floor) --rank;

  DmdResult result;
  result.dt = dt;
  result.svd_rank = rank;
  if (rank == 0) {
    result.modes = CMat(u.rows(), 0);
    return result;
  }

  const Mat u_r = u.cols() == rank ? u : u.block(0, 0, u.rows(), rank);
  const Mat v_r = v.cols() == rank ? v : v.block(0, 0, v.rows(), rank);

  // Atilde = U_r^T Y V_r S_r^-1  (Eq. 3).
  Mat yv = linalg::matmul(y, v_r);  // P x r
  for (std::size_t j = 0; j < rank; ++j) linalg::scale_col(yv, j, 1.0 / s[j]);
  const Mat atilde = linalg::matmul_at_b(u_r, yv);  // r x r

  const linalg::EigResult eigen = linalg::eig(atilde, true);

  // Phi = Y V_r S_r^-1 W  (Eq. 5, "exact" DMD modes).
  result.modes = linalg::matmul(linalg::to_complex(yv), eigen.vectors);
  result.eigenvalues = eigen.values;
  result.amplitudes = fit_amplitudes(result.modes, result.eigenvalues,
                                     snapshots, options.amplitude_fit);
  return result;
}

DmdResult dmd(const Mat& data, double dt, const DmdOptions& options) {
  IMRDMD_REQUIRE_DIMS(data.cols() >= 2, "dmd needs at least two snapshots");
  const std::size_t t = data.cols();
  const Mat x = data.block(0, 0, data.rows(), t - 1);
  const Mat y = data.block(0, 1, data.rows(), t - 1);
  linalg::SvdResult f = linalg::svd(x);
  return dmd_from_svd(f.u, f.s, f.v, y, data, dt, options);
}

}  // namespace imrdmd::dmd
