// The DMD / mrDMD power spectrum (paper Sec. III-A.2, Eqs. 9-10).
//
// Each retained mode phi_i contributes one spectrum point: its oscillation
// frequency f_i = |Im(ln lambda_i / dt)| / 2 pi, its "power" ||phi_i||_2^2,
// and its growth rate Re(ln lambda_i / dt) (positive = growing dynamics,
// negative = decaying). Figures 5 and 7 of the paper plot amplitude against
// frequency; ModeBand expresses the frequency-range isolation the paper
// applies before z-scoring (e.g. "0-60 Hz").
#pragma once

#include <limits>
#include <vector>

#include "dmd/dmd.hpp"

namespace imrdmd::dmd {

struct SpectrumPoint {
  double frequency_hz = 0.0;
  double power = 0.0;
  /// sqrt(power): the "mode amplitude" axis used by the paper's Figs. 5/7.
  double amplitude = 0.0;
  double growth_rate = 0.0;
  /// Index of the mode within its decomposition.
  std::size_t mode_index = 0;
  /// mrDMD level of the node that produced the mode (0 for plain DMD).
  std::size_t level = 0;
};

/// Frequency/power window used to isolate modes of interest.
struct ModeBand {
  double min_frequency_hz = 0.0;
  double max_frequency_hz = std::numeric_limits<double>::infinity();
  double min_power = 0.0;

  bool contains(double frequency_hz, double power) const {
    return frequency_hz >= min_frequency_hz &&
           frequency_hz <= max_frequency_hz && power >= min_power;
  }
};

/// Spectrum of a single DMD result.
std::vector<SpectrumPoint> spectrum(const DmdResult& result);

/// Indices of modes inside the band.
std::vector<std::size_t> select_modes(const DmdResult& result,
                                      const ModeBand& band);

}  // namespace imrdmd::dmd
