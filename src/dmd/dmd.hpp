// Exact Dynamic Mode Decomposition (Sec. III-A of the paper, Eqs. 1-6).
//
// Given snapshots x_1..x_T sampled every dt, DMD approximates the best-fit
// linear propagator A with Y = A X (X = snapshots 1..T-1, Y = 2..T) through
// the SVD of X, and returns its leading eigenstructure:
//   modes Phi = Y V S^-1 W,  discrete eigenvalues lambda,  amplitudes b
// with x(t) ~= Phi diag(lambda^t) b.
//
// Two entry points: dmd() factors the snapshot matrix itself; dmd_from_svd()
// accepts externally maintained SVD factors of X — the hook through which
// I-mrDMD feeds its incrementally updated decomposition (Algo 1, line 3).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::dmd {

using linalg::CMat;
using linalg::Complex;
using linalg::Mat;

/// How mode amplitudes b are fitted.
enum class AmplitudeFit {
  /// b = argmin ||Phi b - x_0||: the classic choice (Kutz et al.), cheap but
  /// sensitive to noise in the single snapshot.
  FirstSnapshot,
  /// b = argmin sum_t ||Phi diag(lambda^t) b - x_t||^2 over every snapshot:
  /// the optimized amplitudes of Jovanovic et al. [44]; robust to noise.
  AllSnapshots,
};

struct DmdOptions {
  /// Truncate the SVD rank with the Gavish-Donoho optimal hard threshold.
  bool use_svht = true;
  /// Additional hard cap on the rank (0 = none).
  std::size_t max_rank = 0;
  AmplitudeFit amplitude_fit = AmplitudeFit::AllSnapshots;
};

struct DmdResult {
  /// DMD modes as columns (P x r).
  CMat modes;
  /// Discrete-time eigenvalues lambda_i of the propagator.
  std::vector<Complex> eigenvalues;
  /// Mode amplitudes b_i (least-squares fit of the first snapshot).
  std::vector<Complex> amplitudes;
  /// Snapshot spacing in seconds.
  double dt = 1.0;
  /// SVD rank retained for the projected operator.
  std::size_t svd_rank = 0;

  std::size_t mode_count() const { return eigenvalues.size(); }

  /// Continuous eigenvalues psi_i = ln(lambda_i) / dt.
  std::vector<Complex> continuous_eigenvalues() const;

  /// Oscillation frequency per mode in Hz (paper Eq. 9): |Im psi| / 2 pi.
  std::vector<double> frequencies() const;

  /// mrDMD "power" per mode (paper Eq. 10): ||phi_i||_2^2.
  std::vector<double> powers() const;

  /// Reconstructs `steps` snapshots at t = 0, dt, 2 dt, ...:
  /// x(t) = Re( Phi diag(lambda^{t/dt}) b ).
  Mat reconstruct(std::size_t steps) const;
};

/// Exact DMD of a snapshot matrix `data` (P sensors x T snapshots, T >= 2).
DmdResult dmd(const Mat& data, double dt, const DmdOptions& options = {});

/// DMD from precomputed SVD factors of X (u diag(s) v^T ~= X) plus the
/// shifted snapshot matrix y; amplitudes are fitted against `snapshots`
/// (the unshifted columns x_0.. at unit eigenvalue steps — pass X, or the
/// full snapshot matrix). `s` may be longer than the factors' rank; rank
/// selection (SVHT/cap) happens here.
DmdResult dmd_from_svd(const Mat& u, const std::vector<double>& s,
                       const Mat& v, const Mat& y, const Mat& snapshots,
                       double dt, const DmdOptions& options = {});

/// Fits amplitudes for an explicit (modes, eigenvalues) set against
/// `snapshots`, whose column t is assumed to sit at eigenvalue power t.
/// Used by mrDMD to re-fit amplitudes after slow-mode selection (the
/// reference implementation's order of operations).
std::vector<Complex> fit_amplitudes(const CMat& modes,
                                    const std::vector<Complex>& eigenvalues,
                                    const Mat& snapshots, AmplitudeFit method);

/// Amplitude fit from precomputed inner products: gram = Phi^H Phi (r x r)
/// and proj = Phi^H X (r x T). This is the reduction-friendly form the
/// distributed DMD uses (both products are sums over sensor rows, so ranks
/// allreduce their local contributions and solve the identical small
/// problem). Implements the AllSnapshots objective.
std::vector<Complex> fit_amplitudes_from_products(
    const CMat& gram, const CMat& proj,
    const std::vector<Complex>& eigenvalues);

}  // namespace imrdmd::dmd
