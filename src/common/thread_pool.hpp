// A small fixed-size thread pool plus a blocking parallel_for.
//
// OpenMP covers the dense kernels in linalg/; this pool exists for task-level
// parallelism that OpenMP pragmas express poorly: the embarrassingly parallel
// sub-tree updates of I-mrDMD (paper Sec. III-A.1) and the asynchronous
// stale-level recomputation behind `recompute_on_drift`.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace imrdmd {

/// Fixed-size worker pool with a FIFO queue.
///
/// Tasks must not block on other tasks in the same pool (no nested waiting);
/// parallel_for below partitions work up-front so it never violates this.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves when it finishes (or rethrows).
  std::future<void> submit(std::function<void()> task);

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Blocks until every task submitted so far has completed.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool shared by library components. Lazily constructed and
/// intentionally never destroyed (a leaked singleton): joining the workers
/// during static destruction would race — or block exit behind — any
/// thread still using the pool at exit (e.g. a serve::AsyncSink worker or
/// an AssessorService tenant). Pools a caller owns (AssessorConfig::pool)
/// still drain and join normally in ~ThreadPool.
ThreadPool& global_pool();

/// Waits for every future, then rethrows the first captured exception (if
/// any). Use this instead of a get()-in-a-loop when the tasks reference
/// caller state: packaged_task futures do not block on destruction, so
/// rethrowing at the first failure would unwind the referenced stack while
/// later tasks are still queued or running.
void wait_all(std::vector<std::future<void>>& futures);

/// Runs fn(i) for i in [begin, end) across `pool` (or the global pool when
/// null), blocking until complete. Exceptions from any chunk are rethrown.
/// `grain` is the minimum indices per chunk.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  ThreadPool* pool = nullptr, std::size_t grain = 1);

/// Runs fn(lane) for lane in [0, lanes): on the caller thread when lanes
/// <= 1 (so the callee may legally fan out onto the pool itself),
/// otherwise as one task per lane on `pool` (or the global pool when
/// null), waiting for EVERY lane before returning or unwinding — lane
/// functions typically hold references to caller stack state (wait_all
/// discipline). This is the fleet drivers' worker-lane dispatch: lane l
/// owns items l, l + lanes, l + 2*lanes, ... by convention of its fn.
void run_lanes(std::size_t lanes, const std::function<void(std::size_t)>& fn,
               ThreadPool* pool = nullptr);

}  // namespace imrdmd
