#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace imrdmd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // All-zero state is the one forbidden fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  IMRDMD_REQUIRE_ARG(n > 0, "uniform_index needs n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t v = (*this)();
  while (v >= limit) v = (*this)();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() stays finite.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  IMRDMD_REQUIRE_ARG(rate > 0.0, "exponential rate must be positive");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  IMRDMD_REQUIRE_ARG(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::split() {
  // Two raw draws give the child a seed decorrelated from future output.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 31));
}

}  // namespace imrdmd
