// Minimal streaming JSON writer for machine-readable bench/telemetry output
// (BENCH_*.json). Write-only by design: the repo consumes CSV/JSON with
// external tooling and only ever needs to *emit* well-formed documents.
//
// Usage:
//   JsonWriter json;
//   json.begin_object();
//   json.field("bench", "isvd_update");
//   json.key("workload"); json.begin_object();
//   json.field("sensors", 1024);
//   json.end_object();
//   json.end_object();
//   json.write_file("BENCH_isvd.json");
#pragma once

#include <charconv>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace imrdmd {

class JsonWriter {
 public:
  void begin_object() {
    prefix();
    out_ += '{';
    fresh_.push_back(true);
  }
  void end_object() {
    IMRDMD_REQUIRE_ARG(!fresh_.empty(), "JsonWriter: unbalanced end_object");
    fresh_.pop_back();
    out_ += '}';
  }
  void begin_array() {
    prefix();
    out_ += '[';
    fresh_.push_back(true);
  }
  void end_array() {
    IMRDMD_REQUIRE_ARG(!fresh_.empty(), "JsonWriter: unbalanced end_array");
    fresh_.pop_back();
    out_ += ']';
  }

  /// Emits the key of the next value inside an object.
  void key(const std::string& name) {
    separate();
    out_ += '"';
    escape(name);
    out_ += "\":";
    pending_key_ = true;
  }

  void value(const std::string& text) {
    prefix();
    out_ += '"';
    escape(text);
    out_ += '"';
  }
  void value(const char* text) { value(std::string(text)); }
  void value(double number) {
    prefix();
    if (!std::isfinite(number)) {  // JSON has no inf/nan
      out_ += "null";
      return;
    }
    // Shortest round-trip form: a reader parsing the emitted text recovers
    // the exact double (%.9g silently lost the low bits of timings).
    char buffer[32];
    const std::to_chars_result result =
        std::to_chars(buffer, buffer + sizeof(buffer), number);
    out_.append(buffer, result.ptr);
  }
  void value(std::size_t number) {
    prefix();
    out_ += std::to_string(number);
  }
  void value(bool flag) {
    prefix();
    out_ += flag ? "true" : "false";
  }

  template <typename T>
  void field(const std::string& name, T v) {
    key(name);
    value(v);
  }

  const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`, atomically
  /// (write-temp-then-rename): a crash mid-write never leaves a torn JSON
  /// at the final path.
  void write_file(const std::string& path) const {
    IMRDMD_REQUIRE_ARG(fresh_.empty(),
                       "JsonWriter: unbalanced document at write_file");
    write_file_atomic(path, [this](std::ostream& out) {
      out.write(out_.data(), static_cast<std::streamsize>(out_.size()));
      out.put('\n');
    });
  }

 private:
  /// Comma-separates siblings inside the innermost container.
  void separate() {
    if (!fresh_.empty()) {
      if (!fresh_.back()) out_ += ',';
      fresh_.back() = false;
    }
  }
  /// A value directly after key() attaches; otherwise it is a sibling.
  void prefix() {
    if (pending_key_) {
      pending_key_ = false;
    } else {
      separate();
    }
  }
  void escape(const std::string& text) {
    for (char ch : text) {
      switch (ch) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
            out_ += buffer;
          } else {
            out_ += ch;
          }
      }
    }
  }

  std::string out_;
  std::vector<bool> fresh_;  // per open container: no sibling emitted yet
  bool pending_key_ = false;
};

}  // namespace imrdmd
