#include "common/timer.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace imrdmd {

RunStats RunStats::from_samples(const std::vector<double>& seconds) {
  RunStats stats;
  stats.runs = seconds.size();
  if (seconds.empty()) return stats;
  stats.min = *std::min_element(seconds.begin(), seconds.end());
  stats.max = *std::max_element(seconds.begin(), seconds.end());
  double sum = 0.0;
  for (double s : seconds) sum += s;
  stats.mean = sum / static_cast<double>(seconds.size());
  double ss = 0.0;
  for (double s : seconds) ss += (s - stats.mean) * (s - stats.mean);
  stats.stddev = seconds.size() > 1
                     ? std::sqrt(ss / static_cast<double>(seconds.size() - 1))
                     : 0.0;
  return stats;
}

std::string RunStats::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << "mean=" << mean << "s sd=" << stddev << "s min=" << min
     << "s max=" << max << "s (n=" << runs << ")";
  return os.str();
}

RunStats time_repeated(const std::function<void(std::size_t)>& fn,
                       std::size_t repeats, std::size_t warmup) {
  IMRDMD_REQUIRE_ARG(repeats > 0, "time_repeated needs at least one run");
  for (std::size_t i = 0; i < warmup; ++i) fn(i);
  std::vector<double> samples;
  samples.reserve(repeats);
  for (std::size_t i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn(i);
    samples.push_back(timer.seconds());
  }
  return RunStats::from_samples(samples);
}

}  // namespace imrdmd
