#include "common/error.hpp"

#include <sstream>

namespace imrdmd::detail {

namespace {
std::string format(const char* kind, const char* expr, const char* file,
                   int line, const std::string& msg) {
  std::ostringstream os;
  os << kind << ": " << msg << " [failed: " << expr << " at " << file << ':'
     << line << ']';
  return os.str();
}
}  // namespace

void throw_dimension_error(const char* expr, const char* file, int line,
                           const std::string& msg) {
  throw DimensionError(format("dimension error", expr, file, line, msg));
}

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  throw InvalidArgument(format("invalid argument", expr, file, line, msg));
}

}  // namespace imrdmd::detail
