#include "common/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/error.hpp"

namespace imrdmd {

namespace {

/// Unique-per-writer temp name next to `path`: two processes (or threads)
/// atomically replacing the same file must not interleave writes into one
/// shared temp, or the rename could publish a torn hybrid — each writer
/// gets its own temp and the *renames* serialize.
std::string temp_name(const std::string& path) {
  static std::atomic<unsigned> counter{0};
#ifdef __unix__
  const unsigned long pid = static_cast<unsigned long>(::getpid());
#else
  const unsigned long pid = 0;
#endif
  return path + ".tmp." + std::to_string(pid) + "." +
         std::to_string(counter.fetch_add(1));
}

/// Flushes the file's data blocks to stable storage. Without this, a
/// journaled filesystem may commit the rename (metadata) before the data,
/// and a power loss would leave a complete-looking but torn file at the
/// final path — exactly what the rename is supposed to rule out.
bool sync_file(const std::string& file) {
#ifdef __unix__
  const int fd = ::open(file.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)file;
  return true;  // no fsync available; process-kill atomicity still holds
#endif
}

/// Best-effort: persists the rename itself by syncing the containing
/// directory. Failure is not fatal — the file's own data is already
/// durable, and some filesystems reject directory fsync.
void sync_parent_directory(const std::string& path) {
#ifdef __unix__
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& write) {
  const std::string temp = temp_name(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw Error("cannot open temporary file for writing: " + temp);
    }
    try {
      write(out);
    } catch (...) {
      out.close();
      std::remove(temp.c_str());
      throw;
    }
    out.flush();
    out.close();
    // fail() covers both a failed write (e.g. ENOSPC mid-stream) and a
    // failed flush-on-close; either way the temp is incomplete.
    if (out.fail()) {
      std::remove(temp.c_str());
      throw Error("write failed (disk full?) for: " + temp);
    }
  }
  if (!sync_file(temp)) {
    std::remove(temp.c_str());
    throw Error("cannot fsync temporary file: " + temp);
  }
#ifndef __unix__
  // POSIX rename atomically replaces an existing target; other CRTs (e.g.
  // Windows) refuse it. Removing first opens a tiny no-file window there —
  // the atomicity guarantee is POSIX-only, but replacement still works.
  std::remove(path.c_str());
#endif
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    throw Error("cannot rename " + temp + " over " + path);
  }
  sync_parent_directory(path);
}

}  // namespace imrdmd
