// Deterministic random number generation.
//
// Standard-library distributions are not bit-reproducible across
// implementations, and this repository's tests and synthetic telemetry must
// generate identical data everywhere. We therefore ship our own generator
// (xoshiro256**, seeded through splitmix64) and our own uniform / normal /
// exponential / Poisson transforms.
#pragma once

#include <cstdint>
#include <vector>

namespace imrdmd {

/// xoshiro256** pseudo-random generator with deterministic seeding.
///
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if a
/// caller accepts non-portable streams.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state by iterating splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit word.
  std::uint64_t operator()();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Poisson count (Knuth's method for small mean, normal approx for large).
  std::uint64_t poisson(double mean);

  /// Derives an independent child stream; child sequences do not overlap the
  /// parent's for any practical draw count.
  Rng split();

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace imrdmd
