#include "common/strings.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace imrdmd {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> parts;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) parts.emplace_back(text.substr(start, i - start));
  }
  return parts;
}

std::string trim(std::string_view text) {
  std::size_t lo = 0;
  std::size_t hi = text.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(text[lo]))) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(text[hi - 1]))) --hi;
  return std::string(text.substr(lo, hi - lo));
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

long parse_long(std::string_view text, std::string_view context) {
  const std::string buffer(text);
  char* end = nullptr;
  const long value = std::strtol(buffer.c_str(), &end, 10);
  if (end == buffer.c_str() || *end != '\0') {
    throw ParseError("expected integer in " + std::string(context) + ": '" +
                     buffer + "'");
  }
  return value;
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0') {
    throw ParseError("expected number in " + std::string(context) + ": '" +
                     buffer + "'");
  }
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

}  // namespace imrdmd
