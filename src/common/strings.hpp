// Small string helpers used by the rack layout parser and CSV I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace imrdmd {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading/trailing whitespace.
std::string trim(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII characters.
std::string to_lower(std::string_view text);

/// Parses a long; throws ParseError with `context` on failure or trailing junk.
long parse_long(std::string_view text, std::string_view context);

/// Parses a double; throws ParseError with `context` on failure.
double parse_double(std::string_view text, std::string_view context);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace imrdmd
