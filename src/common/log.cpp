#include "common/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace imrdmd {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info: return "[info ] ";
    case LogLevel::Warn: return "[warn ] ";
    case LogLevel::ErrorLevel: return "[error] ";
    case LogLevel::Off: return "";
  }
  return "";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << tag(level) << message << '\n';
}

}  // namespace imrdmd
