// Minimal CSV writer/reader for experiment artifacts.
//
// Every bench emits its table/series as CSV next to its stdout report so the
// figures can be re-plotted without re-running; this is the one shared
// serialization format in the repository.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace imrdmd {

/// Streams rows to a CSV file. Fields containing separators/quotes/newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes `header` as the first row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one row of string fields; must match the header arity. Throws
  /// Error (naming the path) when the stream fails, e.g. on a full disk —
  /// telemetry rows are never dropped silently.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with enough digits to round-trip.
  void write_row_numeric(const std::vector<double>& values);

  /// Flushes and closes; throws Error if the flush fails (disk full),
  /// subsequent writes throw.
  void close();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream stream_;
  std::size_t arity_;
};

/// In-memory parse result of a CSV file.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name; throws ParseError when absent.
  std::size_t column(const std::string& name) const;
};

/// Reads a whole CSV file (RFC 4180 quoting). Blank lines — including a
/// doubled trailing newline or bare CRLF lines — are skipped. Throws
/// ParseError on ragged rows or unterminated quotes.
CsvTable read_csv(const std::string& path);

}  // namespace imrdmd
