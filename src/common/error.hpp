// Error handling primitives shared by every imrdmd module.
//
// Numeric code fails in two distinct ways and we keep them separate:
//   * programmer errors (bad shapes, out-of-range indices) -> DimensionError /
//     InvalidArgument, raised by the IMRDMD_REQUIRE macro family;
//   * data-dependent numerical breakdowns (rank collapse, non-convergence)
//     -> NumericalError, raised explicitly at the failure site.
#pragma once

#include <stdexcept>
#include <string>

namespace imrdmd {

/// Base class for all library exceptions so callers can catch one type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape mismatch between operands (e.g. GEMM inner dimensions disagree).
class DimensionError : public Error {
 public:
  explicit DimensionError(const std::string& what) : Error(what) {}
};

/// A parameter value outside its documented domain.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Data-dependent numerical failure (iteration did not converge, matrix is
/// numerically singular where an inverse is required, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Malformed external input (layout spec string, CSV file, ...).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A streaming replica's chunk source is at a different position than its
/// peers (or than the engine's recorded stream position) — e.g. a resumed
/// rank that was never seek'd to the checkpoint position. Raised by the
/// distributed run loop's per-chunk agreement so the desync fails fast
/// instead of folding divergent data into replicated state.
class StreamDesync : public Error {
 public:
  explicit StreamDesync(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_dimension_error(const char* expr, const char* file,
                                        int line, const std::string& msg);
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
}  // namespace detail

}  // namespace imrdmd

/// Validate a shape/size relation; throws DimensionError when `cond` is false.
#define IMRDMD_REQUIRE_DIMS(cond, msg)                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::imrdmd::detail::throw_dimension_error(#cond, __FILE__, __LINE__,   \
                                              (msg));                      \
    }                                                                      \
  } while (0)

/// Validate a parameter's domain; throws InvalidArgument when false.
#define IMRDMD_REQUIRE_ARG(cond, msg)                                      \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::imrdmd::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
    }                                                                      \
  } while (0)
