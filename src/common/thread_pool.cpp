#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imrdmd {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IMRDMD_REQUIRE_ARG(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();  // exceptions are captured into the task's future
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  // Intentionally leaked: a plain function-local static would be destroyed
  // during static destruction, where its destructor joins the workers — and
  // any thread still submitting or running tasks at exit (an AsyncSink
  // worker, a serving tenant mid-drain) then races the teardown or blocks
  // exit behind an arbitrarily long task. The process reclaims everything
  // at exit anyway, and the static pointer keeps the allocation reachable,
  // so leak checkers stay quiet. Regression: tests/serve_test.cpp
  // ThreadPoolExit exits while a task is in flight.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, ThreadPool* pool,
                  std::size_t grain) {
  if (begin >= end) return;
  ThreadPool& workers = pool ? *pool : global_pool();
  const std::size_t count = end - begin;
  const std::size_t chunks =
      std::min(workers.size() * 4, std::max<std::size_t>(1, count / std::max<std::size_t>(grain, 1)));
  if (chunks <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t step = (count + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * step;
    const std::size_t hi = std::min(end, lo + step);
    if (lo >= hi) break;
    futures.push_back(workers.submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  wait_all(futures);  // chunks hold &fn: drain them all before unwinding
}

void wait_all(std::vector<std::future<void>>& futures) {
  std::exception_ptr failure;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!failure) failure = std::current_exception();
    }
  }
  if (failure) std::rethrow_exception(failure);
}

void run_lanes(std::size_t lanes, const std::function<void(std::size_t)>& fn,
               ThreadPool* pool) {
  if (lanes <= 1) {
    fn(0);
    return;
  }
  ThreadPool& target = pool != nullptr ? *pool : global_pool();
  std::vector<std::future<void>> futures;
  futures.reserve(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    futures.push_back(target.submit([&fn, lane] { fn(lane); }));
  }
  wait_all(futures);  // lanes hold caller state: drain before unwinding
}

}  // namespace imrdmd
