// Atomic file replacement: write-temp-then-rename.
//
// A crash (or ENOSPC) midway through a plain ofstream write leaves a
// truncated file at the final path — fatal for checkpoints, whose whole
// point is surviving crashes. write_file_atomic streams the content into a
// writer-unique temporary next to `path` (so concurrent writers never
// share a temp), fsyncs it, and renames it over `path` only after the
// stream has been flushed and closed cleanly, so the final path always
// holds either the old complete file or the new complete file, never a
// torn one — across process kills and (on POSIX) power loss.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace imrdmd {

/// Writes `path` atomically: `write` streams the content into a temporary
/// file next to `path`, which is renamed over `path` on success. On any
/// failure (open, write, flush/close, rename, or an exception from `write`)
/// the temporary is removed, the previous file at `path` is left untouched,
/// and the error propagates (stream failures as Error naming the path).
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& write);

}  // namespace imrdmd
