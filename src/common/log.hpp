// Leveled diagnostic logging.
//
// The pipeline emits progress/drift diagnostics through this logger; tests
// silence it, examples run at Info, `--verbose` flags lift it to Debug.
#pragma once

#include <sstream>
#include <string>

namespace imrdmd {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, ErrorLevel = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);

/// Current threshold.
LogLevel log_level();

/// Emits `message` at `level` to stderr with a level tag. Thread-safe.
void log_message(LogLevel level, const std::string& message);

namespace detail {
/// Builds the message lazily; operator<< payloads are only evaluated when the
/// level passes the threshold (see the IMRDMD_LOG macro).
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace imrdmd

#define IMRDMD_LOG(level)                           \
  if (static_cast<int>(level) <                     \
      static_cast<int>(::imrdmd::log_level())) {    \
  } else                                            \
    ::imrdmd::detail::LogLine(level)

#define IMRDMD_DEBUG IMRDMD_LOG(::imrdmd::LogLevel::Debug)
#define IMRDMD_INFO IMRDMD_LOG(::imrdmd::LogLevel::Info)
#define IMRDMD_WARN IMRDMD_LOG(::imrdmd::LogLevel::Warn)
