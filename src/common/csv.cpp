#include "common/csv.hpp"

#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace imrdmd {

namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    out += c;
    if (c == '"') out += '"';
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), stream_(path), arity_(header.size()) {
  if (!stream_) throw Error("cannot open CSV for writing: " + path);
  IMRDMD_REQUIRE_ARG(!header.empty(), "CSV header must not be empty");
  write_row(header);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  if (!stream_.is_open()) throw Error("write on closed CSV: " + path_);
  IMRDMD_REQUIRE_DIMS(fields.size() == arity_,
                      "CSV row arity mismatch in " + path_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) stream_ << ',';
    stream_ << quote(fields[i]);
  }
  stream_ << '\n';
  // An unchecked stream swallows ENOSPC and silently drops telemetry rows;
  // surface it at the write that failed, naming the file.
  if (stream_.fail()) throw Error("CSV write failed (disk full?): " + path_);
}

void CsvWriter::write_row_numeric(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) {
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", v);
    fields.emplace_back(buffer);
  }
  write_row(fields);
}

void CsvWriter::close() {
  if (!stream_.is_open()) return;
  stream_.flush();
  stream_.close();
  // close() flushes buffered rows; a failure here is the last chance to
  // notice that the tail of the file never reached the disk.
  if (stream_.fail()) throw Error("CSV close failed (disk full?): " + path_);
}

std::size_t CsvTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw ParseError("CSV column not found: " + name);
}

CsvTable read_csv(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) throw Error("cannot open CSV for reading: " + path);

  CsvTable table;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_started = false;
  char c;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    if (table.header.empty()) {
      table.header = row;
    } else {
      if (row.size() != table.header.size()) {
        throw ParseError("ragged CSV row in " + path);
      }
      table.rows.push_back(row);
    }
    row.clear();
    row_started = false;
  };

  while (stream.get(c)) {
    if (in_quotes) {
      if (c == '"') {
        if (stream.peek() == '"') {
          stream.get(c);
          field += '"';
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      row_started = true;
    } else if (c == ',') {
      end_field();
      row_started = true;
    } else if (c == '\n') {
      // A newline on an empty row (blank line, doubled trailing newline,
      // or a bare CRLF) is skipped, not parsed as a one-empty-field row:
      // row_started is set only by characters that contribute to a row,
      // so end_row() never sees a spurious empty record.
      if (row_started) end_row();
    } else if (c != '\r') {
      field += c;
      row_started = true;
    }
  }
  if (in_quotes) throw ParseError("unterminated quote in " + path);
  if (row_started) end_row();
  return table;
}

}  // namespace imrdmd
