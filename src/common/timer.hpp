// Wall-clock timing and repeated-run statistics.
//
// Every performance number in the paper (Table I, Fig. 9, Sec. IV) is an
// average over 10 executions; RunStats/time_repeated reproduce that protocol.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace imrdmd {

/// Monotonic stopwatch measuring elapsed seconds.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Summary statistics over a set of timed runs.
struct RunStats {
  std::size_t runs = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Computes stats from raw per-run seconds. Empty input yields zeros.
  static RunStats from_samples(const std::vector<double>& seconds);

  /// "mean=1.234s sd=0.010s min=1.220s max=1.250s (n=10)"
  std::string to_string() const;
};

/// Runs `fn` `repeats` times (after `warmup` unmeasured runs) and returns the
/// timing statistics. `fn` receives the 0-based measured-run index so callers
/// can reset state between runs.
RunStats time_repeated(const std::function<void(std::size_t)>& fn,
                       std::size_t repeats, std::size_t warmup = 0);

}  // namespace imrdmd
