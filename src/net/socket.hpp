// Shared RAII POSIX socket layer for every TCP subsystem in the library:
// the OpenMetrics exporter (serve/http_exporter.hpp) and the telemetry
// ingestion wire (net/listener.hpp, net/shipper.hpp) sit on these two
// types instead of each hand-rolling socket()/bind()/listen()/accept().
//
//   * Socket — a move-only connected-socket handle with whole-buffer
//     send/recv helpers (the framed wire protocol reads exact byte counts,
//     so short reads/writes are looped here, once) and SO_SNDTIMEO/
//     SO_RCVTIMEO deadlines so a dead peer turns into a typed NetError
//     instead of a hung thread.
//   * Listener — a loopback listening socket with the atomic-fd stop
//     discipline the HttpExporter pioneered: stop() retires the fd from
//     the caller's thread (shutdown() + close(), because close() alone
//     does not unblock a parked accept() on every kernel) while the accept
//     loop reads it, so shutdown is race-free and idempotent.
//
// Errors: NetError for I/O failures and timeouts, ConnectionClosed (a
// NetError) when the peer hung up cleanly — callers that treat EOF as a
// normal event catch the narrower type.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace imrdmd::net {

/// Network-layer failure: connect/bind/send/recv errors and timeouts.
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// The peer closed the connection (recv saw EOF). A NetError so generic
/// handlers still catch it; its own type so reconnect logic can tell a
/// clean hangup from a timeout.
class ConnectionClosed : public NetError {
 public:
  explicit ConnectionClosed(const std::string& what) : NetError(what) {}
};

/// Move-only RAII wrapper of a connected TCP socket fd.
class Socket {
 public:
  /// An invalid (empty) handle.
  Socket() = default;
  /// Adopts `fd` (takes ownership; -1 is the empty handle).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.release();
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Arms SO_SNDTIMEO / SO_RCVTIMEO (seconds; 0 = wait forever). A blocked
  /// send/recv past the deadline raises NetError("... timed out").
  void set_timeouts(double send_seconds, double recv_seconds);

  /// Writes the whole buffer (MSG_NOSIGNAL, EINTR-looped). Throws NetError
  /// on failure or timeout.
  void send_all(const void* data, std::size_t size);

  /// Reads exactly `size` bytes. Throws ConnectionClosed on EOF, NetError
  /// on failure or timeout.
  void recv_all(void* data, std::size_t size);

  /// shutdown(SHUT_RDWR): unblocks a peer (or our own other thread)
  /// parked in recv on this socket. No-op on an empty handle.
  void shutdown_both();

  /// Closes the fd; idempotent.
  void close();

  /// Releases ownership of the fd without closing it.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Connects to 127.0.0.1:`port` with a connect deadline. Throws NetError
/// when the connection cannot be established within `timeout_seconds`
/// (0 = the kernel default).
Socket connect_loopback(std::uint16_t port, double timeout_seconds = 0.0);

/// RAII loopback listening socket: binds 127.0.0.1:`port` (port 0 picks an
/// ephemeral port; read it back with port()) with SO_REUSEADDR, listens,
/// and hands out accepted connections. stop() retires the fd atomically so
/// it is safe to call from any thread while accept() blocks.
class Listener {
 public:
  /// Throws NetError when the socket cannot be bound.
  explicit Listener(std::uint16_t port, int backlog = 16);
  /// stop()s if still listening.
  ~Listener() { stop(); }

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound TCP port (the actual one when constructed with port 0).
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns an empty Socket once stop()
  /// retired the listening fd (the accept-loop exit signal); transient
  /// accept errors (EINTR, aborted handshakes) are retried internally.
  Socket accept();

  /// Shuts down and closes the listening socket, unblocking any accept()
  /// in flight. Idempotent; safe from any thread.
  void stop();

 private:
  /// Atomic: stop() retires the fd from the caller's thread while the
  /// accept loop reads it.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace imrdmd::net
