// IngestListener: the server side of the IMRDWP1 wire — accepts N
// concurrent ChunkShipper connections on one loopback port and routes
// each stream's verified chunk frames into its TcpChunkSource journal.
//
//   shipper --TCP--> IngestListener --append--> TcpChunkSource(journal)
//                                                     |
//                                    serve::AssessorService tenant pulls
//
// Per connection: validate the magic and hello, resolve the stream id
// (pre-registered source, or mint one through the on_new_stream factory —
// the dynamic-tenant path examples/assessor_server uses), answer with the
// resume point (journaled sequence/position), then verify-journal-ack
// frames until End or disconnect. Acks are sent only after the journal
// append, so an ack is a durability receipt and reconnect-with-resume is
// exact.
//
// Error isolation: each connection runs on its own handler thread and
// every failure is contained to it — a shipper sending damaged frames
// (digest mismatch), a foreign protocol, or a sequence gap gets a typed
// Error frame and a closed connection; neighbor streams never notice.
// Counters land in the shared MetricsRegistry as imrdmd_net_frames_total,
// imrdmd_net_bytes_total, imrdmd_net_reconnects_total, and
// imrdmd_net_digest_failures_total, all labeled {stream=...} — scraped
// through the same OpenMetrics exporter as the serving layer's series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/tcp_source.hpp"
#include "serve/metrics.hpp"

namespace imrdmd::net {

struct IngestListenerOptions {
  /// Loopback port to listen on (0 picks an ephemeral port; read it back
  /// with port()).
  std::uint16_t port = 0;
  /// Per-connection socket deadlines (seconds; 0 = wait forever): a
  /// shipper that goes silent longer than this has its connection retired
  /// (it reconnects and resumes when it comes back).
  double recv_timeout_seconds = 60.0;
  double send_timeout_seconds = 10.0;
  /// Shared metrics registry (borrowed; may be null — no counters then).
  serve::MetricsRegistry* metrics = nullptr;
  /// Called (from the connection's handler thread) when a hello names a
  /// stream id with no registered source. Return the source to route the
  /// stream into — the callback owns registration-for-next-time and any
  /// tenant wiring — or null to reject the stream. Null function =
  /// unknown streams are rejected.
  std::function<TcpChunkSource*(const std::string& stream_id,
                                std::size_t sensors)>
      on_new_stream;
};

class IngestListener {
 public:
  /// Binds and starts accepting. Throws NetError when the port cannot be
  /// bound.
  explicit IngestListener(IngestListenerOptions options);
  /// stop()s if still running.
  ~IngestListener();

  IngestListener(const IngestListener&) = delete;
  IngestListener& operator=(const IngestListener&) = delete;

  /// The bound TCP port.
  std::uint16_t port() const { return listener_.port(); }

  /// Routes hellos naming `stream_id` into `source` (borrowed; must
  /// outlive the listener). InvalidArgument on a duplicate id.
  void register_stream(const std::string& stream_id, TcpChunkSource* source);

  /// Stops accepting, retires every active connection, and joins all
  /// handler threads. Idempotent. Registered sources are left untouched
  /// (their journals remain resumable).
  void stop();

  /// Connections accepted so far (diagnostic).
  std::size_t connections_accepted() const;

 private:
  /// One connection's slot: the socket stays owned here so stop() can
  /// shutdown_both() a live connection without racing the handler's own
  /// close-on-exit (both sides synchronize on the slot mutex).
  struct Connection {
    std::mutex mutex;
    Socket socket;
    std::thread thread;
    bool done = false;
  };

  void accept_loop();
  void handle_connection(Connection& connection);
  /// Serves one shipper's framed session on `socket`; throws typed wire
  /// errors which handle_connection converts into Error frames.
  void serve_stream(Socket& socket);
  TcpChunkSource* resolve_stream(const std::string& stream_id,
                                 std::size_t sensors);
  void count(const char* name, const std::string& stream, double delta);
  /// Joins and drops finished connection slots (called from the accept
  /// loop so long-lived listeners do not accumulate dead threads).
  void reap_finished();

  IngestListenerOptions options_;
  Listener listener_;
  std::thread acceptor_;

  mutable std::mutex mutex_;
  std::map<std::string, TcpChunkSource*> streams_;
  /// Hello counts per stream id — a second hello is a reconnect.
  std::map<std::string, std::size_t> hellos_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::size_t accepted_ = 0;
};

}  // namespace imrdmd::net
