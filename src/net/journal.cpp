#include "net/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace imrdmd::net {

namespace {

constexpr char kJournalMagic[8] = {'I', 'M', 'R', 'D', 'J', 'L', '1', '\n'};
constexpr std::uint8_t kKindChunk = 1;
constexpr std::uint8_t kKindEnd = 2;

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("ChunkJournal: write to " + path + " failed: " +
                  std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

/// pread of exactly `size` bytes; returns false on a short read (EOF).
bool pread_all(int fd, std::uint8_t* data, std::size_t size,
               std::uint64_t offset, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, data + done, size - done,
                              static_cast<off_t>(offset + done));
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("ChunkJournal: read of " + path + " failed: " +
                  std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ChunkJournal::ChunkJournal(std::string path, std::size_t sensors)
    : path_(std::move(path)), sensors_(sensors) {
  IMRDMD_REQUIRE_ARG(sensors_ > 0, "ChunkJournal: sensors must be > 0");
  IMRDMD_REQUIRE_ARG(!path_.empty(), "ChunkJournal: path must be set");
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("ChunkJournal: cannot open " + path_ + ": " +
                std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    throw Error("ChunkJournal: fstat of " + path_ + " failed: " +
                std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (st.st_size == 0) {
    // Fresh journal: write the header.
    std::vector<std::uint8_t> header(kJournalMagic,
                                     kJournalMagic + sizeof(kJournalMagic));
    put_u64(header, sensors_);
    write_all(fd_, header.data(), header.size(), path_);
    append_offset_ = header.size();
    return;
  }
  const std::uint64_t good = scan_locked();
  if (good < static_cast<std::uint64_t>(st.st_size)) {
    // Torn tail from a kill mid-append: drop it so the next append starts
    // on a record boundary.
    if (::ftruncate(fd_, static_cast<off_t>(good)) != 0) {
      throw Error("ChunkJournal: truncate of torn tail in " + path_ +
                  " failed: " + std::strerror(errno));
    }
  }
  append_offset_ = good;
}

ChunkJournal::~ChunkJournal() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t ChunkJournal::scan_locked() {
  std::uint8_t header[16];
  if (!pread_all(fd_, header, sizeof(header), 0, path_) ||
      std::memcmp(header, kJournalMagic, sizeof(kJournalMagic)) != 0) {
    throw Error("ChunkJournal: " + path_ + " is not an IMRDJL1 journal");
  }
  const std::uint64_t recorded_sensors = get_u64(header + 8);
  if (recorded_sensors != sensors_) {
    throw Error("ChunkJournal: " + path_ + " records " +
                std::to_string(recorded_sensors) + " sensors, expected " +
                std::to_string(sensors_));
  }
  std::uint64_t at = sizeof(header);
  for (;;) {
    std::uint8_t kind = 0;
    if (!pread_all(fd_, &kind, 1, at, path_)) return at;
    if (kind == kKindEnd) {
      ended_ = true;
      return at + 1;  // nothing may follow the end marker
    }
    if (kind != kKindChunk) {
      throw Error("ChunkJournal: " + path_ + " holds an unknown record kind " +
                  std::to_string(kind) + " at offset " + std::to_string(at));
    }
    std::uint8_t meta[16];
    if (!pread_all(fd_, meta, sizeof(meta), at + 1, path_)) return at;
    const std::uint64_t cols = get_u64(meta);
    const std::uint64_t digest = get_u64(meta + 8);
    if (cols == 0) {
      throw Error("ChunkJournal: " + path_ + " holds a zero-width chunk");
    }
    const std::uint64_t payload_bytes = sensors_ * cols * sizeof(double);
    const std::uint64_t payload_offset = at + 1 + sizeof(meta);
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(payload_bytes));
    if (!pread_all(fd_, payload.data(), payload.size(), payload_offset,
                   path_)) {
      return at;  // torn tail: record incomplete
    }
    // A record that is complete on disk but fails its digest is real
    // corruption, not a torn append — refuse to serve it.
    if (fnv1a64(payload.data(), payload.size()) != digest) {
      throw Error("ChunkJournal: digest mismatch in " + path_ +
                  " at offset " + std::to_string(at) +
                  " (journal corrupted)");
    }
    Record record;
    record.payload_offset = payload_offset;
    record.cols = static_cast<std::size_t>(cols);
    record.start = snapshots_;
    records_.push_back(record);
    snapshots_ += record.cols;
    at = payload_offset + payload_bytes;
  }
}

std::size_t ChunkJournal::chunks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::size_t ChunkJournal::snapshots() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_;
}

bool ChunkJournal::ended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ended_;
}

void ChunkJournal::append(const linalg::Mat& chunk) {
  IMRDMD_REQUIRE_DIMS(chunk.rows() == sensors_,
                      "ChunkJournal: chunk row count != sensors");
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0, "ChunkJournal: empty chunk");
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(!ended_, "ChunkJournal: append after the end marker");

  std::vector<std::uint8_t> payload;
  put_matrix(payload, chunk);

  std::vector<std::uint8_t> record;
  record.reserve(17 + payload.size());
  record.push_back(kKindChunk);
  put_u64(record, chunk.cols());
  put_u64(record, fnv1a64(payload.data(), payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());

  if (::lseek(fd_, static_cast<off_t>(append_offset_), SEEK_SET) < 0) {
    throw Error("ChunkJournal: seek in " + path_ + " failed: " +
                std::strerror(errno));
  }
  write_all(fd_, record.data(), record.size(), path_);

  Record entry;
  entry.payload_offset = append_offset_ + 17;
  entry.cols = chunk.cols();
  entry.start = snapshots_;
  records_.push_back(entry);
  snapshots_ += chunk.cols();
  append_offset_ += record.size();
}

void ChunkJournal::append_end() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ended_) return;
  if (::lseek(fd_, static_cast<off_t>(append_offset_), SEEK_SET) < 0) {
    throw Error("ChunkJournal: seek in " + path_ + " failed: " +
                std::strerror(errno));
  }
  const std::uint8_t kind = kKindEnd;
  write_all(fd_, &kind, 1, path_);
  append_offset_ += 1;
  ended_ = true;
}

linalg::Mat ChunkJournal::read_chunk(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(index < records_.size(),
                     "ChunkJournal: chunk index out of range");
  const Record& record = records_[index];
  std::vector<std::uint8_t> payload(sensors_ * record.cols *
                                    sizeof(double));
  if (!pread_all(fd_, payload.data(), payload.size(),
                 record.payload_offset, path_)) {
    throw Error("ChunkJournal: journaled record in " + path_ +
                " vanished (file truncated externally)");
  }
  return get_matrix(payload.data(), sensors_, record.cols);
}

std::size_t ChunkJournal::chunk_cols(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(index < records_.size(),
                     "ChunkJournal: chunk index out of range");
  return records_[index].cols;
}

std::size_t ChunkJournal::chunk_start(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(index < records_.size(),
                     "ChunkJournal: chunk index out of range");
  return records_[index].start;
}

std::size_t ChunkJournal::find_chunk(std::size_t snapshot) const {
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(snapshot < snapshots_,
                     "ChunkJournal: snapshot index past the journal");
  // Binary search the cumulative starts for the record containing it.
  std::size_t lo = 0;
  std::size_t hi = records_.size();
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (records_[mid].start <= snapshot) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace imrdmd::net
