#include "net/listener.hpp"

#include <utility>

#include "common/error.hpp"
#include "net/wire.hpp"

namespace imrdmd::net {

namespace {

/// Best-effort typed rejection: the peer may already be gone, in which
/// case the close is answer enough.
void try_send_error(Socket& socket, ErrorCode code,
                    const std::string& message) {
  try {
    send_frame(socket, FrameType::Error, 0,
               encode_error_payload(code, message));
  } catch (const NetError&) {
  }
}

}  // namespace

IngestListener::IngestListener(IngestListenerOptions options)
    : options_(std::move(options)), listener_(options_.port) {
  acceptor_ = std::thread([this] { accept_loop(); });
}

IngestListener::~IngestListener() { stop(); }

void IngestListener::register_stream(const std::string& stream_id,
                                     TcpChunkSource* source) {
  IMRDMD_REQUIRE_ARG(source != nullptr,
                     "IngestListener: null source for stream " + stream_id);
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(streams_.emplace(stream_id, source).second,
                     "IngestListener: duplicate stream id " + stream_id);
}

void IngestListener::stop() {
  listener_.stop();
  if (acceptor_.joinable()) acceptor_.join();
  // Retire every live connection, then join its handler. The slot mutex
  // orders our shutdown against the handler's close-on-exit so a recycled
  // fd can never be shut down by mistake.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections.swap(connections_);
  }
  for (std::unique_ptr<Connection>& connection : connections) {
    {
      std::lock_guard<std::mutex> lock(connection->mutex);
      if (!connection->done) connection->socket.shutdown_both();
    }
    if (connection->thread.joinable()) connection->thread.join();
  }
}

std::size_t IngestListener::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

void IngestListener::count(const char* name, const std::string& stream,
                           double delta) {
  if (options_.metrics != nullptr) {
    options_.metrics->counter_add(name, {{"stream", stream}}, delta);
  }
}

void IngestListener::reap_finished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      bool done;
      {
        std::lock_guard<std::mutex> slot((*it)->mutex);
        done = (*it)->done;
      }
      if (done) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (std::unique_ptr<Connection>& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void IngestListener::accept_loop() {
  for (;;) {
    Socket socket = listener_.accept();
    if (!socket.valid()) return;  // retired by stop()
    reap_finished();
    auto connection = std::make_unique<Connection>();
    Connection& slot = *connection;
    slot.socket = std::move(socket);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++accepted_;
      connections_.push_back(std::move(connection));
    }
    slot.thread = std::thread([this, &slot] { handle_connection(slot); });
  }
}

void IngestListener::handle_connection(Connection& connection) {
  connection.socket.set_timeouts(options_.send_timeout_seconds,
                                 options_.recv_timeout_seconds);
  try {
    serve_stream(connection.socket);
  } catch (const DigestMismatch& e) {
    // Damage in flight: reject the frame, drop the connection; the
    // shipper resends from the last ack on reconnect. Never journaled.
    count("imrdmd_net_digest_failures_total", "", 1.0);
    try_send_error(connection.socket, ErrorCode::DigestMismatch, e.what());
  } catch (const ProtocolError& e) {
    try_send_error(connection.socket, ErrorCode::Protocol, e.what());
  } catch (const ConnectionClosed&) {
    // The shipper went away mid-stream; its journal position is durable
    // and the reconnect resumes exactly there.
  } catch (const NetError&) {
    // Timeout or transport failure: same story as a hangup.
  } catch (const Error& e) {
    try_send_error(connection.socket, ErrorCode::Protocol, e.what());
  }
  std::lock_guard<std::mutex> lock(connection.mutex);
  connection.socket.close();
  connection.done = true;
}

TcpChunkSource* IngestListener::resolve_stream(const std::string& stream_id,
                                               std::size_t sensors) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = streams_.find(stream_id);
    if (it != streams_.end()) return it->second;
  }
  // The factory runs unlocked: it may construct sources, register tenants,
  // even call register_stream back into us.
  if (options_.on_new_stream) {
    TcpChunkSource* source = options_.on_new_stream(stream_id, sensors);
    if (source != nullptr) {
      std::lock_guard<std::mutex> lock(mutex_);
      streams_.emplace(stream_id, source);  // a racing factory won anyway
      return source;
    }
  }
  return nullptr;
}

void IngestListener::serve_stream(Socket& socket) {
  std::size_t wire_bytes = 0;
  expect_magic(socket);
  const Frame hello_frame = recv_frame(socket, &wire_bytes);
  if (hello_frame.type != FrameType::Hello) {
    throw ProtocolError("IngestListener: expected Hello, got frame type " +
                        std::to_string(static_cast<int>(hello_frame.type)));
  }
  const HelloPayload hello = decode_hello_payload(hello_frame.payload);
  TcpChunkSource* source = resolve_stream(hello.stream_id, hello.sensors);
  if (source == nullptr) {
    throw ProtocolError("IngestListener: unknown stream \"" +
                        hello.stream_id + "\"");
  }
  if (source->sensors() != hello.sensors) {
    throw ProtocolError(
        "IngestListener: stream \"" + hello.stream_id + "\" carries " +
        std::to_string(hello.sensors) + " sensors, source expects " +
        std::to_string(source->sensors()));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t hellos = ++hellos_[hello.stream_id];
    // Touching the counter with 0 on the first hello creates the series,
    // so a scrape can always see it; real reconnects add 1.
    count("imrdmd_net_reconnects_total", hello.stream_id,
          hellos > 1 ? 1.0 : 0.0);
  }
  count("imrdmd_net_frames_total", hello.stream_id, 1.0);
  count("imrdmd_net_bytes_total", hello.stream_id,
        static_cast<double>(wire_bytes));
  count("imrdmd_net_digest_failures_total", hello.stream_id, 0.0);

  send_frame(socket, FrameType::HelloAck, source->acked_seq(),
             encode_hello_ack_payload(source->acked_seq() + 1,
                                      source->journaled_snapshots(),
                                      source->ended()));

  for (;;) {
    wire_bytes = 0;
    const Frame frame = recv_frame(socket, &wire_bytes);
    count("imrdmd_net_bytes_total", hello.stream_id,
          static_cast<double>(wire_bytes));
    switch (frame.type) {
      case FrameType::Chunk: {
        const linalg::Mat chunk = decode_chunk_payload(frame.payload);
        if (chunk.rows() != source->sensors()) {
          throw ProtocolError(
              "IngestListener: chunk frame seq " +
              std::to_string(frame.seq) + " carries " +
              std::to_string(chunk.rows()) + " rows, source expects " +
              std::to_string(source->sensors()));
        }
        const TcpChunkSource::Append verdict =
            source->append_chunk(frame.seq, chunk);
        if (verdict == TcpChunkSource::Append::Gap) {
          throw ProtocolError("IngestListener: sequence gap — got seq " +
                              std::to_string(frame.seq) + ", journal holds " +
                              std::to_string(source->acked_seq()));
        }
        count("imrdmd_net_frames_total", hello.stream_id, 1.0);
        // Ack the cumulative journaled sequence AFTER the append: the ack
        // is a durability receipt (duplicates re-ack the same watermark).
        send_frame(socket, FrameType::Ack, source->acked_seq(), {});
        break;
      }
      case FrameType::Checkpoint: {
        count("imrdmd_net_frames_total", hello.stream_id, 1.0);
        send_frame(socket, FrameType::Ack, source->acked_seq(), {});
        break;
      }
      case FrameType::End: {
        source->mark_end();
        count("imrdmd_net_frames_total", hello.stream_id, 1.0);
        send_frame(socket, FrameType::EndAck, frame.seq, {});
        return;  // session complete
      }
      default:
        throw ProtocolError("IngestListener: unexpected frame type " +
                            std::to_string(static_cast<int>(frame.type)) +
                            " mid-stream");
    }
  }
}

}  // namespace imrdmd::net
