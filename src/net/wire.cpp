#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace imrdmd::net {

namespace {

bool known_frame_type(std::uint32_t raw) {
  return raw >= static_cast<std::uint32_t>(FrameType::Hello) &&
         raw <= static_cast<std::uint32_t>(FrameType::Error);
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

std::uint32_t get_u32(const std::uint8_t* bytes) {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i) value = (value << 8) | bytes[i];
  return value;
}

std::uint64_t get_u64(const std::uint8_t* bytes) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | bytes[i];
  return value;
}

void put_matrix(std::vector<std::uint8_t>& out, const linalg::Mat& mat) {
  const std::size_t count = mat.rows() * mat.cols();
  if constexpr (std::endian::native == std::endian::little) {
    const std::size_t at = out.size();
    out.resize(at + count * sizeof(double));
    std::memcpy(out.data() + at, mat.data(), count * sizeof(double));
  } else {
    out.reserve(out.size() + count * sizeof(double));
    for (std::size_t i = 0; i < count; ++i) {
      put_u64(out, std::bit_cast<std::uint64_t>(mat.data()[i]));
    }
  }
}

linalg::Mat get_matrix(const std::uint8_t* bytes, std::size_t rows,
                       std::size_t cols) {
  linalg::Mat mat(rows, cols);
  const std::size_t count = rows * cols;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(mat.data(), bytes, count * sizeof(double));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      mat.data()[i] =
          std::bit_cast<double>(get_u64(bytes + i * sizeof(double)));
    }
  }
  return mat;
}

std::vector<std::uint8_t> encode_hello_payload(const std::string& stream_id,
                                               std::size_t sensors) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, sensors);
  put_u32(payload, static_cast<std::uint32_t>(stream_id.size()));
  payload.insert(payload.end(), stream_id.begin(), stream_id.end());
  return payload;
}

HelloPayload decode_hello_payload(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 12) {
    throw ProtocolError("IMRDWP1: hello payload truncated");
  }
  HelloPayload hello;
  hello.sensors = static_cast<std::size_t>(get_u64(payload.data()));
  const std::uint32_t id_len = get_u32(payload.data() + 8);
  if (payload.size() != 12 + static_cast<std::size_t>(id_len)) {
    throw ProtocolError("IMRDWP1: hello id length disagrees with payload");
  }
  hello.stream_id.assign(payload.begin() + 12, payload.end());
  return hello;
}

std::vector<std::uint8_t> encode_hello_ack_payload(std::uint64_t next_seq,
                                                   std::uint64_t position,
                                                   bool ended) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, next_seq);
  put_u64(payload, position);
  payload.push_back(ended ? 1 : 0);
  return payload;
}

HelloAckPayload decode_hello_ack_payload(
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() != 17) {
    throw ProtocolError("IMRDWP1: hello-ack payload malformed");
  }
  HelloAckPayload ack;
  ack.next_seq = get_u64(payload.data());
  ack.position = get_u64(payload.data() + 8);
  ack.ended = payload[16] != 0;
  return ack;
}

std::vector<std::uint8_t> encode_chunk_payload(const linalg::Mat& chunk) {
  std::vector<std::uint8_t> payload;
  payload.reserve(16 + chunk.rows() * chunk.cols() * sizeof(double));
  put_u64(payload, chunk.rows());
  put_u64(payload, chunk.cols());
  put_matrix(payload, chunk);
  return payload;
}

linalg::Mat decode_chunk_payload(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 16) {
    throw ProtocolError("IMRDWP1: chunk payload truncated");
  }
  const std::uint64_t rows = get_u64(payload.data());
  const std::uint64_t cols = get_u64(payload.data() + 8);
  const std::uint64_t expected = 16 + rows * cols * sizeof(double);
  if (rows == 0 || cols == 0 || payload.size() != expected) {
    throw ProtocolError("IMRDWP1: chunk shape disagrees with payload size");
  }
  return get_matrix(payload.data() + 16, static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(cols));
}

std::vector<std::uint8_t> encode_error_payload(ErrorCode code,
                                               const std::string& message) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(code));
  put_u32(payload, static_cast<std::uint32_t>(message.size()));
  payload.insert(payload.end(), message.begin(), message.end());
  return payload;
}

ErrorPayload decode_error_payload(const std::vector<std::uint8_t>& payload) {
  if (payload.size() < 8) {
    throw ProtocolError("IMRDWP1: error payload truncated");
  }
  ErrorPayload error;
  error.code = static_cast<ErrorCode>(get_u32(payload.data()));
  const std::uint32_t msg_len = get_u32(payload.data() + 4);
  if (payload.size() != 8 + static_cast<std::size_t>(msg_len)) {
    throw ProtocolError("IMRDWP1: error message length disagrees");
  }
  error.message.assign(payload.begin() + 8, payload.end());
  return error;
}

void send_magic(Socket& socket) {
  socket.send_all(kWireMagic, sizeof(kWireMagic));
}

void expect_magic(Socket& socket) {
  char magic[sizeof(kWireMagic)];
  socket.recv_all(magic, sizeof(magic));
  if (std::memcmp(magic, kWireMagic, sizeof(kWireMagic)) != 0) {
    throw ProtocolError(
        "IMRDWP1: peer did not open with the protocol magic");
  }
}

std::size_t send_frame(Socket& socket, FrameType type, std::uint64_t seq,
                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(kFrameHeaderSize + payload.size());
  put_u32(wire, static_cast<std::uint32_t>(type));
  put_u64(wire, seq);
  put_u64(wire, fnv1a64(payload.data(), payload.size()));
  put_u64(wire, payload.size());
  wire.insert(wire.end(), payload.begin(), payload.end());
  socket.send_all(wire.data(), wire.size());
  return wire.size();
}

Frame recv_frame(Socket& socket, std::size_t* wire_bytes) {
  std::uint8_t header[kFrameHeaderSize];
  socket.recv_all(header, sizeof(header));
  const std::uint32_t raw_type = get_u32(header);
  if (!known_frame_type(raw_type)) {
    throw ProtocolError("IMRDWP1: unknown frame type " +
                        std::to_string(raw_type));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.seq = get_u64(header + 4);
  const std::uint64_t digest = get_u64(header + 12);
  const std::uint64_t length = get_u64(header + 20);
  if (length > kMaxFramePayload) {
    throw ProtocolError("IMRDWP1: frame payload of " +
                        std::to_string(length) + " bytes exceeds the cap");
  }
  frame.payload.resize(static_cast<std::size_t>(length));
  if (length > 0) {
    socket.recv_all(frame.payload.data(), frame.payload.size());
  }
  if (wire_bytes != nullptr) {
    *wire_bytes += kFrameHeaderSize + frame.payload.size();
  }
  if (fnv1a64(frame.payload.data(), frame.payload.size()) != digest) {
    throw DigestMismatch("IMRDWP1: payload digest mismatch on frame seq " +
                         std::to_string(frame.seq));
  }
  return frame;
}

}  // namespace imrdmd::net
