// TcpChunkSource: the receiving end of the IMRDWP1 wire as a real
// core::ChunkSource. The ingest listener (net/listener.hpp) appends every
// verified chunk frame into the source's on-disk journal
// (net/journal.hpp); the consuming engine pulls chunks back out through
// the ordinary next_chunk()/position()/seek() contract — blocking while
// the network is ahead of compute, replaying from the journal when a
// checkpointed tenant rewinds. Because the journal holds the full
// received history, a socket-fed tenant checkpoints-on-stop and resumes
// bitwise identically to a file-fed one: the successor process reopens
// the same journal path, seeks to the checkpoint position, and replays —
// no live shipper connection required for the already-received span.
//
// Threading: the listener's connection handler is the producer
// (append_chunk/mark_end/fail), the engine's prefetch thread is the
// consumer (next_chunk); both synchronize on one internal mutex + condvar.
// close() unblocks a waiting consumer with end-of-stream, which is how a
// server shuts down a tenant whose shipper went silent.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/stream.hpp"
#include "net/journal.hpp"

namespace imrdmd::net {

class TcpChunkSource final : public core::ChunkSource {
 public:
  struct Options {
    /// Journal file backing the stream (required). An existing journal is
    /// resumed: its chunks count as already received (and acked).
    std::string journal_path;
    /// How long next_chunk() waits for the network before giving up
    /// (seconds; 0 = wait forever). On expiry next_chunk throws NetError —
    /// a stuck shipper becomes a typed tenant failure, not a hung engine.
    double idle_timeout_seconds = 0.0;
  };

  /// Sequence-checked append verdicts (the listener's dedupe/ordering
  /// discipline lives here so two racing connection handlers cannot
  /// interleave appends inconsistently).
  enum class Append { Accepted, Duplicate, Gap };

  TcpChunkSource(std::size_t sensors, Options options);

  // --- producer side (ingest listener / tests) ---------------------------

  /// Journals chunk frame `seq` when it is the next expected one
  /// (journaled chunks + 1). Returns Duplicate for an already-journaled
  /// sequence (a reconnect replay — ack it again, append nothing) and Gap
  /// for a sequence from the future (a protocol violation).
  Append append_chunk(std::uint64_t seq, const linalg::Mat& chunk);

  /// Journals the end-of-stream marker and wakes the consumer. Idempotent.
  void mark_end();

  /// Fails the stream: the consumer's next_chunk rethrows `error`.
  /// The journal stays intact (a resume may still replay it).
  void fail(std::exception_ptr error);

  /// Stops waiting for the network WITHOUT journaling an end marker: the
  /// consumer drains whatever is already journaled and then sees
  /// end-of-stream, but a reopened journal resumes as live. Shutdown path
  /// for servers.
  void close();

  /// Chunks journaled so far — the cumulative ack sequence.
  std::uint64_t acked_seq() const;
  /// Snapshot columns journaled so far (HelloAck's resume position).
  std::size_t journaled_snapshots() const;
  /// True once the end marker is journaled.
  bool ended() const;
  const std::string& journal_path() const { return journal_.path(); }

  // --- core::ChunkSource --------------------------------------------------

  /// Next journaled chunk, blocking while the network is behind. Returns
  /// nullopt at end-of-stream (or after close()); rethrows a fail() error;
  /// throws NetError when idle_timeout_seconds expires with no data.
  std::optional<core::Mat> next_chunk() override;
  std::size_t sensors() const override { return journal_.sensors(); }

  std::size_t position() const override;
  /// Seekable over the journaled history: any snapshot <= journaled (the
  /// horizon once ended). Seeking past what was received throws
  /// InvalidArgument — a checkpoint can only record consumed positions, so
  /// a well-formed resume never does.
  void seek(std::size_t snapshot) override;

 private:
  ChunkJournal journal_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable data_cv_;
  std::size_t position_ = 0;
  bool closed_ = false;
  std::exception_ptr error_;
};

}  // namespace imrdmd::net
