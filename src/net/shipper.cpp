#include "net/shipper.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace imrdmd::net {

namespace {

/// Turns a server Error frame into the matching typed exception:
/// DigestMismatch is retryable (the frame was damaged in flight, a resend
/// usually lands intact), everything else is a permanent rejection.
[[noreturn]] void throw_server_error(const Frame& frame) {
  const ErrorPayload error = decode_error_payload(frame.payload);
  if (error.code == ErrorCode::DigestMismatch) {
    throw DigestMismatch("ingest listener rejected a damaged frame: " +
                         error.message);
  }
  throw ProtocolError("ingest listener rejected the stream: " +
                      error.message);
}

}  // namespace

ChunkShipper::ChunkShipper(ShipperOptions options)
    : options_(std::move(options)), jitter_(options_.jitter_seed) {
  IMRDMD_REQUIRE_ARG(options_.port != 0, "ChunkShipper: port must be set");
  IMRDMD_REQUIRE_ARG(options_.window >= 1,
                     "ChunkShipper: window must be >= 1");
  IMRDMD_REQUIRE_ARG(options_.max_attempts >= 1,
                     "ChunkShipper: max_attempts must be >= 1");
}

ShipSummary ChunkShipper::ship(core::ChunkSource& source) {
  ShipSummary summary;
  const serve::MetricLabels labels = {{"stream", options_.stream_id},
                                      {"side", "shipper"}};
  const auto count = [&](const char* name, double delta) {
    if (options_.metrics != nullptr) {
      options_.metrics->counter_add(name, labels, delta);
    }
  };

  std::size_t attempt = 0;
  std::uint64_t last_resume_seq = 0;
  for (;;) {
    try {
      Socket socket = connect_loopback(options_.port,
                                       options_.send_timeout_seconds);
      socket.set_timeouts(options_.send_timeout_seconds,
                          options_.recv_timeout_seconds);
      send_magic(socket);
      summary.wire_bytes +=
          send_frame(socket, FrameType::Hello, 0,
                     encode_hello_payload(options_.stream_id,
                                          source.sensors()));
      Frame reply = recv_frame(socket, &summary.wire_bytes);
      if (reply.type == FrameType::Error) throw_server_error(reply);
      if (reply.type != FrameType::HelloAck) {
        throw ProtocolError("ChunkShipper: expected HelloAck, got frame "
                            "type " +
                            std::to_string(static_cast<int>(reply.type)));
      }
      const HelloAckPayload hello_ack =
          decode_hello_ack_payload(reply.payload);
      // "Progress" = the server journaled something new since our last
      // handshake; only that resets the failure budget, so a peer that
      // accepts connections but never acks still exhausts max_attempts.
      if (hello_ack.next_seq > last_resume_seq || last_resume_seq == 0) {
        attempt = 0;
      }
      last_resume_seq = hello_ack.next_seq;
      if (hello_ack.ended) return summary;  // server holds the full stream

      // Resume exactly where the server's journal stops.
      source.seek(static_cast<std::size_t>(hello_ack.position));
      std::uint64_t seq = hello_ack.next_seq - 1;

      /// In-flight chunk frames: sequence -> snapshot columns. Acks are
      /// cumulative, so one ack may retire several entries.
      std::deque<std::pair<std::uint64_t, std::size_t>> unacked;
      const auto drain_one = [&]() -> bool {
        Frame frame = recv_frame(socket, &summary.wire_bytes);
        if (frame.type == FrameType::Error) throw_server_error(frame);
        if (frame.type == FrameType::Ack) {
          while (!unacked.empty() && unacked.front().first <= frame.seq) {
            summary.chunks += 1;
            summary.snapshots += unacked.front().second;
            count("imrdmd_net_frames_total", 1.0);
            unacked.pop_front();
          }
          return false;
        }
        if (frame.type == FrameType::EndAck) return true;
        throw ProtocolError("ChunkShipper: unexpected frame type " +
                            std::to_string(static_cast<int>(frame.type)) +
                            " while awaiting acks");
      };

      std::size_t since_marker = 0;
      while (std::optional<core::Mat> chunk = source.next_chunk()) {
        ++seq;
        const std::size_t bytes = send_frame(
            socket, FrameType::Chunk, seq, encode_chunk_payload(*chunk));
        summary.wire_bytes += bytes;
        count("imrdmd_net_bytes_total", static_cast<double>(bytes));
        unacked.emplace_back(seq, chunk->cols());
        if (options_.checkpoint_marker_every > 0 &&
            ++since_marker >= options_.checkpoint_marker_every) {
          since_marker = 0;
          std::vector<std::uint8_t> marker;
          put_u64(marker, source.position());
          summary.wire_bytes +=
              send_frame(socket, FrameType::Checkpoint, seq, marker);
        }
        while (unacked.size() >= options_.window) {
          if (drain_one()) {
            throw ProtocolError(
                "ChunkShipper: EndAck before the stream ended");
          }
        }
      }

      std::vector<std::uint8_t> end_payload;
      put_u64(end_payload, source.position());
      summary.wire_bytes +=
          send_frame(socket, FrameType::End, seq, end_payload);
      while (!drain_one()) {
      }
      if (!unacked.empty()) {
        throw ProtocolError(
            "ChunkShipper: server ended the stream with " +
            std::to_string(unacked.size()) + " chunk frames unacked");
      }
      return summary;
    } catch (const ProtocolError&) {
      throw;  // a reconnect would be rejected identically
    } catch (const NetError&) {
      ++attempt;
      if (attempt >= options_.max_attempts) throw;
      ++summary.reconnects;
      count("imrdmd_net_reconnects_total", 1.0);
      const double exponent =
          static_cast<double>(std::min<std::size_t>(attempt, 16) - 1);
      double backoff = options_.backoff_base_seconds;
      for (double i = 0; i < exponent; i += 1.0) backoff *= 2.0;
      backoff = std::min(backoff, options_.backoff_cap_seconds);
      backoff *= 1.0 + 0.25 * jitter_.uniform();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
  }
}

}  // namespace imrdmd::net
