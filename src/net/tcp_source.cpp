#include "net/tcp_source.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "net/socket.hpp"

namespace imrdmd::net {

TcpChunkSource::TcpChunkSource(std::size_t sensors, Options options)
    : journal_(options.journal_path, sensors),
      options_(std::move(options)) {}

TcpChunkSource::Append TcpChunkSource::append_chunk(
    std::uint64_t seq, const linalg::Mat& chunk) {
  // mutex_ serializes the seq check with the append, so two connection
  // handlers racing a reconnect handoff cannot interleave the journal.
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t journaled = journal_.chunks();
  if (seq <= journaled) return Append::Duplicate;
  if (seq != journaled + 1) return Append::Gap;
  journal_.append(chunk);
  data_cv_.notify_all();
  return Append::Accepted;
}

void TcpChunkSource::mark_end() {
  std::lock_guard<std::mutex> lock(mutex_);
  journal_.append_end();
  data_cv_.notify_all();
}

void TcpChunkSource::fail(std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  error_ = std::move(error);
  data_cv_.notify_all();
}

void TcpChunkSource::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  data_cv_.notify_all();
}

std::uint64_t TcpChunkSource::acked_seq() const { return journal_.chunks(); }

std::size_t TcpChunkSource::journaled_snapshots() const {
  return journal_.snapshots();
}

bool TcpChunkSource::ended() const { return journal_.ended(); }

std::optional<core::Mat> TcpChunkSource::next_chunk() {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto ready = [this] {
    return error_ != nullptr || closed_ || journal_.ended() ||
           position_ < journal_.snapshots();
  };
  if (options_.idle_timeout_seconds > 0.0) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.idle_timeout_seconds));
    if (!data_cv_.wait_until(lock, deadline, ready)) {
      throw NetError("TcpChunkSource: no frames for " +
                     std::to_string(options_.idle_timeout_seconds) +
                     " s on " + journal_.path());
    }
  } else {
    data_cv_.wait(lock, ready);
  }
  if (error_ != nullptr) {
    std::rethrow_exception(std::exchange(error_, nullptr));
  }
  if (position_ >= journal_.snapshots()) {
    return std::nullopt;  // ended or closed with everything consumed
  }
  // Emit the journaled record containing position_ — the tail of it after
  // a mid-chunk seek, the whole record otherwise, so an un-seeked stream
  // replays the exact chunk boundaries the shipper sent.
  const std::size_t index = journal_.find_chunk(position_);
  const std::size_t start = journal_.chunk_start(index);
  linalg::Mat chunk = journal_.read_chunk(index);
  const std::size_t offset = position_ - start;
  if (offset > 0) {
    chunk = chunk.block(0, offset, chunk.rows(), chunk.cols() - offset);
  }
  position_ += chunk.cols();
  return chunk;
}

std::size_t TcpChunkSource::position() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return position_;
}

void TcpChunkSource::seek(std::size_t snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  IMRDMD_REQUIRE_ARG(
      snapshot <= journal_.snapshots(),
      "TcpChunkSource: seek past the journaled horizon (snapshot " +
          std::to_string(snapshot) + " > " +
          std::to_string(journal_.snapshots()) + " received)");
  position_ = snapshot;
}

}  // namespace imrdmd::net
