// ChunkShipper: the telemetry producer's side of the IMRDWP1 wire — the
// log-shipper that drains ANY core::ChunkSource (a replayed env log, a
// collector's file tail, a test matrix) and ships it to an ingest
// listener over TCP.
//
// Robustness model (the paper's telemetry arrives from flaky collectors
// on monitored racks):
//   * every chunk frame carries a monotonic sequence number and an
//     FNV-1a64 payload digest;
//   * up to `window` frames ride unacked (pipelining); acks are
//     cumulative, so one ack can retire several frames;
//   * any socket error, timeout, or server-reported digest mismatch tears
//     the connection down and reconnects with exponential backoff +
//     deterministic jitter;
//   * on reconnect the server's HelloAck names the resume point (last
//     journaled sequence + snapshot position); the shipper seek()s the
//     source back and resends exactly what the server missed — which is
//     why reconnect-with-resume needs a seekable source (the repo-wide
//     position()/seek() contract) and why the received stream is bitwise
//     identical to the sent one, kills mid-frame included.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/stream.hpp"
#include "serve/metrics.hpp"

namespace imrdmd::net {

struct ShipperOptions {
  /// Ingest listener port on 127.0.0.1 (required).
  std::uint16_t port = 0;
  /// Stream identity announced in the hello — the ingest listener routes
  /// frames to the TcpChunkSource registered (or created) under this id.
  std::string stream_id = "stream-0";
  /// Per-operation socket deadlines (seconds). Connect shares the send
  /// deadline; 0 = wait forever.
  double send_timeout_seconds = 10.0;
  /// How long to wait for an ack before declaring the connection dead.
  double recv_timeout_seconds = 10.0;
  /// Max chunk frames in flight without an ack (>= 1).
  std::size_t window = 8;
  /// Consecutive failed attempts before ship() gives up and rethrows the
  /// last network error. An attempt that completes a handshake resets the
  /// counter (steady progress never exhausts the budget).
  std::size_t max_attempts = 8;
  /// Exponential backoff between attempts: base * 2^(attempt-1), capped,
  /// with up to +25% deterministic jitter from `jitter_seed` (so a fleet
  /// of restarting shippers does not reconnect in lockstep).
  double backoff_base_seconds = 0.05;
  double backoff_cap_seconds = 2.0;
  std::uint64_t jitter_seed = 0x5eed;
  /// Send a Checkpoint marker frame every N shipped chunks (0 = never) —
  /// a liveness beacon carrying the source position.
  std::size_t checkpoint_marker_every = 0;
  /// Optional client-side metrics (borrowed; may be null): the shipper
  /// adds to imrdmd_net_frames_total / _bytes_total / _reconnects_total
  /// with labels {stream, side="shipper"}.
  serve::MetricsRegistry* metrics = nullptr;
};

/// What one ship() call moved.
struct ShipSummary {
  /// Chunk frames the server newly acked (duplicates resent on a resume
  /// are not counted twice).
  std::size_t chunks = 0;
  /// Snapshot columns those chunks carried.
  std::size_t snapshots = 0;
  /// Wire bytes written (headers + payloads, resends included).
  std::size_t wire_bytes = 0;
  /// Reconnect attempts that followed a connection failure.
  std::size_t reconnects = 0;
};

class ChunkShipper {
 public:
  explicit ChunkShipper(ShipperOptions options);

  /// Drains `source` to end-of-stream over TCP and returns once the
  /// server acked everything (End frame included). Reconnects on network
  /// faults; throws NetError once max_attempts consecutive attempts fail,
  /// and ProtocolError immediately on a non-retryable server rejection
  /// (unknown stream, sensor mismatch, framing violation).
  ShipSummary ship(core::ChunkSource& source);

 private:
  ShipperOptions options_;
  Rng jitter_;
};

}  // namespace imrdmd::net
