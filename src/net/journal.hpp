// On-disk chunk journal ("IMRDJL1"): the spool that makes a socket-fed
// ChunkSource genuinely seekable. Every chunk the ingest listener accepts
// is appended here before it is acked, so
//
//   * position()/seek()/replay work over the full received history (the
//     ChunkSource conformance contract — a checkpointed socket tenant can
//     rewind to any snapshot it already consumed),
//   * a successor process reopens the same journal and resumes bitwise
//     (the chunks are stored as raw IEEE-754 bit patterns), and
//   * the server's ack is a durability receipt: what the shipper believes
//     was delivered is exactly what a restart can still replay.
//
// File layout (all integers LE, via net/wire.hpp's packing):
//   8 bytes   magic "IMRDJL1\n"
//   8 bytes   sensors (u64; every chunk must carry this many rows)
//   records:
//     u8 kind            1 = chunk, 2 = end-of-stream
//     chunk records add: u64 cols, u64 FNV-1a64 digest of the payload,
//                        sensors*cols f64 LE (row-major)
//
// Reopen semantics: records are scanned front to back. A truncated tail
// record (the expected debris of a kill mid-append) is discarded and the
// file truncated back to the last complete record; a *complete* record whose
// digest fails is real corruption and throws Error. The end marker makes
// stream completion durable across restarts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::net {

class ChunkJournal {
 public:
  /// Opens (or creates) the journal at `path`. An existing file is
  /// scanned: its index is rebuilt, a torn tail record is truncated away,
  /// and `sensors` must match the recorded width (Error otherwise).
  ChunkJournal(std::string path, std::size_t sensors);
  ~ChunkJournal();

  ChunkJournal(const ChunkJournal&) = delete;
  ChunkJournal& operator=(const ChunkJournal&) = delete;

  const std::string& path() const { return path_; }
  std::size_t sensors() const { return sensors_; }

  /// Chunks journaled so far (the listener's cumulative ack sequence).
  std::size_t chunks() const;
  /// Snapshot columns journaled so far.
  std::size_t snapshots() const;
  /// True once the end-of-stream marker was journaled.
  bool ended() const;

  /// Appends one chunk record (rows must equal sensors(), cols >= 1) and
  /// flushes it to the file. Throws Error on I/O failure and
  /// InvalidArgument after the end marker.
  void append(const linalg::Mat& chunk);

  /// Appends the end-of-stream marker. Idempotent.
  void append_end();

  /// Reads chunk `index` back (bitwise identical to what was appended).
  linalg::Mat read_chunk(std::size_t index) const;

  /// Columns of chunk `index`.
  std::size_t chunk_cols(std::size_t index) const;
  /// First snapshot index of chunk `index` (cumulative column offset).
  std::size_t chunk_start(std::size_t index) const;
  /// Index of the chunk containing snapshot `snapshot`
  /// (requires snapshot < snapshots()).
  std::size_t find_chunk(std::size_t snapshot) const;

 private:
  struct Record {
    std::uint64_t payload_offset = 0;  // file offset of the f64 payload
    std::size_t cols = 0;
    std::size_t start = 0;  // cumulative snapshot offset
  };

  /// Scans an existing file, rebuilding records_; returns the offset of
  /// the first torn byte (== file size when the tail is clean).
  std::uint64_t scan_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::size_t sensors_ = 0;
  int fd_ = -1;  // one O_RDWR fd: appends via write, reads via pread
  std::uint64_t append_offset_ = 0;
  std::vector<Record> records_;
  std::size_t snapshots_ = 0;
  bool ended_ = false;
};

}  // namespace imrdmd::net
