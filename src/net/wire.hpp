// IMRDWP1 — the versioned framed binary wire protocol that puts a TCP
// wire between telemetry producers (net::ChunkShipper) and the serving
// layer (net::IngestListener -> net::TcpChunkSource).
//
// A connection opens with the 8-byte magic "IMRDWP1\n" (protocol + version
// in one token: an incompatible peer fails the very first read), followed
// by frames. Every frame is a fixed 28-byte header plus a payload:
//
//   offset  size  field
//   0       4     frame type (u32 LE; FrameType below)
//   4       8     sequence number (u64 LE; Chunk frames carry a monotonic
//                 counter starting at 1, control frames echo the current
//                 chunk sequence)
//   12      8     FNV-1a64 digest of the payload bytes (LE)
//   20      8     payload length in bytes (u64 LE)
//   28      ...   payload
//
// Frame types and payloads (all integers LE, doubles as IEEE-754 LE bit
// patterns — bitwise-exact across the wire, which is what lets the
// socket-fed engine reproduce a direct-source run bit for bit):
//
//   Hello       client->server  u64 sensors, u32 id_len, id bytes
//   HelloAck    server->client  u64 next_seq (first chunk sequence the
//                               server wants), u64 position (snapshots
//                               already journaled), u8 ended
//   Chunk       client->server  u64 rows, u64 cols, rows*cols f64
//                               (row-major)
//   Ack         server->client  empty; header seq = highest contiguously
//                               journaled chunk sequence (cumulative)
//   Checkpoint  client->server  u64 source position (a marker: the shipper
//                               crossed a checkpoint boundary)
//   End         client->server  u64 total snapshots shipped
//   EndAck      server->client  empty; sent once the end marker is
//                               journaled (the shipper's all-clear)
//   Error       server->client  u32 code (ErrorCode), u32 msg_len, msg
//
// Resume contract: the server acks a Chunk only after it is journaled, and
// HelloAck names the first sequence it still needs — so a shipper killed
// mid-frame reconnects, seeks its source to `position`, and resends from
// `next_seq`; the server drops duplicates by sequence. Digest mismatches
// (bit rot, a corrupting middlebox) are rejected with Error{DigestMismatch}
// and never journaled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "net/socket.hpp"

namespace imrdmd::net {

/// Peer spoke the protocol wrong (bad magic, unknown frame type, malformed
/// payload, sequence gap, unknown stream, sensor-count mismatch). Not
/// retryable — reconnecting would fail the same way.
class ProtocolError : public NetError {
 public:
  explicit ProtocolError(const std::string& what) : NetError(what) {}
};

/// A frame's payload digest did not match its header — the bytes were
/// damaged in flight. Retryable: the sender still has the frame and a
/// resend usually arrives intact.
class DigestMismatch : public NetError {
 public:
  explicit DigestMismatch(const std::string& what) : NetError(what) {}
};

/// The connection-opening magic: protocol name + version + newline, 8
/// bytes. Bump the digit for any incompatible framing change.
inline constexpr char kWireMagic[8] = {'I', 'M', 'R', 'D',
                                       'W', 'P', '1', '\n'};

enum class FrameType : std::uint32_t {
  Hello = 1,
  HelloAck = 2,
  Chunk = 3,
  Ack = 4,
  Checkpoint = 5,
  End = 6,
  EndAck = 7,
  Error = 8,
};

/// Error frame codes.
enum class ErrorCode : std::uint32_t {
  DigestMismatch = 1,  // frame damaged in flight; resend
  UnknownStream = 2,   // no registered source and no factory accepted it
  SensorMismatch = 3,  // hello/chunk shape disagrees with the source
  Protocol = 4,        // framing/sequence violation
};

/// Size of the fixed frame header on the wire.
inline constexpr std::size_t kFrameHeaderSize = 28;

/// Frames larger than this are rejected as malformed before allocation
/// (64 MiB — a 1024-sensor chunk of 8192 snapshots fits with headroom).
inline constexpr std::uint64_t kMaxFramePayload = 64ull << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::Hello;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64-bit digest of a byte buffer — the frame and journal payload
/// checksum (fast, dependency-free, and plenty for fault *detection*; this
/// is not a cryptographic seal).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);

/// --- Little-endian scalar packing (shared with the journal) -------------
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value);
std::uint32_t get_u32(const std::uint8_t* bytes);
std::uint64_t get_u64(const std::uint8_t* bytes);

/// Appends `mat`'s rows*cols doubles row-major as LE bit patterns.
void put_matrix(std::vector<std::uint8_t>& out, const linalg::Mat& mat);
/// Reads rows*cols LE doubles from `bytes` into a rows x cols matrix.
linalg::Mat get_matrix(const std::uint8_t* bytes, std::size_t rows,
                       std::size_t cols);

/// --- Payload builders/parsers -------------------------------------------
std::vector<std::uint8_t> encode_hello_payload(const std::string& stream_id,
                                               std::size_t sensors);
struct HelloPayload {
  std::string stream_id;
  std::size_t sensors = 0;
};
HelloPayload decode_hello_payload(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_hello_ack_payload(std::uint64_t next_seq,
                                                   std::uint64_t position,
                                                   bool ended);
struct HelloAckPayload {
  std::uint64_t next_seq = 1;
  std::uint64_t position = 0;
  bool ended = false;
};
HelloAckPayload decode_hello_ack_payload(
    const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_chunk_payload(const linalg::Mat& chunk);
linalg::Mat decode_chunk_payload(const std::vector<std::uint8_t>& payload);

std::vector<std::uint8_t> encode_error_payload(ErrorCode code,
                                               const std::string& message);
struct ErrorPayload {
  ErrorCode code = ErrorCode::Protocol;
  std::string message;
};
ErrorPayload decode_error_payload(const std::vector<std::uint8_t>& payload);

/// --- Socket I/O ---------------------------------------------------------
/// Sends the connection-opening magic / validates it (ProtocolError on a
/// foreign or incompatible peer).
void send_magic(Socket& socket);
void expect_magic(Socket& socket);

/// Frames and sends header + payload (digest computed here). Returns the
/// wire bytes written (header + payload) so callers can meter traffic.
std::size_t send_frame(Socket& socket, FrameType type, std::uint64_t seq,
                       const std::vector<std::uint8_t>& payload);

/// Reads one frame, validating the header (known type, payload cap) and
/// the payload digest. Throws DigestMismatch on a damaged payload,
/// ProtocolError on a malformed header, ConnectionClosed/NetError from the
/// socket layer. `wire_bytes`, when non-null, is incremented by the bytes
/// read.
Frame recv_frame(Socket& socket, std::size_t* wire_bytes = nullptr);

}  // namespace imrdmd::net
