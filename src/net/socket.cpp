#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

namespace imrdmd::net {

namespace {

timeval to_timeval(double seconds) {
  timeval tv{};
  if (seconds > 0.0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
  }
  return tv;
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void Socket::set_timeouts(double send_seconds, double recv_seconds) {
  IMRDMD_REQUIRE_ARG(valid(), "Socket::set_timeouts: empty handle");
  const timeval send_tv = to_timeval(send_seconds);
  const timeval recv_tv = to_timeval(recv_seconds);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &send_tv, sizeof(send_tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &recv_tv, sizeof(recv_tv));
}

void Socket::send_all(const void* data, std::size_t size) {
  IMRDMD_REQUIRE_ARG(valid(), "Socket::send_all: empty handle");
  const char* bytes = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("Socket::send_all: send timed out");
      }
      throw NetError(std::string("Socket::send_all: ") +
                     std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::recv_all(void* data, std::size_t size) {
  IMRDMD_REQUIRE_ARG(valid(), "Socket::recv_all: empty handle");
  char* bytes = static_cast<char*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd_, bytes + received, size - received, 0);
    if (n == 0) {
      throw ConnectionClosed("Socket::recv_all: peer closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("Socket::recv_all: recv timed out");
      }
      throw NetError(std::string("Socket::recv_all: ") +
                     std::strerror(errno));
    }
    received += static_cast<std::size_t>(n);
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_loopback(std::uint16_t port, double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw NetError(std::string("connect_loopback: socket() failed: ") +
                   std::strerror(errno));
  }
  Socket socket(fd);
  // SO_SNDTIMEO bounds a blocking connect() on Linux; arm it before the
  // handshake so an unreachable port fails within the deadline.
  socket.set_timeouts(timeout_seconds, timeout_seconds);
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINPROGRESS) {
      throw NetError("connect_loopback: connect to 127.0.0.1:" +
                     std::to_string(port) + " timed out");
    }
    throw NetError("connect_loopback: connect to 127.0.0.1:" +
                   std::to_string(port) + " failed: " +
                   std::strerror(errno));
  }
  return socket;
}

Listener::Listener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw NetError(std::string("Listener: socket() failed: ") +
                   std::strerror(errno));
  }
  const int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw NetError("Listener: cannot listen on 127.0.0.1:" +
                   std::to_string(port) + ": " + why);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  fd_.store(fd);
}

Socket Listener::accept() {
  for (;;) {
    const int listen_fd = fd_.load();
    if (listen_fd < 0) return Socket{};  // retired by stop()
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    return Socket{};  // listening socket closed by stop()
  }
}

void Listener::stop() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a blocked accept(); close() alone does not on
    // every kernel.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace imrdmd::net
