// I-mrDMD: incremental multiresolution DMD (paper Sec. III-A.1, Algorithm 1,
// Fig. 1(c)) — the paper's primary contribution.
//
// State after the initial fit on T snapshots: a level-1 "root" whose SVD is
// held in an incrementally updatable form (isvd::Isvd over the level-1
// subsample grid), plus the batch-fitted deeper levels.
//
// partial_fit(T1 new snapshots):
//   1. The level-1 subsample grid is extended (the stride is *fixed at the
//      initial fit* — ingested data cannot be re-decimated retroactively;
//      this is the one deviation from an oracle re-fit and is measured by
//      the Q2 accuracy bench).
//   2. The level-1 SVD is updated incrementally (Algo 1, line 3) and the
//      root's DMD modes recomputed from the updated factors — cost
//      independent of T.
//   3. Every other node shifts one level down (Algo 1, lines 7-9): the old
//      tree becomes the left descendants of the timeline now split at T.
//   4. The new span [T, T+T1) is fitted fresh at levels 2.. on the residual
//      after subtracting the *new* root reconstruction (Fig. 1(c), right).
//   5. The drift statistic ||new slow recon - old slow recon||_F over
//      [0, T) — the paper's trigger for asynchronously refreshing stale
//      levels 2..L — is evaluated on the level-1 grid (exact at grid
//      points, scaled by sqrt(stride) to estimate the full-span norm).
//      When `recompute_on_drift` is set (the paper's deferred future work)
//      and the threshold is exceeded, levels >= 2 are refitted from the
//      retained history.
//
// The updated root *replaces* the old level-1 node over [0, T) (it is the
// same node, incrementally extended). The stale descendants were fitted
// against the old root's slow field, so reconstruction error grows with the
// root's drift — exactly the incremental error the paper reports in Q2
// ("a sum of 10-5000 depending on the dynamics and the updates").
#pragma once

#include <cstddef>
#include <future>
#include <limits>
#include <vector>

#include "core/mrdmd.hpp"
#include "isvd/isvd.hpp"

namespace imrdmd::core {

struct ImrdmdOptions {
  MrdmdOptions mrdmd;
  /// Rank-q truncation of the incrementally maintained level-1 SVD.
  isvd::IsvdOptions isvd;
  /// Drift threshold (full-span Frobenius estimate) above which stale
  /// levels are flagged (and refitted when recompute_on_drift).
  double drift_threshold = std::numeric_limits<double>::infinity();
  /// Extension beyond the paper: refit levels >= 2 when drift exceeds the
  /// threshold. Requires keep_history.
  bool recompute_on_drift = false;
  /// Retain the raw data (needed only by recompute_on_drift).
  bool keep_history = false;
};

/// Outcome of one partial_fit call.
struct PartialFitReport {
  std::size_t new_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Raw Frobenius norm of (new - old) level-1 slow reconstruction at the
  /// grid points of [0, T_prev).
  double drift_grid = 0.0;
  /// sqrt(stride)-scaled estimate of the same norm over every snapshot.
  double drift_estimate = 0.0;
  bool drift_exceeded = false;
  bool recomputed = false;
  /// Nodes added for the new span (excluding the updated root).
  std::size_t new_nodes = 0;
  /// Grid columns folded into the level-1 incremental SVD.
  std::size_t new_grid_columns = 0;
};

class IncrementalMrdmd {
 public:
  explicit IncrementalMrdmd(ImrdmdOptions options = {});

  /// Batch-fits the first T snapshots (T >= 8*max_cycles); the level-1 SVD
  /// is seeded into its incremental form.
  void initial_fit(const Mat& data);

  /// Folds `new_cols` (P x T1) into the decomposition.
  PartialFitReport partial_fit(const Mat& new_cols);

  bool fitted() const { return fitted_; }
  std::size_t sensors() const { return sensors_; }
  std::size_t time_steps() const { return time_steps_; }
  const ImrdmdOptions& options() const { return options_; }

  /// All nodes; nodes_[0] is always the (incrementally updated) root.
  const std::vector<MrdmdNode>& nodes() const { return nodes_; }
  const MrdmdNode& root() const;

  std::size_t total_modes() const;

  /// Stride of the level-1 subsample grid (fixed at initial_fit).
  std::size_t level1_stride() const { return stride1_; }

  /// Rank of the incrementally maintained level-1 SVD.
  std::size_t level1_rank() const { return isvd_.rank(); }

  Mat reconstruct(const dmd::ModeBand* band = nullptr) const;
  Mat reconstruct(std::size_t t0, std::size_t t1,
                  const dmd::ModeBand* band = nullptr,
                  std::size_t level_min = 0, std::size_t level_max = 0) const;

  std::vector<dmd::SpectrumPoint> spectrum() const;
  std::vector<double> magnitudes(const dmd::ModeBand* band = nullptr) const;

  // --- Extensions beyond the paper (its Sec. VI future work) -------------

  /// Computes the refreshed descendant nodes (levels >= 2, batch layout
  /// against the current root) on the global thread pool — the paper's
  /// "users could efficiently perform these updates through asynchronous
  /// analysis". Requires keep_history. The model must not be mutated while
  /// the future is pending; install the result with replace_descendants().
  std::future<std::vector<MrdmdNode>> recompute_stale_async() const;

  /// Replaces every non-root node with `descendants` (from
  /// recompute_stale_async or an external refit).
  void replace_descendants(std::vector<MrdmdNode> descendants);

  /// Incrementally adds new sensors (paper: "extend the I-mrDMD approach to
  /// add new entire time series or sensor measurements incrementally").
  /// `new_rows_history` is w x time_steps(): the new sensors' history. The
  /// level-1 SVD is extended by the incremental row update; descendant
  /// levels are refit from history (requires keep_history).
  void add_sensors(const Mat& new_rows_history);

 private:
  /// Single point of access for the checkpoint module (core/checkpoint.cpp):
  /// model, pipeline, and fleet serialization all go through it.
  friend struct CheckpointAccess;

  /// Rebuilds the root node's DMD from the current iSVD state.
  void refresh_root();
  /// Root's slow reconstruction at grid columns [0, count).
  Mat root_grid_reconstruction(std::size_t count) const;

  ImrdmdOptions options_;
  bool fitted_ = false;
  std::size_t sensors_ = 0;
  std::size_t time_steps_ = 0;
  std::size_t stride1_ = 1;

  /// Level-1 subsample grid snapshots (P x K), K grid columns at snapshot
  /// indices 0, stride1, 2*stride1, ...
  Mat grid_;
  isvd::Isvd isvd_;

  std::vector<MrdmdNode> nodes_;  // nodes_[0] = root
  /// Root slow reconstruction at grid points, cached for the drift stat.
  Mat cached_grid_recon_;
  /// Full raw data, kept only when options_.keep_history.
  Mat history_;
};

}  // namespace imrdmd::core
