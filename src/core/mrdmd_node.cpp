#include "core/mrdmd_node.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace imrdmd::core {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;
}

double MrdmdNode::frequency_hz(std::size_t i, double dt) const {
  const Complex log_lambda = std::log(eigenvalues[i]);
  return std::abs(log_lambda.imag()) /
         (kTwoPi * static_cast<double>(stride) * dt);
}

double MrdmdNode::growth_rate(std::size_t i, double dt) const {
  const Complex log_lambda = std::log(eigenvalues[i]);
  return log_lambda.real() / (static_cast<double>(stride) * dt);
}

double MrdmdNode::power(std::size_t i) const {
  double sum = 0.0;
  for (std::size_t p = 0; p < modes.rows(); ++p) sum += std::norm(modes(p, i));
  return sum;
}

std::vector<dmd::SpectrumPoint> MrdmdNode::spectrum(double dt) const {
  std::vector<dmd::SpectrumPoint> points(mode_count());
  for (std::size_t i = 0; i < mode_count(); ++i) {
    points[i].frequency_hz = frequency_hz(i, dt);
    points[i].power = power(i);
    points[i].amplitude = std::sqrt(points[i].power);
    points[i].growth_rate = growth_rate(i, dt);
    points[i].mode_index = i;
    points[i].level = level;
  }
  return points;
}

void accumulate_node(const MrdmdNode& node, double dt,
                     const dmd::ModeBand* band, Mat& out, std::size_t out_t0) {
  IMRDMD_REQUIRE_DIMS(out.rows() == node.modes.rows() || node.mode_count() == 0,
                      "accumulate_node sensor count mismatch");
  const std::size_t lo = std::max(node.t_begin, out_t0);
  const std::size_t hi = std::min(node.t_end, out_t0 + out.cols());
  if (lo >= hi || node.mode_count() == 0) return;

  // Band-filtered mode subset.
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < node.mode_count(); ++i) {
    if (band == nullptr ||
        band->contains(node.frequency_hz(i, dt), node.power(i))) {
      kept.push_back(i);
    }
  }
  if (kept.empty()) return;
  const std::size_t m = kept.size();
  const std::size_t p = node.modes.rows();
  const std::size_t w = hi - lo;

  // Dynamics over the overlap: dyn(i, t) = b_i lambda_i^{(t - t_begin)/stride}.
  Mat re_dyn(m, w), im_dyn(m, w);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t i = kept[k];
    const Complex log_lambda = std::log(node.eigenvalues[i]);
    const Complex b = node.amplitudes[i];
    for (std::size_t t = 0; t < w; ++t) {
      const double local = static_cast<double>(lo + t - node.t_begin) /
                           static_cast<double>(node.stride);
      const Complex value = b * std::exp(log_lambda * local);
      re_dyn(k, t) = value.real();
      im_dyn(k, t) = value.imag();
    }
  }
  // Re(Phi dyn) = Re(Phi) Re(dyn) - Im(Phi) Im(dyn).
  Mat re_phi(p, m), im_phi(p, m);
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t k = 0; k < m; ++k) {
      const Complex value = node.modes(r, kept[k]);
      re_phi(r, k) = value.real();
      im_phi(r, k) = value.imag();
    }
  }
  Mat contribution = linalg::matmul(re_phi, re_dyn);
  contribution -= linalg::matmul(im_phi, im_dyn);
  for (std::size_t r = 0; r < p; ++r) {
    double* dst = out.data() + r * out.cols() + (lo - out_t0);
    const double* src = contribution.data() + r * w;
    for (std::size_t t = 0; t < w; ++t) dst[t] += src[t];
  }
}

Mat reconstruct_nodes(const std::vector<MrdmdNode>& nodes, std::size_t sensors,
                      std::size_t t0, std::size_t t1, double dt,
                      const dmd::ModeBand* band, std::size_t level_min,
                      std::size_t level_max) {
  IMRDMD_REQUIRE_ARG(t1 >= t0, "reconstruct_nodes needs t1 >= t0");
  Mat out(sensors, t1 - t0);
  for (const MrdmdNode& node : nodes) {
    if (level_min > 0 && node.level < level_min) continue;
    if (level_max > 0 && node.level > level_max) continue;
    accumulate_node(node, dt, band, out, t0);
  }
  return out;
}

std::vector<double> band_level_means(const std::vector<MrdmdNode>& nodes,
                                     std::size_t sensors, double dt,
                                     const dmd::ModeBand* band,
                                     std::size_t t0, std::size_t t1) {
  IMRDMD_REQUIRE_ARG(t1 > t0, "band_level_means needs a non-empty window");
  const Mat recon = reconstruct_nodes(nodes, sensors, t0, t1, dt, band);
  std::vector<double> level(sensors, 0.0);
  const double inv = 1.0 / static_cast<double>(t1 - t0);
  for (std::size_t p = 0; p < sensors; ++p) {
    double sum = 0.0;
    const double* row = recon.data() + p * recon.cols();
    for (std::size_t t = 0; t < recon.cols(); ++t) sum += row[t];
    level[p] = sum * inv;
  }
  return level;
}

std::vector<double> mode_magnitudes(const std::vector<MrdmdNode>& nodes,
                                    std::size_t sensors, double dt,
                                    const dmd::ModeBand* band) {
  std::vector<double> magnitude(sensors, 0.0);
  for (const MrdmdNode& node : nodes) {
    IMRDMD_REQUIRE_DIMS(node.modes.rows() == sensors || node.mode_count() == 0,
                        "mode_magnitudes sensor count mismatch");
    for (std::size_t i = 0; i < node.mode_count(); ++i) {
      if (band != nullptr &&
          !band->contains(node.frequency_hz(i, dt), node.power(i))) {
        continue;
      }
      const double weight = std::abs(node.amplitudes[i]);
      for (std::size_t p = 0; p < sensors; ++p) {
        magnitude[p] += weight * std::abs(node.modes(p, i));
      }
    }
  }
  return magnitude;
}

}  // namespace imrdmd::core
