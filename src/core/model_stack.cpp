#include "core/model_stack.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace imrdmd::core {

std::vector<std::size_t> ModelStack::coarse_grid(
    const std::vector<std::vector<std::size_t>>& groups, std::size_t stride) {
  IMRDMD_REQUIRE_ARG(stride > 0, "coarse grid needs a positive stride");
  std::vector<std::size_t> rows;
  for (const auto& group : groups) {
    for (std::size_t i = 0; i < group.size(); i += stride) {
      rows.push_back(group[i]);
    }
  }
  return rows;
}

void ModelStack::enable_coarse(
    const std::vector<std::vector<std::size_t>>& groups, std::size_t sensors,
    std::size_t coarse_stride, const ImrdmdOptions& options) {
  IMRDMD_REQUIRE_ARG(coarse_stride > 0,
                     "hierarchy needs a positive coarse stride");
  IMRDMD_REQUIRE_ARG(coarse_ == nullptr, "coarse level already enabled");
  stride_ = coarse_stride;
  rows_ = coarse_grid(groups, coarse_stride);

  // Interpolation map, built per group so reconstruction never blends
  // across a group boundary: sensor at position i of a group sits between
  // the coarse rows at positions (i / stride) * stride and the next coarse
  // position, with constant extrapolation past the group's last coarse
  // sensor. Coarse row indices are recovered from the running offset of
  // each group's block inside the grid.
  interp_.assign(sensors, Interp{});
  std::vector<bool> seen(sensors, false);
  std::size_t offset = 0;  // first coarse row of the current group
  for (const auto& group : groups) {
    const std::size_t group_rows = (group.size() + stride_ - 1) / stride_;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const std::size_t sensor = group[i];
      IMRDMD_REQUIRE_ARG(sensor < sensors && !seen[sensor],
                         "hierarchy groups do not partition the sensors");
      seen[sensor] = true;
      const std::size_t slot = i / stride_;
      Interp ip;
      ip.lo = offset + slot;
      if (i % stride_ == 0 || slot + 1 >= group_rows) {
        ip.hi = ip.lo;  // exact coarse sensor, or clamped tail
        ip.w = 0.0;
      } else {
        ip.hi = ip.lo + 1;
        ip.w = static_cast<double>(i - slot * stride_) /
               static_cast<double>(stride_);
      }
      interp_[sensor] = ip;
    }
    offset += group_rows;
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }),
      "hierarchy groups do not cover every sensor");
  coarse_ = std::make_unique<IncrementalMrdmd>(options);
}

const IncrementalMrdmd& ModelStack::coarse() const {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr,
                     "this stack has no coarse level (flat mode)");
  return *coarse_;
}

Mat ModelStack::fit_coarse(const Mat& coarse_chunk, CoarseUpdate& update) {
  std::size_t window_begin = 0;
  if (!coarse_->fitted()) {
    coarse_->initial_fit(coarse_chunk);
  } else {
    window_begin = coarse_->time_steps();
    update.report = coarse_->partial_fit(coarse_chunk);
  }
  // The coarse level's best estimate of this chunk's window (all levels,
  // unfiltered); the fine models see only what it could not explain.
  return coarse_->reconstruct(window_begin, coarse_->time_steps());
}

void ModelStack::subtract_interpolated(std::size_t sensor, const double* raw,
                                       const Mat& recon, double* out,
                                       std::size_t cols) const {
  const Interp& ip = interp_[sensor];
  const double* lo = recon.data() + ip.lo * cols;
  const double* hi = recon.data() + ip.hi * cols;
  for (std::size_t t = 0; t < cols; ++t) {
    out[t] = raw[t] - ((1.0 - ip.w) * lo[t] + ip.w * hi[t]);
  }
}

CoarseUpdate ModelStack::update_coarse(const Mat& chunk,
                                       const dmd::ModeBand& band,
                                       Mat& residual) {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr,
                     "update_coarse on a flat stack");
  IMRDMD_REQUIRE_DIMS(chunk.rows() == interp_.size(),
                      "chunk row count differs from the hierarchy's sensors");
  const std::size_t cols = chunk.cols();

  Mat coarse_chunk(rows_.size(), cols);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const double* src = chunk.data() + rows_[r] * cols;
    std::copy(src, src + cols, coarse_chunk.data() + r * cols);
  }

  CoarseUpdate update;
  WallTimer timer;
  const Mat recon = fit_coarse(coarse_chunk, update);

  residual = Mat(chunk.rows(), cols);
  for (std::size_t p = 0; p < interp_.size(); ++p) {
    subtract_interpolated(p, chunk.data() + p * cols, recon,
                          residual.data() + p * cols, cols);
  }
  update.fit_seconds = timer.seconds();

  const std::vector<double> coarse_mags = coarse_->magnitudes(&band);
  update.magnitudes.resize(interp_.size());
  for (std::size_t p = 0; p < interp_.size(); ++p) {
    const Interp& ip = interp_[p];
    update.magnitudes[p] =
        (1.0 - ip.w) * coarse_mags[ip.lo] + ip.w * coarse_mags[ip.hi];
  }
  return update;
}

CoarseUpdate ModelStack::update_coarse_sliced(
    const Mat& coarse_chunk, const dmd::ModeBand& band,
    const std::vector<std::size_t>& sensors, const Mat& raw_rows,
    Mat& residual_rows) {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr,
                     "update_coarse_sliced on a flat stack");
  IMRDMD_REQUIRE_DIMS(coarse_chunk.rows() == rows_.size(),
                      "coarse chunk row count differs from the grid");
  IMRDMD_REQUIRE_DIMS(raw_rows.rows() == sensors.size() &&
                          raw_rows.cols() == coarse_chunk.cols(),
                      "sliced raw rows disagree with the sensor list");
  const std::size_t cols = coarse_chunk.cols();

  CoarseUpdate update;
  WallTimer timer;
  const Mat recon = fit_coarse(coarse_chunk, update);

  residual_rows = Mat(sensors.size(), cols);
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    IMRDMD_REQUIRE_ARG(sensors[i] < interp_.size(),
                       "sliced sensor index out of the hierarchy's range");
    subtract_interpolated(sensors[i], raw_rows.data() + i * cols, recon,
                          residual_rows.data() + i * cols, cols);
  }
  update.fit_seconds = timer.seconds();

  const std::vector<double> coarse_mags = coarse_->magnitudes(&band);
  update.magnitudes.resize(interp_.size());
  for (std::size_t p = 0; p < interp_.size(); ++p) {
    const Interp& ip = interp_[p];
    update.magnitudes[p] =
        (1.0 - ip.w) * coarse_mags[ip.lo] + ip.w * coarse_mags[ip.hi];
  }
  return update;
}

Mat ModelStack::grow_coarse(const std::vector<std::size_t>& new_sensors,
                            std::size_t new_sensor_total,
                            const Mat& new_rows_history) {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr, "grow_coarse on a flat stack");
  IMRDMD_REQUIRE_ARG(!new_sensors.empty(), "grow_coarse needs new sensors");
  IMRDMD_REQUIRE_DIMS(new_rows_history.rows() == new_sensors.size() &&
                          new_rows_history.cols() == coarse_->time_steps(),
                      "new-sensor history shape disagrees with the coarse "
                      "model");
  IMRDMD_REQUIRE_ARG(new_sensor_total >= interp_.size() + new_sensors.size(),
                     "grow_coarse sensor total smaller than the grown grid");
  const std::size_t cols = new_rows_history.cols();

  // The appended block's coarse rows: every stride-th of the new list (the
  // block always contributes its first sensor), added at the END of the
  // grid so existing coarse rows — and the replicated coarse model's row
  // order — never shift.
  const std::size_t base = rows_.size();
  Mat coarse_history((new_sensors.size() + stride_ - 1) / stride_, cols);
  std::size_t appended = 0;
  for (std::size_t j = 0; j < new_sensors.size(); j += stride_) {
    rows_.push_back(new_sensors[j]);
    const double* src = new_rows_history.data() + j * cols;
    std::copy(src, src + cols, coarse_history.data() + appended * cols);
    ++appended;
  }
  canonical_grid_ = false;

  // Self-contained interpolation map for the block (existing sensors keep
  // their frozen map): the same per-position rule enable_coarse applies to
  // a group, clamped at the block's tail.
  interp_.resize(new_sensor_total, Interp{});
  const std::size_t block_rows = appended;
  for (std::size_t j = 0; j < new_sensors.size(); ++j) {
    const std::size_t slot = j / stride_;
    Interp ip;
    ip.lo = base + slot;
    if (j % stride_ == 0 || slot + 1 >= block_rows) {
      ip.hi = ip.lo;
      ip.w = 0.0;
    } else {
      ip.hi = ip.lo + 1;
      ip.w = static_cast<double>(j - slot * stride_) /
             static_cast<double>(stride_);
    }
    interp_[new_sensors[j]] = ip;
  }

  // Grow the replicated coarse model, then hand back the new sensors'
  // residual history against it — computed with today's coarse
  // reconstruction (the pre-growth chunks' residuals were computed against
  // the evolving historical coarse states; an elastic join can only use
  // the model as it stands).
  coarse_->add_sensors(coarse_history);
  const Mat recon = coarse_->reconstruct(0, coarse_->time_steps());
  Mat residual_history(new_sensors.size(), cols);
  for (std::size_t j = 0; j < new_sensors.size(); ++j) {
    subtract_interpolated(new_sensors[j], new_rows_history.data() + j * cols,
                          recon, residual_history.data() + j * cols, cols);
  }
  return residual_history;
}

}  // namespace imrdmd::core
