#include "core/model_stack.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace imrdmd::core {

std::vector<std::size_t> ModelStack::coarse_grid(
    const std::vector<std::vector<std::size_t>>& groups, std::size_t stride) {
  IMRDMD_REQUIRE_ARG(stride > 0, "coarse grid needs a positive stride");
  std::vector<std::size_t> rows;
  for (const auto& group : groups) {
    for (std::size_t i = 0; i < group.size(); i += stride) {
      rows.push_back(group[i]);
    }
  }
  return rows;
}

void ModelStack::enable_coarse(
    const std::vector<std::vector<std::size_t>>& groups, std::size_t sensors,
    std::size_t coarse_stride, const ImrdmdOptions& options) {
  IMRDMD_REQUIRE_ARG(coarse_stride > 0,
                     "hierarchy needs a positive coarse stride");
  IMRDMD_REQUIRE_ARG(coarse_ == nullptr, "coarse level already enabled");
  stride_ = coarse_stride;
  rows_ = coarse_grid(groups, coarse_stride);

  // Interpolation map, built per group so reconstruction never blends
  // across a group boundary: sensor at position i of a group sits between
  // the coarse rows at positions (i / stride) * stride and the next coarse
  // position, with constant extrapolation past the group's last coarse
  // sensor. Coarse row indices are recovered from the running offset of
  // each group's block inside the grid.
  interp_.assign(sensors, Interp{});
  std::vector<bool> seen(sensors, false);
  std::size_t offset = 0;  // first coarse row of the current group
  for (const auto& group : groups) {
    const std::size_t group_rows = (group.size() + stride_ - 1) / stride_;
    for (std::size_t i = 0; i < group.size(); ++i) {
      const std::size_t sensor = group[i];
      IMRDMD_REQUIRE_ARG(sensor < sensors && !seen[sensor],
                         "hierarchy groups do not partition the sensors");
      seen[sensor] = true;
      const std::size_t slot = i / stride_;
      Interp ip;
      ip.lo = offset + slot;
      if (i % stride_ == 0 || slot + 1 >= group_rows) {
        ip.hi = ip.lo;  // exact coarse sensor, or clamped tail
        ip.w = 0.0;
      } else {
        ip.hi = ip.lo + 1;
        ip.w = static_cast<double>(i - slot * stride_) /
               static_cast<double>(stride_);
      }
      interp_[sensor] = ip;
    }
    offset += group_rows;
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(seen.begin(), seen.end(), [](bool s) { return s; }),
      "hierarchy groups do not cover every sensor");
  coarse_ = std::make_unique<IncrementalMrdmd>(options);
}

const IncrementalMrdmd& ModelStack::coarse() const {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr,
                     "this stack has no coarse level (flat mode)");
  return *coarse_;
}

CoarseUpdate ModelStack::update_coarse(const Mat& chunk,
                                       const dmd::ModeBand& band,
                                       Mat& residual) {
  IMRDMD_REQUIRE_ARG(coarse_ != nullptr,
                     "update_coarse on a flat stack");
  IMRDMD_REQUIRE_DIMS(chunk.rows() == interp_.size(),
                      "chunk row count differs from the hierarchy's sensors");
  const std::size_t cols = chunk.cols();

  Mat coarse_chunk(rows_.size(), cols);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const double* src = chunk.data() + rows_[r] * cols;
    std::copy(src, src + cols, coarse_chunk.data() + r * cols);
  }

  CoarseUpdate update;
  WallTimer timer;
  std::size_t window_begin = 0;
  if (!coarse_->fitted()) {
    coarse_->initial_fit(coarse_chunk);
  } else {
    window_begin = coarse_->time_steps();
    update.report = coarse_->partial_fit(coarse_chunk);
  }
  // The coarse level's best estimate of this chunk's window (all levels,
  // unfiltered); the fine models see only what it could not explain.
  const Mat recon =
      coarse_->reconstruct(window_begin, coarse_->time_steps());

  residual = Mat(chunk.rows(), cols);
  for (std::size_t p = 0; p < interp_.size(); ++p) {
    const Interp& ip = interp_[p];
    const double* raw = chunk.data() + p * cols;
    const double* lo = recon.data() + ip.lo * cols;
    const double* hi = recon.data() + ip.hi * cols;
    double* out = residual.data() + p * cols;
    for (std::size_t t = 0; t < cols; ++t) {
      out[t] = raw[t] - ((1.0 - ip.w) * lo[t] + ip.w * hi[t]);
    }
  }
  update.fit_seconds = timer.seconds();

  const std::vector<double> coarse_mags = coarse_->magnitudes(&band);
  update.magnitudes.resize(interp_.size());
  for (std::size_t p = 0; p < interp_.size(); ++p) {
    const Interp& ip = interp_[p];
    update.magnitudes[p] =
        (1.0 - ip.w) * coarse_mags[ip.lo] + ip.w * coarse_mags[ip.hi];
  }
  return update;
}

}  // namespace imrdmd::core
