#include "core/pipeline.hpp"

#include <utility>

#include "common/error.hpp"

namespace imrdmd::core {

namespace {

/// The monolithic engine has exactly one group, so its snapshot flattens
/// losslessly into the legacy pipeline shape.
PipelineSnapshot to_pipeline_snapshot(AssessmentSnapshot&& snapshot) {
  PipelineSnapshot out;
  out.chunk_index = snapshot.chunk_index;
  out.chunk_snapshots = snapshot.chunk_snapshots;
  out.total_snapshots = snapshot.total_snapshots;
  if (!snapshot.reports.empty()) out.report = snapshot.reports.front();
  out.magnitudes = std::move(snapshot.magnitudes);
  out.sensor_means = std::move(snapshot.sensor_means);
  out.zscores = std::move(snapshot.zscores);
  out.fit_seconds = snapshot.fit_seconds;
  return out;
}

AssessorConfig pipeline_config(PipelineOptions options) {
  AssessorConfig config;
  config.pipeline(std::move(options)).monolithic();
  // The legacy pipeline pulled synchronously; keep that ingestion profile
  // (results are prefetch-invariant regardless).
  config.ingest_options.prefetch_depth = 0;
  return config;
}

}  // namespace

OnlineAssessmentPipeline::OnlineAssessmentPipeline(PipelineOptions options)
    : engine_(pipeline_config(std::move(options))) {}

PipelineSnapshot OnlineAssessmentPipeline::process(const Mat& chunk) {
  return to_pipeline_snapshot(engine_.process(chunk));
}

std::vector<PipelineSnapshot> OnlineAssessmentPipeline::run(
    ChunkSource& source, std::size_t max_chunks) {
  std::vector<AssessmentSnapshot> delivered =
      run_collecting(engine_, carry_, &source, max_chunks);
  std::vector<PipelineSnapshot> snapshots;
  snapshots.reserve(delivered.size());
  for (AssessmentSnapshot& snapshot : delivered) {
    snapshots.push_back(to_pipeline_snapshot(std::move(snapshot)));
  }
  return snapshots;
}

}  // namespace imrdmd::core
