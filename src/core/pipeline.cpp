#include "core/pipeline.hpp"

#include "common/error.hpp"
#include "common/timer.hpp"

namespace imrdmd::core {

OnlineAssessmentPipeline::OnlineAssessmentPipeline(PipelineOptions options)
    : options_(options), model_(options.imrdmd) {}

PipelineSnapshot OnlineAssessmentPipeline::process(const Mat& chunk) {
  PipelineSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  WallTimer timer;
  if (!model_.fitted()) {
    model_.initial_fit(chunk);
  } else {
    snapshot.report = model_.partial_fit(chunk);
  }
  snapshot.fit_seconds = timer.seconds();
  snapshot.total_snapshots = model_.time_steps();

  snapshot.magnitudes = model_.magnitudes(&options_.band);
  snapshot.sensor_means = row_means(chunk);
  if (chunks_processed_ == 0 || options_.reselect_baseline_per_chunk) {
    baseline_sensors_ = select_baseline_sensors(
        std::span<const double>(snapshot.sensor_means.data(),
                                snapshot.sensor_means.size()),
        options_.baseline);
  }
  snapshot.zscores = zscore_from_baseline(
      std::span<const double>(snapshot.magnitudes.data(),
                              snapshot.magnitudes.size()),
      std::span<const std::size_t>(baseline_sensors_.data(),
                                   baseline_sensors_.size()),
      options_.zscore);

  ++chunks_processed_;
  return snapshot;
}

std::vector<PipelineSnapshot> OnlineAssessmentPipeline::run(
    ChunkSource& source, std::size_t max_chunks) {
  std::vector<PipelineSnapshot> snapshots;
  while (max_chunks == 0 || snapshots.size() < max_chunks) {
    std::optional<Mat> chunk = source.next_chunk();
    if (!chunk.has_value()) break;
    IMRDMD_REQUIRE_DIMS(chunk->rows() == source.sensors(),
                        "source chunk sensor count changed mid-stream");
    snapshots.push_back(process(*chunk));
  }
  return snapshots;
}

}  // namespace imrdmd::core
