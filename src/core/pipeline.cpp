#include "core/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace imrdmd::core {

MatrixChunkSource::MatrixChunkSource(const Mat& data,
                                     std::size_t initial_snapshots,
                                     std::size_t chunk_snapshots)
    : data_(data), initial_(initial_snapshots), chunk_(chunk_snapshots) {
  IMRDMD_REQUIRE_ARG(chunk_ > 0, "chunk_snapshots must be positive");
  if (initial_ == 0) initial_ = chunk_;
}

void ChunkSource::seek(std::size_t snapshot) {
  (void)snapshot;
  throw InvalidArgument("this chunk source does not support seek()");
}

std::optional<Mat> MatrixChunkSource::next_chunk() {
  if (position_ >= data_.cols()) return std::nullopt;
  const std::size_t want = position_ == 0 ? initial_ : chunk_;
  const std::size_t count = std::min(want, data_.cols() - position_);
  Mat out = data_.block(0, position_, data_.rows(), count);
  position_ += count;
  return out;
}

void MatrixChunkSource::seek(std::size_t snapshot) {
  IMRDMD_REQUIRE_ARG(snapshot <= data_.cols(),
                     "seek past the end of the replayed matrix");
  position_ = snapshot;
}

OnlineAssessmentPipeline::OnlineAssessmentPipeline(PipelineOptions options)
    : options_(options),
      model_(options.imrdmd),
      zscore_stage_(options.baseline, options.zscore,
                    options.reselect_baseline_per_chunk) {}

MagnitudeUpdate update_magnitudes(IncrementalMrdmd& model, const Mat& chunk,
                                  const dmd::ModeBand& band) {
  MagnitudeUpdate update;
  WallTimer timer;
  if (!model.fitted()) {
    model.initial_fit(chunk);
  } else {
    update.report = model.partial_fit(chunk);
  }
  update.fit_seconds = timer.seconds();
  update.magnitudes = model.magnitudes(&band);
  update.sensor_means = row_means(chunk);
  return update;
}

PipelineSnapshot OnlineAssessmentPipeline::process(const Mat& chunk) {
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0,
                     "pipeline chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(!model_.fitted() || chunk.rows() == model_.sensors(),
                     "pipeline chunk row count differs from the first chunk");

  PipelineSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  MagnitudeUpdate update = update_magnitudes(model_, chunk, options_.band);
  snapshot.report = update.report;
  snapshot.fit_seconds = update.fit_seconds;
  snapshot.total_snapshots = model_.time_steps();
  snapshot.magnitudes = std::move(update.magnitudes);
  snapshot.sensor_means = std::move(update.sensor_means);
  snapshot.zscores = zscore_stage_.apply(
      std::span<const double>(snapshot.magnitudes.data(),
                              snapshot.magnitudes.size()),
      std::span<const double>(snapshot.sensor_means.data(),
                              snapshot.sensor_means.size()));

  ++chunks_processed_;
  return snapshot;
}

std::vector<PipelineSnapshot> OnlineAssessmentPipeline::run(
    ChunkSource& source, std::size_t max_chunks) {
  std::vector<PipelineSnapshot> snapshots;
  while (max_chunks == 0 || snapshots.size() < max_chunks) {
    std::optional<Mat> chunk = source.next_chunk();
    if (!chunk.has_value()) break;
    IMRDMD_REQUIRE_DIMS(chunk->rows() == source.sensors(),
                        "source chunk sensor count changed mid-stream");
    snapshots.push_back(process(*chunk));
  }
  return snapshots;
}

}  // namespace imrdmd::core
