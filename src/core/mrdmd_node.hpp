// One node of the multiresolution DMD tree.
//
// A node covers the half-open snapshot window [t_begin, t_end) at a given
// level, was computed on the window subsampled by `stride` (the paper's
// "four times the Nyquist limit" rule, Sec. III-A), and stores only its
// *slow* modes — those whose frequency lies below the node's cutoff `rho`
// (max_cycles oscillations across the window). The node's contribution to
// the reconstruction at global snapshot t in its window is
//     Re( sum_i  phi_i  b_i  lambda_i^{(t - t_begin) / stride} ).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dmd/spectrum.hpp"
#include "linalg/matrix.hpp"

namespace imrdmd::core {

using linalg::CMat;
using linalg::Complex;
using linalg::Mat;

struct MrdmdNode {
  /// 1-based level (1 = slowest timescale, whole timeline).
  std::size_t level = 1;
  /// Bin position within its level (left-to-right).
  std::size_t bin_index = 0;
  /// Global snapshot window [t_begin, t_end).
  std::size_t t_begin = 0;
  std::size_t t_end = 0;
  /// Subsample stride used for this node's DMD.
  std::size_t stride = 1;
  /// Slow-mode cutoff in cycles per (original-resolution) snapshot.
  double rho = 0.0;
  /// SVD rank retained for the projected operator.
  std::size_t svd_rank = 0;

  /// Retained slow modes as columns (P x m).
  CMat modes;
  /// Discrete eigenvalues of the subsampled propagator (length m).
  std::vector<Complex> eigenvalues;
  /// Mode amplitudes (length m).
  std::vector<Complex> amplitudes;

  std::size_t mode_count() const { return eigenvalues.size(); }
  std::size_t span() const { return t_end - t_begin; }

  /// Frequency of mode i in Hz given the snapshot interval dt:
  /// |Im ln(lambda_i)| / (2 pi stride dt).
  double frequency_hz(std::size_t i, double dt) const;

  /// Growth rate of mode i in 1/s: Re ln(lambda_i) / (stride dt).
  double growth_rate(std::size_t i, double dt) const;

  /// ||phi_i||^2 (paper Eq. 10).
  double power(std::size_t i) const;

  /// Spectrum points for all modes of this node.
  std::vector<dmd::SpectrumPoint> spectrum(double dt) const;
};

/// Adds this node's (band-filtered) reconstruction into `out`, whose columns
/// cover global snapshots [out_t0, out_t0 + out.cols()). Only the overlap of
/// that range with the node window is touched. Pass band = nullptr to keep
/// every mode.
void accumulate_node(const MrdmdNode& node, double dt,
                     const dmd::ModeBand* band, Mat& out, std::size_t out_t0);

/// Sum of accumulate_node over `nodes` restricted to levels in
/// [level_min, level_max] (0 = no bound). Returns a P x (t1 - t0) matrix.
Mat reconstruct_nodes(const std::vector<MrdmdNode>& nodes, std::size_t sensors,
                      std::size_t t0, std::size_t t1, double dt,
                      const dmd::ModeBand* band = nullptr,
                      std::size_t level_min = 0, std::size_t level_max = 0);

/// Per-sensor aggregate mode magnitude m_p = sum_i |b_i| |phi_{p,i}| over
/// all nodes, band-filtered — the quantity the paper z-scores against a
/// baseline population (Sec. III-A.2).
std::vector<double> mode_magnitudes(const std::vector<MrdmdNode>& nodes,
                                    std::size_t sensors, double dt,
                                    const dmd::ModeBand* band = nullptr);

/// Per-sensor time-mean of the band-filtered reconstruction over [t0, t1):
/// the denoised slow-state level each sensor sits at — the alternative
/// "reading of interest" summary (this is what the rack views effectively
/// color: the state of the node with faster timescales stripped away).
std::vector<double> band_level_means(const std::vector<MrdmdNode>& nodes,
                                     std::size_t sensors, double dt,
                                     const dmd::ModeBand* band,
                                     std::size_t t0, std::size_t t1);

}  // namespace imrdmd::core
