// Legacy fleet-scale entry points (ROADMAP: sharding / batching / async /
// cross-node distribution), now thin shims over the unified streaming
// engine (core/assessor.hpp).
//
// FleetAssessment configures the engine with the sharded topology (one
// cheap I-mrDMD per sensor group spread across worker lanes, one global
// BaselineZscoreStage reconciliation); DistributedFleetAssessment adds the
// distributed topology (groups spread across the ranks of a thread-SPMD
// dist::World). The engine owns ALL run-loop logic — prefetch,
// carry/parking, no-data-loss discipline, the periodic checkpoint hook —
// for both shims; they only adapt the legacy accumulated-vector return on
// top of a CollectingSink. New code should use core::Assessor with a
// SnapshotSink directly — see the README's "Assessor API" migration table.
//
// Invariance contracts (unchanged, covered by tests/fleet_test.cpp,
// tests/dist_fleet_test.cpp, and the determinism suite): for a fixed group
// partition, snapshots are bitwise identical for any lane count, any rank
// count, sync vs async ingestion, and identical to the monolithic
// OnlineAssessmentPipeline under the trivial single-group partition.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/assessor.hpp"
#include "core/pipeline.hpp"
#include "dist/communicator.hpp"

namespace imrdmd::core {

/// Legacy spelling of the engine's CheckpointPolicy.
using FleetCheckpointPolicy = CheckpointPolicy;

/// Legacy spelling of the engine's AssessmentSnapshot.
using FleetSnapshot = AssessmentSnapshot;

struct FleetOptions {
  /// Per-group model options plus the global baseline/z-score stage. With
  /// more than one lane the per-group models force mrdmd.parallel_bins =
  /// false: group updates run as pool tasks, and a pool task must not fan
  /// out onto (and then block on) its own pool. A single lane runs on the
  /// caller thread and keeps the configured setting.
  PipelineOptions pipeline;
  /// Disjoint sensor groups that together cover [0, P) exactly once. Empty
  /// means one group of all sensors (the monolithic pipeline, sharded only
  /// in its ingestion overlap).
  std::vector<std::vector<std::size_t>> groups;
  /// Concurrent worker lanes the group updates are spread across; lane l
  /// processes groups l, l + shards, l + 2*shards, ... in order.
  /// 0 = one lane per group; values above the group count are clamped to it
  /// (extra lanes would have no groups to work on).
  std::size_t shards = 0;
  /// Overlap source.next_chunk() with compute in run() (the engine's
  /// prefetch depth 1); false pulls synchronously (depth 0).
  bool async_prefetch = true;
  /// Pool the worker lanes run on; null = global_pool().
  ThreadPool* pool = nullptr;
  /// Periodic checkpointing during run() (disabled by default). Arming
  /// every_n > 0 with an empty path is rejected with InvalidArgument at
  /// construction (it would silently disarm the policy).
  FleetCheckpointPolicy checkpoint;
};

/// [DEPRECATED shim — slated for removal] Sharded single-process driver
/// delegating to core::Assessor. Replacement:
///   Assessor(AssessorConfig().pipeline(options).sensors(P)
///                .sharded(groups, lanes))
/// with snapshots delivered through a SnapshotSink (core/sinks.hpp). Only
/// the shim-equivalence tests may still construct this class.
class FleetAssessment {
 public:
  /// `sensors` is the fleet-wide sensor count P; options.groups must
  /// partition [0, P) (validated by the engine, InvalidArgument otherwise).
  FleetAssessment(FleetOptions options, std::size_t sensors);

  /// Processes one P x T_chunk chunk (the first call performs the initial
  /// fit of every group model). Rejects zero-column chunks and row-count
  /// changes with InvalidArgument, like the monolithic pipeline.
  FleetSnapshot process(const Mat& chunk) { return engine_.process(chunk); }

  /// Pulls chunks from `source` until exhaustion (or `max_chunks` > 0)
  /// through the engine's run loop (prefetch, carry/parking, periodic
  /// checkpoint hook). A mid-run failure loses nothing: chunks the
  /// prefetch already consumed are parked in the engine and consumed first
  /// by the next run() call, and snapshots this run already computed are
  /// *delivered first* by the next run().
  std::vector<FleetSnapshot> run(ChunkSource& source,
                                 std::size_t max_chunks = 0);

  std::size_t sensors() const { return engine_.sensors(); }
  std::size_t group_count() const { return engine_.group_count(); }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return engine_.groups();
  }
  /// Worker lanes process() spreads the group updates across.
  std::size_t shards() const { return engine_.lanes(); }
  const IncrementalMrdmd& model(std::size_t group) const {
    return engine_.model(group);
  }
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return engine_.chunks_processed(); }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records.
  std::size_t snapshots_processed() const {
    return engine_.snapshots_processed();
  }

 private:
  /// Checkpoint/resume (core/checkpoint.hpp) reads and installs engine
  /// state through this single access point.
  friend struct CheckpointAccess;

  explicit FleetAssessment(Assessor engine) : engine_(std::move(engine)) {}

  Assessor engine_;
  /// Snapshots a failed run() delivered but could not return (the vector
  /// contract's half of the engine's parking discipline); the next run()
  /// returns them first.
  std::vector<FleetSnapshot> carry_;
};

/// [DEPRECATED shim — slated for removal] Cross-node distributed driver
/// delegating to core::Assessor with the distributed topology (ROADMAP:
/// cross-node distribution). Replacement:
///   Assessor(AssessorConfig().pipeline(options).sensors(P)
///                .sharded(groups).distributed(comm))
/// Same SPMD contract as the engine: every rank constructs
/// the driver with the same options/sensors and calls
/// process()/run()/checkpoint entry points collectively, in the same
/// order; a rank failing mid-collective poisons the world
/// (dist::CollectiveAborted) instead of deadlocking.
class DistributedFleetAssessment {
 public:
  /// Collective constructor-shaped validation only (no communication):
  /// `options.groups` must partition [0, sensors) exactly, like
  /// FleetAssessment. `comm` must outlive the driver.
  DistributedFleetAssessment(dist::Communicator& comm, FleetOptions options,
                             std::size_t sensors);

  /// Collective: every rank passes the same P x T_chunk chunk (run()
  /// broadcasts it from rank 0; direct callers replicate it themselves).
  /// Rank disagreement on the chunk — width OR content, checked through a
  /// bitwise digest on the agreement collective — fails on every rank
  /// together.
  FleetSnapshot process(const Mat& chunk) { return engine_.process(chunk); }

  /// Collective: rank 0 owns `source` (non-null there, null elsewhere) and
  /// the engine broadcasts each chunk to the peers; every rank returns the
  /// identical snapshot stream. Mid-run failures follow the engine's
  /// no-data-loss discipline on every rank.
  std::vector<FleetSnapshot> run(ChunkSource* source,
                                 std::size_t max_chunks = 0);

  int rank() const { return engine_.rank(); }
  int ranks() const { return engine_.ranks(); }
  std::size_t sensors() const { return engine_.sensors(); }
  std::size_t group_count() const { return engine_.group_count(); }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return engine_.groups();
  }
  /// This rank's owned global group range [first, second).
  std::pair<std::size_t, std::size_t> local_groups() const {
    return engine_.local_groups();
  }
  /// Worker lanes this rank's group updates are spread across.
  std::size_t shards() const { return engine_.lanes(); }
  /// Model of owned global group `group` (InvalidArgument when this rank
  /// does not own it).
  const IncrementalMrdmd& model(std::size_t group) const {
    return engine_.model(group);
  }
  std::size_t chunks_processed() const { return engine_.chunks_processed(); }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records.
  std::size_t snapshots_processed() const {
    return engine_.snapshots_processed();
  }

 private:
  /// Checkpoint/resume (core/checkpoint.hpp) reads and installs engine
  /// state through this single access point.
  friend struct CheckpointAccess;

  explicit DistributedFleetAssessment(Assessor engine)
      : engine_(std::move(engine)) {}

  Assessor engine_;
  /// Snapshots a failed run() delivered but could not return; the next
  /// run() returns them first (per rank).
  std::vector<FleetSnapshot> carry_;
};

}  // namespace imrdmd::core
