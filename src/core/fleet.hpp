// Sharded fleet-scale assessment driver (ROADMAP: sharding / batching /
// async).
//
// The monolithic OnlineAssessmentPipeline fits one I-mrDMD over every sensor
// of the machine. FleetAssessment instead partitions the P sensors into
// disjoint groups (explicit index lists, or rack/contiguous groupings — see
// telemetry::ShardedEnvSource), maintains one cheap IncrementalMrdmd per
// group, and spreads the per-group chunk updates across `shards` concurrent
// worker lanes on a ThreadPool, overlapping ingestion with compute through a
// double-buffered asynchronous prefetch of the next chunk. This is the
// multifidelity structure of Peherstorfer et al.'s survey applied to the
// assessment problem itself: many independent low-cost local models, one
// global reconciliation.
//
// Reconciliation stays global: each group's model produces band-filtered
// mode magnitudes for its rows only; the driver scatters them back into
// machine sensor order (deterministic group order, independent of lane
// assignment or completion order) and runs the same BaselineZscoreStage the
// monolithic pipeline uses, so baseline selection and z-scoring see the
// whole fleet at once. Consequences, both covered by the shard-count
// invariance suite:
//   * for a fixed group partition, FleetSnapshot is bitwise-identical for
//     any shard (lane) count and for sync vs async-prefetch ingestion;
//   * with the trivial single-group partition the fleet is bitwise-identical
//     to OnlineAssessmentPipeline on the same stream, for any shard count.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"

namespace imrdmd::core {

/// Periodic durability for long-running fleet streams: when armed (every_n
/// > 0 and a non-empty path), FleetAssessment::run writes a fleet
/// checkpoint (core/checkpoint.hpp) to `path` after every `every_n`-th
/// processed chunk, atomically (write-temp-then-rename) so a kill mid-write
/// never leaves a torn file — `path` always holds the latest complete
/// checkpoint.
struct FleetCheckpointPolicy {
  /// Checkpoint after every N processed chunks; 0 disables the hook.
  std::size_t every_n = 0;
  /// Target file, atomically replaced on each write.
  std::string path;
};

struct FleetOptions {
  /// Per-group model options plus the global baseline/z-score stage. With
  /// more than one lane the per-group models force mrdmd.parallel_bins =
  /// false: group updates run as pool tasks, and a pool task must not fan
  /// out onto (and then block on) its own pool. A single lane runs on the
  /// caller thread and keeps the configured setting.
  PipelineOptions pipeline;
  /// Disjoint sensor groups that together cover [0, P) exactly once. Empty
  /// means one group of all sensors (the monolithic pipeline, sharded only
  /// in its ingestion overlap).
  std::vector<std::vector<std::size_t>> groups;
  /// Concurrent worker lanes the group updates are spread across; lane l
  /// processes groups l, l + shards, l + 2*shards, ... in order.
  /// 0 = one lane per group; values above the group count are clamped to it
  /// (extra lanes would have no groups to work on).
  std::size_t shards = 0;
  /// Overlap source.next_chunk() with compute in run(). The prefetch runs
  /// on its own thread (not the pool): sources may parallel_for internally.
  bool async_prefetch = true;
  /// Pool the worker lanes run on; null = global_pool().
  ThreadPool* pool = nullptr;
  /// Periodic checkpointing during run() (disabled by default).
  FleetCheckpointPolicy checkpoint;
};

/// Everything produced by one chunk's worth of fleet-wide processing.
struct FleetSnapshot {
  std::size_t chunk_index = 0;
  std::size_t chunk_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Per-group partial-fit diagnostics, in group order.
  std::vector<PartialFitReport> reports;
  /// Merged band-filtered magnitudes, machine sensor order.
  std::vector<double> magnitudes;
  /// Merged per-sensor chunk means, machine sensor order.
  std::vector<double> sensor_means;
  /// Global z-scores over the merged magnitudes (machine sensor order).
  ZscoreAnalysis zscores;
  /// Wall time of the sharded fit + merge (not per group).
  double fit_seconds = 0.0;
};

class FleetAssessment {
 public:
  /// `sensors` is the fleet-wide sensor count P; options.groups must
  /// partition [0, P) (validated here, InvalidArgument otherwise).
  FleetAssessment(FleetOptions options, std::size_t sensors);

  /// Processes one P x T_chunk chunk (the first call performs the initial
  /// fit of every group model). Rejects zero-column chunks and row-count
  /// changes with InvalidArgument, like the monolithic pipeline.
  FleetSnapshot process(const Mat& chunk);

  /// Pulls chunks from `source` until exhaustion (or `max_chunks` > 0),
  /// prefetching the next chunk asynchronously while the current one is
  /// being processed (FleetOptions::async_prefetch). A mid-run failure
  /// loses nothing: a chunk the prefetch already consumed is parked and
  /// consumed first by the next run() call, and snapshots this run already
  /// computed (their chunks are folded into the models and cannot be
  /// re-derived) are parked and *delivered first* by the next run(). With
  /// FleetOptions::checkpoint armed, a fleet checkpoint is written
  /// atomically after every N-th processed chunk; a run killed at any point
  /// and resumed from the latest checkpoint (load_fleet_checkpoint +
  /// ChunkSource::seek) reproduces the uninterrupted run bitwise.
  std::vector<FleetSnapshot> run(ChunkSource& source,
                                 std::size_t max_chunks = 0);

  std::size_t sensors() const { return sensors_; }
  std::size_t group_count() const { return groups_.size(); }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }
  /// Worker lanes process() spreads the group updates across.
  std::size_t shards() const { return shards_; }
  const IncrementalMrdmd& model(std::size_t group) const;
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return chunks_processed_; }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records (prefetch-safe: counts processed chunks only, not
  /// chunks an in-flight prefetch has already pulled from the source).
  std::size_t snapshots_processed() const;

 private:
  /// Checkpoint/resume (save_fleet_checkpoint / load_fleet_checkpoint in
  /// core/checkpoint.hpp) reads the models and stage state, and installs
  /// restored state, through this single access point.
  friend struct CheckpointAccess;

  ThreadPool& pool() const;

  FleetOptions options_;
  std::size_t sensors_ = 0;
  std::vector<std::vector<std::size_t>> groups_;
  std::size_t shards_ = 1;
  /// True for the trivial partition {0..P-1}: chunks bypass the row gather.
  bool identity_partition_ = false;
  /// Chunk consumed by a prefetch whose process() failed; the next run()
  /// starts here instead of advancing the source.
  std::optional<Mat> carry_;
  /// Snapshots computed by a run() that failed *after* processing (a
  /// checkpoint write error); delivered first by the next run() — the
  /// models have already folded those chunks in, so the results cannot be
  /// regenerated.
  std::vector<FleetSnapshot> carry_snapshots_;
  /// unique_ptr: group models are handed to pool tasks by raw pointer and
  /// must not move when the driver itself is moved.
  std::vector<std::unique_ptr<IncrementalMrdmd>> models_;
  BaselineZscoreStage zscore_stage_;
  std::size_t chunks_processed_ = 0;
};

/// Partitions [0, sensors) into `count` contiguous, near-equal groups (the
/// first `sensors % count` groups get one extra sensor).
std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count);

}  // namespace imrdmd::core
