// Sharded fleet-scale assessment driver (ROADMAP: sharding / batching /
// async).
//
// The monolithic OnlineAssessmentPipeline fits one I-mrDMD over every sensor
// of the machine. FleetAssessment instead partitions the P sensors into
// disjoint groups (explicit index lists, or rack/contiguous groupings — see
// telemetry::ShardedEnvSource), maintains one cheap IncrementalMrdmd per
// group, and spreads the per-group chunk updates across `shards` concurrent
// worker lanes on a ThreadPool, overlapping ingestion with compute through a
// double-buffered asynchronous prefetch of the next chunk. This is the
// multifidelity structure of Peherstorfer et al.'s survey applied to the
// assessment problem itself: many independent low-cost local models, one
// global reconciliation.
//
// Reconciliation stays global: each group's model produces band-filtered
// mode magnitudes for its rows only; the driver scatters them back into
// machine sensor order (deterministic group order, independent of lane
// assignment or completion order) and runs the same BaselineZscoreStage the
// monolithic pipeline uses, so baseline selection and z-scoring see the
// whole fleet at once. Consequences, both covered by the shard-count
// invariance suite:
//   * for a fixed group partition, FleetSnapshot is bitwise-identical for
//     any shard (lane) count and for sync vs async-prefetch ingestion;
//   * with the trivial single-group partition the fleet is bitwise-identical
//     to OnlineAssessmentPipeline on the same stream, for any shard count.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/pipeline.hpp"
#include "dist/communicator.hpp"

namespace imrdmd::core {

/// Periodic durability for long-running fleet streams: when armed (every_n
/// > 0 and a non-empty path), FleetAssessment::run writes a fleet
/// checkpoint (core/checkpoint.hpp) to `path` after every `every_n`-th
/// processed chunk, atomically (write-temp-then-rename) so a kill mid-write
/// never leaves a torn file — `path` always holds the latest complete
/// checkpoint.
struct FleetCheckpointPolicy {
  /// Checkpoint after every N processed chunks; 0 disables the hook.
  std::size_t every_n = 0;
  /// Target file, atomically replaced on each write.
  std::string path;
};

struct FleetOptions {
  /// Per-group model options plus the global baseline/z-score stage. With
  /// more than one lane the per-group models force mrdmd.parallel_bins =
  /// false: group updates run as pool tasks, and a pool task must not fan
  /// out onto (and then block on) its own pool. A single lane runs on the
  /// caller thread and keeps the configured setting.
  PipelineOptions pipeline;
  /// Disjoint sensor groups that together cover [0, P) exactly once. Empty
  /// means one group of all sensors (the monolithic pipeline, sharded only
  /// in its ingestion overlap).
  std::vector<std::vector<std::size_t>> groups;
  /// Concurrent worker lanes the group updates are spread across; lane l
  /// processes groups l, l + shards, l + 2*shards, ... in order.
  /// 0 = one lane per group; values above the group count are clamped to it
  /// (extra lanes would have no groups to work on).
  std::size_t shards = 0;
  /// Overlap source.next_chunk() with compute in run(). The prefetch runs
  /// on its own thread (not the pool): sources may parallel_for internally.
  bool async_prefetch = true;
  /// Pool the worker lanes run on; null = global_pool().
  ThreadPool* pool = nullptr;
  /// Periodic checkpointing during run() (disabled by default).
  FleetCheckpointPolicy checkpoint;
};

/// Everything produced by one chunk's worth of fleet-wide processing.
struct FleetSnapshot {
  std::size_t chunk_index = 0;
  std::size_t chunk_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Per-group partial-fit diagnostics, in group order.
  std::vector<PartialFitReport> reports;
  /// Merged band-filtered magnitudes, machine sensor order.
  std::vector<double> magnitudes;
  /// Merged per-sensor chunk means, machine sensor order.
  std::vector<double> sensor_means;
  /// Global z-scores over the merged magnitudes (machine sensor order).
  ZscoreAnalysis zscores;
  /// Wall time of the sharded fit + merge (not per group).
  double fit_seconds = 0.0;
};

class FleetAssessment {
 public:
  /// `sensors` is the fleet-wide sensor count P; options.groups must
  /// partition [0, P) (validated here, InvalidArgument otherwise).
  FleetAssessment(FleetOptions options, std::size_t sensors);

  /// Processes one P x T_chunk chunk (the first call performs the initial
  /// fit of every group model). Rejects zero-column chunks and row-count
  /// changes with InvalidArgument, like the monolithic pipeline.
  FleetSnapshot process(const Mat& chunk);

  /// Pulls chunks from `source` until exhaustion (or `max_chunks` > 0),
  /// prefetching the next chunk asynchronously while the current one is
  /// being processed (FleetOptions::async_prefetch). A mid-run failure
  /// loses nothing: a chunk the prefetch already consumed is parked and
  /// consumed first by the next run() call, and snapshots this run already
  /// computed (their chunks are folded into the models and cannot be
  /// re-derived) are parked and *delivered first* by the next run(). With
  /// FleetOptions::checkpoint armed, a fleet checkpoint is written
  /// atomically after every N-th processed chunk; a run killed at any point
  /// and resumed from the latest checkpoint (load_fleet_checkpoint +
  /// ChunkSource::seek) reproduces the uninterrupted run bitwise.
  std::vector<FleetSnapshot> run(ChunkSource& source,
                                 std::size_t max_chunks = 0);

  std::size_t sensors() const { return sensors_; }
  std::size_t group_count() const { return groups_.size(); }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }
  /// Worker lanes process() spreads the group updates across.
  std::size_t shards() const { return shards_; }
  const IncrementalMrdmd& model(std::size_t group) const;
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return chunks_processed_; }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records (prefetch-safe: counts processed chunks only, not
  /// chunks an in-flight prefetch has already pulled from the source).
  std::size_t snapshots_processed() const;

 private:
  /// Checkpoint/resume (save_fleet_checkpoint / load_fleet_checkpoint in
  /// core/checkpoint.hpp) reads the models and stage state, and installs
  /// restored state, through this single access point.
  friend struct CheckpointAccess;

  ThreadPool& pool() const;

  FleetOptions options_;
  std::size_t sensors_ = 0;
  std::vector<std::vector<std::size_t>> groups_;
  std::size_t shards_ = 1;
  /// True for the trivial partition {0..P-1}: chunks bypass the row gather.
  bool identity_partition_ = false;
  /// Chunk consumed by a prefetch whose process() failed; the next run()
  /// starts here instead of advancing the source.
  std::optional<Mat> carry_;
  /// Snapshots computed by a run() that failed *after* processing (a
  /// checkpoint write error); delivered first by the next run() — the
  /// models have already folded those chunks in, so the results cannot be
  /// regenerated.
  std::vector<FleetSnapshot> carry_snapshots_;
  /// unique_ptr: group models are handed to pool tasks by raw pointer and
  /// must not move when the driver itself is moved.
  std::vector<std::unique_ptr<IncrementalMrdmd>> models_;
  BaselineZscoreStage zscore_stage_;
  std::size_t chunks_processed_ = 0;
};

/// Partitions [0, sensors) into `count` contiguous, near-equal groups (the
/// first `sensors % count` groups get one extra sensor).
std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count);

/// Deterministic contiguous assignment of `groups` global group indices to
/// `ranks` SPMD ranks: rank r owns the half-open range [first, second) of
/// group indices, near-equal (the first `groups % ranks` ranks get one
/// extra). Ranks beyond the group count own the empty range. A pure
/// function of (groups, ranks, rank) — every rank computes the same map
/// with no communication, and checkpoint resume at a different rank count
/// re-derives ownership from the same rule.
std::pair<std::size_t, std::size_t> rank_group_range(std::size_t groups,
                                                     std::size_t ranks,
                                                     std::size_t rank);

/// Cross-node distributed fleet assessment over dist::Communicator
/// (ROADMAP: cross-node distribution). The sharded FleetAssessment spreads
/// group updates across thread lanes of ONE process; this driver spreads
/// the *groups themselves* across the ranks of a thread-SPMD dist::World:
/// rank r owns the contiguous group range rank_group_range(G, R, r), runs
/// its groups on its own local lanes (the same lane structure, with the
/// same double-buffered prefetch on the root's ingestion side), and the
/// per-group magnitude vectors are allgathered — concatenated in
/// deterministic global group order — so every rank feeds the same bytes
/// to its replica of the global BaselineZscoreStage.
///
/// Invariance contract (covered by tests/dist_fleet_test.cpp and the
/// determinism suite): for a fixed group partition, FleetSnapshots are
/// bitwise identical across any rank count (1/2/4/...), any local lane
/// count, and identical to the single-process FleetAssessment — and a
/// fleet checkpoint written at R ranks is byte-identical to the one the
/// single-process fleet writes from the same stream position, so any rank
/// count resumes a checkpoint written by any other rank count.
///
/// SPMD contract: every rank must construct the driver with the same
/// options/sensors and call process()/run()/checkpoint entry points
/// collectively, in the same order. A rank that fails mid-collective
/// poisons the world (dist::CollectiveAborted) instead of deadlocking.
class DistributedFleetAssessment {
 public:
  /// Collective constructor-shaped validation only (no communication):
  /// `options.groups` must partition [0, sensors) exactly, like
  /// FleetAssessment. `comm` must outlive the driver.
  DistributedFleetAssessment(dist::Communicator& comm, FleetOptions options,
                             std::size_t sensors);

  /// Collective: every rank passes the same P x T_chunk chunk (run()
  /// broadcasts it from rank 0; direct callers replicate it themselves).
  /// Rank disagreement on the chunk — width OR content, checked through a
  /// bitwise digest on the agreement collective — fails on every rank
  /// together.
  FleetSnapshot process(const Mat& chunk);

  /// Collective: rank 0 owns `source` (non-null there, null elsewhere),
  /// pulls chunks with the double-buffered async prefetch, and broadcasts
  /// each chunk to the peers; every rank returns the identical snapshot
  /// stream. Mid-run failures follow FleetAssessment::run's no-data-loss
  /// discipline: the prefetched chunk is parked on rank 0 and already-
  /// computed snapshots are parked per rank, both delivered first by the
  /// next collective run() call. With FleetOptions::checkpoint armed (same
  /// policy on every rank), rank 0 gathers the per-group model sections
  /// and atomically writes one IMRDFL1 fleet checkpoint after every N-th
  /// processed chunk.
  std::vector<FleetSnapshot> run(ChunkSource* source,
                                 std::size_t max_chunks = 0);

  int rank() const { return comm_->rank(); }
  int ranks() const { return comm_->size(); }
  std::size_t sensors() const { return sensors_; }
  std::size_t group_count() const { return groups_.size(); }
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }
  /// This rank's owned global group range [first, second).
  std::pair<std::size_t, std::size_t> local_groups() const {
    return {local_begin_, local_end_};
  }
  /// Worker lanes this rank's group updates are spread across.
  std::size_t shards() const { return shards_; }
  /// Model of owned global group `group` (InvalidArgument when this rank
  /// does not own it).
  const IncrementalMrdmd& model(std::size_t group) const;
  std::size_t chunks_processed() const { return chunks_processed_; }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records.
  std::size_t snapshots_processed() const { return snapshots_seen_; }

 private:
  /// save_distributed_fleet_checkpoint / load_distributed_fleet_checkpoint
  /// (core/checkpoint.hpp) read and install state through this single
  /// access point.
  friend struct CheckpointAccess;

  ThreadPool& pool() const;
  /// Runs this rank's group updates across the local lanes.
  void update_local_groups(const Mat& chunk,
                           std::vector<MagnitudeUpdate>& updates);

  dist::Communicator* comm_;
  FleetOptions options_;
  std::size_t sensors_ = 0;
  /// The FULL global partition (every rank knows every group's sensor
  /// list; only the owned range has models).
  std::vector<std::vector<std::size_t>> groups_;
  std::size_t local_begin_ = 0;
  std::size_t local_end_ = 0;
  std::size_t shards_ = 1;
  /// True for the trivial partition {0..P-1}: the owning rank feeds the
  /// chunk straight through, no per-chunk row-gather copy.
  bool identity_partition_ = false;
  /// Chunk consumed by rank 0's prefetch whose process() failed; the next
  /// run() starts here instead of advancing the source (rank 0 only).
  std::optional<Mat> carry_;
  /// Snapshots computed by a run() that failed after processing; delivered
  /// first by the next run() — the models have already folded those chunks
  /// in, so the results cannot be regenerated.
  std::vector<FleetSnapshot> carry_snapshots_;
  /// Models of the owned groups only, local index l = global group
  /// local_begin_ + l. unique_ptr: handed to pool tasks by raw pointer.
  std::vector<std::unique_ptr<IncrementalMrdmd>> models_;
  /// Replicated: every rank feeds it the same merged bytes, so the state
  /// stays identical across ranks without communication.
  BaselineZscoreStage zscore_stage_;
  std::size_t chunks_processed_ = 0;
  /// Snapshots folded in so far. FleetAssessment reads this off
  /// models_[0]->time_steps(); a rank here may own no models, so the
  /// stream position is tracked explicitly (restored on resume).
  std::size_t snapshots_seen_ = 0;
};

}  // namespace imrdmd::core
