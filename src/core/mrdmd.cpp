#include "core/mrdmd.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "dmd/dmd.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace imrdmd::core {

namespace {

constexpr double kTwoPi = 6.283185307179586476925287;

// Gathers residual columns lo, lo+stride, ... (< hi) into a dense block.
Mat subsample(const Mat& residual, std::size_t lo, std::size_t hi,
              std::size_t stride) {
  const std::size_t count = (hi - lo + stride - 1) / stride;
  Mat out(residual.rows(), count);
  for (std::size_t r = 0; r < residual.rows(); ++r) {
    const double* src = residual.data() + r * residual.cols();
    double* dst = out.data() + r * count;
    for (std::size_t j = 0; j < count; ++j) dst[j] = src[lo + j * stride];
  }
  return out;
}

// Fits one bin on residual[:, lo:hi), subtracts its slow reconstruction in
// place, and returns the node (nullopt when the bin is too short or yields
// no usable snapshot pair).
std::optional<MrdmdNode> process_bin(Mat& residual, std::size_t t_offset,
                                     std::size_t lo, std::size_t hi,
                                     std::size_t level, std::size_t bin_index,
                                     const MrdmdOptions& options) {
  const std::size_t bin = hi - lo;
  const std::size_t nyq = options.nyquist_snapshots();
  if (bin < nyq) return std::nullopt;
  const std::size_t stride = bin / nyq;  // >= 1 since bin >= nyq

  const Mat grid = subsample(residual, lo, hi, stride);
  const std::size_t k = grid.cols();
  if (k < 2) return std::nullopt;

  const Mat x = grid.block(0, 0, grid.rows(), k - 1);
  const Mat y = grid.block(0, 1, grid.rows(), k - 1);

  // Per-thread scratch: pool workers and the main thread keep their SVD
  // buffers warm across the many bins each processes.
  thread_local linalg::SvdWorkspace svd_ws;
  thread_local linalg::SvdResult f;
  linalg::svd_into(x, f, svd_ws);
  dmd::DmdOptions dmd_options;
  dmd_options.use_svht = options.use_svht;
  dmd_options.max_rank = options.max_rank;
  dmd_options.amplitude_fit = options.amplitude_fit;
  const dmd::DmdResult fit =
      dmd::dmd_from_svd(f.u, f.s, f.v, y, grid,
                        options.dt * static_cast<double>(stride), dmd_options);

  MrdmdNode node;
  node.level = level;
  node.bin_index = bin_index;
  node.t_begin = t_offset + lo;
  node.t_end = t_offset + hi;
  node.stride = stride;
  node.rho = static_cast<double>(options.max_cycles) / static_cast<double>(bin);
  node.svd_rank = fit.svd_rank;

  // Slow-mode selection: frequency in cycles per original-resolution
  // snapshot must not exceed rho.
  std::vector<std::size_t> slow;
  for (std::size_t i = 0; i < fit.mode_count(); ++i) {
    const Complex log_lambda = std::log(fit.eigenvalues[i]);
    const double magnitude = options.criterion == SlowModeCriterion::AbsLog
                                 ? std::abs(log_lambda)
                                 : std::abs(log_lambda.imag());
    const double cycles_per_snapshot =
        magnitude / (kTwoPi * static_cast<double>(stride));
    if (cycles_per_snapshot <= node.rho) slow.push_back(i);
  }
  if (!slow.empty()) {
    node.modes = CMat(fit.modes.rows(), slow.size());
    node.eigenvalues.resize(slow.size());
    for (std::size_t j = 0; j < slow.size(); ++j) {
      for (std::size_t r = 0; r < fit.modes.rows(); ++r) {
        node.modes(r, j) = fit.modes(r, slow[j]);
      }
      node.eigenvalues[j] = fit.eigenvalues[slow[j]];
    }
    // Amplitudes are re-fitted against the bin's snapshots using only the
    // retained slow modes (reference implementation order): the slow field
    // must be the best slow-only explanation of the bin.
    node.amplitudes = dmd::fit_amplitudes(node.modes, node.eigenvalues, grid,
                                          options.amplitude_fit);
    // Subtract the slow reconstruction over the FULL bin (original
    // resolution), leaving faster dynamics for the children.
    Mat window(residual.rows(), bin);
    accumulate_node(node, options.dt, nullptr, window, node.t_begin);
    for (std::size_t r = 0; r < residual.rows(); ++r) {
      double* dst = residual.data() + r * residual.cols() + lo;
      const double* src = window.data() + r * bin;
      for (std::size_t t = 0; t < bin; ++t) dst[t] -= src[t];
    }
  } else {
    node.modes = CMat(residual.rows(), 0);
  }
  return node;
}

}  // namespace

std::vector<MrdmdNode> fit_levels(Mat& residual, std::size_t t0,
                                  std::size_t level0, std::size_t levels,
                                  const MrdmdOptions& options) {
  std::vector<LevelBin> bins{{0, residual.cols(), 0}};
  return fit_levels(residual, t0, level0, levels, options, std::move(bins));
}

std::vector<MrdmdNode> fit_levels(Mat& residual, std::size_t t0,
                                  std::size_t level0, std::size_t levels,
                                  const MrdmdOptions& options,
                                  std::vector<LevelBin> bins) {
  IMRDMD_REQUIRE_ARG(options.max_cycles >= 1, "max_cycles must be >= 1");
  IMRDMD_REQUIRE_ARG(level0 >= 1, "levels are 1-based");
  std::vector<MrdmdNode> nodes;
  if (residual.empty() || levels == 0) return nodes;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    IMRDMD_REQUIRE_DIMS(bins[b].lo <= bins[b].hi &&
                            bins[b].hi <= residual.cols(),
                        "fit_levels seed bin out of range");
    // Overlapping bins would race on the shared residual in the parallel
    // pass below; require sorted, disjoint column ranges.
    IMRDMD_REQUIRE_DIMS(b == 0 || bins[b - 1].hi <= bins[b].lo,
                        "fit_levels seed bins must be disjoint and sorted");
  }

  for (std::size_t depth = 0; depth < levels && !bins.empty(); ++depth) {
    const std::size_t level = level0 + depth;
    std::vector<std::optional<MrdmdNode>> produced(bins.size());
    auto work = [&](std::size_t b) {
      produced[b] = process_bin(residual, t0, bins[b].lo, bins[b].hi, level,
                                bins[b].index, options);
    };
    // Bins of one level touch disjoint residual columns, so they run
    // concurrently on the global pool; gathering `produced` in worklist
    // order keeps the node sequence deterministic for any thread count.
    if (options.parallel_bins && bins.size() > 1) {
      parallel_for(0, bins.size(), work);
    } else {
      for (std::size_t b = 0; b < bins.size(); ++b) work(b);
    }
    std::vector<LevelBin> next;
    next.reserve(bins.size() * 2);
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (produced[b].has_value()) nodes.push_back(std::move(*produced[b]));
      // Split in half; children below the Nyquist floor die in process_bin,
      // but avoid queueing them at all when obviously too small.
      const LevelBin& bin = bins[b];
      const std::size_t mid = bin.lo + (bin.hi - bin.lo) / 2;
      if (mid - bin.lo >= options.nyquist_snapshots()) {
        next.push_back({bin.lo, mid, bin.index * 2});
      }
      if (bin.hi - mid >= options.nyquist_snapshots()) {
        next.push_back({mid, bin.hi, bin.index * 2 + 1});
      }
    }
    bins = std::move(next);
  }
  return nodes;
}

MrdmdTree::MrdmdTree(MrdmdOptions options) : options_(options) {}

void MrdmdTree::fit(const Mat& data) {
  IMRDMD_REQUIRE_DIMS(data.cols() >= options_.nyquist_snapshots(),
                      "mrDMD needs at least 8*max_cycles snapshots");
  Mat residual = data;
  nodes_ = fit_levels(residual, 0, 1, options_.max_levels, options_);
  sensors_ = data.rows();
  time_steps_ = data.cols();
  fitted_ = true;
}

std::size_t MrdmdTree::total_modes() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.mode_count();
  return count;
}

Mat MrdmdTree::reconstruct(const dmd::ModeBand* band) const {
  return reconstruct(0, time_steps_, band);
}

Mat MrdmdTree::reconstruct(std::size_t t0, std::size_t t1,
                           const dmd::ModeBand* band, std::size_t level_min,
                           std::size_t level_max) const {
  IMRDMD_REQUIRE_ARG(fitted_, "reconstruct before fit");
  return reconstruct_nodes(nodes_, sensors_, t0, t1, options_.dt, band,
                           level_min, level_max);
}

std::vector<dmd::SpectrumPoint> MrdmdTree::spectrum() const {
  std::vector<dmd::SpectrumPoint> points;
  for (const auto& node : nodes_) {
    const auto node_points = node.spectrum(options_.dt);
    points.insert(points.end(), node_points.begin(), node_points.end());
  }
  return points;
}

std::vector<double> MrdmdTree::magnitudes(const dmd::ModeBand* band) const {
  IMRDMD_REQUIRE_ARG(fitted_, "magnitudes before fit");
  return mode_magnitudes(nodes_, sensors_, options_.dt, band);
}

}  // namespace imrdmd::core
