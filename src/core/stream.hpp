// Streaming ingestion primitives shared by every assessment driver.
//
// ChunkSource is the pull side of the paper's online workflow: telemetry
// arrives as P x T_chunk snapshot windows, and the assessment engine
// (core/assessor.hpp) pulls them one at a time. Sources opt in to
// resumability through position()/seek(), which is what makes checkpointed
// runs able to continue a stream exactly where a killed run left off.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::core {

using linalg::Mat;

/// A pull-based source of snapshot chunks (P sensors x T_chunk columns).
class ChunkSource {
 public:
  /// position() value of a source that cannot report one.
  static constexpr std::size_t kUnknownPosition = ~std::size_t{0};

  virtual ~ChunkSource() = default;
  /// Next chunk, or nullopt when the stream ends. Chunk widths may vary.
  virtual std::optional<Mat> next_chunk() = 0;
  /// Sensor count (constant across chunks).
  virtual std::size_t sensors() const = 0;

  /// Snapshots emitted so far — the position a checkpoint records so a
  /// resumed run can continue the stream where the killed run left off.
  /// Sources that cannot report one return kUnknownPosition.
  virtual std::size_t position() const { return kUnknownPosition; }

  /// Repositions the stream so the next chunk starts at snapshot index
  /// `snapshot` (as recorded in a checkpoint). A source must opt in to
  /// resumability; the default throws InvalidArgument.
  virtual void seek(std::size_t snapshot);
};

/// ChunkSource replaying a prebuilt in-memory matrix in fixed-width chunks;
/// the first chunk may use a different width (the initial-fit window).
/// `data` is borrowed and must outlive the source. Shared by the fleet
/// bench and the shard-invariance tests so both replay identical streams.
class MatrixChunkSource final : public ChunkSource {
 public:
  MatrixChunkSource(const Mat& data, std::size_t initial_snapshots,
                    std::size_t chunk_snapshots);

  std::optional<Mat> next_chunk() override;
  std::size_t sensors() const override { return data_.rows(); }

  /// Snapshots emitted so far.
  std::size_t position() const override { return position_; }
  /// Seekable: resuming mid-matrix replays from any snapshot index.
  void seek(std::size_t snapshot) override;

 private:
  const Mat& data_;
  std::size_t initial_;
  std::size_t chunk_;
  std::size_t position_ = 0;
};

/// Row-slicing adapter over another source: yields only the listed rows
/// (in list order) of every chunk `inner` produces. This is the per-rank
/// ingestion adapter of the distributed Assessor (IngestMode::PerRank) —
/// each rank wraps its own replica of the full stream in the rows it owns
/// (Assessor::owned_sensor_rows), so no rank ever materializes rows it
/// will not fit. `inner` is borrowed and must outlive the source;
/// position()/seek() forward to it, so the adapter is exactly as resumable
/// as the stream it slices.
class RowSliceSource final : public ChunkSource {
 public:
  /// `rows` lists machine sensor indices (duplicates allowed, order kept);
  /// every index must be < inner.sensors().
  RowSliceSource(ChunkSource& inner, std::vector<std::size_t> rows);

  std::optional<Mat> next_chunk() override;
  std::size_t sensors() const override { return rows_.size(); }

  std::size_t position() const override { return inner_.position(); }
  void seek(std::size_t snapshot) override { inner_.seek(snapshot); }

 private:
  ChunkSource& inner_;
  std::vector<std::size_t> rows_;
};

}  // namespace imrdmd::core
