#include "core/stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace imrdmd::core {

void ChunkSource::seek(std::size_t snapshot) {
  (void)snapshot;
  throw InvalidArgument("this chunk source does not support seek()");
}

MatrixChunkSource::MatrixChunkSource(const Mat& data,
                                     std::size_t initial_snapshots,
                                     std::size_t chunk_snapshots)
    : data_(data), initial_(initial_snapshots), chunk_(chunk_snapshots) {
  IMRDMD_REQUIRE_ARG(chunk_ > 0, "chunk_snapshots must be positive");
  if (initial_ == 0) initial_ = chunk_;
}

std::optional<Mat> MatrixChunkSource::next_chunk() {
  if (position_ >= data_.cols()) return std::nullopt;
  const std::size_t want = position_ == 0 ? initial_ : chunk_;
  const std::size_t count = std::min(want, data_.cols() - position_);
  Mat out = data_.block(0, position_, data_.rows(), count);
  position_ += count;
  return out;
}

void MatrixChunkSource::seek(std::size_t snapshot) {
  IMRDMD_REQUIRE_ARG(snapshot <= data_.cols(),
                     "seek past the end of the replayed matrix");
  position_ = snapshot;
}

RowSliceSource::RowSliceSource(ChunkSource& inner,
                               std::vector<std::size_t> rows)
    : inner_(inner), rows_(std::move(rows)) {
  for (const std::size_t row : rows_) {
    IMRDMD_REQUIRE_ARG(row < inner_.sensors(),
                       "row slice index out of the inner source's range");
  }
}

std::optional<Mat> RowSliceSource::next_chunk() {
  std::optional<Mat> full = inner_.next_chunk();
  if (!full.has_value()) return std::nullopt;
  Mat out(rows_.size(), full->cols());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const double* src = full->data() + rows_[i] * full->cols();
    std::copy(src, src + full->cols(), out.data() + i * full->cols());
  }
  return out;
}

}  // namespace imrdmd::core
