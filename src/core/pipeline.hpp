// The legacy monolithic entry point of the online assessment workflow
// (paper Sec. I contribution list and Sec. V): stream -> I-mrDMD ->
// frequency isolation -> baseline z-scores.
//
// OnlineAssessmentPipeline is now a thin shim over the unified streaming
// engine (core/assessor.hpp) configured with the monolithic topology; it
// keeps the original constructor/process/run surface (including the
// accumulated-vector return) for existing callers. New code should use
// core::Assessor with a SnapshotSink directly — see the README's
// "Assessor API" migration table.
//
// ChunkSource/MatrixChunkSource and PipelineOptions/MagnitudeUpdate moved
// to core/stream.hpp and core/assessor.hpp respectively; this header
// re-exports them, so existing includes keep compiling.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/assessor.hpp"
#include "core/imrdmd.hpp"
#include "core/stream.hpp"
#include "core/zscore.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

/// Everything produced by one chunk's worth of processing — the monolithic
/// view of AssessmentSnapshot (one model, so one flat report).
struct PipelineSnapshot {
  std::size_t chunk_index = 0;
  std::size_t chunk_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Partial-fit diagnostics (default-initialized on the initial fit).
  PartialFitReport report;
  /// Band-filtered per-sensor mode magnitudes.
  std::vector<double> magnitudes;
  /// Per-sensor chunk means (the values the baseline rule filtered).
  std::vector<double> sensor_means;
  ZscoreAnalysis zscores;
  double fit_seconds = 0.0;
};

/// [DEPRECATED shim — slated for removal] Monolithic driver delegating to
/// core::Assessor; the engine owns the run loop (ingestion, carry/parking,
/// checkpoint hook). Replacement:
///   Assessor(AssessorConfig().pipeline(options).monolithic())
/// with snapshots delivered through a SnapshotSink (core/sinks.hpp). Only
/// the shim-equivalence tests may still construct this class.
class OnlineAssessmentPipeline {
 public:
  explicit OnlineAssessmentPipeline(PipelineOptions options);

  /// Processes one chunk (the first call performs the initial fit).
  /// Rejects a zero-column chunk, or one whose row count differs from the
  /// first chunk's, with InvalidArgument at this API boundary.
  PipelineSnapshot process(const Mat& chunk);

  /// Pulls chunks from `source` until exhaustion (or `max_chunks` > 0).
  /// Mid-run failures follow the engine's no-data-loss discipline:
  /// snapshots a failed run computed but could not return are delivered
  /// first by the next run() call.
  std::vector<PipelineSnapshot> run(ChunkSource& source,
                                    std::size_t max_chunks = 0);

  const IncrementalMrdmd& model() const { return engine_.model(0); }
  const PipelineOptions& options() const {
    return engine_.config().pipeline_options;
  }
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return engine_.chunks_processed(); }

 private:
  /// Checkpoint/resume (save_pipeline_checkpoint / load_pipeline_checkpoint
  /// in core/checkpoint.hpp) restores the engine state through this single
  /// access point.
  friend struct CheckpointAccess;

  explicit OnlineAssessmentPipeline(Assessor engine)
      : engine_(std::move(engine)) {}

  Assessor engine_;
  /// Snapshots a failed run() delivered but could not return (the vector
  /// contract's half of the engine's parking discipline); the next run()
  /// returns them first.
  std::vector<AssessmentSnapshot> carry_;
};

}  // namespace imrdmd::core
