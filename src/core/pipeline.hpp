// The end-to-end online assessment pipeline (paper Sec. I contribution list
// and Sec. V): stream -> I-mrDMD -> frequency isolation -> baseline z-scores.
//
// The pipeline is substrate-agnostic: telemetry sources implement
// ChunkSource, visualization consumes the per-chunk PipelineSnapshot (sensor
// z-scores + states); neither direction couples core to telemetry/rack.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/imrdmd.hpp"
#include "core/zscore.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

/// A pull-based source of snapshot chunks (P sensors x T_chunk columns).
class ChunkSource {
 public:
  /// position() value of a source that cannot report one.
  static constexpr std::size_t kUnknownPosition = ~std::size_t{0};

  virtual ~ChunkSource() = default;
  /// Next chunk, or nullopt when the stream ends. Chunk widths may vary.
  virtual std::optional<Mat> next_chunk() = 0;
  /// Sensor count (constant across chunks).
  virtual std::size_t sensors() const = 0;

  /// Snapshots emitted so far — the position a checkpoint records so a
  /// resumed run can continue the stream where the killed run left off.
  /// Sources that cannot report one return kUnknownPosition.
  virtual std::size_t position() const { return kUnknownPosition; }

  /// Repositions the stream so the next chunk starts at snapshot index
  /// `snapshot` (as recorded in a checkpoint). A source must opt in to
  /// resumability; the default throws InvalidArgument.
  virtual void seek(std::size_t snapshot);
};

/// ChunkSource replaying a prebuilt in-memory matrix in fixed-width chunks;
/// the first chunk may use a different width (the initial-fit window).
/// `data` is borrowed and must outlive the source. Shared by the fleet
/// bench and the shard-invariance tests so both replay identical streams.
class MatrixChunkSource final : public ChunkSource {
 public:
  MatrixChunkSource(const Mat& data, std::size_t initial_snapshots,
                    std::size_t chunk_snapshots);

  std::optional<Mat> next_chunk() override;
  std::size_t sensors() const override { return data_.rows(); }

  /// Snapshots emitted so far.
  std::size_t position() const override { return position_; }
  /// Seekable: resuming mid-matrix replays from any snapshot index.
  void seek(std::size_t snapshot) override;
  void rewind() { position_ = 0; }

 private:
  const Mat& data_;
  std::size_t initial_;
  std::size_t chunk_;
  std::size_t position_ = 0;
};

struct PipelineOptions {
  ImrdmdOptions imrdmd;
  /// Frequency/power isolation applied before z-scoring (e.g. 0-60 Hz in
  /// case study 1).
  dmd::ModeBand band;
  /// Value-range rule for the baseline population, applied to each chunk's
  /// per-sensor mean (the paper re-selects baselines per window).
  BaselineRange baseline{0.0, 0.0};
  ZscoreOptions zscore;
  /// When true, the baseline population is re-selected on every chunk
  /// (case study 2); when false the initial chunk's population is kept.
  bool reselect_baseline_per_chunk = true;
};

/// Result of the shard-local half of a chunk's processing: fit the chunk
/// into one model and read off the band-filtered magnitudes and per-sensor
/// chunk means. Exposed separately from the global baseline/z-score stage so
/// the sharded fleet driver (core/fleet.hpp) can run one of these per shard
/// model and reconcile globally.
struct MagnitudeUpdate {
  /// Partial-fit diagnostics (default-initialized on the initial fit).
  PartialFitReport report;
  /// Band-filtered per-sensor mode magnitudes (model row order).
  std::vector<double> magnitudes;
  /// Per-sensor chunk means (the values the baseline rule filters).
  std::vector<double> sensor_means;
  double fit_seconds = 0.0;
};

/// Fits `chunk` into `model` (initial fit when unfitted, incremental
/// otherwise) and computes the band-filtered magnitudes and chunk means.
MagnitudeUpdate update_magnitudes(IncrementalMrdmd& model, const Mat& chunk,
                                  const dmd::ModeBand& band);

/// Everything produced by one chunk's worth of processing.
struct PipelineSnapshot {
  std::size_t chunk_index = 0;
  std::size_t chunk_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Partial-fit diagnostics (default-initialized on the initial fit).
  PartialFitReport report;
  /// Band-filtered per-sensor mode magnitudes.
  std::vector<double> magnitudes;
  /// Per-sensor chunk means (the values the baseline rule filtered).
  std::vector<double> sensor_means;
  ZscoreAnalysis zscores;
  double fit_seconds = 0.0;
};

class OnlineAssessmentPipeline {
 public:
  explicit OnlineAssessmentPipeline(PipelineOptions options);

  /// Processes one chunk (the first call performs the initial fit).
  /// Rejects a zero-column chunk, or one whose row count differs from the
  /// first chunk's, with InvalidArgument at this API boundary.
  PipelineSnapshot process(const Mat& chunk);

  /// Pulls chunks from `source` until exhaustion (or `max_chunks` > 0).
  std::vector<PipelineSnapshot> run(ChunkSource& source,
                                    std::size_t max_chunks = 0);

  const IncrementalMrdmd& model() const { return model_; }
  const PipelineOptions& options() const { return options_; }
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return chunks_processed_; }

 private:
  /// Checkpoint/resume (save_pipeline_checkpoint / load_pipeline_checkpoint
  /// in core/checkpoint.hpp) restores the model, stage state, and chunk
  /// counter through this single access point.
  friend struct CheckpointAccess;

  PipelineOptions options_;
  IncrementalMrdmd model_;
  BaselineZscoreStage zscore_stage_;
  std::size_t chunks_processed_ = 0;
};

}  // namespace imrdmd::core
