#include "core/assessor.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "linalg/backend.hpp"

namespace imrdmd::core {

namespace {

/// Gathers the rows listed in `group` out of `chunk` (group order).
Mat gather_rows(const Mat& chunk, const std::vector<std::size_t>& group) {
  Mat out(group.size(), chunk.cols());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const double* src = chunk.data() + group[i] * chunk.cols();
    std::copy(src, src + chunk.cols(), out.data() + i * chunk.cols());
  }
  return out;
}

/// The groups must partition [0, sensors) exactly: every magnitude slot is
/// written once, so the merged vectors are total and unambiguous.
void validate_partition(const std::vector<std::vector<std::size_t>>& groups,
                        std::size_t sensors) {
  std::vector<bool> covered(sensors, false);
  for (const auto& group : groups) {
    IMRDMD_REQUIRE_ARG(!group.empty(), "assessor group is empty");
    for (std::size_t p : group) {
      IMRDMD_REQUIRE_ARG(p < sensors,
                         "assessor group sensor index out of range");
      IMRDMD_REQUIRE_ARG(!covered[p], "assessor groups overlap");
      covered[p] = true;
    }
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(covered.begin(), covered.end(), [](bool c) { return c; }),
      "assessor groups do not cover every sensor");
}

/// Doubles a PartialFitReport travels the wire as. The counters are exact
/// through double for any realistic stream (< 2^53 snapshots), so the
/// gathered reports compare bitwise-equal to the single-process engine's.
constexpr std::size_t kReportWords = 8;

void encode_report(std::vector<double>& out, const PartialFitReport& report) {
  out.push_back(static_cast<double>(report.new_snapshots));
  out.push_back(static_cast<double>(report.total_snapshots));
  out.push_back(report.drift_grid);
  out.push_back(report.drift_estimate);
  out.push_back(report.drift_exceeded ? 1.0 : 0.0);
  out.push_back(report.recomputed ? 1.0 : 0.0);
  out.push_back(static_cast<double>(report.new_nodes));
  out.push_back(static_cast<double>(report.new_grid_columns));
}

PartialFitReport decode_report(const double* words) {
  PartialFitReport report;
  report.new_snapshots = static_cast<std::size_t>(words[0]);
  report.total_snapshots = static_cast<std::size_t>(words[1]);
  report.drift_grid = words[2];
  report.drift_estimate = words[3];
  report.drift_exceeded = words[4] != 0.0;
  report.recomputed = words[5] != 0.0;
  report.new_nodes = static_cast<std::size_t>(words[6]);
  report.new_grid_columns = static_cast<std::size_t>(words[7]);
  return report;
}

/// IMRDMD_HIERARCHY_STRIDE supplies the default coarse stride when the
/// config never called hierarchy() — the same opt-in shape as
/// IMRDMD_LINALG_BACKEND, so CI can re-run entire suites with the
/// hierarchy enabled. Unset/empty means flat; anything unparsable throws
/// (a typo must not silently run flat).
std::size_t hierarchy_stride_from_env() {
  const char* value = std::getenv("IMRDMD_HIERARCHY_STRIDE");
  if (value == nullptr || *value == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  IMRDMD_REQUIRE_ARG(errno == 0 && end != value && *end == '\0',
                     "IMRDMD_HIERARCHY_STRIDE is not a non-negative integer");
  return static_cast<std::size_t>(parsed);
}

/// Order-sensitive fold of the chunk's raw bit patterns, squashed into the
/// mantissa of a normal double in [1, 2) so it travels any collective
/// without NaN/Inf hazards. Used to verify SPMD chunk agreement: two ranks
/// disagreeing on the chunk CONTENT (not just its shape) would silently
/// desync their replicated z-score stages otherwise.
double chunk_digest(const Mat& chunk) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  const double* data = chunk.data();
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, data + i, sizeof bits);
    acc ^= bits + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
  }
  acc = (acc & 0x000fffffffffffffull) | 0x3ff0000000000000ull;
  double digest;
  std::memcpy(&digest, &acc, sizeof digest);
  return digest;
}

/// The backpressure-aware ingestion queue: one producer thread pulls chunks
/// from the source into a bounded queue of `depth` slots, blocking while
/// the queue is full (so a bursty source never runs more than `depth`
/// chunks ahead of compute) and stopping once `budget` chunks have been
/// pulled (so a chunk-bounded run never over-consumes the source). The
/// producer is deliberately NOT a pool task: sources are free to use
/// parallel_for themselves, and a pool task fanning back out onto its own
/// pool would block a worker on work only that worker can run.
///
/// A pulled chunk is never dropped: drain() stops the producer and returns
/// every chunk that was queued but not yet popped, in pull order, so the
/// run loop can park them for the next call.
class ChunkPrefetcher {
 public:
  ChunkPrefetcher(ChunkSource& source, std::size_t depth, std::size_t budget)
      : source_(source),
        depth_(std::max<std::size_t>(depth, 1)),
        budget_(budget) {
    worker_ = std::thread([this] { produce(); });
  }

  ~ChunkPrefetcher() { stop_and_join(); }

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  /// Next chunk in stream order; blocks until the producer has one.
  /// Returns nullopt at end of stream (or once the pull budget is spent —
  /// the caller's own stop condition fires first by construction).
  /// Rethrows a source exception at the position it occurred.
  std::optional<Mat> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    data_cv_.wait(lock, [this] {
      return !queue_.empty() || error_ != nullptr || done_;
    });
    if (!queue_.empty()) {
      Mat chunk = std::move(queue_.front());
      queue_.pop_front();
      room_cv_.notify_all();
      return chunk;
    }
    if (error_ != nullptr) {
      std::rethrow_exception(std::exchange(error_, nullptr));
    }
    return std::nullopt;
  }

  /// Stops the producer and returns the chunks it pulled but the caller
  /// never popped, in pull order.
  std::deque<Mat> drain() {
    stop_and_join();
    std::lock_guard<std::mutex> lock(mutex_);
    return std::exchange(queue_, {});
  }

 private:
  void produce() {
    try {
      while (true) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          room_cv_.wait(lock,
                        [this] { return stop_ || queue_.size() < depth_; });
          if (stop_ || pulled_ >= budget_) break;
        }
        // Pull outside the lock; the chunk is pushed unconditionally
        // afterwards so a stop request can never discard a consumed chunk.
        std::optional<Mat> chunk = source_.next_chunk();
        std::lock_guard<std::mutex> lock(mutex_);
        ++pulled_;
        if (!chunk.has_value()) break;
        queue_.push_back(std::move(*chunk));
        data_cv_.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    data_cv_.notify_all();
  }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      room_cv_.notify_all();
    }
    if (worker_.joinable()) worker_.join();
  }

  ChunkSource& source_;
  const std::size_t depth_;
  const std::size_t budget_;
  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable data_cv_;
  std::condition_variable room_cv_;
  std::deque<Mat> queue_;
  std::exception_ptr error_;
  std::size_t pulled_ = 0;
  bool stop_ = false;
  bool done_ = false;
};

}  // namespace

MagnitudeUpdate update_magnitudes(IncrementalMrdmd& model, const Mat& chunk,
                                  const dmd::ModeBand& band) {
  MagnitudeUpdate update;
  WallTimer timer;
  if (!model.fitted()) {
    model.initial_fit(chunk);
  } else {
    update.report = model.partial_fit(chunk);
  }
  update.fit_seconds = timer.seconds();
  update.magnitudes = model.magnitudes(&band);
  update.sensor_means = row_means(chunk);
  return update;
}

Assessor::Assessor(AssessorConfig config)
    : config_(std::move(config)),
      comm_(config_.comm),
      zscore_stage_(config_.pipeline_options.baseline,
                    config_.pipeline_options.zscore,
                    config_.pipeline_options.reselect_baseline_per_chunk) {
  // Backend selection first: it can throw (unknown name), and nothing
  // below should have touched process-wide state by then.
  if (!config_.linalg_backend.empty()) {
    linalg::set_active_backend(config_.linalg_backend);
  }
  // A checkpoint policy armed without a destination would silently never
  // write anything; fail fast at configuration time instead.
  IMRDMD_REQUIRE_ARG(
      config_.checkpoint_policy.every_n == 0 ||
          !config_.checkpoint_policy.path.empty(),
      "checkpoint policy armed (every_n > 0) without a path — the policy "
      "would be silently disarmed; set a path or every_n = 0");
  // Resolve the effective stride once, at construction: an explicit
  // hierarchy() call (including checkpoint resume) pins it; otherwise the
  // environment default applies.
  if (!config_.hierarchy_set) {
    config_.coarse_stride = hierarchy_stride_from_env();
    config_.hierarchy_set = true;
  }
  if (config_.sensor_count == 0) {
    // Deferred sensor count: only the single-process monolithic topology
    // can infer P from the first chunk (a sharded partition names sensor
    // indices up front, and distributed peers size their replica buffers
    // from P before any data arrives).
    IMRDMD_REQUIRE_ARG(
        config_.groups.empty() && comm_ == nullptr,
        "sensor count is required for the sharded and distributed "
        "topologies (only the monolithic topology can infer it from the "
        "first chunk)");
    local_begin_ = 0;
    local_end_ = 1;
    lanes_ = 1;
    identity_partition_ = true;
    stack_.add_fine(config_.pipeline_options.imrdmd);
  } else {
    finalize_topology(config_.sensor_count);
  }
}

void Assessor::finalize_topology(std::size_t sensors) {
  IMRDMD_REQUIRE_ARG(sensors > 0, "assessor needs at least one sensor");
  sensors_ = sensors;
  groups_ = config_.groups;
  if (groups_.empty()) {
    groups_ = contiguous_groups(sensors_, 1);
  }
  validate_partition(groups_, sensors_);
  if (groups_.size() == 1) {
    identity_partition_ = true;
    for (std::size_t i = 0; i < groups_[0].size(); ++i) {
      if (groups_[0][i] != i) identity_partition_ = false;
    }
  }

  if (comm_ != nullptr) {
    const auto range = rank_group_range(
        groups_.size(), static_cast<std::size_t>(comm_->size()),
        static_cast<std::size_t>(comm_->rank()));
    local_begin_ = range.first;
    local_end_ = range.second;
  } else {
    local_begin_ = 0;
    local_end_ = groups_.size();
  }
  const std::size_t local_count = local_end_ - local_begin_;

  // Lane count is a *local* knob: each process spreads only its own
  // groups. A rank owning no groups still participates in every collective
  // with an empty contribution.
  lanes_ = config_.lanes == 0 ? std::max<std::size_t>(local_count, 1)
                              : config_.lanes;
  lanes_ = std::min(lanes_, std::max<std::size_t>(local_count, 1));

  ImrdmdOptions model_options = config_.pipeline_options.imrdmd;
  // A single lane runs on the caller thread, where the model may keep its
  // parallel-bin fits (bitwise serial-identical per the determinism suite);
  // with real lanes the updates are pool tasks and must not nest the pool.
  if (lanes_ > 1) model_options.mrdmd.parallel_bins = false;
  // The deferred-monolithic constructor path already created the single
  // model (so model() works before the first chunk); every other path
  // creates the owned fine models here.
  if (stack_.fine_count() == 0) {
    for (std::size_t l = 0; l < local_count; ++l) {
      stack_.add_fine(model_options);
    }
  }
  // The coarse facility model runs unsharded on the caller thread of every
  // engine replica, so it keeps the configured options as-is (its
  // parallel-bin fits never nest the pool).
  if (config_.coarse_stride > 0 && !stack_.hierarchical()) {
    stack_.enable_coarse(groups_, sensors_, config_.coarse_stride,
                         config_.pipeline_options.imrdmd);
  }
}

ThreadPool& Assessor::pool() const {
  return config_.worker_pool != nullptr ? *config_.worker_pool
                                        : global_pool();
}

const IncrementalMrdmd& Assessor::model(std::size_t group) const {
  IMRDMD_REQUIRE_ARG(group >= local_begin_ && group < local_end_,
                     "this process does not own the requested group");
  return stack_.fine(group - local_begin_);
}

void Assessor::update_local_groups(const Mat& chunk,
                                   std::vector<MagnitudeUpdate>& updates) {
  const std::size_t local_count = local_end_ - local_begin_;
  run_lanes(
      lanes_,
      [this, &chunk, &updates, local_count](std::size_t lane) {
        for (std::size_t l = lane; l < local_count; l += lanes_) {
          // The identity partition (one group of all sensors, in order)
          // feeds the chunk straight through — no per-chunk gather copy.
          updates[l] =
              identity_partition_
                  ? update_magnitudes(stack_.fine(l), chunk,
                                      config_.pipeline_options.band)
                  : update_magnitudes(
                        stack_.fine(l),
                        gather_rows(chunk, groups_[local_begin_ + l]),
                        config_.pipeline_options.band);
        }
      },
      &pool());
}

AssessmentSnapshot Assessor::process(const Mat& chunk) {
  if (sensors_ == 0) finalize_topology(chunk.rows());
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0,
                     "assessor chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(
      chunk.rows() == sensors_,
      "assessor chunk row count differs from the configured sensors");

  if (comm_ != nullptr) {
    // SPMD agreement: every rank must be processing the same chunk — width
    // AND content (a content disagreement would silently desync the
    // replicated z-score stages). One allgather shows every rank every
    // peer's (width, digest); on any disagreement every rank sees the same
    // slots and finds some slot differing from its own, so all ranks throw
    // together instead of deadlocking in a later collective.
    const double meta[2] = {static_cast<double>(chunk.cols()),
                            chunk_digest(chunk)};
    const std::vector<std::vector<double>> metas =
        comm_->allgatherv(std::span<const double>(meta, 2));
    for (const auto& slot : metas) {
      if (slot.size() != 2 ||
          std::memcmp(slot.data(), meta, sizeof meta) != 0) {
        throw InvalidArgument(
            "distributed assessor ranks disagree on the chunk (width or "
            "content)");
      }
    }
  }

  AssessmentSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  WallTimer timer;
  const std::size_t local_count = local_end_ - local_begin_;
  std::vector<MagnitudeUpdate> updates(local_count);

  // Coarse level first (hierarchy mode): one deterministic update per
  // engine replica, on the caller thread — after the SPMD digest agreement
  // above, every rank holds identical chunk bytes, so the replicated
  // coarse models (and the residual they produce) stay bitwise identical
  // with no extra collective. The fine models then fit the residual.
  const bool hierarchical = stack_.hierarchical();
  Mat residual;
  CoarseUpdate coarse;
  if (hierarchical) {
    coarse = stack_.update_coarse(chunk, config_.pipeline_options.band,
                                  residual);
  }
  update_local_groups(hierarchical ? residual : chunk, updates);

  snapshot.magnitudes.assign(sensors_, 0.0);
  snapshot.sensor_means.assign(sensors_, 0.0);
  if (comm_ == nullptr) {
    // Merge in deterministic group order: scatter each group's magnitudes
    // and means back to machine sensor indices, then reconcile globally.
    snapshot.reports.reserve(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const auto& group = groups_[g];
      for (std::size_t i = 0; i < group.size(); ++i) {
        snapshot.magnitudes[group[i]] = updates[g].magnitudes[i];
        snapshot.sensor_means[group[i]] = updates[g].sensor_means[i];
      }
      snapshot.reports.push_back(updates[g].report);
    }
  } else {
    // One ragged allgather carries this rank's whole contribution: for
    // each owned group, in global group order, [magnitudes | sensor_means
    // | report]. Boundaries are recovered from the shared ownership map,
    // so every rank decodes the identical global sequence.
    std::vector<double> local_blob;
    std::size_t local_values = 0;
    for (std::size_t l = 0; l < local_count; ++l) {
      local_values += groups_[local_begin_ + l].size();
    }
    local_blob.reserve(2 * local_values + kReportWords * local_count);
    for (std::size_t l = 0; l < local_count; ++l) {
      local_blob.insert(local_blob.end(), updates[l].magnitudes.begin(),
                        updates[l].magnitudes.end());
      local_blob.insert(local_blob.end(), updates[l].sensor_means.begin(),
                        updates[l].sensor_means.end());
      encode_report(local_blob, updates[l].report);
    }
    const std::vector<std::vector<double>> blobs = comm_->allgatherv(
        std::span<const double>(local_blob.data(), local_blob.size()));

    snapshot.reports.resize(groups_.size());
    const std::size_t ranks = static_cast<std::size_t>(comm_->size());
    for (std::size_t r = 0; r < ranks; ++r) {
      const auto range = rank_group_range(groups_.size(), ranks, r);
      const std::vector<double>& blob = blobs[r];
      std::size_t expected = 0;
      for (std::size_t g = range.first; g < range.second; ++g) {
        expected += 2 * groups_[g].size() + kReportWords;
      }
      IMRDMD_REQUIRE_DIMS(
          blob.size() == expected,
          "distributed assessor rank contribution has the wrong length");
      const double* cursor = blob.data();
      for (std::size_t g = range.first; g < range.second; ++g) {
        const auto& group = groups_[g];
        for (std::size_t i = 0; i < group.size(); ++i) {
          snapshot.magnitudes[group[i]] = cursor[i];
          snapshot.sensor_means[group[i]] = cursor[group.size() + i];
        }
        snapshot.reports[g] = decode_report(cursor + 2 * group.size());
        cursor += 2 * group.size() + kReportWords;
      }
    }
  }
  snapshot.total_snapshots = snapshots_seen_ + chunk.cols();
  snapshot.fit_seconds = timer.seconds();

  if (hierarchical) {
    // The merged means above were computed on the residual; the baseline
    // value-range rule reads physical temperatures, so recompute them from
    // the raw chunk (full-width row means are bitwise identical to the
    // flat engine's per-group merge of the same chunk).
    snapshot.sensor_means = row_means(chunk);
    snapshot.coarse_magnitudes = std::move(coarse.magnitudes);
    snapshot.coarse_report = coarse.report;
    snapshot.coarse_fit_seconds = coarse.fit_seconds;
    ReconciledZscores reconciled = zscore_stage_.apply_reconciled(
        std::span<const double>(snapshot.magnitudes.data(),
                                snapshot.magnitudes.size()),
        std::span<const double>(snapshot.coarse_magnitudes.data(),
                                snapshot.coarse_magnitudes.size()),
        std::span<const double>(snapshot.sensor_means.data(),
                                snapshot.sensor_means.size()));
    snapshot.zscores = std::move(reconciled.combined);
    snapshot.coarse_zscores = std::move(reconciled.coarse_zscores);
    snapshot.residual_zscores = std::move(reconciled.residual_zscores);
  } else {
    snapshot.zscores = zscore_stage_.apply(
        std::span<const double>(snapshot.magnitudes.data(),
                                snapshot.magnitudes.size()),
        std::span<const double>(snapshot.sensor_means.data(),
                                snapshot.sensor_means.size()));
  }

  snapshots_seen_ += chunk.cols();
  ++chunks_processed_;
  return snapshot;
}

bool Assessor::deliver(SnapshotSink& sink, AssessmentSnapshot&& snapshot,
                       RunSummary& summary) {
  const std::size_t cols = snapshot.chunk_snapshots;
  bool keep_going = true;
  try {
    keep_going = sink.on_snapshot(std::move(snapshot));
  } catch (...) {
    // Exactly-once across runs: the chunk is already folded into the
    // models, so the snapshot cannot be regenerated — park it for the next
    // run's sink instead of losing it with the unwind. (An observing sink
    // leaves the snapshot untouched through the default rvalue forwarder;
    // see SnapshotSink::on_snapshot.)
    parked_snapshots_.push_back(std::move(snapshot));
    throw;
  }
  ++summary.chunks;
  summary.snapshots += cols;
  return keep_going;
}

void Assessor::maybe_checkpoint(SnapshotSink& sink, std::size_t chunk_index) {
  const CheckpointPolicy& policy = config_.checkpoint_policy;
  if (policy.every_n == 0 || chunks_processed_ % policy.every_n != 0) return;
  save_assessor_checkpoint_file(policy.path, *this);
  sink.on_checkpoint_written(policy.path, chunk_index);
}

RunSummary Assessor::run(ChunkSource& source, SnapshotSink& sink) {
  return run_until(&source, sink, StopCondition{});
}

RunSummary Assessor::run_until(ChunkSource& source, SnapshotSink& sink,
                               const StopCondition& stop) {
  return run_until(&source, sink, stop);
}

RunSummary Assessor::run_until(ChunkSource* source, SnapshotSink& sink,
                               const StopCondition& stop) {
  const bool root = comm_ == nullptr || comm_->rank() == 0;
  if (comm_ != nullptr) {
    IMRDMD_REQUIRE_ARG(root == (source != nullptr),
                       "the chunk source lives on rank 0 only (pass nullptr "
                       "on the other ranks)");
  } else {
    IMRDMD_REQUIRE_ARG(source != nullptr,
                       "run needs a chunk source in the single-process "
                       "topologies");
  }
  if (sensors_ == 0 && source != nullptr) {
    finalize_topology(source->sensors());
  }
  // Fail fast on un-resumable checkpointing: an armed policy over a source
  // that cannot report a position would write checkpoints that can never
  // be seek'd on resume. Before anything is pulled, so nothing is lost.
  if (source != nullptr && config_.checkpoint_policy.every_n > 0 &&
      source->position() == ChunkSource::kUnknownPosition) {
    throw InvalidArgument(
        "checkpoint policy armed over a source that cannot report its "
        "position — the checkpoint could never be resumed; implement "
        "position()/seek() or disarm the policy");
  }

  WallTimer run_timer;
  RunSummary summary;
  const auto budget_hit = [&]() -> std::optional<StopReason> {
    if (stop.max_chunks != 0 && summary.chunks >= stop.max_chunks) {
      return StopReason::MaxChunks;
    }
    if (stop.max_snapshots != 0 && summary.snapshots >= stop.max_snapshots) {
      return StopReason::MaxSnapshots;
    }
    return std::nullopt;
  };

  // Deliver snapshots parked by a previous run whose sink delivery threw:
  // those chunks are folded into the models, so the results (alarms
  // included) cannot be regenerated. They count toward this run's stop
  // budgets, like the legacy drivers' parked-snapshot accounting.
  while (!parked_snapshots_.empty()) {
    if (const auto reason = budget_hit()) {
      summary.reason = *reason;
      sink.on_end(summary);
      return summary;
    }
    AssessmentSnapshot snapshot = std::move(parked_snapshots_.front());
    parked_snapshots_.pop_front();
    const std::size_t cols = snapshot.chunk_snapshots;
    bool keep_going = true;
    try {
      keep_going = sink.on_snapshot(std::move(snapshot));
    } catch (...) {
      // Still undelivered: back to the FRONT so order is preserved.
      parked_snapshots_.push_front(std::move(snapshot));
      throw;
    }
    ++summary.chunks;
    summary.snapshots += cols;
    if (!keep_going) {
      summary.reason = StopReason::SinkRequest;
      sink.on_end(summary);
      return summary;
    }
  }

  // The prefetch pull budget: of the chunks this run may still process,
  // the parked carry chunks are consumed first — only the remainder may be
  // pulled from the source (so a chunk-bounded run never over-consumes
  // it). Budgets the chunk count cannot bound up front (snapshot columns,
  // wall clock, sink stop) instead drain any over-pulled chunks back into
  // the carry queue below.
  std::unique_ptr<ChunkPrefetcher> prefetcher;
  if (source != nullptr && config_.ingest_options.prefetch_depth > 0) {
    std::size_t pull_budget = ~std::size_t{0};
    if (stop.max_chunks != 0) {
      const std::size_t chunk_budget = stop.max_chunks - summary.chunks;
      pull_budget = chunk_budget > carry_chunks_.size()
                        ? chunk_budget - carry_chunks_.size()
                        : 0;
    }
    if (pull_budget > 0) {
      prefetcher = std::make_unique<ChunkPrefetcher>(
          *source, config_.ingest_options.prefetch_depth, pull_budget);
    }
  }
  // No pulled chunk is ever dropped: on every exit path the chunks the
  // prefetcher consumed but the loop never processed are parked, in
  // order, for the next run.
  const auto park_prefetched = [&] {
    if (prefetcher == nullptr) return;
    std::deque<Mat> leftovers = prefetcher->drain();
    for (Mat& chunk : leftovers) carry_chunks_.push_back(std::move(chunk));
    prefetcher.reset();
  };
  const auto pull_next = [&]() -> std::optional<Mat> {
    if (!carry_chunks_.empty()) {
      Mat chunk = std::move(carry_chunks_.front());
      carry_chunks_.pop_front();
      return chunk;
    }
    if (prefetcher != nullptr) return prefetcher->pop();
    return source->next_chunk();
  };

  try {
    while (true) {
      if (const auto reason = budget_hit()) {
        summary.reason = *reason;
        break;
      }
      std::optional<Mat> current;
      StopReason end_reason = StopReason::EndOfStream;
      if (root) {
        // Only the ingestion side evaluates the wall clock; in the
        // distributed topology the verdict travels in the handshake so
        // ranks never disagree on when the stream ends.
        if (stop.max_seconds > 0.0 &&
            run_timer.seconds() >= stop.max_seconds) {
          end_reason = StopReason::Deadline;
        } else {
          current = pull_next();
        }
      }
      if (comm_ != nullptr) {
        // A zero-column chunk must fail like it does everywhere else
        // (process() raises InvalidArgument) — never reach the handshake,
        // where a width of 0 is the end-of-stream sentinel and would
        // silently truncate the rest of the stream on every rank.
        IMRDMD_REQUIRE_ARG(!current.has_value() || current->cols() > 0,
                           "assessor chunk has no snapshot columns");
        // Chunk handshake: rank 0 announces the next chunk's column count
        // (0 = no more chunks, with the reason) so peers can size their
        // replica before the data broadcast.
        double meta[2] = {
            root && current.has_value()
                ? static_cast<double>(current->cols())
                : 0.0,
            static_cast<double>(static_cast<int>(end_reason))};
        comm_->broadcast(std::span<double>(meta, 2), 0);
        if (meta[0] == 0.0) {
          summary.reason = static_cast<StopReason>(static_cast<int>(meta[1]));
          break;
        }
        if (!root) {
          current.emplace(sensors_, static_cast<std::size_t>(meta[0]));
        }
        // Replicate the chunk. A root chunk with the wrong row count makes
        // the buffer sizes disagree, failing on every rank together.
        comm_->broadcast(
            std::span<double>(current->data(), current->size()), 0);
      } else if (!current.has_value()) {
        summary.reason = end_reason;
        break;
      }

      AssessmentSnapshot snapshot = process(*current);
      const std::size_t chunk_index = snapshot.chunk_index;
      const bool keep_going = deliver(sink, std::move(snapshot), summary);
      // Delivery-before-checkpoint: the sink has seen everything a
      // checkpoint written here counts as past. A failed write parks the
      // prefetched chunks like any other failure; the snapshot itself was
      // already delivered, so retrying the run loses nothing.
      maybe_checkpoint(sink, chunk_index);
      if (!keep_going) {
        summary.reason = StopReason::SinkRequest;
        break;
      }
    }
  } catch (...) {
    park_prefetched();
    throw;
  }
  park_prefetched();
  sink.on_end(summary);
  return summary;
}

std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count) {
  IMRDMD_REQUIRE_ARG(count > 0 && count <= sensors,
                     "group count must be in [1, sensors]");
  std::vector<std::vector<std::size_t>> groups(count);
  const std::size_t base = sensors / count;
  const std::size_t extra = sensors % count;
  std::size_t next = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    groups[g].reserve(size);
    for (std::size_t i = 0; i < size; ++i) groups[g].push_back(next++);
  }
  return groups;
}

std::pair<std::size_t, std::size_t> rank_group_range(std::size_t groups,
                                                     std::size_t ranks,
                                                     std::size_t rank) {
  IMRDMD_REQUIRE_ARG(ranks > 0, "rank_group_range needs at least one rank");
  IMRDMD_REQUIRE_ARG(rank < ranks, "rank_group_range rank out of range");
  const std::size_t base = groups / ranks;
  const std::size_t extra = groups % ranks;
  const std::size_t begin = rank * base + std::min(rank, extra);
  return {begin, begin + base + (rank < extra ? 1 : 0)};
}

}  // namespace imrdmd::core
