#include "core/assessor.hpp"

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"
#include "linalg/backend.hpp"

namespace imrdmd::core {

namespace {

/// Gathers the rows listed in `group` out of `chunk` (group order).
Mat gather_rows(const Mat& chunk, const std::vector<std::size_t>& group) {
  Mat out(group.size(), chunk.cols());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const double* src = chunk.data() + group[i] * chunk.cols();
    std::copy(src, src + chunk.cols(), out.data() + i * chunk.cols());
  }
  return out;
}

/// The groups must partition [0, sensors) exactly: every magnitude slot is
/// written once, so the merged vectors are total and unambiguous.
void validate_partition(const std::vector<std::vector<std::size_t>>& groups,
                        std::size_t sensors) {
  std::vector<bool> covered(sensors, false);
  for (const auto& group : groups) {
    IMRDMD_REQUIRE_ARG(!group.empty(), "assessor group is empty");
    for (std::size_t p : group) {
      IMRDMD_REQUIRE_ARG(p < sensors,
                         "assessor group sensor index out of range");
      IMRDMD_REQUIRE_ARG(!covered[p], "assessor groups overlap");
      covered[p] = true;
    }
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(covered.begin(), covered.end(), [](bool c) { return c; }),
      "assessor groups do not cover every sensor");
}

/// Doubles a PartialFitReport travels the wire as. The counters are exact
/// through double for any realistic stream (< 2^53 snapshots), so the
/// gathered reports compare bitwise-equal to the single-process engine's.
constexpr std::size_t kReportWords = 8;

void encode_report(std::vector<double>& out, const PartialFitReport& report) {
  out.push_back(static_cast<double>(report.new_snapshots));
  out.push_back(static_cast<double>(report.total_snapshots));
  out.push_back(report.drift_grid);
  out.push_back(report.drift_estimate);
  out.push_back(report.drift_exceeded ? 1.0 : 0.0);
  out.push_back(report.recomputed ? 1.0 : 0.0);
  out.push_back(static_cast<double>(report.new_nodes));
  out.push_back(static_cast<double>(report.new_grid_columns));
}

PartialFitReport decode_report(const double* words) {
  PartialFitReport report;
  report.new_snapshots = static_cast<std::size_t>(words[0]);
  report.total_snapshots = static_cast<std::size_t>(words[1]);
  report.drift_grid = words[2];
  report.drift_estimate = words[3];
  report.drift_exceeded = words[4] != 0.0;
  report.recomputed = words[5] != 0.0;
  report.new_nodes = static_cast<std::size_t>(words[6]);
  report.new_grid_columns = static_cast<std::size_t>(words[7]);
  return report;
}

/// IMRDMD_HIERARCHY_STRIDE supplies the default coarse stride when the
/// config never called hierarchy() — the same opt-in shape as
/// IMRDMD_LINALG_BACKEND, so CI can re-run entire suites with the
/// hierarchy enabled. Unset/empty means flat; anything unparsable throws
/// (a typo must not silently run flat).
std::size_t hierarchy_stride_from_env() {
  const char* value = std::getenv("IMRDMD_HIERARCHY_STRIDE");
  if (value == nullptr || *value == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  IMRDMD_REQUIRE_ARG(errno == 0 && end != value && *end == '\0',
                     "IMRDMD_HIERARCHY_STRIDE is not a non-negative integer");
  return static_cast<std::size_t>(parsed);
}

/// IMRDMD_INGEST_MODE supplies the default chunk delivery when the config
/// never called IngestOptions::with_mode(). Unset/empty means broadcast;
/// a typo throws instead of silently running the wrong mode.
IngestMode ingest_mode_from_env() {
  const char* value = std::getenv("IMRDMD_INGEST_MODE");
  if (value == nullptr || *value == '\0') return IngestMode::Broadcast;
  const std::string name(value);
  if (name == "broadcast") return IngestMode::Broadcast;
  if (name == "scatterv") return IngestMode::Scatterv;
  if (name == "per_rank") return IngestMode::PerRank;
  throw InvalidArgument(
      "IMRDMD_INGEST_MODE must be broadcast, scatterv, or per_rank");
}

/// IMRDMD_CHECKPOINT_DELTA supplies the default delta-checkpoint setting
/// when the policy never called with_delta(). Unset/empty/"0" means off.
bool checkpoint_delta_from_env() {
  const char* value = std::getenv("IMRDMD_CHECKPOINT_DELTA");
  if (value == nullptr || *value == '\0') return false;
  const std::string name(value);
  if (name == "0") return false;
  if (name == "1") return true;
  throw InvalidArgument("IMRDMD_CHECKPOINT_DELTA must be 0 or 1");
}

/// "no row here" marker of local_row_of_sensor_.
constexpr std::size_t kNoRow = ~std::size_t{0};

/// Stream positions travel the per-chunk agreement as doubles; unknown is
/// encoded as -1 (a position is exact through double below 2^53).
double encode_position(std::size_t position) {
  return position == ChunkSource::kUnknownPosition
             ? -1.0
             : static_cast<double>(position);
}

std::size_t decode_position(double value) {
  return value < 0.0 ? ChunkSource::kUnknownPosition
                     : static_cast<std::size_t>(value);
}

/// Order-sensitive fold of the chunk's raw bit patterns, squashed into the
/// mantissa of a normal double in [1, 2) so it travels any collective
/// without NaN/Inf hazards. Used to verify SPMD chunk agreement: two ranks
/// disagreeing on the chunk CONTENT (not just its shape) would silently
/// desync their replicated z-score stages otherwise.
double chunk_digest(const Mat& chunk) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  const double* data = chunk.data();
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, data + i, sizeof bits);
    acc ^= bits + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
  }
  acc = (acc & 0x000fffffffffffffull) | 0x3ff0000000000000ull;
  double digest;
  std::memcpy(&digest, &acc, sizeof digest);
  return digest;
}

/// A prefetched chunk with the stream position it started at (read from
/// the source immediately before the pull; kUnknownPosition for sources
/// that cannot report one) — the distributed per-chunk agreement verifies
/// these starts across replicas.
struct Pulled {
  std::size_t start = ChunkSource::kUnknownPosition;
  Mat chunk;
};

/// The backpressure-aware ingestion queue: one producer thread pulls chunks
/// from the source into a bounded queue of `depth` slots, blocking while
/// the queue is full (so a bursty source never runs more than `depth`
/// chunks ahead of compute) and stopping once `budget` chunks have been
/// pulled (so a chunk-bounded run never over-consumes the source). The
/// producer is deliberately NOT a pool task: sources are free to use
/// parallel_for themselves, and a pool task fanning back out onto its own
/// pool would block a worker on work only that worker can run.
///
/// A pulled chunk is never dropped: drain() stops the producer and returns
/// every chunk that was queued but not yet popped, in pull order, so the
/// run loop can park them for the next call.
class ChunkPrefetcher {
 public:
  ChunkPrefetcher(ChunkSource& source, std::size_t depth, std::size_t budget)
      : source_(source),
        depth_(std::max<std::size_t>(depth, 1)),
        budget_(budget) {
    worker_ = std::thread([this] { produce(); });
  }

  ~ChunkPrefetcher() { stop_and_join(); }

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  /// Next chunk in stream order; blocks until the producer has one.
  /// Returns nullopt at end of stream (or once the pull budget is spent —
  /// the caller's own stop condition fires first by construction).
  /// Rethrows a source exception at the position it occurred.
  std::optional<Pulled> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    data_cv_.wait(lock, [this] {
      return !queue_.empty() || error_ != nullptr || done_;
    });
    if (!queue_.empty()) {
      Pulled pulled = std::move(queue_.front());
      queue_.pop_front();
      room_cv_.notify_all();
      return pulled;
    }
    if (error_ != nullptr) {
      std::rethrow_exception(std::exchange(error_, nullptr));
    }
    return std::nullopt;
  }

  /// Stops the producer and returns the chunks it pulled but the caller
  /// never popped, in pull order.
  std::deque<Pulled> drain() {
    stop_and_join();
    std::lock_guard<std::mutex> lock(mutex_);
    return std::exchange(queue_, {});
  }

 private:
  void produce() {
    try {
      while (true) {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          room_cv_.wait(lock,
                        [this] { return stop_ || queue_.size() < depth_; });
          if (stop_ || pulled_ >= budget_) break;
        }
        // Pull outside the lock; the chunk is pushed unconditionally
        // afterwards so a stop request can never discard a consumed chunk.
        const std::size_t start = source_.position();
        std::optional<Mat> chunk = source_.next_chunk();
        std::lock_guard<std::mutex> lock(mutex_);
        ++pulled_;
        if (!chunk.has_value()) break;
        queue_.push_back(Pulled{start, std::move(*chunk)});
        data_cv_.notify_all();
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
    data_cv_.notify_all();
  }

  void stop_and_join() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      room_cv_.notify_all();
    }
    if (worker_.joinable()) worker_.join();
  }

  ChunkSource& source_;
  const std::size_t depth_;
  const std::size_t budget_;
  std::thread worker_;
  std::mutex mutex_;
  std::condition_variable data_cv_;
  std::condition_variable room_cv_;
  std::deque<Pulled> queue_;
  std::exception_ptr error_;
  std::size_t pulled_ = 0;
  bool stop_ = false;
  bool done_ = false;
};

}  // namespace

MagnitudeUpdate update_magnitudes(IncrementalMrdmd& model, const Mat& chunk,
                                  const dmd::ModeBand& band) {
  MagnitudeUpdate update;
  WallTimer timer;
  if (!model.fitted()) {
    model.initial_fit(chunk);
  } else {
    update.report = model.partial_fit(chunk);
  }
  update.fit_seconds = timer.seconds();
  update.magnitudes = model.magnitudes(&band);
  update.sensor_means = row_means(chunk);
  return update;
}

Assessor::Assessor(AssessorConfig config)
    : config_(std::move(config)),
      comm_(config_.comm),
      zscore_stage_(config_.pipeline_options.baseline,
                    config_.pipeline_options.zscore,
                    config_.pipeline_options.reselect_baseline_per_chunk) {
  // Backend selection first: it can throw (unknown name), and nothing
  // below should have touched process-wide state by then.
  if (!config_.linalg_backend.empty()) {
    linalg::set_active_backend(config_.linalg_backend);
  }
  // A checkpoint policy armed without a destination would silently never
  // write anything; fail fast at configuration time instead.
  IMRDMD_REQUIRE_ARG(
      config_.checkpoint_policy.every_n == 0 ||
          !config_.checkpoint_policy.path.empty(),
      "checkpoint policy armed (every_n > 0) without a path — the policy "
      "would be silently disarmed; set a path or every_n = 0");
  // Resolve the effective stride once, at construction: an explicit
  // hierarchy() call (including checkpoint resume) pins it; otherwise the
  // environment default applies. Ingest mode and delta checkpointing
  // follow the same pin-against-environment shape.
  if (!config_.hierarchy_set) {
    config_.coarse_stride = hierarchy_stride_from_env();
    config_.hierarchy_set = true;
  }
  if (!config_.ingest_options.mode_set) {
    config_.ingest_options.mode = ingest_mode_from_env();
    config_.ingest_options.mode_set = true;
  }
  if (!config_.checkpoint_policy.delta_set) {
    config_.checkpoint_policy.delta = checkpoint_delta_from_env();
    config_.checkpoint_policy.delta_set = true;
  }
  if (config_.sensor_count == 0) {
    // Deferred sensor count: only the single-process monolithic topology
    // can infer P from the first chunk (a sharded partition names sensor
    // indices up front, and distributed peers size their replica buffers
    // from P before any data arrives).
    IMRDMD_REQUIRE_ARG(
        config_.groups.empty() && comm_ == nullptr,
        "sensor count is required for the sharded and distributed "
        "topologies (only the monolithic topology can infer it from the "
        "first chunk)");
    local_begin_ = 0;
    local_end_ = 1;
    lanes_ = 1;
    identity_partition_ = true;
    stack_.add_fine(config_.pipeline_options.imrdmd);
  } else {
    finalize_topology(config_.sensor_count);
  }
}

void Assessor::finalize_topology(std::size_t sensors) {
  IMRDMD_REQUIRE_ARG(sensors > 0, "assessor needs at least one sensor");
  sensors_ = sensors;
  groups_ = config_.groups;
  if (groups_.empty()) {
    groups_ = contiguous_groups(sensors_, 1);
  }
  validate_partition(groups_, sensors_);
  if (groups_.size() == 1) {
    identity_partition_ = true;
    for (std::size_t i = 0; i < groups_[0].size(); ++i) {
      if (groups_[0][i] != i) identity_partition_ = false;
    }
  }

  if (comm_ != nullptr) {
    const auto range = rank_group_range(
        groups_.size(), static_cast<std::size_t>(comm_->size()),
        static_cast<std::size_t>(comm_->rank()));
    local_begin_ = range.first;
    local_end_ = range.second;
  } else {
    local_begin_ = 0;
    local_end_ = groups_.size();
  }
  const std::size_t local_count = local_end_ - local_begin_;

  // Lane count is a *local* knob: each process spreads only its own
  // groups. A rank owning no groups still participates in every collective
  // with an empty contribution.
  lanes_ = config_.lanes == 0 ? std::max<std::size_t>(local_count, 1)
                              : config_.lanes;
  lanes_ = std::min(lanes_, std::max<std::size_t>(local_count, 1));

  ImrdmdOptions model_options = config_.pipeline_options.imrdmd;
  // A single lane runs on the caller thread, where the model may keep its
  // parallel-bin fits (bitwise serial-identical per the determinism suite);
  // with real lanes the updates are pool tasks and must not nest the pool.
  if (lanes_ > 1) model_options.mrdmd.parallel_bins = false;
  // The deferred-monolithic constructor path already created the single
  // model (so model() works before the first chunk); every other path
  // creates the owned fine models here.
  if (stack_.fine_count() == 0) {
    for (std::size_t l = 0; l < local_count; ++l) {
      stack_.add_fine(model_options);
    }
  }
  // The coarse facility model runs unsharded on the caller thread of every
  // engine replica, so it keeps the configured options as-is (its
  // parallel-bin fits never nest the pool).
  if (config_.coarse_stride > 0 && !stack_.hierarchical()) {
    stack_.enable_coarse(groups_, sensors_, config_.coarse_stride,
                         config_.pipeline_options.imrdmd);
  }

  rebuild_owned_maps();
  group_cost_ewma_.assign(local_count, 0.0);
  rebalance_lanes();
}

void Assessor::rebuild_owned_maps() {
  owned_rows_.clear();
  group_of_sensor_.assign(sensors_, 0);
  local_row_of_sensor_.assign(sensors_, kNoRow);
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    for (std::size_t sensor : groups_[g]) group_of_sensor_[sensor] = g;
  }
  for (std::size_t g = local_begin_; g < local_end_; ++g) {
    for (std::size_t sensor : groups_[g]) {
      local_row_of_sensor_[sensor] = owned_rows_.size();
      owned_rows_.push_back(sensor);
    }
  }
}

void Assessor::rebalance_lanes() {
  const std::size_t local_count = local_end_ - local_begin_;
  lane_groups_.assign(lanes_, {});
  if (local_count == 0) return;
  // LPT greedy over the cost model: group width scaled by the observed
  // update-seconds EWMA once one exists (before the first chunk every
  // EWMA is 0 and width alone balances). Deterministic: ties broken by
  // lower group index, then lower lane index.
  std::vector<std::pair<double, std::size_t>> order(local_count);
  for (std::size_t l = 0; l < local_count; ++l) {
    const double width =
        static_cast<double>(groups_[local_begin_ + l].size());
    const double ewma = group_cost_ewma_[l];
    order[l] = {ewma > 0.0 ? width * ewma : width, l};
  }
  std::sort(order.begin(), order.end(),
            [](const std::pair<double, std::size_t>& a,
               const std::pair<double, std::size_t>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<double> load(lanes_, 0.0);
  for (const auto& [cost, l] : order) {
    std::size_t lane = 0;
    for (std::size_t k = 1; k < lanes_; ++k) {
      if (load[k] < load[lane]) lane = k;
    }
    lane_groups_[lane].push_back(l);
    load[lane] += cost;
  }
  // In-lane order is ascending local index (the merge is global-group
  // ordered regardless; this just keeps per-lane traversal predictable).
  for (auto& lane : lane_groups_) std::sort(lane.begin(), lane.end());
}

ThreadPool& Assessor::pool() const {
  return config_.worker_pool != nullptr ? *config_.worker_pool
                                        : global_pool();
}

const IncrementalMrdmd& Assessor::model(std::size_t group) const {
  IMRDMD_REQUIRE_ARG(group >= local_begin_ && group < local_end_,
                     "this process does not own the requested group");
  return stack_.fine(group - local_begin_);
}

void Assessor::update_local_groups(const Mat& chunk,
                                   std::vector<MagnitudeUpdate>& updates) {
  run_lanes(
      lanes_,
      [this, &chunk, &updates](std::size_t lane) {
        for (std::size_t l : lane_groups_[lane]) {
          // The identity partition (one group of all sensors, in order)
          // feeds the chunk straight through — no per-chunk gather copy.
          updates[l] =
              identity_partition_
                  ? update_magnitudes(stack_.fine(l), chunk,
                                      config_.pipeline_options.band)
                  : update_magnitudes(
                        stack_.fine(l),
                        gather_rows(chunk, groups_[local_begin_ + l]),
                        config_.pipeline_options.band);
        }
      },
      &pool());
}

AssessmentSnapshot Assessor::process(const Mat& chunk) {
  if (sensors_ == 0) finalize_topology(chunk.rows());
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0,
                     "assessor chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(
      chunk.rows() == sensors_,
      "assessor chunk row count differs from the configured sensors");

  if (comm_ != nullptr) {
    // SPMD agreement: every rank must be processing the same chunk — width
    // AND content (a content disagreement would silently desync the
    // replicated z-score stages). One allgather shows every rank every
    // peer's (width, digest); on any disagreement every rank sees the same
    // slots and finds some slot differing from its own, so all ranks throw
    // together instead of deadlocking in a later collective.
    const double meta[2] = {static_cast<double>(chunk.cols()),
                            chunk_digest(chunk)};
    const std::vector<std::vector<double>> metas =
        comm_->allgatherv(std::span<const double>(meta, 2));
    for (const auto& slot : metas) {
      if (slot.size() != 2 ||
          std::memcmp(slot.data(), meta, sizeof meta) != 0) {
        throw InvalidArgument(
            "distributed assessor ranks disagree on the chunk (width or "
            "content)");
      }
    }
  }

  return process_chunk_full(chunk);
}

AssessmentSnapshot Assessor::process_chunk_full(const Mat& chunk) {
  WallTimer timer;
  const std::size_t local_count = local_end_ - local_begin_;
  std::vector<MagnitudeUpdate> updates(local_count);

  // Coarse level first (hierarchy mode): one deterministic update per
  // engine replica, on the caller thread — after the SPMD digest agreement
  // above, every rank holds identical chunk bytes, so the replicated
  // coarse models (and the residual they produce) stay bitwise identical
  // with no extra collective. The fine models then fit the residual.
  const bool hierarchical = stack_.hierarchical();
  Mat residual;
  CoarseUpdate coarse;
  if (hierarchical) {
    coarse = stack_.update_coarse(chunk, config_.pipeline_options.band,
                                  residual);
  }
  update_local_groups(hierarchical ? residual : chunk, updates);
  if (hierarchical) {
    // The per-group updates above computed means of the RESIDUAL blocks;
    // the baseline value-range rule reads physical values, so substitute
    // the raw chunk's per-row means before the merge (row_means is
    // per-row independent, so the merged full-width vector is bitwise
    // row_means(chunk) — and the sliced path can substitute the same
    // values from its raw slice alone).
    const std::vector<double> raw = row_means(chunk);
    for (std::size_t l = 0; l < local_count; ++l) {
      const auto& group = groups_[local_begin_ + l];
      for (std::size_t i = 0; i < group.size(); ++i) {
        updates[l].sensor_means[i] = raw[group[i]];
      }
    }
  }
  Mat journal;
  if (config_.checkpoint_policy.delta) {
    journal = gather_rows(chunk, owned_rows_);
  }
  return merge_and_score(updates, std::move(coarse), journal, chunk.cols(),
                         timer);
}

AssessmentSnapshot Assessor::process_chunk_sliced(const Mat& local_rows,
                                                  const Mat& coarse_chunk,
                                                  std::size_t cols) {
  IMRDMD_REQUIRE_DIMS(
      local_rows.rows() == owned_rows_.size() && local_rows.cols() == cols,
      "sliced chunk row count differs from this rank's owned sensor rows");
  WallTimer timer;
  const std::size_t local_count = local_end_ - local_begin_;
  std::vector<MagnitudeUpdate> updates(local_count);

  const bool hierarchical = stack_.hierarchical();
  CoarseUpdate coarse;
  Mat residual_rows;
  if (hierarchical) {
    coarse = stack_.update_coarse_sliced(coarse_chunk,
                                         config_.pipeline_options.band,
                                         owned_rows_, local_rows,
                                         residual_rows);
  }
  // Owned-slice layout: the rows of local group l occupy the contiguous
  // block starting at the prefix sum of the earlier owned groups' widths.
  std::vector<std::size_t> offsets(local_count, 0);
  for (std::size_t l = 1; l < local_count; ++l) {
    offsets[l] = offsets[l - 1] + groups_[local_begin_ + l - 1].size();
  }
  const Mat& fine_input = hierarchical ? residual_rows : local_rows;
  run_lanes(
      lanes_,
      [this, &fine_input, &local_rows, &updates, &offsets, hierarchical,
       cols](std::size_t lane) {
        for (std::size_t l : lane_groups_[lane]) {
          const std::size_t width = groups_[local_begin_ + l].size();
          updates[l] = update_magnitudes(
              stack_.fine(l), fine_input.block(offsets[l], 0, width, cols),
              config_.pipeline_options.band);
          if (hierarchical) {
            // Raw means for the baseline rule, as in the full path.
            updates[l].sensor_means =
                row_means(local_rows.block(offsets[l], 0, width, cols));
          }
        }
      },
      &pool());
  Mat journal;
  if (config_.checkpoint_policy.delta) journal = local_rows;
  return merge_and_score(updates, std::move(coarse), journal, cols, timer);
}

AssessmentSnapshot Assessor::merge_and_score(
    std::vector<MagnitudeUpdate>& updates, CoarseUpdate&& coarse,
    const Mat& raw_rows, std::size_t cols, WallTimer timer) {
  AssessmentSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = cols;
  const std::size_t local_count = local_end_ - local_begin_;
  const bool hierarchical = stack_.hierarchical();

  snapshot.magnitudes.assign(sensors_, 0.0);
  snapshot.sensor_means.assign(sensors_, 0.0);
  if (comm_ == nullptr) {
    // Merge in deterministic group order: scatter each group's magnitudes
    // and means back to machine sensor indices, then reconcile globally.
    snapshot.reports.reserve(groups_.size());
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const auto& group = groups_[g];
      for (std::size_t i = 0; i < group.size(); ++i) {
        snapshot.magnitudes[group[i]] = updates[g].magnitudes[i];
        snapshot.sensor_means[group[i]] = updates[g].sensor_means[i];
      }
      snapshot.reports.push_back(updates[g].report);
    }
  } else {
    // One ragged allgather carries this rank's whole contribution: for
    // each owned group, in global group order, [magnitudes | sensor_means
    // | report]. Boundaries are recovered from the shared ownership map,
    // so every rank decodes the identical global sequence.
    std::vector<double> local_blob;
    std::size_t local_values = 0;
    for (std::size_t l = 0; l < local_count; ++l) {
      local_values += groups_[local_begin_ + l].size();
    }
    local_blob.reserve(2 * local_values + kReportWords * local_count);
    for (std::size_t l = 0; l < local_count; ++l) {
      local_blob.insert(local_blob.end(), updates[l].magnitudes.begin(),
                        updates[l].magnitudes.end());
      local_blob.insert(local_blob.end(), updates[l].sensor_means.begin(),
                        updates[l].sensor_means.end());
      encode_report(local_blob, updates[l].report);
    }
    const std::vector<std::vector<double>> blobs = comm_->allgatherv(
        std::span<const double>(local_blob.data(), local_blob.size()));

    snapshot.reports.resize(groups_.size());
    const std::size_t ranks = static_cast<std::size_t>(comm_->size());
    for (std::size_t r = 0; r < ranks; ++r) {
      const auto range = rank_group_range(groups_.size(), ranks, r);
      const std::vector<double>& blob = blobs[r];
      std::size_t expected = 0;
      for (std::size_t g = range.first; g < range.second; ++g) {
        expected += 2 * groups_[g].size() + kReportWords;
      }
      IMRDMD_REQUIRE_DIMS(
          blob.size() == expected,
          "distributed assessor rank contribution has the wrong length");
      const double* cursor = blob.data();
      for (std::size_t g = range.first; g < range.second; ++g) {
        const auto& group = groups_[g];
        for (std::size_t i = 0; i < group.size(); ++i) {
          snapshot.magnitudes[group[i]] = cursor[i];
          snapshot.sensor_means[group[i]] = cursor[group.size() + i];
        }
        snapshot.reports[g] = decode_report(cursor + 2 * group.size());
        cursor += 2 * group.size() + kReportWords;
      }
    }
  }
  snapshot.total_snapshots = snapshots_seen_ + cols;
  snapshot.fit_seconds = timer.seconds();

  if (hierarchical) {
    // The merged sensor_means already carry RAW per-row means (substituted
    // by the process paths before the merge — bitwise row_means(chunk)
    // since row means are per-row independent), so the baseline value-range
    // rule reads physical temperatures here with no full chunk in sight.
    snapshot.coarse_magnitudes = std::move(coarse.magnitudes);
    snapshot.coarse_report = coarse.report;
    snapshot.coarse_fit_seconds = coarse.fit_seconds;
    ReconciledZscores reconciled = zscore_stage_.apply_reconciled(
        std::span<const double>(snapshot.magnitudes.data(),
                                snapshot.magnitudes.size()),
        std::span<const double>(snapshot.coarse_magnitudes.data(),
                                snapshot.coarse_magnitudes.size()),
        std::span<const double>(snapshot.sensor_means.data(),
                                snapshot.sensor_means.size()));
    snapshot.zscores = std::move(reconciled.combined);
    snapshot.coarse_zscores = std::move(reconciled.coarse_zscores);
    snapshot.residual_zscores = std::move(reconciled.residual_zscores);
  } else {
    snapshot.zscores = zscore_stage_.apply(
        std::span<const double>(snapshot.magnitudes.data(),
                                snapshot.magnitudes.size()),
        std::span<const double>(snapshot.sensor_means.data(),
                                snapshot.sensor_means.size()));
  }

  // Feed the cost model: each local group's observed update seconds fold
  // into its EWMA (first observation seeds it). rebalance_lanes() reads
  // these at checkpoint boundaries only, so mid-interval snapshots stay
  // bitwise independent of the timings.
  for (std::size_t l = 0; l < local_count; ++l) {
    const double fit = updates[l].fit_seconds;
    group_cost_ewma_[l] = group_cost_ewma_[l] == 0.0
                              ? fit
                              : 0.7 * group_cost_ewma_[l] + 0.3 * fit;
  }
  if (config_.checkpoint_policy.delta) delta_pending_.push_back(raw_rows);

  snapshots_seen_ += cols;
  ++chunks_processed_;
  return snapshot;
}

void Assessor::check_stream_position(std::size_t start, std::size_t cols) {
  if (start == ChunkSource::kUnknownPosition) {
    // A source that cannot report positions disables the check from here
    // on (resuming it into checkpointing already fails fast elsewhere).
    stream_expect_ = ChunkSource::kUnknownPosition;
    return;
  }
  if (stream_expect_ != ChunkSource::kUnknownPosition &&
      stream_expect_ != start) {
    throw StreamDesync(
        "chunk starts at stream position " + std::to_string(start) +
        " but the engine expected " + std::to_string(stream_expect_) +
        " — was the source seek'd to the wrong snapshot after resume?");
  }
  stream_expect_ = start + cols;
}

Mat Assessor::assemble_coarse(const Mat& local_rows, std::size_t cols) {
  // Each rank contributes the coarse grid rows it owns, in ascending grid
  // order; one allgatherv then lets every rank reassemble the full coarse
  // chunk (coarse row order) bitwise identically.
  const std::vector<std::size_t>& grid = stack_.coarse_rows();
  std::vector<double> mine;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const std::size_t row = local_row_of_sensor_[grid[j]];
    if (row == kNoRow) continue;
    const double* src = local_rows.data() + row * cols;
    mine.insert(mine.end(), src, src + cols);
  }
  const std::vector<std::vector<double>> all = comm_->allgatherv(
      std::span<const double>(mine.data(), mine.size()));

  const std::size_t ranks = static_cast<std::size_t>(comm_->size());
  std::vector<std::size_t> owner_of_group(groups_.size(), 0);
  for (std::size_t r = 0; r < ranks; ++r) {
    const auto range = rank_group_range(groups_.size(), ranks, r);
    for (std::size_t g = range.first; g < range.second; ++g) {
      owner_of_group[g] = r;
    }
  }
  Mat coarse_chunk(grid.size(), cols);
  std::vector<std::size_t> cursor(ranks, 0);
  for (std::size_t j = 0; j < grid.size(); ++j) {
    const std::size_t r = owner_of_group[group_of_sensor_[grid[j]]];
    IMRDMD_REQUIRE_DIMS(cursor[r] + cols <= all[r].size(),
                        "coarse grid contribution shorter than the grid "
                        "rows its rank owns");
    std::copy(all[r].data() + cursor[r], all[r].data() + cursor[r] + cols,
              coarse_chunk.data() + j * cols);
    cursor[r] += cols;
  }
  for (std::size_t r = 0; r < ranks; ++r) {
    IMRDMD_REQUIRE_DIMS(cursor[r] == all[r].size(),
                        "coarse grid contribution longer than the grid rows "
                        "its rank owns");
  }
  return coarse_chunk;
}

std::vector<std::size_t> Assessor::owned_sensor_rows() const {
  return owned_rows_;
}

void Assessor::add_sensors(std::size_t group, const Mat& new_rows_history) {
  IMRDMD_REQUIRE_ARG(sensors_ > 0,
                     "add_sensors before the topology is finalized");
  IMRDMD_REQUIRE_ARG(group < groups_.size(), "add_sensors group out of range");
  IMRDMD_REQUIRE_ARG(new_rows_history.rows() > 0,
                     "add_sensors needs at least one new sensor row");
  IMRDMD_REQUIRE_ARG(chunks_processed_ >= 1,
                     "add_sensors needs at least one processed chunk (the "
                     "joined sensors extend a fitted model)");
  IMRDMD_REQUIRE_DIMS(
      new_rows_history.cols() == snapshots_seen_,
      "add_sensors history column count differs from the snapshots the "
      "engine has seen");
  if (comm_ != nullptr) {
    // Collective agreement: growth changes every rank's buffer sizes and
    // merge layout, so all ranks must request the identical growth — group,
    // shape, AND history content — or all throw together.
    const double meta[4] = {static_cast<double>(group),
                            static_cast<double>(new_rows_history.rows()),
                            static_cast<double>(new_rows_history.cols()),
                            chunk_digest(new_rows_history)};
    const std::vector<std::vector<double>> metas =
        comm_->allgatherv(std::span<const double>(meta, 4));
    for (const auto& slot : metas) {
      if (slot.size() != 4 ||
          std::memcmp(slot.data(), meta, sizeof meta) != 0) {
        throw InvalidArgument(
            "distributed assessor ranks disagree on the sensor growth "
            "(group, shape, or history content)");
      }
    }
  }

  const std::size_t width = new_rows_history.rows();
  std::vector<std::size_t> new_sensors(width);
  for (std::size_t j = 0; j < width; ++j) new_sensors[j] = sensors_ + j;
  groups_[group].insert(groups_[group].end(), new_sensors.begin(),
                        new_sensors.end());
  sensors_ += width;
  config_.sensor_count = sensors_;
  config_.groups = groups_;
  identity_partition_ = false;
  rebuild_owned_maps();

  const bool owned = group >= local_begin_ && group < local_end_;
  if (stack_.hierarchical()) {
    // Every replica grows its coarse model (it is replicated); only the
    // owning rank extends the group's fine model, with the RESIDUAL
    // history the grown coarse level hands back.
    Mat residual_history =
        stack_.grow_coarse(new_sensors, sensors_, new_rows_history);
    if (owned) {
      stack_.fine(group - local_begin_).add_sensors(residual_history);
    }
  } else if (owned) {
    stack_.fine(group - local_begin_).add_sensors(new_rows_history);
  }
  // The next delta checkpoint must rewrite its base: the journaled chunks
  // before the growth have the old width, so replay could not cross it.
  delta_force_compact_ = true;
  rebalance_lanes();
}

bool Assessor::deliver(SnapshotSink& sink, AssessmentSnapshot&& snapshot,
                       RunSummary& summary) {
  const std::size_t cols = snapshot.chunk_snapshots;
  bool keep_going = true;
  try {
    keep_going = sink.on_snapshot(std::move(snapshot));
  } catch (...) {
    // Exactly-once across runs: the chunk is already folded into the
    // models, so the snapshot cannot be regenerated — park it for the next
    // run's sink instead of losing it with the unwind. (An observing sink
    // leaves the snapshot untouched through the default rvalue forwarder;
    // see SnapshotSink::on_snapshot.)
    parked_snapshots_.push_back(std::move(snapshot));
    throw;
  }
  ++summary.chunks;
  summary.snapshots += cols;
  return keep_going;
}

void Assessor::maybe_checkpoint(SnapshotSink& sink, std::size_t chunk_index) {
  const CheckpointPolicy& policy = config_.checkpoint_policy;
  if (policy.every_n == 0 || chunks_processed_ % policy.every_n != 0) return;
  save_assessor_checkpoint_file(policy.path, *this);
  sink.on_checkpoint_written(policy.path, chunk_index);
  // Checkpoint boundaries are the only place lane assignment may move:
  // in between, the assignment is frozen so snapshots stay bitwise
  // independent of wall-clock timings (a checkpoint is already a resume
  // boundary, so a resumed engine rebalancing here matches).
  rebalance_lanes();
}

RunSummary Assessor::run(ChunkSource& source, SnapshotSink& sink) {
  return run_until(&source, sink, StopCondition{});
}

RunSummary Assessor::run_until(ChunkSource& source, SnapshotSink& sink,
                               const StopCondition& stop) {
  return run_until(&source, sink, stop);
}

RunSummary Assessor::run_until(ChunkSource* source, SnapshotSink& sink,
                               const StopCondition& stop) {
  const bool root = comm_ == nullptr || comm_->rank() == 0;
  const IngestMode mode =
      comm_ != nullptr ? config_.ingest_options.mode : IngestMode::Broadcast;
  if (comm_ != nullptr) {
    if (mode == IngestMode::PerRank) {
      // Per-rank ingestion: EVERY rank pulls its own slice from its own
      // source (e.g. a RowSliceSource over this rank's owned_sensor_rows(),
      // or a rank-sharded reader) — rank 0 never sees the peers' bytes.
      IMRDMD_REQUIRE_ARG(source != nullptr,
                         "per-rank ingestion needs a chunk source on every "
                         "rank");
      IMRDMD_REQUIRE_ARG(
          source->sensors() == owned_rows_.size(),
          "per-rank source row count differs from this rank's owned sensor "
          "rows (slice it with owned_sensor_rows())");
    } else {
      IMRDMD_REQUIRE_ARG(root == (source != nullptr),
                         "the chunk source lives on rank 0 only (pass "
                         "nullptr on the other ranks)");
    }
  } else {
    IMRDMD_REQUIRE_ARG(source != nullptr,
                       "run needs a chunk source in the single-process "
                       "topologies");
  }
  if (sensors_ == 0 && source != nullptr) {
    finalize_topology(source->sensors());
  }
  // Fail fast on un-resumable checkpointing: an armed policy over a source
  // that cannot report a position would write checkpoints that can never
  // be seek'd on resume. Before anything is pulled, so nothing is lost.
  if (source != nullptr && config_.checkpoint_policy.every_n > 0 &&
      source->position() == ChunkSource::kUnknownPosition) {
    throw InvalidArgument(
        "checkpoint policy armed over a source that cannot report its "
        "position — the checkpoint could never be resumed; implement "
        "position()/seek() or disarm the policy");
  }

  WallTimer run_timer;
  RunSummary summary;
  const auto budget_hit = [&]() -> std::optional<StopReason> {
    if (stop.max_chunks != 0 && summary.chunks >= stop.max_chunks) {
      return StopReason::MaxChunks;
    }
    if (stop.max_snapshots != 0 && summary.snapshots >= stop.max_snapshots) {
      return StopReason::MaxSnapshots;
    }
    return std::nullopt;
  };

  // Deliver snapshots parked by a previous run whose sink delivery threw:
  // those chunks are folded into the models, so the results (alarms
  // included) cannot be regenerated. They count toward this run's stop
  // budgets, like the legacy drivers' parked-snapshot accounting.
  while (!parked_snapshots_.empty()) {
    if (const auto reason = budget_hit()) {
      summary.reason = *reason;
      sink.on_end(summary);
      return summary;
    }
    AssessmentSnapshot snapshot = std::move(parked_snapshots_.front());
    parked_snapshots_.pop_front();
    const std::size_t cols = snapshot.chunk_snapshots;
    bool keep_going = true;
    try {
      keep_going = sink.on_snapshot(std::move(snapshot));
    } catch (...) {
      // Still undelivered: back to the FRONT so order is preserved.
      parked_snapshots_.push_front(std::move(snapshot));
      throw;
    }
    ++summary.chunks;
    summary.snapshots += cols;
    if (!keep_going) {
      summary.reason = StopReason::SinkRequest;
      sink.on_end(summary);
      return summary;
    }
  }

  // The prefetch pull budget: of the chunks this run may still process,
  // the parked carry chunks are consumed first — only the remainder may be
  // pulled from the source (so a chunk-bounded run never over-consumes
  // it). Budgets the chunk count cannot bound up front (snapshot columns,
  // wall clock, sink stop) instead drain any over-pulled chunks back into
  // the carry queue below.
  std::unique_ptr<ChunkPrefetcher> prefetcher;
  if (source != nullptr && config_.ingest_options.prefetch_depth > 0) {
    std::size_t pull_budget = ~std::size_t{0};
    if (stop.max_chunks != 0) {
      const std::size_t chunk_budget = stop.max_chunks - summary.chunks;
      pull_budget = chunk_budget > carry_chunks_.size()
                        ? chunk_budget - carry_chunks_.size()
                        : 0;
    }
    if (pull_budget > 0) {
      prefetcher = std::make_unique<ChunkPrefetcher>(
          *source, config_.ingest_options.prefetch_depth, pull_budget);
    }
  }
  // No pulled chunk is ever dropped: on every exit path the chunks the
  // prefetcher consumed but the loop never processed are parked, in
  // order, for the next run.
  const auto park_prefetched = [&] {
    if (prefetcher == nullptr) return;
    std::deque<Pulled> leftovers = prefetcher->drain();
    for (Pulled& pulled : leftovers) {
      carry_chunks_.push_back(
          CarriedChunk{pulled.start, std::move(pulled.chunk)});
    }
    prefetcher.reset();
  };
  const auto pull_next = [&]() -> std::optional<CarriedChunk> {
    if (!carry_chunks_.empty()) {
      CarriedChunk carried = std::move(carry_chunks_.front());
      carry_chunks_.pop_front();
      return carried;
    }
    if (prefetcher != nullptr) {
      std::optional<Pulled> pulled = prefetcher->pop();
      if (!pulled.has_value()) return std::nullopt;
      return CarriedChunk{pulled->start, std::move(pulled->chunk)};
    }
    const std::size_t start = source->position();
    std::optional<Mat> chunk = source->next_chunk();
    if (!chunk.has_value()) return std::nullopt;
    return CarriedChunk{start, std::move(*chunk)};
  };

  try {
    while (true) {
      if (const auto reason = budget_hit()) {
        summary.reason = *reason;
        break;
      }
      std::optional<CarriedChunk> current;
      StopReason end_reason = StopReason::EndOfStream;
      if (root) {
        // Only rank 0 evaluates the wall clock; in the distributed
        // topology the verdict travels in the handshake so ranks never
        // disagree on when the stream ends (per-rank mode included —
        // peers that already pulled a chunk park it for the next run).
        if (stop.max_seconds > 0.0 &&
            run_timer.seconds() >= stop.max_seconds) {
          end_reason = StopReason::Deadline;
        } else {
          current = pull_next();
        }
      } else if (mode == IngestMode::PerRank && source != nullptr) {
        current = pull_next();
      }
      if (comm_ != nullptr) {
        // A zero-column chunk must fail like it does everywhere else
        // (process() raises InvalidArgument) — never reach the handshake,
        // where a width of 0 is the end-of-stream sentinel and would
        // silently truncate the rest of the stream on every rank.
        IMRDMD_REQUIRE_ARG(!current.has_value() || current->chunk.cols() > 0,
                           "assessor chunk has no snapshot columns");
      }
      AssessmentSnapshot snapshot;
      if (comm_ == nullptr) {
        if (!current.has_value()) {
          summary.reason = end_reason;
          break;
        }
        check_stream_position(current->start_position,
                              current->chunk.cols());
        snapshot = process(current->chunk);
      } else if (mode == IngestMode::PerRank) {
        // Per-chunk agreement: every rank announces (width, end reason,
        // stream position) of the slice it pulled; widths and known
        // positions must agree or the replica streams have drifted apart
        // and every rank throws StreamDesync together.
        const double my_meta[3] = {
            current.has_value()
                ? static_cast<double>(current->chunk.cols())
                : 0.0,
            static_cast<double>(static_cast<int>(end_reason)),
            current.has_value() ? encode_position(current->start_position)
                                : -1.0};
        const std::vector<std::vector<double>> metas =
            comm_->allgatherv(std::span<const double>(my_meta, 3));
        std::optional<StopReason> ended;
        std::size_t cols = 0;
        std::size_t agreed_start = ChunkSource::kUnknownPosition;
        for (const auto& slot : metas) {
          IMRDMD_REQUIRE_DIMS(slot.size() == 3,
                              "per-rank chunk agreement slot has the wrong "
                              "length");
          const std::size_t slot_cols = static_cast<std::size_t>(slot[0]);
          if (slot_cols == 0) {
            if (!ended.has_value()) {
              ended = static_cast<StopReason>(static_cast<int>(slot[1]));
            }
            continue;
          }
          if (cols != 0 && slot_cols != cols) {
            throw StreamDesync(
                "per-rank replica streams produced chunks of different "
                "widths (" + std::to_string(cols) + " vs " +
                std::to_string(slot_cols) + ")");
          }
          cols = slot_cols;
          const std::size_t slot_start = decode_position(slot[2]);
          if (slot_start == ChunkSource::kUnknownPosition) continue;
          if (agreed_start != ChunkSource::kUnknownPosition &&
              agreed_start != slot_start) {
            throw StreamDesync(
                "per-rank replica streams are at different positions (" +
                std::to_string(agreed_start) + " vs " +
                std::to_string(slot_start) + ")");
          }
          agreed_start = slot_start;
        }
        if (ended.has_value()) {
          // Every rank computed the same (ended, cols) from the shared
          // metas, so on a genuine length mismatch ALL ranks throw
          // together — not just the ones still holding data.
          if (cols != 0 && *ended != StopReason::Deadline) {
            throw StreamDesync(
                "some per-rank replica streams ended while others still "
                "have data — the replicas are not the same stream");
          }
          if (current.has_value()) {
            // Rank 0 hit the deadline after this rank already pulled;
            // park the chunk (front — it is the next one) for the next
            // run so nothing is lost.
            carry_chunks_.push_front(std::move(*current));
          }
          summary.reason = *ended;
          break;
        }
        check_stream_position(agreed_start, cols);
        snapshot = process_chunk_sliced(
            current->chunk,
            stack_.hierarchical() ? assemble_coarse(current->chunk, cols)
                                  : Mat(),
            cols);
      } else {
        // Chunk handshake: rank 0 announces the next chunk's column count
        // (0 = no more chunks, with the reason) and its stream position so
        // peers can size their replica and verify stream continuity before
        // any data moves.
        double meta[3] = {
            root && current.has_value()
                ? static_cast<double>(current->chunk.cols())
                : 0.0,
            static_cast<double>(static_cast<int>(end_reason)),
            root && current.has_value()
                ? encode_position(current->start_position)
                : -1.0};
        comm_->broadcast(std::span<double>(meta, 3), 0);
        if (meta[0] == 0.0) {
          summary.reason = static_cast<StopReason>(static_cast<int>(meta[1]));
          break;
        }
        const std::size_t cols = static_cast<std::size_t>(meta[0]);
        check_stream_position(decode_position(meta[2]), cols);
        if (mode == IngestMode::Scatterv) {
          // Row-sliced delivery: each rank receives only the rows of the
          // groups it owns — O(P x T) total wire bytes per chunk instead
          // of the broadcast's O(P x T x R). The send buffer is packed in
          // rank-block order (per rank, per owned group, per sensor row),
          // and every rank derives the identical counts from the shared
          // ownership map.
          std::vector<std::size_t> counts(
              static_cast<std::size_t>(comm_->size()), 0);
          for (std::size_t r = 0; r < counts.size(); ++r) {
            const auto range =
                rank_group_range(groups_.size(), counts.size(), r);
            for (std::size_t g = range.first; g < range.second; ++g) {
              counts[r] += groups_[g].size() * cols;
            }
          }
          std::vector<double> send;
          if (root) {
            const Mat& chunk = current->chunk;
            IMRDMD_REQUIRE_DIMS(
                chunk.rows() == sensors_,
                "assessor chunk row count differs from the configured "
                "sensors");
            send.reserve(static_cast<std::size_t>(sensors_) * cols);
            for (std::size_t r = 0; r < counts.size(); ++r) {
              const auto range =
                  rank_group_range(groups_.size(), counts.size(), r);
              for (std::size_t g = range.first; g < range.second; ++g) {
                for (std::size_t sensor : groups_[g]) {
                  const double* row = chunk.data() + sensor * cols;
                  send.insert(send.end(), row, row + cols);
                }
              }
            }
          }
          const std::vector<double> mine = comm_->scatterv(
              std::span<const double>(send.data(), send.size()), counts, 0);
          Mat local_rows(owned_rows_.size(), cols);
          if (!mine.empty()) {
            std::copy(mine.begin(), mine.end(), local_rows.data());
          }
          snapshot = process_chunk_sliced(
              local_rows,
              stack_.hierarchical() ? assemble_coarse(local_rows, cols)
                                    : Mat(),
              cols);
        } else {
          if (!root) {
            current = CarriedChunk{ChunkSource::kUnknownPosition,
                                   Mat(sensors_, cols)};
          }
          // Replicate the chunk. A root chunk with the wrong row count
          // makes the buffer sizes disagree, failing on every rank
          // together.
          comm_->broadcast(std::span<double>(current->chunk.data(),
                                             current->chunk.size()),
                           0);
          snapshot = process(current->chunk);
        }
      }
      const std::size_t chunk_index = snapshot.chunk_index;
      const bool keep_going = deliver(sink, std::move(snapshot), summary);
      // Delivery-before-checkpoint: the sink has seen everything a
      // checkpoint written here counts as past. A failed write parks the
      // prefetched chunks like any other failure; the snapshot itself was
      // already delivered, so retrying the run loses nothing.
      maybe_checkpoint(sink, chunk_index);
      if (!keep_going) {
        summary.reason = StopReason::SinkRequest;
        break;
      }
    }
  } catch (...) {
    park_prefetched();
    throw;
  }
  park_prefetched();
  sink.on_end(summary);
  return summary;
}

std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count) {
  IMRDMD_REQUIRE_ARG(count > 0 && count <= sensors,
                     "group count must be in [1, sensors]");
  std::vector<std::vector<std::size_t>> groups(count);
  const std::size_t base = sensors / count;
  const std::size_t extra = sensors % count;
  std::size_t next = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    groups[g].reserve(size);
    for (std::size_t i = 0; i < size; ++i) groups[g].push_back(next++);
  }
  return groups;
}

std::pair<std::size_t, std::size_t> rank_group_range(std::size_t groups,
                                                     std::size_t ranks,
                                                     std::size_t rank) {
  IMRDMD_REQUIRE_ARG(ranks > 0, "rank_group_range needs at least one rank");
  IMRDMD_REQUIRE_ARG(rank < ranks, "rank_group_range rank out of range");
  const std::size_t base = groups / ranks;
  const std::size_t extra = groups % ranks;
  const std::size_t begin = rank * base + std::min(rank, extra);
  return {begin, begin + base + (rank < extra ? 1 : 0)};
}

}  // namespace imrdmd::core
