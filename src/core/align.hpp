// Multifidelity log alignment (paper Q3 / Sec. V).
//
// The case studies overlay three log streams on the rack view: environment
// z-scores, hardware error events, and job placements. This module holds the
// log-agnostic part: given the set of sensors an event source flags (e.g.
// "reported correctable memory errors during the window") and the z-score
// analysis, it quantifies how the two populations relate — the contingency
// table, precision/recall of "thermal anomaly predicts event", and the phi
// coefficient. The paper's case study 1 narrative ("memory-error nodes were
// near-baseline or negative; the hot nodes showed no hardware errors") is
// exactly a low/negative association read off this table.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/zscore.hpp"

namespace imrdmd::core {

struct AlignmentStats {
  /// Contingency counts over all sensors.
  std::size_t flagged_with_event = 0;     // thermal anomaly & event
  std::size_t flagged_without_event = 0;  // thermal anomaly only
  std::size_t event_only = 0;             // event, thermally unremarkable
  std::size_t neither = 0;

  /// Of the thermally flagged sensors, the fraction with events.
  double precision = 0.0;
  /// Of the event sensors, the fraction thermally flagged.
  double recall = 0.0;
  /// Phi (Matthews) coefficient in [-1, 1]; ~0 = independent populations.
  double phi = 0.0;

  std::string to_string() const;
};

/// Computes the association between `flagged` (sensor indices the z-score
/// analysis marks anomalous — pass e.g. Hot + Cold sets) and the sensors
/// named by an event log. `sensor_count` bounds both index sets.
AlignmentStats align_events(std::span<const std::size_t> flagged,
                            std::span<const std::size_t> event_sensors,
                            std::size_t sensor_count);

}  // namespace imrdmd::core
