#include "core/sinks.hpp"

#include <fstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace imrdmd::core {

namespace {

const char* state_name(ThermalState state) {
  switch (state) {
    case ThermalState::Cold: return "cold";
    case ThermalState::NearBaseline: return "near_baseline";
    case ThermalState::Elevated: return "elevated";
    case ThermalState::Hot: return "hot";
  }
  return "unknown";
}

const char* reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::EndOfStream: return "end_of_stream";
    case StopReason::MaxChunks: return "max_chunks";
    case StopReason::MaxSnapshots: return "max_snapshots";
    case StopReason::Deadline: return "deadline";
    case StopReason::SinkRequest: return "sink_request";
  }
  return "unknown";
}

void append_sensor_list(JsonWriter& json, const char* key,
                        const std::vector<std::size_t>& sensors) {
  json.key(key);
  json.begin_array();
  for (std::size_t sensor : sensors) json.value(sensor);
  json.end_array();
}

}  // namespace

JsonlSink::JsonlSink(std::ostream& out, Options options)
    : options_(options), out_(&out) {}

JsonlSink::JsonlSink(const std::string& path, Options options)
    : options_(options),
      owned_(std::make_unique<std::ofstream>(
          path, options.append ? std::ios::binary | std::ios::app
                               : std::ios::binary | std::ios::trunc)),
      out_(owned_.get()),
      path_(path) {
  if (!*out_) throw Error("cannot open jsonl sink for writing: " + path);
}

void JsonlSink::write_line(const std::string& line) {
  out_->write(line.data(), static_cast<std::streamsize>(line.size()));
  out_->put('\n');
  // Per-line flush: a consumer tailing the file (or a post-crash reader)
  // only ever sees whole records.
  out_->flush();
  if (!*out_) {
    throw Error("jsonl sink write failed" +
                (path_.empty() ? std::string() : ": " + path_));
  }
  ++lines_;
}

bool JsonlSink::on_snapshot(const AssessmentSnapshot& snapshot) {
  JsonWriter json;
  json.begin_object();
  json.field("event", "snapshot");
  json.field("chunk_index", snapshot.chunk_index);
  json.field("chunk_snapshots", snapshot.chunk_snapshots);
  json.field("total_snapshots", snapshot.total_snapshots);
  json.field("fit_seconds", snapshot.fit_seconds);
  json.field("baseline_mean", snapshot.zscores.baseline_mean);
  json.field("baseline_stddev", snapshot.zscores.baseline_stddev);
  json.field("baseline_population",
             snapshot.zscores.baseline_sensors.size());
  json.key("census");
  json.begin_object();
  for (const ThermalState state :
       {ThermalState::Cold, ThermalState::NearBaseline,
        ThermalState::Elevated, ThermalState::Hot}) {
    json.field(state_name(state),
               snapshot.zscores.sensors_in_state(state).size());
  }
  json.end_object();
  append_sensor_list(json, "hot_sensors",
                     snapshot.zscores.sensors_in_state(ThermalState::Hot));
  append_sensor_list(json, "cold_sensors",
                     snapshot.zscores.sensors_in_state(ThermalState::Cold));
  if (options_.zscores) {
    json.key("zscores");
    json.begin_array();
    for (double z : snapshot.zscores.zscores) json.value(z);
    json.end_array();
  }
  // Per-level fields exist only on hierarchy-mode snapshots, so flat-mode
  // output stays byte-identical to the pre-hierarchy sink.
  if (!snapshot.coarse_magnitudes.empty()) {
    json.field("coarse_fit_seconds", snapshot.coarse_fit_seconds);
    ZscoreAnalysis coarse = snapshot.zscores;
    coarse.zscores = snapshot.coarse_zscores;
    append_sensor_list(json, "coarse_hot_sensors",
                       coarse.sensors_in_state(ThermalState::Hot));
    if (options_.zscores) {
      json.key("coarse_zscores");
      json.begin_array();
      for (double z : snapshot.coarse_zscores) json.value(z);
      json.end_array();
      json.key("residual_zscores");
      json.begin_array();
      for (double z : snapshot.residual_zscores) json.value(z);
      json.end_array();
    }
  }
  json.end_object();
  write_line(json.str());
  return true;
}

void JsonlSink::on_checkpoint_written(const std::string& path,
                                      std::size_t chunk_index) {
  JsonWriter json;
  json.begin_object();
  json.field("event", "checkpoint");
  json.field("path", path);
  json.field("chunk_index", chunk_index);
  json.end_object();
  write_line(json.str());
}

void JsonlSink::on_end(const RunSummary& summary) {
  JsonWriter json;
  json.begin_object();
  json.field("event", "end");
  json.field("chunks", summary.chunks);
  json.field("snapshots", summary.snapshots);
  json.field("reason", reason_name(summary.reason));
  json.end_object();
  write_line(json.str());
}

}  // namespace imrdmd::core
