// Batch multiresolution DMD (paper Sec. III-A, after Kutz et al. and the
// reference implementation the paper adopts as [45]).
//
// The recursion, expressed as a level-ordered worklist (bins at one level are
// independent and processed in parallel):
//
//   residual <- data
//   bins(level 1) = { [0, T) }
//   for level = 1 .. max_levels:
//     for each bin [lo, hi):                       (parallel)
//       stride = floor(bin / (8 max_cycles))       (4x-Nyquist subsampling)
//       DMD on residual[:, lo:hi:stride] (SVHT-truncated rank)
//       keep modes with frequency <= rho = max_cycles / bin   ("slow")
//       residual[:, lo:hi] -= slow reconstruction over the full bin
//     bins(level+1) = both halves of every bin
//
// Bins shorter than 8 max_cycles snapshots terminate their branch.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mrdmd_node.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

/// Which eigenvalue magnitude defines "slow" (an ablation knob; the paper's
/// reference implementation uses the full |ln lambda| including growth rate,
/// the original mrDMD papers the imaginary part only).
enum class SlowModeCriterion { AbsLog, ImagLog };

struct MrdmdOptions {
  /// Tree depth (paper uses 4-9 depending on the experiment).
  std::size_t max_levels = 6;
  /// Slow-mode cutoff: modes oscillating at most `max_cycles` times across
  /// a bin are "slow" (paper/reference default: 2).
  std::size_t max_cycles = 2;
  /// Truncate each bin's SVD with the optimal hard threshold (do_svht).
  bool use_svht = true;
  /// Extra hard cap on per-bin SVD rank (0 = none).
  std::size_t max_rank = 0;
  /// Snapshot interval in seconds (used for Hz conversions only).
  double dt = 1.0;
  SlowModeCriterion criterion = SlowModeCriterion::AbsLog;
  /// Process the bins of a level in parallel (they touch disjoint columns).
  bool parallel_bins = true;
  /// Amplitude fitting for the retained slow modes (fitted after the slow
  /// selection, on the bin's subsampled snapshots). AllSnapshots is the
  /// noise-robust optimized-amplitude choice of Jovanovic et al. [44];
  /// FirstSnapshot reproduces the classic pinv(Phi) x_0 of the reference
  /// implementation (an ablation bench compares them).
  dmd::AmplitudeFit amplitude_fit = dmd::AmplitudeFit::AllSnapshots;

  /// Snapshots per bin below which a branch terminates (and the subsample
  /// target): 8 * max_cycles.
  std::size_t nyquist_snapshots() const { return 8 * max_cycles; }
};

/// A seed bin of the level recursion: column range [lo, hi) of the residual
/// and the bin's index within `level0`.
struct LevelBin {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t index = 0;
};

/// Runs the level-ordered recursion on `residual` **in place** (the slow
/// reconstructions are subtracted bin by bin; on return `residual` holds
/// what no retained mode explains). Produced nodes carry global snapshot
/// indices offset by `t0` and levels starting at `level0`; `levels` bounds
/// the number of levels processed (bins split in half between levels).
///
/// This is the shared engine of MrdmdTree (t0 = 0, level0 = 1) and of
/// IncrementalMrdmd's new-span sub-fits (t0 = T_prev, level0 = 2).
std::vector<MrdmdNode> fit_levels(Mat& residual, std::size_t t0,
                                  std::size_t level0, std::size_t levels,
                                  const MrdmdOptions& options);

/// As above, but seeded with an explicit worklist of level0 bins instead of
/// the single whole-span bin. Bins must cover disjoint column ranges. This
/// lets a caller with several independent sub-trees (I-mrDMD's descendant
/// refits: the two halves of the shifted timeline) drive every bin of a
/// level through one ThreadPool::parallel_for instead of fitting the
/// sub-trees serially. Nodes are gathered in (level, worklist) order, so the
/// output is deterministic and independent of thread scheduling.
std::vector<MrdmdNode> fit_levels(Mat& residual, std::size_t t0,
                                  std::size_t level0, std::size_t levels,
                                  const MrdmdOptions& options,
                                  std::vector<LevelBin> bins);

/// Convenience owner of a batch mrDMD decomposition.
class MrdmdTree {
 public:
  explicit MrdmdTree(MrdmdOptions options = {});

  /// Decomposes `data` (P sensors x T snapshots).
  void fit(const Mat& data);

  bool fitted() const { return fitted_; }
  std::size_t sensors() const { return sensors_; }
  std::size_t time_steps() const { return time_steps_; }
  const MrdmdOptions& options() const { return options_; }
  const std::vector<MrdmdNode>& nodes() const { return nodes_; }

  /// Number of retained modes across all nodes.
  std::size_t total_modes() const;

  /// Reconstruction over [0, T) (all levels, optional band filter).
  Mat reconstruct(const dmd::ModeBand* band = nullptr) const;

  /// Reconstruction over [t0, t1) restricted to levels [level_min,
  /// level_max] (0 = unbounded).
  Mat reconstruct(std::size_t t0, std::size_t t1,
                  const dmd::ModeBand* band = nullptr,
                  std::size_t level_min = 0, std::size_t level_max = 0) const;

  /// Collective spectrum across every node (Figs. 5/7).
  std::vector<dmd::SpectrumPoint> spectrum() const;

  /// Per-sensor aggregate mode magnitude (input to z-scoring).
  std::vector<double> magnitudes(const dmd::ModeBand* band = nullptr) const;

 private:
  MrdmdOptions options_;
  bool fitted_ = false;
  std::size_t sensors_ = 0;
  std::size_t time_steps_ = 0;
  std::vector<MrdmdNode> nodes_;
};

}  // namespace imrdmd::core
