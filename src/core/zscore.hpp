// Baseline z-score analysis (paper Sec. III-A.2, after Brunton et al. [1]).
//
// The paper's workflow: pick a *baseline* population of sensors by a value
// range ("baselines are chosen so that they lie between 46C and 57C"),
// aggregate each sensor's band-filtered mrDMD mode magnitude, and z-score
// every sensor against the baseline population's magnitude statistics:
//     z_p = (m_p - mean_B) / std_B.
// Interpretation used throughout the case studies: |z| <= 1.5 is "near
// baseline", z > 2 flags overheating, negative z flags idle/stalled nodes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace imrdmd::core {

/// Value-range rule for picking baseline sensors.
struct BaselineRange {
  double value_min = 0.0;
  double value_max = 0.0;
};

struct ZscoreOptions {
  /// |z| below this is "near baseline" (paper: 1.5).
  double near_band = 1.5;
  /// z above this is critically hot (paper: 2).
  double hot_threshold = 2.0;
};

enum class ThermalState {
  Cold,          // z < -near_band: under-utilized / stalled
  NearBaseline,  // |z| <= near_band, or z is non-finite (no evidence)
  Elevated,      // near_band < z <= hot_threshold
  Hot            // z > hot_threshold: overheating risk
};

struct ZscoreAnalysis {
  std::vector<double> zscores;
  std::vector<std::size_t> baseline_sensors;
  double baseline_mean = 0.0;
  double baseline_stddev = 0.0;
  ZscoreOptions options;

  ThermalState state(std::size_t sensor) const;
  std::vector<std::size_t> sensors_in_state(ThermalState state) const;
};

/// Per-sensor mean of a data window (the representative value the range
/// rule filters on).
std::vector<double> row_means(const linalg::Mat& window);

/// Sensors whose representative value lies in [value_min, value_max].
std::vector<std::size_t> select_baseline_sensors(
    std::span<const double> values, const BaselineRange& range);

/// Z-scores `magnitudes` against the statistics of the baseline subset.
/// A degenerate baseline (fewer than two sensors, or zero variance) yields
/// all-zero z-scores with baseline_stddev = 0 — callers can detect and widen
/// the range.
ZscoreAnalysis zscore_from_baseline(std::span<const double> magnitudes,
                                    std::span<const std::size_t> baseline,
                                    const ZscoreOptions& options = {});

/// Two-level z-scoring (multifidelity hierarchy): each level's magnitudes
/// z-scored against the SAME baseline population, plus the per-sensor
/// combination that flags a sensor anomalous at either scale.
struct ReconciledZscores {
  /// Per-sensor combined analysis: for each sensor, the level with the
  /// larger |z| wins (ties and non-finite coarse values fall to the
  /// residual level); baseline_mean/stddev are the residual level's.
  ZscoreAnalysis combined;
  std::vector<double> coarse_zscores;
  std::vector<double> residual_zscores;
};

/// The stateful baseline-selection + z-scoring stage of the assessment
/// pipeline, factored out so the monolithic and sharded Assessor
/// topologies run the *same* global reconciliation over
/// a per-sensor magnitude vector: the baseline population is (re)selected
/// from the chunk's per-sensor means on the first call — and on every call
/// when `reselect_per_chunk` — then every sensor is z-scored against that
/// population's magnitude statistics.
///
/// Replication contract (relied on by the distributed core::Assessor):
/// apply() is a deterministic function of its inputs and the stage state,
/// so N replicas fed identical byte streams hold identical state forever —
/// the distributed fleet keeps one replica per rank and never communicates
/// stage state, only the merged magnitude/mean vectors.
class BaselineZscoreStage {
 public:
  BaselineZscoreStage(const BaselineRange& baseline,
                      const ZscoreOptions& zscore, bool reselect_per_chunk)
      : baseline_(baseline),
        zscore_(zscore),
        reselect_per_chunk_(reselect_per_chunk) {}

  /// One chunk's worth of global z-scoring; `magnitudes` and `sensor_means`
  /// are indexed by sensor (machine order) and must agree in length.
  ZscoreAnalysis apply(std::span<const double> magnitudes,
                       std::span<const double> sensor_means);

  /// Hierarchy reconciliation: selects (or reuses) the baseline population
  /// exactly like apply() — same state transition, so a flat and a
  /// hierarchical stage fed the same means stay interchangeable — then
  /// z-scores the residual-level and coarse-level magnitudes separately
  /// against that one population and combines them per sensor by larger
  /// |z|. A sensor anomalous at either scale is flagged: a facility-wide
  /// coherent drift lives in the coarse z, a single hot node in the
  /// residual z. `sensor_means` must be the RAW chunk means (the value
  /// range rule reads physical temperatures, not residuals).
  ReconciledZscores apply_reconciled(
      std::span<const double> residual_magnitudes,
      std::span<const double> coarse_magnitudes,
      std::span<const double> sensor_means);

  /// Baseline population of the most recent apply().
  const std::vector<std::size_t>& baseline_sensors() const {
    return baseline_sensors_;
  }

  /// Mutable selection state, extracted for checkpoint/resume: the options
  /// (range, thresholds, reselect policy) travel with the pipeline options;
  /// this is everything else a resumed stage needs to continue identically
  /// — in particular the sticky population when !reselect_per_chunk.
  struct State {
    bool selected_once = false;
    std::vector<std::size_t> baseline_sensors;
  };
  State state() const { return {selected_once_, baseline_sensors_}; }
  void restore(State state);

 private:
  BaselineRange baseline_;
  ZscoreOptions zscore_;
  bool reselect_per_chunk_ = true;
  bool selected_once_ = false;
  std::vector<std::size_t> baseline_sensors_;
};

}  // namespace imrdmd::core
