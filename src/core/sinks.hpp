// SnapshotSink implementations for the common consumption patterns of the
// unified Assessor engine (core/assessor.hpp): collect into a vector
// (CollectingSink, declared next to the engine), forward to a callback,
// keep only the latest snapshot in bounded memory, or append one JSON line
// per snapshot to a stream/file for external tooling.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>

#include "core/assessor.hpp"

namespace imrdmd::core {

/// Forwards every delivery to std::function callbacks — the quickest way
/// to write an ad-hoc consumer (examples/fleet_monitor.cpp prints through
/// one). A null snapshot callback accepts everything.
class CallbackSink final : public SnapshotSink {
 public:
  using SnapshotFn = std::function<bool(const AssessmentSnapshot&)>;
  using CheckpointFn = std::function<void(const std::string&, std::size_t)>;
  using EndFn = std::function<void(const RunSummary&)>;

  explicit CallbackSink(SnapshotFn on_snapshot,
                        CheckpointFn on_checkpoint = nullptr,
                        EndFn on_end = nullptr)
      : snapshot_(std::move(on_snapshot)),
        checkpoint_(std::move(on_checkpoint)),
        end_(std::move(on_end)) {}

  using SnapshotSink::on_snapshot;
  bool on_snapshot(const AssessmentSnapshot& snapshot) override {
    return snapshot_ ? snapshot_(snapshot) : true;
  }
  void on_checkpoint_written(const std::string& path,
                             std::size_t chunk_index) override {
    if (checkpoint_) checkpoint_(path, chunk_index);
  }
  void on_end(const RunSummary& summary) override {
    if (end_) end_(summary);
  }

 private:
  SnapshotFn snapshot_;
  CheckpointFn checkpoint_;
  EndFn end_;
};

/// Bounded-memory sink: keeps only the most recent snapshot (plus delivery
/// counters), whatever the stream length — the dashboard/polling pattern
/// the ROADMAP's unbounded streams need. Thread-safe: latest() may be
/// polled from any thread while a run (or an AsyncSink worker) is
/// delivering, which is the serving layer's poll-while-delivering pattern;
/// both sides synchronize on an internal mutex and latest() hands back a
/// copy, never a reference into state the writer may be replacing.
class LatestOnlySink final : public SnapshotSink {
 public:
  using SnapshotSink::on_snapshot;
  bool on_snapshot(const AssessmentSnapshot& snapshot) override {
    std::lock_guard<std::mutex> lock(mutex_);
    latest_ = snapshot;
    ++delivered_;
    return true;
  }
  bool on_snapshot(AssessmentSnapshot&& snapshot) override {
    std::lock_guard<std::mutex> lock(mutex_);
    latest_ = std::move(snapshot);
    ++delivered_;
    return true;
  }

  /// Copy of the most recent snapshot, or nullopt before the first
  /// delivery. A copy-out (not a reference): the delivering thread may
  /// replace the stored snapshot at any moment.
  std::optional<AssessmentSnapshot> latest() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return latest_;
  }
  /// Total snapshots delivered over the sink's lifetime.
  std::size_t delivered() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return delivered_;
  }

 private:
  mutable std::mutex mutex_;
  std::optional<AssessmentSnapshot> latest_;
  std::size_t delivered_ = 0;
};

/// Streams one JSON object per snapshot (JSON Lines) to an ostream or
/// file, flushed per line so a tail -f (or a crash) always sees complete
/// records. Each record carries the chunk/stream counters, the baseline
/// statistics, the thermal census, and the hot/cold sensor lists; set
/// Options::zscores to also embed the full per-sensor z-score vector.
/// Hierarchy-mode snapshots additionally carry the coarse level
/// (coarse_fit_seconds, coarse_hot_sensors, and — with Options::zscores —
/// the coarse/residual z-score vectors); flat-mode output is byte-identical
/// to the pre-hierarchy sink. Checkpoint writes are recorded as
/// {"event":"checkpoint",...} lines.
class JsonlSink final : public SnapshotSink {
 public:
  struct Options {
    /// Emit the full per-sensor z-score vector in every record (off by
    /// default: it is O(P) per line).
    bool zscores = false;
    /// Open the file in append mode instead of truncating. The default is
    /// an explicit truncate — a fresh run replaces the file — but a
    /// service resuming a tenant from a checkpoint must append, or the
    /// restart clobbers the tenant's prior JSONL history.
    bool append = false;
  };

  /// Borrows `out` (must outlive the sink).
  JsonlSink(std::ostream& out, Options options);
  explicit JsonlSink(std::ostream& out) : JsonlSink(out, Options{}) {}
  /// Opens `path` — truncating it unless Options::append is set — and
  /// throws Error when it cannot be opened.
  JsonlSink(const std::string& path, Options options);
  explicit JsonlSink(const std::string& path)
      : JsonlSink(path, Options{}) {}

  using SnapshotSink::on_snapshot;
  bool on_snapshot(const AssessmentSnapshot& snapshot) override;
  void on_checkpoint_written(const std::string& path,
                             std::size_t chunk_index) override;
  void on_end(const RunSummary& summary) override;

  /// Lines written so far (snapshot + checkpoint + end records).
  std::size_t lines_written() const { return lines_; }

 private:
  void write_line(const std::string& line);

  Options options_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  /// Names the destination in errors when writing to a file.
  std::string path_;
  std::size_t lines_ = 0;
};

}  // namespace imrdmd::core
