#include "core/align.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace imrdmd::core {

std::string AlignmentStats::to_string() const {
  std::ostringstream os;
  os.precision(3);
  os << "flagged&event=" << flagged_with_event
     << " flagged-only=" << flagged_without_event
     << " event-only=" << event_only << " neither=" << neither
     << " precision=" << precision << " recall=" << recall << " phi=" << phi;
  return os.str();
}

AlignmentStats align_events(std::span<const std::size_t> flagged,
                            std::span<const std::size_t> event_sensors,
                            std::size_t sensor_count) {
  std::vector<char> is_flagged(sensor_count, 0);
  std::vector<char> has_event(sensor_count, 0);
  for (std::size_t p : flagged) {
    IMRDMD_REQUIRE_DIMS(p < sensor_count, "flagged sensor out of range");
    is_flagged[p] = 1;
  }
  for (std::size_t p : event_sensors) {
    IMRDMD_REQUIRE_DIMS(p < sensor_count, "event sensor out of range");
    has_event[p] = 1;
  }

  AlignmentStats stats;
  for (std::size_t p = 0; p < sensor_count; ++p) {
    if (is_flagged[p] && has_event[p]) ++stats.flagged_with_event;
    else if (is_flagged[p]) ++stats.flagged_without_event;
    else if (has_event[p]) ++stats.event_only;
    else ++stats.neither;
  }
  const double a = static_cast<double>(stats.flagged_with_event);
  const double b = static_cast<double>(stats.flagged_without_event);
  const double c = static_cast<double>(stats.event_only);
  const double d = static_cast<double>(stats.neither);
  if (a + b > 0.0) stats.precision = a / (a + b);
  if (a + c > 0.0) stats.recall = a / (a + c);
  const double denom = std::sqrt((a + b) * (a + c) * (b + d) * (c + d));
  if (denom > 0.0) stats.phi = (a * d - b * c) / denom;
  return stats;
}

}  // namespace imrdmd::core
