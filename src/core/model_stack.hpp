// Two-level multifidelity model composition (paper's multifidelity premise;
// Peherstorfer et al.'s survey, PAPERS.md): a cheap COARSE facility-level
// I-mrDMD over a deterministic subsampled sensor grid captures cross-group
// coherent structure (a building-wide thermal trend) that G independent
// per-group models each see only a sliver of, and the per-group FINE models
// then fit the residual after subtracting the coarse reconstruction.
//
// ModelStack is the composition seam between core/imrdmd (one model) and
// core/assessor (the engine): it owns both levels — the fine models the
// engine's lanes update, and the optional coarse model — plus the coarse
// grid and the interpolation map that carries coarse-level quantities back
// to full sensor width.
//
// Determinism contract (relied on for the engine's lane/rank/depth bitwise
// invariance): the coarse grid is a pure function of (groups, stride) — for
// each group, in group order, every coarse_stride-th sensor of the group's
// list (each group contributes at least its first sensor) — and
// update_coarse is a deterministic function of the chunk bytes and the
// coarse model state, run unsharded on the caller thread. Every rank of a
// distributed engine replicates it on the broadcast chunk, so no new
// collective traffic is needed and the replicas agree bitwise forever.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/imrdmd.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

/// Result of folding one chunk into the coarse level.
struct CoarseUpdate {
  /// Coarse-model partial-fit diagnostics (default on the initial fit).
  PartialFitReport report;
  /// Band-filtered coarse mode magnitudes, interpolated to full sensor
  /// width (machine sensor order).
  std::vector<double> magnitudes;
  /// Wall time of the coarse fit + reconstruction + residual subtraction.
  double fit_seconds = 0.0;
};

/// The composable two-level model stack. Flat (no coarse level) until
/// enable_coarse; the engine then routes every chunk through update_coarse
/// and feeds the residual to the fine models.
class ModelStack {
 public:
  // --- fine (residual) level --------------------------------------------

  /// Appends one fine model; local index = insertion order.
  void add_fine(const ImrdmdOptions& options) {
    fine_.push_back(std::make_unique<IncrementalMrdmd>(options));
  }
  std::size_t fine_count() const { return fine_.size(); }
  IncrementalMrdmd& fine(std::size_t local) { return *fine_[local]; }
  const IncrementalMrdmd& fine(std::size_t local) const {
    return *fine_[local];
  }

  // --- coarse (facility) level ------------------------------------------

  /// Enables the coarse level: every `coarse_stride`-th sensor of each
  /// group joins the coarse grid, and the interpolation map back to the
  /// full `sensors`-wide machine order is precomputed (piecewise linear
  /// along each group's sensor list, clamped at the group's tail — groups
  /// never blend into each other). InvalidArgument when `coarse_stride` is
  /// 0 or the groups do not match `sensors`.
  void enable_coarse(const std::vector<std::vector<std::size_t>>& groups,
                     std::size_t sensors, std::size_t coarse_stride,
                     const ImrdmdOptions& options);

  bool hierarchical() const { return coarse_ != nullptr; }
  /// 0 when flat.
  std::size_t coarse_stride() const { return stride_; }
  /// Machine sensor index of each coarse grid row (coarse row order).
  const std::vector<std::size_t>& coarse_rows() const { return rows_; }
  const IncrementalMrdmd& coarse() const;

  /// Folds `chunk` (full width P x T) into the coarse level: subsamples the
  /// coarse grid rows, fits them (initial fit on the first call),
  /// reconstructs the chunk's own time window, interpolates the
  /// reconstruction back to full width, and writes `chunk - interpolated`
  /// into `residual` (resized to chunk's shape). Returns the interpolated
  /// coarse magnitudes and fit diagnostics. Must run on ONE thread per
  /// engine replica, before the fine updates.
  CoarseUpdate update_coarse(const Mat& chunk, const dmd::ModeBand& band,
                             Mat& residual);

  /// Row-sliced variant for the scatterv/per-rank ingestion modes, where no
  /// replica holds the full chunk: `coarse_chunk` is the pre-assembled
  /// coarse grid rows (coarse row order — byte-identical to what
  /// update_coarse would subsample), `sensors`/`raw_rows` are the machine
  /// indices and raw values of the rows this replica owns, and
  /// `residual_rows` receives their residual. The coarse fit, the
  /// per-sensor residual arithmetic, and the interpolated magnitudes are
  /// the same operations as update_coarse, so a sliced replica stays
  /// bitwise identical to a full-chunk one.
  CoarseUpdate update_coarse_sliced(const Mat& coarse_chunk,
                                    const dmd::ModeBand& band,
                                    const std::vector<std::size_t>& sensors,
                                    const Mat& raw_rows, Mat& residual_rows);

  /// Elastic growth: extends the coarse level for `new_sensors` (machine
  /// indices, appended to one group by the engine) whose raw history is
  /// `new_rows_history` (|new_sensors| x coarse time_steps). The appended
  /// block's coarse rows (every stride-th of the list) are added at the END
  /// of the grid — the grid is no longer the pure coarse_grid(groups,
  /// stride) function afterwards (coarse_grid_canonical() turns false, and
  /// checkpoints must carry the explicit grid) — and the block's
  /// interpolation map is self-contained (existing sensors keep their
  /// frozen map; the block clamps at its own tail, like a group does).
  /// Returns the new sensors' RESIDUAL history against the grown coarse
  /// model — what a fine model extends with. `new_sensor_total` is the
  /// machine sensor count after the growth.
  Mat grow_coarse(const std::vector<std::size_t>& new_sensors,
                  std::size_t new_sensor_total, const Mat& new_rows_history);

  /// True while the grid is still the pure coarse_grid(groups, stride)
  /// function of the engine's partition — i.e. no elastic growth happened.
  /// The IMRDFL1/IMRDFL2 containers re-derive the grid on load, so only a
  /// canonical stack may write them; a grown stack needs IMRDFL3's
  /// explicit grid.
  bool coarse_grid_canonical() const { return canonical_grid_; }

  /// The deterministic coarse grid for (groups, stride): for each group in
  /// order, sensors at positions 0, stride, 2*stride, ... of the group's
  /// list. Pure function — checkpoint loads re-derive it to validate a
  /// restored coarse model against the container's partition.
  static std::vector<std::size_t> coarse_grid(
      const std::vector<std::vector<std::size_t>>& groups,
      std::size_t stride);

 private:
  /// Checkpoint/resume (core/checkpoint.cpp) installs restored models
  /// through this single access point.
  friend struct CheckpointAccess;

  /// Linear interpolation weights of one full-width sensor between two
  /// coarse rows: value = (1 - w) * coarse[lo] + w * coarse[hi].
  struct Interp {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double w = 0.0;
  };

  /// Fits `coarse_chunk` into the coarse model and returns the
  /// reconstruction of the chunk's own window — the shared head of
  /// update_coarse and update_coarse_sliced.
  Mat fit_coarse(const Mat& coarse_chunk, CoarseUpdate& update);
  /// Residual of one sensor's raw row against the interpolated coarse
  /// reconstruction — the shared per-row arithmetic of both variants.
  void subtract_interpolated(std::size_t sensor, const double* raw,
                             const Mat& recon, double* out,
                             std::size_t cols) const;

  std::size_t stride_ = 0;
  std::vector<std::size_t> rows_;
  std::vector<Interp> interp_;
  bool canonical_grid_ = true;
  std::unique_ptr<IncrementalMrdmd> coarse_;
  std::vector<std::unique_ptr<IncrementalMrdmd>> fine_;
};

}  // namespace imrdmd::core
