// Two-level multifidelity model composition (paper's multifidelity premise;
// Peherstorfer et al.'s survey, PAPERS.md): a cheap COARSE facility-level
// I-mrDMD over a deterministic subsampled sensor grid captures cross-group
// coherent structure (a building-wide thermal trend) that G independent
// per-group models each see only a sliver of, and the per-group FINE models
// then fit the residual after subtracting the coarse reconstruction.
//
// ModelStack is the composition seam between core/imrdmd (one model) and
// core/assessor (the engine): it owns both levels — the fine models the
// engine's lanes update, and the optional coarse model — plus the coarse
// grid and the interpolation map that carries coarse-level quantities back
// to full sensor width.
//
// Determinism contract (relied on for the engine's lane/rank/depth bitwise
// invariance): the coarse grid is a pure function of (groups, stride) — for
// each group, in group order, every coarse_stride-th sensor of the group's
// list (each group contributes at least its first sensor) — and
// update_coarse is a deterministic function of the chunk bytes and the
// coarse model state, run unsharded on the caller thread. Every rank of a
// distributed engine replicates it on the broadcast chunk, so no new
// collective traffic is needed and the replicas agree bitwise forever.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/imrdmd.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

/// Result of folding one chunk into the coarse level.
struct CoarseUpdate {
  /// Coarse-model partial-fit diagnostics (default on the initial fit).
  PartialFitReport report;
  /// Band-filtered coarse mode magnitudes, interpolated to full sensor
  /// width (machine sensor order).
  std::vector<double> magnitudes;
  /// Wall time of the coarse fit + reconstruction + residual subtraction.
  double fit_seconds = 0.0;
};

/// The composable two-level model stack. Flat (no coarse level) until
/// enable_coarse; the engine then routes every chunk through update_coarse
/// and feeds the residual to the fine models.
class ModelStack {
 public:
  // --- fine (residual) level --------------------------------------------

  /// Appends one fine model; local index = insertion order.
  void add_fine(const ImrdmdOptions& options) {
    fine_.push_back(std::make_unique<IncrementalMrdmd>(options));
  }
  std::size_t fine_count() const { return fine_.size(); }
  IncrementalMrdmd& fine(std::size_t local) { return *fine_[local]; }
  const IncrementalMrdmd& fine(std::size_t local) const {
    return *fine_[local];
  }

  // --- coarse (facility) level ------------------------------------------

  /// Enables the coarse level: every `coarse_stride`-th sensor of each
  /// group joins the coarse grid, and the interpolation map back to the
  /// full `sensors`-wide machine order is precomputed (piecewise linear
  /// along each group's sensor list, clamped at the group's tail — groups
  /// never blend into each other). InvalidArgument when `coarse_stride` is
  /// 0 or the groups do not match `sensors`.
  void enable_coarse(const std::vector<std::vector<std::size_t>>& groups,
                     std::size_t sensors, std::size_t coarse_stride,
                     const ImrdmdOptions& options);

  bool hierarchical() const { return coarse_ != nullptr; }
  /// 0 when flat.
  std::size_t coarse_stride() const { return stride_; }
  /// Machine sensor index of each coarse grid row (coarse row order).
  const std::vector<std::size_t>& coarse_rows() const { return rows_; }
  const IncrementalMrdmd& coarse() const;

  /// Folds `chunk` (full width P x T) into the coarse level: subsamples the
  /// coarse grid rows, fits them (initial fit on the first call),
  /// reconstructs the chunk's own time window, interpolates the
  /// reconstruction back to full width, and writes `chunk - interpolated`
  /// into `residual` (resized to chunk's shape). Returns the interpolated
  /// coarse magnitudes and fit diagnostics. Must run on ONE thread per
  /// engine replica, before the fine updates.
  CoarseUpdate update_coarse(const Mat& chunk, const dmd::ModeBand& band,
                             Mat& residual);

  /// The deterministic coarse grid for (groups, stride): for each group in
  /// order, sensors at positions 0, stride, 2*stride, ... of the group's
  /// list. Pure function — checkpoint loads re-derive it to validate a
  /// restored coarse model against the container's partition.
  static std::vector<std::size_t> coarse_grid(
      const std::vector<std::vector<std::size_t>>& groups,
      std::size_t stride);

 private:
  /// Checkpoint/resume (core/checkpoint.cpp) installs restored models
  /// through this single access point.
  friend struct CheckpointAccess;

  /// Linear interpolation weights of one full-width sensor between two
  /// coarse rows: value = (1 - w) * coarse[lo] + w * coarse[hi].
  struct Interp {
    std::size_t lo = 0;
    std::size_t hi = 0;
    double w = 0.0;
  };

  std::size_t stride_ = 0;
  std::vector<std::size_t> rows_;
  std::vector<Interp> interp_;
  std::unique_ptr<IncrementalMrdmd> coarse_;
  std::vector<std::unique_ptr<IncrementalMrdmd>> fine_;
};

}  // namespace imrdmd::core
