// Checkpointing of I-mrDMD state.
//
// The paper's deployment story is a long-running online analysis; a crash
// must not force re-ingesting weeks of telemetry. save_checkpoint writes a
// versioned binary image of the model (options, level-1 grid + incremental
// SVD factors, every tree node, optional history); load_checkpoint restores
// a model that continues partial_fit'ing exactly where the original left
// off (round-trip tested to bit-equality of reconstructions).
//
// Format: little-endian, magic "IMRDMD1\n", then length-prefixed sections.
// The format is an implementation detail — only this module reads it.
#pragma once

#include <iosfwd>
#include <string>

#include "core/imrdmd.hpp"

namespace imrdmd::core {

/// Serializes `model` (must be fitted).
void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model);
void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model);

/// Restores a model; throws ParseError on malformed/mismatched input
/// (including truncated streams and corrupted section lengths, which are
/// bounded against the remaining stream size before any allocation). On a
/// non-seekable stream the size is unknown, so sections are instead held to
/// a 1 GiB ceiling — pipe-fed checkpoints larger than that must be staged
/// to a file (load_checkpoint_file has no such limit).
IncrementalMrdmd load_checkpoint(std::istream& in);
IncrementalMrdmd load_checkpoint_file(const std::string& path);

}  // namespace imrdmd::core
