// Checkpointing of I-mrDMD state — single model, and the unified Assessor
// engine.
//
// The paper's deployment story is a long-running online analysis; a crash
// must not force re-ingesting weeks of telemetry. One shared serialization
// codepath, versioned container spellings:
//
//   * save_checkpoint writes a versioned binary image of one model
//     (options, level-1 grid + incremental SVD factors, every tree node,
//     optional history); load_checkpoint restores a model that continues
//     partial_fit'ing exactly where the original left off (round-trip
//     tested to bit-equality of reconstructions).
//   * save_assessor_checkpoint serializes the engine's full resumable
//     state (stage options + baseline selection state + chunk counter +
//     stream position, the group partition, one length-prefixed model
//     section per group). A flat engine writes the "IMRDFL1" container;
//     a hierarchical engine writes "IMRDFL2", which inserts the coarse
//     stride and one coarse-model section between the partition and the
//     per-group sections. In the distributed topology the save is a
//     collective gather to rank 0 that writes the SAME bytes as the
//     single-process save — byte-identical for any lane or rank count.
//   * Loads accept every container generation: "IMRDPL1" (the retired
//     monolithic pipeline writer, still producible via
//     save_legacy_pipeline_checkpoint for coverage) and "IMRDFL1" load as
//     stride-disabled flat stacks; "IMRDFL2" restores the hierarchy.
//
// Formats: little-endian, magic "IMRDMD1\n" / "IMRDPL1\n" / "IMRDFL1\n" /
// "IMRDFL2\n", then length-prefixed sections. Every section is
// bounds-checked against the remaining stream size before it drives an
// allocation (BoundedReader discipline), so truncated or corrupted inputs
// fail with ParseError, never a fantasy-sized allocation. The formats are
// an implementation detail — only this module reads them. File-level
// writes go through write_file_atomic (common/atomic_file.hpp): the
// checkpoint path always holds a complete image, even across a crash
// mid-save.
//
// Cross-loading: a pipeline checkpoint loads as a one-group flat assessor,
// and any flat container resumes into any topology — the monolithic,
// sharded, and distributed topologies share one durable representation.
// The resumed stride always comes from the container (never from the
// IMRDMD_HIERARCHY_STRIDE environment default).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/assessor.hpp"
#include "core/imrdmd.hpp"

namespace imrdmd::core {

/// Serializes `model` (must be fitted).
void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model);
void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model);

/// Restores a model; throws ParseError on malformed/mismatched input
/// (including truncated streams and corrupted section lengths, which are
/// bounded against the remaining stream size before any allocation). On a
/// non-seekable stream the size is unknown, so sections are instead held to
/// a 1 GiB ceiling — pipe-fed checkpoints larger than that must be staged
/// to a file (load_checkpoint_file has no such limit).
IncrementalMrdmd load_checkpoint(std::istream& in);
IncrementalMrdmd load_checkpoint_file(const std::string& path);

// --- Assessor checkpoint/resume -----------------------------------------

/// Runtime knobs for a resumed engine that are deliberately *not* part of
/// the checkpoint: lane count, ingestion policy, pool, and the re-armed
/// periodic-checkpoint policy are free to change across a resume — results
/// are lane/rank/prefetch invariant, so the resumed stream is bitwise
/// identical regardless.
struct AssessorResumeOptions {
  std::size_t lanes = 0;
  IngestOptions ingest;
  ThreadPool* pool = nullptr;
  CheckpointPolicy checkpoint;
};

/// An engine restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming.
struct RestoredAssessor {
  Assessor assessor;
  std::uint64_t stream_position = 0;
};

/// Serializes the engine's full resumable state. Single-process topologies
/// write directly; the distributed topology is a collective (every rank
/// serializes its owned groups' sections across its local lanes and
/// contributes them through one ragged gather; rank 0 assembles in global
/// group order) — use the pointer overload there, with `out` non-null on
/// rank 0 only. The bytes are identical for any lane or rank count. The
/// engine must have processed at least one chunk.
void save_assessor_checkpoint(std::ostream& out, const Assessor& assessor);
void save_assessor_checkpoint(std::ostream* out, const Assessor& assessor);
/// Atomic (write-temp-then-rename) on the writing rank; dispatches on the
/// engine's topology (this is the periodic checkpoint hook's entry point).
void save_assessor_checkpoint_file(const std::string& path,
                                   const Assessor& assessor);

/// Restores a single-process engine mid-stream (the sharded topology, or
/// monolithic when the container holds one identity group). NOT collective.
RestoredAssessor load_assessor_checkpoint(
    std::istream& in, const AssessorResumeOptions& resume = {});
RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, const AssessorResumeOptions& resume = {});

/// Restores a distributed-topology engine. NOT collective (no
/// communication): every rank parses the container independently and keeps
/// only the models of the groups it owns under rank_group_range — a
/// checkpoint written at any rank count (including a single-process or
/// pipeline checkpoint) resumes at any other rank count.
RestoredAssessor load_assessor_checkpoint(
    std::istream& in, dist::Communicator& comm,
    const AssessorResumeOptions& resume = {});
RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, dist::Communicator& comm,
    const AssessorResumeOptions& resume = {});

// --- Legacy container coverage -------------------------------------------

/// Writes the retired monolithic drivers' "IMRDPL1" container over a flat
/// monolithic engine (one identity group, no hierarchy) — kept so the
/// pre-Assessor on-disk generation stays producible for the format-compat
/// round-trip tests; every load path above accepts it. InvalidArgument for
/// a sharded, distributed, hierarchical, or unstarted engine.
void save_legacy_pipeline_checkpoint(std::ostream& out,
                                     const Assessor& assessor);

}  // namespace imrdmd::core
