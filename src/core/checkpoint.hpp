// Checkpointing of I-mrDMD state — single model, pipeline, and fleet.
//
// The paper's deployment story is a long-running online analysis; a crash
// must not force re-ingesting weeks of telemetry. Three containers, one
// shared serialization codepath:
//
//   * save_checkpoint writes a versioned binary image of one model
//     (options, level-1 grid + incremental SVD factors, every tree node,
//     optional history); load_checkpoint restores a model that continues
//     partial_fit'ing exactly where the original left off (round-trip
//     tested to bit-equality of reconstructions).
//   * save_pipeline_checkpoint wraps a model image with the
//     OnlineAssessmentPipeline's stage options, BaselineZscoreStage state,
//     chunk counter, and source stream position, so a monolithic run
//     resumes mid-stream.
//   * save_fleet_checkpoint holds the same stage/counter/position header
//     plus the group partition and one length-prefixed model section per
//     group (serialized in parallel across the fleet's worker lanes,
//     concatenated in deterministic group order), so a sharded
//     FleetAssessment run resumes mid-stream — bitwise identical to the
//     uninterrupted run.
//
// Formats: little-endian, magic "IMRDMD1\n" / "IMRDPL1\n" / "IMRDFL1\n",
// then length-prefixed sections. Every section is bounds-checked against
// the remaining stream size before it drives an allocation (BoundedReader
// discipline), so truncated or corrupted inputs fail with ParseError, never
// a fantasy-sized allocation. The formats are an implementation detail —
// only this module reads them. File-level writes go through
// write_file_atomic (common/atomic_file.hpp): the checkpoint path always
// holds a complete image, even across a crash mid-save.
//
// Cross-loading: a single-group, identity-partition fleet checkpoint loads
// through load_pipeline_checkpoint (and a pipeline checkpoint through
// load_fleet_checkpoint as a one-group fleet) — the monolithic and sharded
// paths share one durable representation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/fleet.hpp"
#include "core/imrdmd.hpp"
#include "core/pipeline.hpp"

namespace imrdmd::core {

/// Serializes `model` (must be fitted).
void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model);
void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model);

/// Restores a model; throws ParseError on malformed/mismatched input
/// (including truncated streams and corrupted section lengths, which are
/// bounded against the remaining stream size before any allocation). On a
/// non-seekable stream the size is unknown, so sections are instead held to
/// a 1 GiB ceiling — pipe-fed checkpoints larger than that must be staged
/// to a file (load_checkpoint_file has no such limit).
IncrementalMrdmd load_checkpoint(std::istream& in);
IncrementalMrdmd load_checkpoint_file(const std::string& path);

// --- Pipeline checkpoint/resume ----------------------------------------

/// A pipeline restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming run().
struct RestoredPipeline {
  OnlineAssessmentPipeline pipeline;
  std::uint64_t stream_position = 0;
};

/// Serializes the pipeline's full resumable state (stage options, baseline
/// selection state, chunk counter, stream position, model image). The
/// pipeline must have processed at least one chunk.
void save_pipeline_checkpoint(std::ostream& out,
                              const OnlineAssessmentPipeline& pipeline);
/// Atomic (write-temp-then-rename): `path` never holds a torn image.
void save_pipeline_checkpoint_file(const std::string& path,
                                   const OnlineAssessmentPipeline& pipeline);

/// Restores a pipeline mid-stream; accepts a pipeline checkpoint or a
/// single-group identity-partition fleet checkpoint (the two paths share
/// one durable representation). ParseError on malformed input, or on a
/// fleet checkpoint whose partition cannot collapse to the monolithic
/// pipeline.
RestoredPipeline load_pipeline_checkpoint(std::istream& in);
RestoredPipeline load_pipeline_checkpoint_file(const std::string& path);

// --- Fleet checkpoint/resume -------------------------------------------

/// Runtime knobs for a resumed fleet that are deliberately *not* part of
/// the checkpoint: lane count, prefetch mode, pool, and the re-armed
/// periodic-checkpoint policy are free to change across a resume — fleet
/// results are shard-count invariant, so the resumed stream is bitwise
/// identical regardless.
struct FleetResumeOptions {
  std::size_t shards = 0;
  bool async_prefetch = true;
  ThreadPool* pool = nullptr;
  FleetCheckpointPolicy checkpoint;
};

/// A fleet restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming run().
struct RestoredFleet {
  FleetAssessment fleet;
  std::uint64_t stream_position = 0;
};

/// Serializes the fleet's full resumable state: stage options + baseline
/// selection state + chunk counter + stream position, the group partition,
/// and one length-prefixed model section per group. Sections are serialized
/// concurrently across the fleet's worker lanes and written in group order,
/// so the bytes are deterministic for any lane count. The fleet must have
/// processed at least one chunk.
void save_fleet_checkpoint(std::ostream& out, const FleetAssessment& fleet);
/// Atomic (write-temp-then-rename): `path` never holds a torn image.
void save_fleet_checkpoint_file(const std::string& path,
                                const FleetAssessment& fleet);

/// Restores a fleet mid-stream; accepts a fleet checkpoint or a pipeline
/// checkpoint (restored as a single-group fleet). Every section is bounded
/// against the remaining stream (ParseError on truncation/corruption).
RestoredFleet load_fleet_checkpoint(std::istream& in,
                                    const FleetResumeOptions& resume = {});
RestoredFleet load_fleet_checkpoint_file(const std::string& path,
                                         const FleetResumeOptions& resume = {});

// --- Distributed fleet checkpoint/resume --------------------------------

/// A distributed fleet restored from a checkpoint plus the stream position
/// to hand to the root's ChunkSource::seek before resuming run().
struct RestoredDistributedFleet {
  DistributedFleetAssessment fleet;
  std::uint64_t stream_position = 0;
};

/// Collective: every rank serializes its owned groups' model sections
/// across its local lanes and contributes them through one ragged gather;
/// rank 0 assembles the sections in deterministic global group order and
/// writes the SAME `IMRDFL1` container a single-process FleetAssessment
/// would write from the same state — byte-identical for any rank count, so
/// the three load paths (fleet, pipeline, distributed) all accept it.
/// `out` must be non-null on rank 0 and null on every other rank.
void save_distributed_fleet_checkpoint(std::ostream* out,
                                       const DistributedFleetAssessment& fleet);
/// Collective; rank 0 writes atomically (write-temp-then-rename). A write
/// failure surfaces on rank 0 (the peers have already contributed and
/// return normally); inside run()'s periodic hook the world's poison then
/// unwinds the peers with CollectiveAborted.
void save_distributed_fleet_checkpoint_file(
    const std::string& path, const DistributedFleetAssessment& fleet);

/// NOT collective (no communication): every rank parses the container
/// independently and keeps only the models of the groups it owns under
/// rank_group_range — a checkpoint written at any rank count (including a
/// single-process fleet or pipeline checkpoint) resumes at any other rank
/// count. ParseError on truncation/corruption, like load_fleet_checkpoint.
RestoredDistributedFleet load_distributed_fleet_checkpoint(
    std::istream& in, dist::Communicator& comm,
    const FleetResumeOptions& resume = {});
RestoredDistributedFleet load_distributed_fleet_checkpoint_file(
    const std::string& path, dist::Communicator& comm,
    const FleetResumeOptions& resume = {});

}  // namespace imrdmd::core
