// Checkpointing of I-mrDMD state — single model, and the unified Assessor
// engine (with legacy pipeline/fleet wrappers).
//
// The paper's deployment story is a long-running online analysis; a crash
// must not force re-ingesting weeks of telemetry. One shared serialization
// codepath, three container spellings:
//
//   * save_checkpoint writes a versioned binary image of one model
//     (options, level-1 grid + incremental SVD factors, every tree node,
//     optional history); load_checkpoint restores a model that continues
//     partial_fit'ing exactly where the original left off (round-trip
//     tested to bit-equality of reconstructions).
//   * save_assessor_checkpoint serializes the engine's full resumable
//     state (stage options + baseline selection state + chunk counter +
//     stream position, the group partition, one length-prefixed model
//     section per group). In the distributed topology the save is a
//     collective gather to rank 0 that writes the SAME bytes as the
//     single-process save — byte-identical for any lane or rank count.
//   * save_pipeline_checkpoint / save_fleet_checkpoint keep the legacy
//     container spellings ("IMRDPL1" / "IMRDFL1") over the same engine
//     state, so checkpoints written before the Assessor unification load
//     byte-compatibly (and resaves reproduce them byte-for-byte).
//
// Formats: little-endian, magic "IMRDMD1\n" / "IMRDPL1\n" / "IMRDFL1\n",
// then length-prefixed sections. Every section is bounds-checked against
// the remaining stream size before it drives an allocation (BoundedReader
// discipline), so truncated or corrupted inputs fail with ParseError, never
// a fantasy-sized allocation. The formats are an implementation detail —
// only this module reads them. File-level writes go through
// write_file_atomic (common/atomic_file.hpp): the checkpoint path always
// holds a complete image, even across a crash mid-save.
//
// Cross-loading: every load path accepts either container (a single-group,
// identity-partition fleet checkpoint loads through
// load_pipeline_checkpoint, a pipeline checkpoint loads as a one-group
// fleet/assessor) — the monolithic, sharded, and distributed topologies
// share one durable representation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/assessor.hpp"
#include "core/fleet.hpp"
#include "core/imrdmd.hpp"
#include "core/pipeline.hpp"

namespace imrdmd::core {

/// Serializes `model` (must be fitted).
void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model);
void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model);

/// Restores a model; throws ParseError on malformed/mismatched input
/// (including truncated streams and corrupted section lengths, which are
/// bounded against the remaining stream size before any allocation). On a
/// non-seekable stream the size is unknown, so sections are instead held to
/// a 1 GiB ceiling — pipe-fed checkpoints larger than that must be staged
/// to a file (load_checkpoint_file has no such limit).
IncrementalMrdmd load_checkpoint(std::istream& in);
IncrementalMrdmd load_checkpoint_file(const std::string& path);

// --- Assessor checkpoint/resume -----------------------------------------

/// Runtime knobs for a resumed engine that are deliberately *not* part of
/// the checkpoint: lane count, ingestion policy, pool, and the re-armed
/// periodic-checkpoint policy are free to change across a resume — results
/// are lane/rank/prefetch invariant, so the resumed stream is bitwise
/// identical regardless.
struct AssessorResumeOptions {
  std::size_t lanes = 0;
  IngestOptions ingest;
  ThreadPool* pool = nullptr;
  CheckpointPolicy checkpoint;
};

/// An engine restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming.
struct RestoredAssessor {
  Assessor assessor;
  std::uint64_t stream_position = 0;
};

/// Serializes the engine's full resumable state. Single-process topologies
/// write directly; the distributed topology is a collective (every rank
/// serializes its owned groups' sections across its local lanes and
/// contributes them through one ragged gather; rank 0 assembles in global
/// group order) — use the pointer overload there, with `out` non-null on
/// rank 0 only. The bytes are identical for any lane or rank count. The
/// engine must have processed at least one chunk.
void save_assessor_checkpoint(std::ostream& out, const Assessor& assessor);
void save_assessor_checkpoint(std::ostream* out, const Assessor& assessor);
/// Atomic (write-temp-then-rename) on the writing rank; dispatches on the
/// engine's topology (this is the periodic checkpoint hook's entry point).
void save_assessor_checkpoint_file(const std::string& path,
                                   const Assessor& assessor);

/// Restores a single-process engine mid-stream (the sharded topology, or
/// monolithic when the container holds one identity group). NOT collective.
RestoredAssessor load_assessor_checkpoint(
    std::istream& in, const AssessorResumeOptions& resume = {});
RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, const AssessorResumeOptions& resume = {});

/// Restores a distributed-topology engine. NOT collective (no
/// communication): every rank parses the container independently and keeps
/// only the models of the groups it owns under rank_group_range — a
/// checkpoint written at any rank count (including a single-process or
/// pipeline checkpoint) resumes at any other rank count.
RestoredAssessor load_assessor_checkpoint(
    std::istream& in, dist::Communicator& comm,
    const AssessorResumeOptions& resume = {});
RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, dist::Communicator& comm,
    const AssessorResumeOptions& resume = {});

// --- Pipeline checkpoint/resume (legacy wrappers) ------------------------

/// A pipeline restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming run().
struct RestoredPipeline {
  OnlineAssessmentPipeline pipeline;
  std::uint64_t stream_position = 0;
};

/// Serializes the pipeline's full resumable state (stage options, baseline
/// selection state, chunk counter, stream position, model image). The
/// pipeline must have processed at least one chunk.
void save_pipeline_checkpoint(std::ostream& out,
                              const OnlineAssessmentPipeline& pipeline);
/// Atomic (write-temp-then-rename): `path` never holds a torn image.
void save_pipeline_checkpoint_file(const std::string& path,
                                   const OnlineAssessmentPipeline& pipeline);

/// Restores a pipeline mid-stream; accepts a pipeline checkpoint or a
/// single-group identity-partition fleet checkpoint (the two paths share
/// one durable representation). ParseError on malformed input, or on a
/// fleet checkpoint whose partition cannot collapse to the monolithic
/// pipeline.
RestoredPipeline load_pipeline_checkpoint(std::istream& in);
RestoredPipeline load_pipeline_checkpoint_file(const std::string& path);

// --- Fleet checkpoint/resume (legacy wrappers) ---------------------------

/// Legacy spelling of AssessorResumeOptions (shards = lanes, async_prefetch
/// = prefetch depth 1 vs 0).
struct FleetResumeOptions {
  std::size_t shards = 0;
  bool async_prefetch = true;
  ThreadPool* pool = nullptr;
  FleetCheckpointPolicy checkpoint;
};

/// A fleet restored from a checkpoint plus the stream position (total
/// snapshots ingested) to hand to ChunkSource::seek before resuming run().
struct RestoredFleet {
  FleetAssessment fleet;
  std::uint64_t stream_position = 0;
};

/// Legacy wrappers over save_assessor_checkpoint / load_assessor_checkpoint
/// for the FleetAssessment shim; bytes and acceptance are identical.
void save_fleet_checkpoint(std::ostream& out, const FleetAssessment& fleet);
void save_fleet_checkpoint_file(const std::string& path,
                                const FleetAssessment& fleet);
RestoredFleet load_fleet_checkpoint(std::istream& in,
                                    const FleetResumeOptions& resume = {});
RestoredFleet load_fleet_checkpoint_file(const std::string& path,
                                         const FleetResumeOptions& resume = {});

// --- Distributed fleet checkpoint/resume (legacy wrappers) ---------------

/// A distributed fleet restored from a checkpoint plus the stream position
/// to hand to the root's ChunkSource::seek before resuming run().
struct RestoredDistributedFleet {
  DistributedFleetAssessment fleet;
  std::uint64_t stream_position = 0;
};

/// Collective: see the distributed notes on save_assessor_checkpoint.
/// `out` must be non-null on rank 0 and null on every other rank.
void save_distributed_fleet_checkpoint(std::ostream* out,
                                       const DistributedFleetAssessment& fleet);
/// Collective; rank 0 writes atomically (write-temp-then-rename). A write
/// failure surfaces on rank 0 (the peers have already contributed and
/// return normally); inside run()'s periodic hook the world's poison then
/// unwinds the peers with CollectiveAborted.
void save_distributed_fleet_checkpoint_file(
    const std::string& path, const DistributedFleetAssessment& fleet);

/// NOT collective: see load_assessor_checkpoint's distributed overload.
RestoredDistributedFleet load_distributed_fleet_checkpoint(
    std::istream& in, dist::Communicator& comm,
    const FleetResumeOptions& resume = {});
RestoredDistributedFleet load_distributed_fleet_checkpoint_file(
    const std::string& path, dist::Communicator& comm,
    const FleetResumeOptions& resume = {});

}  // namespace imrdmd::core
