#include "core/imrdmd.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/thread_pool.hpp"
#include "dmd/dmd.hpp"
#include "linalg/blas.hpp"

namespace imrdmd::core {

namespace {

constexpr double kTwoPi = 6.283185307179586476925287;

// Batch-refits the descendant levels (>= 2) of a tree whose root is given:
// subtract the root's reconstruction from `data`, split the timeline in
// half, and run the level recursion on both halves (the batch tree layout).
//
// The two halves are independent sub-trees; seeding one worklist with both
// half-bins lets fit_levels drive every bin of a level — across both
// sub-trees — through a single ThreadPool::parallel_for on the shared
// residual, instead of fitting the halves serially on copied blocks.
// Node order and bin indices match the natural level-ordered recursion.
std::vector<MrdmdNode> fit_descendants(const Mat& data, const MrdmdNode& root,
                                       const MrdmdOptions& options) {
  std::vector<MrdmdNode> nodes;
  if (options.max_levels <= 1) return nodes;
  const std::size_t sensors = data.rows();
  const std::size_t steps = data.cols();
  Mat residual = data;
  {
    Mat window(sensors, steps);
    accumulate_node(root, options.dt, nullptr, window, 0);
    residual -= window;
  }
  const std::size_t mid = steps / 2;
  std::vector<LevelBin> halves;
  if (mid > 0) halves.push_back({0, mid, 0});
  if (steps > mid) halves.push_back({mid, steps, 1});
  return fit_levels(residual, 0, 2, options.max_levels - 1, options,
                    std::move(halves));
}

}  // namespace

IncrementalMrdmd::IncrementalMrdmd(ImrdmdOptions options)
    : options_(options), isvd_(options.isvd) {
  // Recomputation refits levels >= 2 from raw data, so history is implied.
  if (options_.recompute_on_drift) options_.keep_history = true;
}

void IncrementalMrdmd::initial_fit(const Mat& data) {
  IMRDMD_REQUIRE_ARG(!fitted_, "initial_fit called twice");
  const std::size_t nyq = options_.mrdmd.nyquist_snapshots();
  IMRDMD_REQUIRE_DIMS(data.cols() >= nyq,
                      "initial_fit needs at least 8*max_cycles snapshots");
  sensors_ = data.rows();
  time_steps_ = data.cols();
  stride1_ = data.cols() / nyq;

  // Level-1 subsample grid and its incrementally maintained SVD.
  const std::size_t k = (data.cols() + stride1_ - 1) / stride1_;
  grid_ = Mat(sensors_, k);
  for (std::size_t r = 0; r < sensors_; ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      grid_(r, j) = data(r, j * stride1_);
    }
  }
  isvd_.initialize(grid_.block(0, 0, sensors_, k - 1));  // X = grid[:, :-1]

  nodes_.clear();
  nodes_.emplace_back();  // root placeholder; refresh_root fills it
  refresh_root();

  // Deeper levels: batch recursion on the residual after the root (level 2
  // starts from the halves of [0, T), matching the batch tree).
  auto descendants = fit_descendants(data, nodes_[0], options_.mrdmd);
  nodes_.insert(nodes_.end(), std::make_move_iterator(descendants.begin()),
                std::make_move_iterator(descendants.end()));

  cached_grid_recon_ = root_grid_reconstruction(grid_.cols());
  if (options_.keep_history) history_ = data;
  fitted_ = true;
}

PartialFitReport IncrementalMrdmd::partial_fit(const Mat& new_cols) {
  IMRDMD_REQUIRE_ARG(fitted_, "partial_fit before initial_fit");
  IMRDMD_REQUIRE_DIMS(new_cols.rows() == sensors_,
                      "partial_fit sensor count mismatch");
  PartialFitReport report;
  report.new_snapshots = new_cols.cols();
  if (new_cols.cols() == 0) {
    report.total_snapshots = time_steps_;
    return report;
  }
  const std::size_t t_prev = time_steps_;
  const std::size_t t_new = t_prev + new_cols.cols();
  const std::size_t k_old = grid_.cols();

  // 1. Extend the level-1 grid with the fixed initial stride. Every multiple
  // of stride1_ below t_prev is already gridded, so new grid snapshots index
  // into new_cols.
  std::vector<std::size_t> fresh;
  for (std::size_t g = k_old * stride1_; g < t_new; g += stride1_) {
    fresh.push_back(g);
  }
  if (!fresh.empty()) {
    Mat extended(sensors_, k_old + fresh.size());
    extended.set_block(0, 0, grid_);
    for (std::size_t j = 0; j < fresh.size(); ++j) {
      IMRDMD_REQUIRE_DIMS(fresh[j] >= t_prev, "grid invariant violated");
      for (std::size_t r = 0; r < sensors_; ++r) {
        extended(r, k_old + j) = new_cols(r, fresh[j] - t_prev);
      }
    }
    grid_ = std::move(extended);
  }
  const std::size_t k_new = grid_.cols();

  // 2. Incremental SVD update with the new X columns (X = grid[:, :-1], so
  // columns k_old-1 .. k_new-2 are new to X).
  if (k_new > k_old) {
    const std::size_t first_new_x = k_old - 1;
    const std::size_t new_x_cols = (k_new - 1) - first_new_x;
    if (new_x_cols > 0) {
      isvd_.update(grid_.block(0, first_new_x, sensors_, new_x_cols));
      report.new_grid_columns = new_x_cols;
    }
  }

  // 3. Drift statistic: the root's slow field before vs after the update,
  // compared at the old grid points.
  time_steps_ = t_new;  // refresh_root uses the new span for rho
  refresh_root();
  const Mat new_grid_recon = root_grid_reconstruction(k_new);
  {
    const Mat old_slice = cached_grid_recon_;
    const Mat new_slice = new_grid_recon.block(0, 0, sensors_, k_old);
    report.drift_grid = linalg::frobenius_diff(new_slice, old_slice);
    report.drift_estimate =
        report.drift_grid * std::sqrt(static_cast<double>(stride1_));
  }
  cached_grid_recon_ = new_grid_recon;
  report.drift_exceeded = report.drift_estimate > options_.drift_threshold;

  // 4. Level shift (Algo 1 lines 7-9): the old descendants drop one level.
  for (std::size_t i = 1; i < nodes_.size(); ++i) nodes_[i].level += 1;

  // 5. Fresh sub-fit of the new span on the residual after the new root.
  {
    Mat residual = new_cols;
    Mat window(sensors_, new_cols.cols());
    accumulate_node(nodes_[0], options_.mrdmd.dt, nullptr, window, t_prev);
    residual -= window;
    if (options_.mrdmd.max_levels > 1) {
      auto fresh_nodes = fit_levels(residual, t_prev, 2,
                                    options_.mrdmd.max_levels - 1,
                                    options_.mrdmd);
      report.new_nodes = fresh_nodes.size();
      nodes_.insert(nodes_.end(),
                    std::make_move_iterator(fresh_nodes.begin()),
                    std::make_move_iterator(fresh_nodes.end()));
    }
  }

  if (options_.keep_history) {
    Mat extended(sensors_, t_new);
    extended.set_block(0, 0, history_);
    extended.set_block(0, t_prev, new_cols);
    history_ = std::move(extended);
  }

  // 6. Optional stale-level recomputation (the paper's deferred step).
  if (report.drift_exceeded && options_.recompute_on_drift) {
    IMRDMD_REQUIRE_ARG(!history_.empty(),
                       "recompute_on_drift requires keep_history");
    IMRDMD_INFO << "I-mrDMD drift " << report.drift_estimate
                << " exceeded threshold; refitting levels >= 2";
    replace_descendants(fit_descendants(history_, nodes_[0], options_.mrdmd));
    report.recomputed = true;
  }

  report.total_snapshots = time_steps_;
  return report;
}

std::future<std::vector<MrdmdNode>> IncrementalMrdmd::recompute_stale_async()
    const {
  IMRDMD_REQUIRE_ARG(fitted_, "recompute_stale_async before initial_fit");
  IMRDMD_REQUIRE_ARG(!history_.empty(),
                     "recompute_stale_async requires keep_history");
  // Snapshot the inputs; the background task must not touch *this.
  auto history = std::make_shared<Mat>(history_);
  auto root = std::make_shared<MrdmdNode>(nodes_[0]);
  MrdmdOptions options = options_.mrdmd;
  // The task runs on a pool worker; letting it fan bins back out onto the
  // same pool would have a worker blocking on its own queue.
  options.parallel_bins = false;

  auto promise = std::make_shared<std::promise<std::vector<MrdmdNode>>>();
  std::future<std::vector<MrdmdNode>> future = promise->get_future();
  global_pool().submit([history, root, options, promise] {
    try {
      promise->set_value(fit_descendants(*history, *root, options));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  });
  return future;
}

void IncrementalMrdmd::replace_descendants(std::vector<MrdmdNode> descendants) {
  IMRDMD_REQUIRE_ARG(fitted_, "replace_descendants before initial_fit");
  for (const MrdmdNode& node : descendants) {
    IMRDMD_REQUIRE_ARG(node.level >= 2, "descendants must have level >= 2");
    IMRDMD_REQUIRE_DIMS(node.mode_count() == 0 ||
                            node.modes.rows() == sensors_,
                        "descendant sensor count mismatch");
  }
  MrdmdNode root = std::move(nodes_[0]);
  nodes_.clear();
  nodes_.push_back(std::move(root));
  nodes_.insert(nodes_.end(), std::make_move_iterator(descendants.begin()),
                std::make_move_iterator(descendants.end()));
}

void IncrementalMrdmd::add_sensors(const Mat& new_rows_history) {
  IMRDMD_REQUIRE_ARG(fitted_, "add_sensors before initial_fit");
  IMRDMD_REQUIRE_ARG(options_.keep_history,
                     "add_sensors requires keep_history (descendant levels "
                     "are refit from history)");
  IMRDMD_REQUIRE_DIMS(new_rows_history.cols() == time_steps_,
                      "add_sensors history must cover all time steps");
  const std::size_t w = new_rows_history.rows();
  if (w == 0) return;

  // Extend the raw history and the level-1 grid.
  Mat history(sensors_ + w, time_steps_);
  history.set_block(0, 0, history_);
  history.set_block(sensors_, 0, new_rows_history);
  history_ = std::move(history);

  const std::size_t k = grid_.cols();
  Mat grid(sensors_ + w, k);
  grid.set_block(0, 0, grid_);
  for (std::size_t r = 0; r < w; ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      grid(sensors_ + r, j) = new_rows_history(r, j * stride1_);
    }
  }
  grid_ = std::move(grid);

  // Incremental row update of the level-1 SVD (X = grid[:, :-1]).
  isvd_.add_rows(grid_.block(sensors_, 0, w, k - 1));
  sensors_ += w;

  // Refresh the root from the extended factors, then refit descendants.
  refresh_root();
  cached_grid_recon_ = root_grid_reconstruction(k);
  replace_descendants(fit_descendants(history_, nodes_[0], options_.mrdmd));
}

void IncrementalMrdmd::refresh_root() {
  const std::size_t k = grid_.cols();
  const Mat y = grid_.block(0, 1, sensors_, k - 1);

  dmd::DmdOptions dmd_options;
  dmd_options.use_svht = options_.mrdmd.use_svht;
  dmd_options.max_rank = options_.mrdmd.max_rank;
  dmd_options.amplitude_fit = options_.mrdmd.amplitude_fit;
  // The iSVD's V spans the X columns seen so far; it must match Y's width.
  IMRDMD_REQUIRE_DIMS(isvd_.v().rows() == k - 1,
                      "iSVD state out of sync with the level-1 grid");
  const dmd::DmdResult fit = dmd::dmd_from_svd(
      isvd_.u(), isvd_.s(), isvd_.v(), y, grid_,
      options_.mrdmd.dt * static_cast<double>(stride1_), dmd_options);

  MrdmdNode& root = nodes_[0];
  root.level = 1;
  root.bin_index = 0;
  root.t_begin = 0;
  root.t_end = time_steps_;
  root.stride = stride1_;
  root.rho = static_cast<double>(options_.mrdmd.max_cycles) /
             static_cast<double>(time_steps_);
  root.svd_rank = fit.svd_rank;

  std::vector<std::size_t> slow;
  for (std::size_t i = 0; i < fit.mode_count(); ++i) {
    const Complex log_lambda = std::log(fit.eigenvalues[i]);
    const double magnitude =
        options_.mrdmd.criterion == SlowModeCriterion::AbsLog
            ? std::abs(log_lambda)
            : std::abs(log_lambda.imag());
    const double cycles_per_snapshot =
        magnitude / (kTwoPi * static_cast<double>(stride1_));
    if (cycles_per_snapshot <= root.rho) slow.push_back(i);
  }
  root.modes = CMat(sensors_, slow.size());
  root.eigenvalues.assign(slow.size(), Complex{});
  for (std::size_t j = 0; j < slow.size(); ++j) {
    for (std::size_t r = 0; r < sensors_; ++r) {
      root.modes(r, j) = fit.modes(r, slow[j]);
    }
    root.eigenvalues[j] = fit.eigenvalues[slow[j]];
  }
  // Slow-only amplitude re-fit over the whole grid (see MrdmdOptions).
  root.amplitudes = dmd::fit_amplitudes(root.modes, root.eigenvalues, grid_,
                                        options_.mrdmd.amplitude_fit);
}

Mat IncrementalMrdmd::root_grid_reconstruction(std::size_t count) const {
  const MrdmdNode& root = nodes_[0];
  Mat out(sensors_, count);
  const std::size_t m = root.mode_count();
  if (m == 0) return out;
  // Grid column j sits at snapshot j*stride1, i.e. lambda^j exactly.
  CMat dyn(m, count);
  for (std::size_t i = 0; i < m; ++i) {
    const Complex log_lambda = std::log(root.eigenvalues[i]);
    for (std::size_t j = 0; j < count; ++j) {
      dyn(i, j) =
          root.amplitudes[i] * std::exp(log_lambda * static_cast<double>(j));
    }
  }
  Mat re_phi(sensors_, m), im_phi(sensors_, m);
  for (std::size_t r = 0; r < sensors_; ++r) {
    for (std::size_t i = 0; i < m; ++i) {
      re_phi(r, i) = root.modes(r, i).real();
      im_phi(r, i) = root.modes(r, i).imag();
    }
  }
  Mat re_dyn(m, count), im_dyn(m, count);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < count; ++j) {
      re_dyn(i, j) = dyn(i, j).real();
      im_dyn(i, j) = dyn(i, j).imag();
    }
  }
  out = linalg::matmul(re_phi, re_dyn);
  out -= linalg::matmul(im_phi, im_dyn);
  return out;
}

const MrdmdNode& IncrementalMrdmd::root() const {
  IMRDMD_REQUIRE_ARG(fitted_, "root() before initial_fit");
  return nodes_[0];
}

std::size_t IncrementalMrdmd::total_modes() const {
  std::size_t count = 0;
  for (const auto& node : nodes_) count += node.mode_count();
  return count;
}

Mat IncrementalMrdmd::reconstruct(const dmd::ModeBand* band) const {
  return reconstruct(0, time_steps_, band);
}

Mat IncrementalMrdmd::reconstruct(std::size_t t0, std::size_t t1,
                                  const dmd::ModeBand* band,
                                  std::size_t level_min,
                                  std::size_t level_max) const {
  IMRDMD_REQUIRE_ARG(fitted_, "reconstruct before initial_fit");
  return reconstruct_nodes(nodes_, sensors_, t0, t1, options_.mrdmd.dt, band,
                           level_min, level_max);
}

std::vector<dmd::SpectrumPoint> IncrementalMrdmd::spectrum() const {
  std::vector<dmd::SpectrumPoint> points;
  for (const auto& node : nodes_) {
    const auto node_points = node.spectrum(options_.mrdmd.dt);
    points.insert(points.end(), node_points.begin(), node_points.end());
  }
  return points;
}

std::vector<double> IncrementalMrdmd::magnitudes(
    const dmd::ModeBand* band) const {
  IMRDMD_REQUIRE_ARG(fitted_, "magnitudes before initial_fit");
  return mode_magnitudes(nodes_, sensors_, options_.mrdmd.dt, band);
}

}  // namespace imrdmd::core
