#include "core/fleet.hpp"

#include <utility>

#include "common/error.hpp"

namespace imrdmd::core {

namespace {

AssessorConfig fleet_config(FleetOptions options, std::size_t sensors,
                            dist::Communicator* comm) {
  IMRDMD_REQUIRE_ARG(sensors > 0, "fleet needs at least one sensor");
  AssessorConfig config;
  config.pipeline(std::move(options.pipeline))
      .sharded(std::move(options.groups), options.shards)
      .sensors(sensors)
      .checkpoint(std::move(options.checkpoint))
      .pool(options.pool);
  config.ingest_options.prefetch_depth = options.async_prefetch ? 1 : 0;
  if (comm != nullptr) config.distributed(*comm);
  return config;
}

}  // namespace

FleetAssessment::FleetAssessment(FleetOptions options, std::size_t sensors)
    : engine_(fleet_config(std::move(options), sensors, nullptr)) {}

std::vector<FleetSnapshot> FleetAssessment::run(ChunkSource& source,
                                                std::size_t max_chunks) {
  return run_collecting(engine_, carry_, &source, max_chunks);
}

DistributedFleetAssessment::DistributedFleetAssessment(
    dist::Communicator& comm, FleetOptions options, std::size_t sensors)
    : engine_(fleet_config(std::move(options), sensors, &comm)) {}

std::vector<FleetSnapshot> DistributedFleetAssessment::run(
    ChunkSource* source, std::size_t max_chunks) {
  // A rank whose parked snapshots alone satisfy max_chunks performs no
  // collective this call; a peer that parked fewer proceeds into the
  // engine loop and simply pairs with this rank's NEXT run() — per-rank
  // delivered streams stay identical and in order, only the per-call
  // grouping shifts.
  return run_collecting(engine_, carry_, source, max_chunks);
}

}  // namespace imrdmd::core
