#include "core/fleet.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"

namespace imrdmd::core {

namespace {

/// Gathers the rows listed in `group` out of `chunk` (group order).
Mat gather_rows(const Mat& chunk, const std::vector<std::size_t>& group) {
  Mat out(group.size(), chunk.cols());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const double* src = chunk.data() + group[i] * chunk.cols();
    std::copy(src, src + chunk.cols(), out.data() + i * chunk.cols());
  }
  return out;
}

/// Runs source.next_chunk() on a dedicated thread, so ingestion overlaps
/// compute. Deliberately NOT a pool task: sources are free to use
/// parallel_for themselves (SensorModel::window does), and a pool task that
/// fans back out onto its own pool would block a worker on work only that
/// worker can run. At most one prefetch is in flight per source; the caller
/// must not touch the source until the future resolves.
std::future<std::optional<Mat>> prefetch_chunk(ChunkSource& source) {
  return std::async(std::launch::async,
                    [&source] { return source.next_chunk(); });
}

}  // namespace

FleetAssessment::FleetAssessment(FleetOptions options, std::size_t sensors)
    : options_(std::move(options)),
      sensors_(sensors),
      zscore_stage_(options_.pipeline.baseline, options_.pipeline.zscore,
                    options_.pipeline.reselect_baseline_per_chunk) {
  IMRDMD_REQUIRE_ARG(sensors_ > 0, "fleet needs at least one sensor");

  groups_ = options_.groups;
  if (groups_.empty()) {
    groups_ = contiguous_groups(sensors_, 1);
  }
  // The groups must partition [0, sensors) exactly: every magnitude slot is
  // written once, so the merged vectors are total and unambiguous.
  std::vector<bool> covered(sensors_, false);
  for (const auto& group : groups_) {
    IMRDMD_REQUIRE_ARG(!group.empty(), "fleet group is empty");
    for (std::size_t p : group) {
      IMRDMD_REQUIRE_ARG(p < sensors_, "fleet group sensor index out of range");
      IMRDMD_REQUIRE_ARG(!covered[p], "fleet groups overlap");
      covered[p] = true;
    }
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(covered.begin(), covered.end(), [](bool c) { return c; }),
      "fleet groups do not cover every sensor");

  shards_ = options_.shards == 0 ? groups_.size() : options_.shards;
  shards_ = std::min(shards_, groups_.size());
  if (groups_.size() == 1) {
    identity_partition_ = true;
    for (std::size_t i = 0; i < groups_[0].size(); ++i) {
      if (groups_[0][i] != i) identity_partition_ = false;
    }
  }

  ImrdmdOptions model_options = options_.pipeline.imrdmd;
  // A single lane runs on the caller thread, where the model may keep its
  // parallel-bin fits (bitwise serial-identical per the determinism suite);
  // with real lanes the updates are pool tasks and must not nest the pool.
  if (shards_ > 1) model_options.mrdmd.parallel_bins = false;
  models_.reserve(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    models_.push_back(std::make_unique<IncrementalMrdmd>(model_options));
  }
}

ThreadPool& FleetAssessment::pool() const {
  return options_.pool != nullptr ? *options_.pool : global_pool();
}

const IncrementalMrdmd& FleetAssessment::model(std::size_t group) const {
  IMRDMD_REQUIRE_ARG(group < models_.size(), "fleet group index out of range");
  return *models_[group];
}

std::size_t FleetAssessment::snapshots_processed() const {
  // Every process() feeds all group models the same column count, so any
  // fitted model's time_steps is the fleet-wide stream position.
  return models_[0]->fitted() ? models_[0]->time_steps() : 0;
}

FleetSnapshot FleetAssessment::process(const Mat& chunk) {
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0, "fleet chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(chunk.rows() == sensors_,
                     "fleet chunk row count differs from the fleet's sensors");

  FleetSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  WallTimer timer;
  std::vector<MagnitudeUpdate> updates(groups_.size());
  // Lane l walks groups l, l + shards, ... serially; lanes run concurrently.
  // Each group's update touches only its own model and slot, and the merge
  // below reads the slots in group order, so results do not depend on how
  // the lanes interleave.
  auto run_lane = [this, &chunk, &updates](std::size_t lane) {
    for (std::size_t g = lane; g < groups_.size(); g += shards_) {
      // The identity partition (one group of all sensors, in order) feeds
      // the chunk straight through — no per-chunk gather copy.
      updates[g] = identity_partition_
                       ? update_magnitudes(*models_[g], chunk,
                                           options_.pipeline.band)
                       : update_magnitudes(*models_[g],
                                           gather_rows(chunk, groups_[g]),
                                           options_.pipeline.band);
    }
  };
  if (shards_ <= 1) {
    run_lane(0);
  } else {
    std::vector<std::future<void>> lanes;
    lanes.reserve(shards_);
    for (std::size_t lane = 0; lane < shards_; ++lane) {
      lanes.push_back(pool().submit([&run_lane, lane] { run_lane(lane); }));
    }
    wait_all(lanes);  // lanes hold stack locals: drain before unwinding
  }

  // Merge in deterministic group order: scatter each group's magnitudes and
  // means back to machine sensor indices, then reconcile globally.
  snapshot.magnitudes.assign(sensors_, 0.0);
  snapshot.sensor_means.assign(sensors_, 0.0);
  snapshot.reports.reserve(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& group = groups_[g];
    for (std::size_t i = 0; i < group.size(); ++i) {
      snapshot.magnitudes[group[i]] = updates[g].magnitudes[i];
      snapshot.sensor_means[group[i]] = updates[g].sensor_means[i];
    }
    snapshot.reports.push_back(updates[g].report);
  }
  snapshot.total_snapshots = models_[0]->time_steps();
  snapshot.fit_seconds = timer.seconds();

  snapshot.zscores = zscore_stage_.apply(
      std::span<const double>(snapshot.magnitudes.data(),
                              snapshot.magnitudes.size()),
      std::span<const double>(snapshot.sensor_means.data(),
                              snapshot.sensor_means.size()));

  ++chunks_processed_;
  return snapshot;
}

std::vector<FleetSnapshot> FleetAssessment::run(ChunkSource& source,
                                                std::size_t max_chunks) {
  // Snapshots parked by a previous run() whose checkpoint write failed
  // after the chunk was already folded into the models: deliver them first
  // — the analysis results (alarms included) cannot be regenerated.
  std::vector<FleetSnapshot> snapshots = std::move(carry_snapshots_);
  carry_snapshots_.clear();
  std::optional<Mat> current =
      carry_.has_value() ? std::exchange(carry_, std::nullopt)
                         : source.next_chunk();
  while (current.has_value() &&
         (max_chunks == 0 || snapshots.size() < max_chunks)) {
    const bool want_more =
        max_chunks == 0 || snapshots.size() + 1 < max_chunks;
    // Double buffering: the next chunk is produced on its own thread while
    // the lanes chew on the current one.
    std::future<std::optional<Mat>> next;
    if (options_.async_prefetch && want_more) {
      next = prefetch_chunk(source);
    }
    try {
      snapshots.push_back(process(*current));
      // Periodic durability: after every N-th processed chunk, atomically
      // replace the checkpoint file with the fleet's current state. The
      // recorded stream position counts *processed* snapshots, so a chunk
      // the in-flight prefetch has already pulled is simply re-read on
      // resume. Inside the try: a failed checkpoint write parks the
      // prefetched chunk like any other failure, so retrying run() loses
      // no data.
      if (options_.checkpoint.every_n > 0 &&
          !options_.checkpoint.path.empty() &&
          chunks_processed_ % options_.checkpoint.every_n == 0) {
        save_fleet_checkpoint_file(options_.checkpoint.path, *this);
      }
    } catch (...) {
      // Park everything already produced (carried-in snapshots included):
      // those chunks are folded into the models, so their snapshots —
      // alarms included — cannot be regenerated; the next run() delivers
      // them first instead of losing them with the unwinding vector.
      carry_snapshots_ = std::move(snapshots);
      // The in-flight prefetch references `source`, so it must finish
      // before unwinding — and it has already consumed a chunk the caller
      // never saw. Park that chunk so a later run() resumes with it,
      // matching the sync path's no-data-loss semantics.
      if (next.valid()) {
        try {
          carry_ = next.get();
        } catch (...) {
          // The prefetch itself failed; the processing error below is the
          // primary failure to surface.
        }
      }
      throw;
    }
    if (!want_more) break;
    current = next.valid() ? next.get() : source.next_chunk();
  }
  return snapshots;
}

std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count) {
  IMRDMD_REQUIRE_ARG(count > 0 && count <= sensors,
                     "group count must be in [1, sensors]");
  std::vector<std::vector<std::size_t>> groups(count);
  const std::size_t base = sensors / count;
  const std::size_t extra = sensors % count;
  std::size_t next = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    groups[g].reserve(size);
    for (std::size_t i = 0; i < size; ++i) groups[g].push_back(next++);
  }
  return groups;
}

}  // namespace imrdmd::core
