#include "core/fleet.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <future>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/checkpoint.hpp"

namespace imrdmd::core {

namespace {

/// Gathers the rows listed in `group` out of `chunk` (group order).
Mat gather_rows(const Mat& chunk, const std::vector<std::size_t>& group) {
  Mat out(group.size(), chunk.cols());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const double* src = chunk.data() + group[i] * chunk.cols();
    std::copy(src, src + chunk.cols(), out.data() + i * chunk.cols());
  }
  return out;
}

/// Runs source.next_chunk() on a dedicated thread, so ingestion overlaps
/// compute. Deliberately NOT a pool task: sources are free to use
/// parallel_for themselves (SensorModel::window does), and a pool task that
/// fans back out onto its own pool would block a worker on work only that
/// worker can run. At most one prefetch is in flight per source; the caller
/// must not touch the source until the future resolves.
std::future<std::optional<Mat>> prefetch_chunk(ChunkSource& source) {
  return std::async(std::launch::async,
                    [&source] { return source.next_chunk(); });
}

/// The groups must partition [0, sensors) exactly: every magnitude slot is
/// written once, so the merged vectors are total and unambiguous. Shared by
/// the single-process and distributed drivers.
void validate_partition(const std::vector<std::vector<std::size_t>>& groups,
                        std::size_t sensors) {
  std::vector<bool> covered(sensors, false);
  for (const auto& group : groups) {
    IMRDMD_REQUIRE_ARG(!group.empty(), "fleet group is empty");
    for (std::size_t p : group) {
      IMRDMD_REQUIRE_ARG(p < sensors, "fleet group sensor index out of range");
      IMRDMD_REQUIRE_ARG(!covered[p], "fleet groups overlap");
      covered[p] = true;
    }
  }
  IMRDMD_REQUIRE_ARG(
      std::all_of(covered.begin(), covered.end(), [](bool c) { return c; }),
      "fleet groups do not cover every sensor");
}

/// Doubles a PartialFitReport travels the wire as. The counters are exact
/// through double for any realistic stream (< 2^53 snapshots), so the
/// gathered reports compare bitwise-equal to the single-process fleet's.
constexpr std::size_t kReportWords = 8;

void encode_report(std::vector<double>& out, const PartialFitReport& report) {
  out.push_back(static_cast<double>(report.new_snapshots));
  out.push_back(static_cast<double>(report.total_snapshots));
  out.push_back(report.drift_grid);
  out.push_back(report.drift_estimate);
  out.push_back(report.drift_exceeded ? 1.0 : 0.0);
  out.push_back(report.recomputed ? 1.0 : 0.0);
  out.push_back(static_cast<double>(report.new_nodes));
  out.push_back(static_cast<double>(report.new_grid_columns));
}

/// Order-sensitive fold of the chunk's raw bit patterns, squashed into the
/// mantissa of a normal double in [1, 2) so it travels any collective
/// without NaN/Inf hazards. Used to verify SPMD chunk agreement: two ranks
/// disagreeing on the chunk CONTENT (not just its shape) would silently
/// desync their replicated z-score stages otherwise.
double chunk_digest(const Mat& chunk) {
  std::uint64_t acc = 0x9e3779b97f4a7c15ull;
  const double* data = chunk.data();
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, data + i, sizeof bits);
    acc ^= bits + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
  }
  acc = (acc & 0x000fffffffffffffull) | 0x3ff0000000000000ull;
  double digest;
  std::memcpy(&digest, &acc, sizeof digest);
  return digest;
}

PartialFitReport decode_report(const double* words) {
  PartialFitReport report;
  report.new_snapshots = static_cast<std::size_t>(words[0]);
  report.total_snapshots = static_cast<std::size_t>(words[1]);
  report.drift_grid = words[2];
  report.drift_estimate = words[3];
  report.drift_exceeded = words[4] != 0.0;
  report.recomputed = words[5] != 0.0;
  report.new_nodes = static_cast<std::size_t>(words[6]);
  report.new_grid_columns = static_cast<std::size_t>(words[7]);
  return report;
}

}  // namespace

FleetAssessment::FleetAssessment(FleetOptions options, std::size_t sensors)
    : options_(std::move(options)),
      sensors_(sensors),
      zscore_stage_(options_.pipeline.baseline, options_.pipeline.zscore,
                    options_.pipeline.reselect_baseline_per_chunk) {
  IMRDMD_REQUIRE_ARG(sensors_ > 0, "fleet needs at least one sensor");

  groups_ = options_.groups;
  if (groups_.empty()) {
    groups_ = contiguous_groups(sensors_, 1);
  }
  validate_partition(groups_, sensors_);

  shards_ = options_.shards == 0 ? groups_.size() : options_.shards;
  shards_ = std::min(shards_, groups_.size());
  if (groups_.size() == 1) {
    identity_partition_ = true;
    for (std::size_t i = 0; i < groups_[0].size(); ++i) {
      if (groups_[0][i] != i) identity_partition_ = false;
    }
  }

  ImrdmdOptions model_options = options_.pipeline.imrdmd;
  // A single lane runs on the caller thread, where the model may keep its
  // parallel-bin fits (bitwise serial-identical per the determinism suite);
  // with real lanes the updates are pool tasks and must not nest the pool.
  if (shards_ > 1) model_options.mrdmd.parallel_bins = false;
  models_.reserve(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    models_.push_back(std::make_unique<IncrementalMrdmd>(model_options));
  }
}

ThreadPool& FleetAssessment::pool() const {
  return options_.pool != nullptr ? *options_.pool : global_pool();
}

const IncrementalMrdmd& FleetAssessment::model(std::size_t group) const {
  IMRDMD_REQUIRE_ARG(group < models_.size(), "fleet group index out of range");
  return *models_[group];
}

std::size_t FleetAssessment::snapshots_processed() const {
  // Every process() feeds all group models the same column count, so any
  // fitted model's time_steps is the fleet-wide stream position.
  return models_[0]->fitted() ? models_[0]->time_steps() : 0;
}

FleetSnapshot FleetAssessment::process(const Mat& chunk) {
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0, "fleet chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(chunk.rows() == sensors_,
                     "fleet chunk row count differs from the fleet's sensors");

  FleetSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  WallTimer timer;
  std::vector<MagnitudeUpdate> updates(groups_.size());
  // Lane l walks groups l, l + shards, ... serially; lanes run concurrently.
  // Each group's update touches only its own model and slot, and the merge
  // below reads the slots in group order, so results do not depend on how
  // the lanes interleave.
  run_lanes(
      shards_,
      [this, &chunk, &updates](std::size_t lane) {
        for (std::size_t g = lane; g < groups_.size(); g += shards_) {
          // The identity partition (one group of all sensors, in order)
          // feeds the chunk straight through — no per-chunk gather copy.
          updates[g] =
              identity_partition_
                  ? update_magnitudes(*models_[g], chunk,
                                      options_.pipeline.band)
                  : update_magnitudes(*models_[g],
                                      gather_rows(chunk, groups_[g]),
                                      options_.pipeline.band);
        }
      },
      &pool());

  // Merge in deterministic group order: scatter each group's magnitudes and
  // means back to machine sensor indices, then reconcile globally.
  snapshot.magnitudes.assign(sensors_, 0.0);
  snapshot.sensor_means.assign(sensors_, 0.0);
  snapshot.reports.reserve(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const auto& group = groups_[g];
    for (std::size_t i = 0; i < group.size(); ++i) {
      snapshot.magnitudes[group[i]] = updates[g].magnitudes[i];
      snapshot.sensor_means[group[i]] = updates[g].sensor_means[i];
    }
    snapshot.reports.push_back(updates[g].report);
  }
  snapshot.total_snapshots = models_[0]->time_steps();
  snapshot.fit_seconds = timer.seconds();

  snapshot.zscores = zscore_stage_.apply(
      std::span<const double>(snapshot.magnitudes.data(),
                              snapshot.magnitudes.size()),
      std::span<const double>(snapshot.sensor_means.data(),
                              snapshot.sensor_means.size()));

  ++chunks_processed_;
  return snapshot;
}

std::vector<FleetSnapshot> FleetAssessment::run(ChunkSource& source,
                                                std::size_t max_chunks) {
  // Snapshots parked by a previous run() whose checkpoint write failed
  // after the chunk was already folded into the models: deliver them first
  // — the analysis results (alarms included) cannot be regenerated.
  std::vector<FleetSnapshot> snapshots = std::move(carry_snapshots_);
  carry_snapshots_.clear();
  // The parked snapshots alone may already satisfy max_chunks: return them
  // WITHOUT touching the carried chunk or the source — pulling a chunk
  // first would destroy one the loop below never processes, silently
  // skipping its telemetry.
  if (max_chunks != 0 && snapshots.size() >= max_chunks) return snapshots;
  std::optional<Mat> current =
      carry_.has_value() ? std::exchange(carry_, std::nullopt)
                         : source.next_chunk();
  while (current.has_value() &&
         (max_chunks == 0 || snapshots.size() < max_chunks)) {
    const bool want_more =
        max_chunks == 0 || snapshots.size() + 1 < max_chunks;
    // Double buffering: the next chunk is produced on its own thread while
    // the lanes chew on the current one.
    std::future<std::optional<Mat>> next;
    if (options_.async_prefetch && want_more) {
      next = prefetch_chunk(source);
    }
    try {
      snapshots.push_back(process(*current));
      // Periodic durability: after every N-th processed chunk, atomically
      // replace the checkpoint file with the fleet's current state. The
      // recorded stream position counts *processed* snapshots, so a chunk
      // the in-flight prefetch has already pulled is simply re-read on
      // resume. Inside the try: a failed checkpoint write parks the
      // prefetched chunk like any other failure, so retrying run() loses
      // no data.
      if (options_.checkpoint.every_n > 0 &&
          !options_.checkpoint.path.empty() &&
          chunks_processed_ % options_.checkpoint.every_n == 0) {
        save_fleet_checkpoint_file(options_.checkpoint.path, *this);
      }
    } catch (...) {
      // Park everything already produced (carried-in snapshots included):
      // those chunks are folded into the models, so their snapshots —
      // alarms included — cannot be regenerated; the next run() delivers
      // them first instead of losing them with the unwinding vector.
      carry_snapshots_ = std::move(snapshots);
      // The in-flight prefetch references `source`, so it must finish
      // before unwinding — and it has already consumed a chunk the caller
      // never saw. Park that chunk so a later run() resumes with it,
      // matching the sync path's no-data-loss semantics.
      if (next.valid()) {
        try {
          carry_ = next.get();
        } catch (...) {
          // The prefetch itself failed; the processing error below is the
          // primary failure to surface.
        }
      }
      throw;
    }
    if (!want_more) break;
    current = next.valid() ? next.get() : source.next_chunk();
  }
  return snapshots;
}

std::pair<std::size_t, std::size_t> rank_group_range(std::size_t groups,
                                                     std::size_t ranks,
                                                     std::size_t rank) {
  IMRDMD_REQUIRE_ARG(ranks > 0, "rank_group_range needs at least one rank");
  IMRDMD_REQUIRE_ARG(rank < ranks, "rank_group_range rank out of range");
  const std::size_t base = groups / ranks;
  const std::size_t extra = groups % ranks;
  const std::size_t begin = rank * base + std::min(rank, extra);
  return {begin, begin + base + (rank < extra ? 1 : 0)};
}

DistributedFleetAssessment::DistributedFleetAssessment(
    dist::Communicator& comm, FleetOptions options, std::size_t sensors)
    : comm_(&comm),
      options_(std::move(options)),
      sensors_(sensors),
      zscore_stage_(options_.pipeline.baseline, options_.pipeline.zscore,
                    options_.pipeline.reselect_baseline_per_chunk) {
  IMRDMD_REQUIRE_ARG(sensors_ > 0, "fleet needs at least one sensor");
  groups_ = options_.groups;
  if (groups_.empty()) {
    groups_ = contiguous_groups(sensors_, 1);
  }
  validate_partition(groups_, sensors_);
  if (groups_.size() == 1) {
    identity_partition_ = true;
    for (std::size_t i = 0; i < groups_[0].size(); ++i) {
      if (groups_[0][i] != i) identity_partition_ = false;
    }
  }

  const auto range = rank_group_range(
      groups_.size(), static_cast<std::size_t>(comm_->size()),
      static_cast<std::size_t>(comm_->rank()));
  local_begin_ = range.first;
  local_end_ = range.second;
  const std::size_t local_count = local_end_ - local_begin_;

  // Lane count is a *local* knob: each rank spreads only its own groups.
  // A rank owning no groups still participates in every collective with an
  // empty contribution.
  shards_ = options_.shards == 0 ? std::max<std::size_t>(local_count, 1)
                                 : options_.shards;
  shards_ = std::min(shards_, std::max<std::size_t>(local_count, 1));

  ImrdmdOptions model_options = options_.pipeline.imrdmd;
  // Same nested-pool guard as FleetAssessment: with real lanes the group
  // updates are pool tasks and must not fan back out onto their own pool.
  if (shards_ > 1) model_options.mrdmd.parallel_bins = false;
  models_.reserve(local_count);
  for (std::size_t l = 0; l < local_count; ++l) {
    models_.push_back(std::make_unique<IncrementalMrdmd>(model_options));
  }
}

ThreadPool& DistributedFleetAssessment::pool() const {
  return options_.pool != nullptr ? *options_.pool : global_pool();
}

const IncrementalMrdmd& DistributedFleetAssessment::model(
    std::size_t group) const {
  IMRDMD_REQUIRE_ARG(group >= local_begin_ && group < local_end_,
                     "this rank does not own the requested fleet group");
  return *models_[group - local_begin_];
}

void DistributedFleetAssessment::update_local_groups(
    const Mat& chunk, std::vector<MagnitudeUpdate>& updates) {
  const std::size_t local_count = local_end_ - local_begin_;
  run_lanes(
      shards_,
      [this, &chunk, &updates, local_count](std::size_t lane) {
        for (std::size_t l = lane; l < local_count; l += shards_) {
          // The identity partition (one group of all sensors, in order)
          // feeds the chunk straight through — no per-chunk gather copy.
          updates[l] =
              identity_partition_
                  ? update_magnitudes(*models_[l], chunk,
                                      options_.pipeline.band)
                  : update_magnitudes(
                        *models_[l],
                        gather_rows(chunk, groups_[local_begin_ + l]),
                        options_.pipeline.band);
        }
      },
      &pool());
}

FleetSnapshot DistributedFleetAssessment::process(const Mat& chunk) {
  IMRDMD_REQUIRE_ARG(chunk.cols() > 0, "fleet chunk has no snapshot columns");
  IMRDMD_REQUIRE_ARG(chunk.rows() == sensors_,
                     "fleet chunk row count differs from the fleet's sensors");
  // SPMD agreement: every rank must be processing the same chunk — width
  // AND content (a content disagreement would silently desync the
  // replicated z-score stages). One allgather shows every rank every
  // peer's (width, digest); on any disagreement every rank sees the same
  // slots and finds some slot differing from its own, so all ranks throw
  // together instead of deadlocking in a later collective.
  const double meta[2] = {static_cast<double>(chunk.cols()),
                          chunk_digest(chunk)};
  const std::vector<std::vector<double>> metas =
      comm_->allgatherv(std::span<const double>(meta, 2));
  for (const auto& slot : metas) {
    if (slot.size() != 2 ||
        std::memcmp(slot.data(), meta, sizeof meta) != 0) {
      throw InvalidArgument(
          "distributed fleet ranks disagree on the chunk (width or "
          "content)");
    }
  }

  FleetSnapshot snapshot;
  snapshot.chunk_index = chunks_processed_;
  snapshot.chunk_snapshots = chunk.cols();

  WallTimer timer;
  const std::size_t local_count = local_end_ - local_begin_;
  std::vector<MagnitudeUpdate> updates(local_count);
  update_local_groups(chunk, updates);

  // One ragged allgather carries this rank's whole contribution: for each
  // owned group, in global group order, [magnitudes | sensor_means |
  // report]. Boundaries are recovered from the shared ownership map, so
  // every rank decodes the identical global sequence.
  std::vector<double> local_blob;
  std::size_t local_values = 0;
  for (std::size_t l = 0; l < local_count; ++l) {
    local_values += groups_[local_begin_ + l].size();
  }
  local_blob.reserve(2 * local_values + kReportWords * local_count);
  for (std::size_t l = 0; l < local_count; ++l) {
    local_blob.insert(local_blob.end(), updates[l].magnitudes.begin(),
                      updates[l].magnitudes.end());
    local_blob.insert(local_blob.end(), updates[l].sensor_means.begin(),
                      updates[l].sensor_means.end());
    encode_report(local_blob, updates[l].report);
  }
  const std::vector<std::vector<double>> blobs = comm_->allgatherv(
      std::span<const double>(local_blob.data(), local_blob.size()));

  // Merge in deterministic global group order: scatter each group's
  // magnitudes and means back to machine sensor indices, then reconcile
  // through this rank's replica of the global stage.
  snapshot.magnitudes.assign(sensors_, 0.0);
  snapshot.sensor_means.assign(sensors_, 0.0);
  snapshot.reports.resize(groups_.size());
  const std::size_t ranks = static_cast<std::size_t>(comm_->size());
  for (std::size_t r = 0; r < ranks; ++r) {
    const auto range = rank_group_range(groups_.size(), ranks, r);
    const std::vector<double>& blob = blobs[r];
    std::size_t expected = 0;
    for (std::size_t g = range.first; g < range.second; ++g) {
      expected += 2 * groups_[g].size() + kReportWords;
    }
    IMRDMD_REQUIRE_DIMS(
        blob.size() == expected,
        "distributed fleet rank contribution has the wrong length");
    const double* cursor = blob.data();
    for (std::size_t g = range.first; g < range.second; ++g) {
      const auto& group = groups_[g];
      for (std::size_t i = 0; i < group.size(); ++i) {
        snapshot.magnitudes[group[i]] = cursor[i];
        snapshot.sensor_means[group[i]] = cursor[group.size() + i];
      }
      snapshot.reports[g] = decode_report(cursor + 2 * group.size());
      cursor += 2 * group.size() + kReportWords;
    }
  }
  snapshot.total_snapshots = snapshots_seen_ + chunk.cols();
  snapshot.fit_seconds = timer.seconds();

  snapshot.zscores = zscore_stage_.apply(
      std::span<const double>(snapshot.magnitudes.data(),
                              snapshot.magnitudes.size()),
      std::span<const double>(snapshot.sensor_means.data(),
                              snapshot.sensor_means.size()));

  snapshots_seen_ += chunk.cols();
  ++chunks_processed_;
  return snapshot;
}

std::vector<FleetSnapshot> DistributedFleetAssessment::run(
    ChunkSource* source, std::size_t max_chunks) {
  const bool root = comm_->rank() == 0;
  IMRDMD_REQUIRE_ARG(root == (source != nullptr),
                     "the chunk source lives on rank 0 only (pass nullptr "
                     "on the other ranks)");
  // Deliver snapshots parked by a previous failed run() first (see
  // FleetAssessment::run): those chunks are folded into the models, so the
  // results cannot be regenerated.
  std::vector<FleetSnapshot> snapshots = std::move(carry_snapshots_);
  carry_snapshots_.clear();
  // Parked snapshots alone may already satisfy max_chunks: return them
  // without touching the carried chunk or the source (pulling first would
  // drop a chunk the loop never processes). A rank taking this return
  // performs no collective this call; a peer that parked fewer snapshots
  // (possible when only rank 0 sees a checkpoint-write failure at the
  // max_chunks boundary) proceeds to the width handshake and simply pairs
  // with this rank's NEXT run() — per-rank delivered streams stay
  // identical and in order, only the per-call grouping shifts.
  if (max_chunks != 0 && snapshots.size() >= max_chunks) return snapshots;
  try {
    std::optional<Mat> current;
    if (root) {
      current = carry_.has_value() ? std::exchange(carry_, std::nullopt)
                                   : source->next_chunk();
    }
    while (max_chunks == 0 || snapshots.size() < max_chunks) {
      // Width handshake: rank 0 announces the next chunk's column count
      // (0 = stream end) so peers can size their replica before the data
      // broadcast.
      double width[1] = {root && current.has_value()
                             ? static_cast<double>(current->cols())
                             : 0.0};
      comm_->broadcast(std::span<double>(width, 1), 0);
      if (width[0] == 0.0) break;
      if (!root) {
        current.emplace(sensors_, static_cast<std::size_t>(width[0]));
      }
      // Replicate the chunk. A root chunk with the wrong row count makes
      // the buffer sizes disagree, failing on every rank together.
      comm_->broadcast(std::span<double>(current->data(), current->size()),
                       0);

      const bool want_more =
          max_chunks == 0 || snapshots.size() + 1 < max_chunks;
      // Double buffering on the ingestion rank: the next chunk is produced
      // on its own thread while every rank's lanes chew on the current one.
      std::future<std::optional<Mat>> next;
      if (root && options_.async_prefetch && want_more) {
        next = prefetch_chunk(*source);
      }
      try {
        snapshots.push_back(process(*current));
        // Periodic durability (collective): every rank contributes its
        // sections, rank 0 atomically replaces the checkpoint file.
        if (options_.checkpoint.every_n > 0 &&
            !options_.checkpoint.path.empty() &&
            chunks_processed_ % options_.checkpoint.every_n == 0) {
          save_distributed_fleet_checkpoint_file(options_.checkpoint.path,
                                                 *this);
        }
      } catch (...) {
        // Park the chunk the in-flight prefetch already consumed so a
        // later run() resumes with it (rank 0; peers re-receive it via the
        // broadcast), matching FleetAssessment's no-data-loss semantics.
        if (next.valid()) {
          try {
            carry_ = next.get();
          } catch (...) {
            // The prefetch itself failed; surface the primary error below.
          }
        }
        throw;
      }
      if (!want_more) break;
      if (root) {
        current = next.valid() ? next.get() : source->next_chunk();
      }
    }
  } catch (...) {
    // Park everything already produced on every rank — including a peer
    // unwinding with CollectiveAborted after the root failed a checkpoint
    // write: its models folded the chunk in, so the snapshot must survive
    // for the next collective run().
    carry_snapshots_ = std::move(snapshots);
    throw;
  }
  return snapshots;
}

std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count) {
  IMRDMD_REQUIRE_ARG(count > 0 && count <= sensors,
                     "group count must be in [1, sensors]");
  std::vector<std::vector<std::size_t>> groups(count);
  const std::size_t base = sensors / count;
  const std::size_t extra = sensors % count;
  std::size_t next = 0;
  for (std::size_t g = 0; g < count; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    groups[g].reserve(size);
    for (std::size_t i = 0; i < size; ++i) groups[g].push_back(next++);
  }
  return groups;
}

}  // namespace imrdmd::core
