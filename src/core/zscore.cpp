#include "core/zscore.hpp"

#include <cmath>

#include "common/error.hpp"

namespace imrdmd::core {

ThermalState ZscoreAnalysis::state(std::size_t sensor) const {
  const double z = zscores.at(sensor);
  // A non-finite z carries no thermal evidence (dead sensor, NaN reading,
  // poisoned baseline); without this guard NaN falls through every
  // comparison below and lands on Hot, raising a spurious alarm.
  if (!std::isfinite(z)) return ThermalState::NearBaseline;
  if (z < -options.near_band) return ThermalState::Cold;
  if (z <= options.near_band) return ThermalState::NearBaseline;
  if (z <= options.hot_threshold) return ThermalState::Elevated;
  return ThermalState::Hot;
}

std::vector<std::size_t> ZscoreAnalysis::sensors_in_state(
    ThermalState query) const {
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < zscores.size(); ++p) {
    if (state(p) == query) out.push_back(p);
  }
  return out;
}

std::vector<double> row_means(const linalg::Mat& window) {
  IMRDMD_REQUIRE_DIMS(window.cols() > 0, "row_means of an empty window");
  std::vector<double> means(window.rows(), 0.0);
  const double inv = 1.0 / static_cast<double>(window.cols());
  for (std::size_t r = 0; r < window.rows(); ++r) {
    double sum = 0.0;
    const double* row = window.data() + r * window.cols();
    for (std::size_t t = 0; t < window.cols(); ++t) sum += row[t];
    means[r] = sum * inv;
  }
  return means;
}

std::vector<std::size_t> select_baseline_sensors(
    std::span<const double> values, const BaselineRange& range) {
  IMRDMD_REQUIRE_ARG(range.value_min <= range.value_max,
                     "baseline range is inverted");
  std::vector<std::size_t> selected;
  for (std::size_t p = 0; p < values.size(); ++p) {
    if (values[p] >= range.value_min && values[p] <= range.value_max) {
      selected.push_back(p);
    }
  }
  return selected;
}

ZscoreAnalysis zscore_from_baseline(std::span<const double> magnitudes,
                                    std::span<const std::size_t> baseline,
                                    const ZscoreOptions& options) {
  ZscoreAnalysis analysis;
  analysis.options = options;
  analysis.baseline_sensors.assign(baseline.begin(), baseline.end());
  analysis.zscores.assign(magnitudes.size(), 0.0);
  for (std::size_t p : baseline) {
    IMRDMD_REQUIRE_DIMS(p < magnitudes.size(),
                        "baseline sensor index out of range");
  }

  if (baseline.size() < 2) return analysis;
  double mean = 0.0;
  for (std::size_t p : baseline) mean += magnitudes[p];
  mean /= static_cast<double>(baseline.size());
  double var = 0.0;
  for (std::size_t p : baseline) {
    const double d = magnitudes[p] - mean;
    var += d * d;
  }
  var /= static_cast<double>(baseline.size() - 1);
  analysis.baseline_mean = mean;
  analysis.baseline_stddev = std::sqrt(var);
  if (analysis.baseline_stddev == 0.0) return analysis;

  const double inv = 1.0 / analysis.baseline_stddev;
  for (std::size_t p = 0; p < magnitudes.size(); ++p) {
    analysis.zscores[p] = (magnitudes[p] - mean) * inv;
  }
  return analysis;
}

void BaselineZscoreStage::restore(State state) {
  IMRDMD_REQUIRE_ARG(state.selected_once || state.baseline_sensors.empty(),
                     "zscore stage state has a population but was never "
                     "selected");
  // The population is strictly ascending by construction
  // (select_baseline_sensors walks sensors in order); reject anything else
  // at the restore boundary rather than surfacing it chunks later inside
  // the resumed stream's z-scoring. Checkpoint loads additionally bound
  // the indices against the sensor count — unknown here — before calling.
  for (std::size_t i = 1; i < state.baseline_sensors.size(); ++i) {
    IMRDMD_REQUIRE_ARG(
        state.baseline_sensors[i - 1] < state.baseline_sensors[i],
        "zscore stage baseline population must be strictly ascending");
  }
  selected_once_ = state.selected_once;
  baseline_sensors_ = std::move(state.baseline_sensors);
}

ZscoreAnalysis BaselineZscoreStage::apply(
    std::span<const double> magnitudes, std::span<const double> sensor_means) {
  IMRDMD_REQUIRE_DIMS(magnitudes.size() == sensor_means.size(),
                      "magnitude / sensor-mean length mismatch");
  if (!selected_once_ || reselect_per_chunk_) {
    baseline_sensors_ = select_baseline_sensors(sensor_means, baseline_);
    selected_once_ = true;
  }
  return zscore_from_baseline(
      magnitudes,
      std::span<const std::size_t>(baseline_sensors_.data(),
                                   baseline_sensors_.size()),
      zscore_);
}

ReconciledZscores BaselineZscoreStage::apply_reconciled(
    std::span<const double> residual_magnitudes,
    std::span<const double> coarse_magnitudes,
    std::span<const double> sensor_means) {
  IMRDMD_REQUIRE_DIMS(
      residual_magnitudes.size() == coarse_magnitudes.size(),
      "residual / coarse magnitude length mismatch");
  ReconciledZscores out;
  // The residual-level apply() performs the shared selection state
  // transition; the coarse level is then scored against the population it
  // selected (zscore_from_baseline is stateless).
  out.combined = apply(residual_magnitudes, sensor_means);
  out.residual_zscores = out.combined.zscores;
  out.coarse_zscores =
      zscore_from_baseline(
          coarse_magnitudes,
          std::span<const std::size_t>(baseline_sensors_.data(),
                                       baseline_sensors_.size()),
          zscore_)
          .zscores;
  for (std::size_t p = 0; p < out.combined.zscores.size(); ++p) {
    const double zc = out.coarse_zscores[p];
    const double zr = out.residual_zscores[p];
    // Strict >: ties (and a non-finite coarse z, which fails every
    // comparison) keep the residual level's verdict.
    if (std::abs(zc) > std::abs(zr)) out.combined.zscores[p] = zc;
  }
  return out;
}

}  // namespace imrdmd::core
