// The unified streaming assessment engine (paper Sec. I contribution list
// and Sec. V): stream -> I-mrDMD -> frequency isolation -> baseline
// z-scores, behind ONE run loop for every execution topology.
//
// The paper contributes one incremental assessment scheme; Peherstorfer et
// al.'s multifidelity survey frames the monolithic, sharded, and
// distributed deployments of it as the same scheme at different
// fidelities/topologies. core::Assessor is that scheme as a single engine:
//
//   * an AssessorConfig builder selects the topology — monolithic() (one
//     model over every sensor), sharded(groups, lanes) (one cheap model per
//     sensor group, spread across worker lanes), distributed(comm) (groups
//     spread across SPMD ranks) — plus the checkpoint and ingestion
//     policies;
//   * ONE run loop owns prefetch (a backpressure-aware depth-N bounded
//     queue), the carry/parking no-data-loss discipline, and the periodic
//     checkpoint hook, for all three topologies;
//   * results stream out through a push-based SnapshotSink observer instead
//     of an accumulated std::vector, so an unbounded stream runs in bounded
//     memory (ROADMAP north star: millions of users, backpressure-aware
//     ingestion).
//
// Model layer: a composable two-level ModelStack (core/model_stack.hpp) —
// an optional coarse facility model over a subsampled sensor grid whose
// reconstruction is subtracted before the per-group models fit the
// residual (AssessorConfig::hierarchy; flat when coarse_stride == 0). The
// coarse update is replicated per engine replica on the caller thread, so
// it rides the existing chunk broadcast with no new collectives.
//
// Invariance contract (tests/assessor_test.cpp, tests/hierarchy_test.cpp):
// for a fixed group partition and stride, snapshots are bitwise identical
// across lane counts, rank counts, prefetch depths, and sync vs async
// ingestion; flat mode is bitwise identical to the pre-hierarchy engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "core/model_stack.hpp"
#include "core/stream.hpp"
#include "core/zscore.hpp"
#include "dist/communicator.hpp"
#include "dmd/spectrum.hpp"

namespace imrdmd::core {

struct PipelineOptions {
  ImrdmdOptions imrdmd;
  /// Frequency/power isolation applied before z-scoring (e.g. 0-60 Hz in
  /// case study 1).
  dmd::ModeBand band;
  /// Value-range rule for the baseline population, applied to each chunk's
  /// per-sensor mean (the paper re-selects baselines per window).
  BaselineRange baseline{0.0, 0.0};
  ZscoreOptions zscore;
  /// When true, the baseline population is re-selected on every chunk
  /// (case study 2); when false the initial chunk's population is kept.
  bool reselect_baseline_per_chunk = true;
};

/// Result of the shard-local half of a chunk's processing: fit the chunk
/// into one model and read off the band-filtered magnitudes and per-sensor
/// chunk means. Exposed separately from the global baseline/z-score stage
/// so the engine can run one of these per group model and reconcile
/// globally.
struct MagnitudeUpdate {
  /// Partial-fit diagnostics (default-initialized on the initial fit).
  PartialFitReport report;
  /// Band-filtered per-sensor mode magnitudes (model row order).
  std::vector<double> magnitudes;
  /// Per-sensor chunk means (the values the baseline rule filters).
  std::vector<double> sensor_means;
  double fit_seconds = 0.0;
};

/// Fits `chunk` into `model` (initial fit when unfitted, incremental
/// otherwise) and computes the band-filtered magnitudes and chunk means.
MagnitudeUpdate update_magnitudes(IncrementalMrdmd& model, const Mat& chunk,
                                  const dmd::ModeBand& band);

/// Everything produced by one chunk's worth of engine-wide processing.
struct AssessmentSnapshot {
  std::size_t chunk_index = 0;
  std::size_t chunk_snapshots = 0;
  std::size_t total_snapshots = 0;
  /// Per-group partial-fit diagnostics, in group order.
  std::vector<PartialFitReport> reports;
  /// Merged band-filtered magnitudes, machine sensor order. In hierarchy
  /// mode these are the RESIDUAL-level magnitudes (after the coarse
  /// reconstruction was subtracted).
  std::vector<double> magnitudes;
  /// Merged per-sensor chunk means, machine sensor order — always the raw
  /// chunk's means (the baseline rule reads physical values, so hierarchy
  /// mode recomputes them from the unsubtracted chunk).
  std::vector<double> sensor_means;
  /// Global z-scores (machine sensor order). Flat mode: z-scores of
  /// `magnitudes`. Hierarchy mode: the reconciled per-sensor combination
  /// of the residual- and coarse-level z-scores (larger |z| wins).
  ZscoreAnalysis zscores;
  /// Wall time of the fit + merge (not per group), coarse level included.
  double fit_seconds = 0.0;

  // --- per-level fields, populated only in hierarchy mode ---------------

  /// Coarse-level magnitudes interpolated to full width; empty when flat.
  std::vector<double> coarse_magnitudes;
  /// Each level's own z-scores against the shared baseline population;
  /// empty when flat (zscores.zscores is then the only vector).
  std::vector<double> coarse_zscores;
  std::vector<double> residual_zscores;
  /// Coarse-model partial-fit diagnostics (default on the initial fit and
  /// in flat mode).
  PartialFitReport coarse_report;
  /// Wall time of the coarse fit + residual subtraction; 0 when flat.
  double coarse_fit_seconds = 0.0;
};

/// Periodic durability for long-running streams: when armed (every_n > 0;
/// the path must then be non-empty — an armed policy with no path is
/// rejected at configuration time as a silently-disarmed checkpoint), the
/// run loop writes a checkpoint (core/checkpoint.hpp) to `path` after every
/// `every_n`-th processed chunk, atomically (write-temp-then-rename) so a
/// kill mid-write never leaves a torn file.
struct CheckpointPolicy {
  /// Checkpoint after every N processed chunks; 0 disables the hook.
  std::size_t every_n = 0;
  /// Target file, atomically replaced on each write.
  std::string path;
  /// True selects the rank-local delta container ("IMRDFL3"): each process
  /// appends the raw rows it ingested since the last save to its own
  /// sidecar part file (<path>.r<rank>.e<epoch>) instead of gathering every
  /// model's bytes to rank 0, so the save cost is O(rows since last save),
  /// not O(model history). The engine then journals each processed chunk's
  /// owned raw rows in memory between saves — bounded by every_n chunks
  /// when the periodic hook is armed. When delta() is never called
  /// explicitly, the IMRDMD_CHECKPOINT_DELTA environment variable ("1"/"0")
  /// supplies the default (mirrors IMRDMD_HIERARCHY_STRIDE, so CI can
  /// re-run whole suites through the delta writer).
  bool delta = false;
  /// True once delta() ran — the environment default then stays inert.
  bool delta_set = false;

  CheckpointPolicy& with_delta(bool enabled) {
    delta = enabled;
    delta_set = true;
    return *this;
  }
};

/// How a distributed run loop moves each chunk from ingestion to the ranks.
/// Single-process topologies ignore the mode (there is nothing to ship).
/// Results are bitwise identical across modes — the choice trades wire
/// bytes only.
enum class IngestMode {
  /// Rank 0 pulls the full P x T chunk and broadcasts it whole: every rank
  /// receives O(P*T) per chunk. Simple, and the only mode that lets
  /// direct process() calls carry full chunks.
  Broadcast,
  /// Rank 0 pulls the full chunk and scatters each rank exactly the rows
  /// of the groups it owns: a rank receives O(P*T / R) per chunk. In
  /// hierarchy mode the coarse grid rows ride a small allgathered
  /// side-slice (O(P*T / stride)) so every rank can replicate the coarse
  /// update.
  Scatterv,
  /// Every rank owns a ChunkSource yielding exactly its owned sensor rows
  /// (wrap a full stream in RowSliceSource over owned_sensor_rows(), or
  /// use a natively per-rank source): no chunk payload is shipped at all —
  /// only the per-chunk width/position agreement collective and, in
  /// hierarchy mode, the coarse side-slice.
  PerRank,
};

/// Ingestion policy of the run loop.
struct IngestOptions {
  /// How many chunks the run loop pulls ahead of processing, on a dedicated
  /// producer thread feeding a bounded queue (backpressure: the producer
  /// blocks while the queue is full, so a bursty source never runs ahead of
  /// compute by more than `prefetch_depth` chunks). 0 = fully synchronous
  /// ingestion; 1 = the classic double buffer. Results are bitwise
  /// invariant across depths — the knob trades memory for burst smoothing
  /// only.
  std::size_t prefetch_depth = 1;
  /// Chunk delivery of the distributed run loop. When with_mode() is never
  /// called, the IMRDMD_INGEST_MODE environment variable ("broadcast",
  /// "scatterv", "per_rank") supplies the default.
  IngestMode mode = IngestMode::Broadcast;
  /// True once with_mode() ran — the environment default then stays inert.
  bool mode_set = false;

  IngestOptions& with_mode(IngestMode delivery) {
    mode = delivery;
    mode_set = true;
    return *this;
  }
};

/// Why a run returned.
enum class StopReason {
  EndOfStream,   // the source reported end of data
  MaxChunks,     // StopCondition::max_chunks reached
  MaxSnapshots,  // StopCondition::max_snapshots reached
  Deadline,      // StopCondition::max_seconds elapsed
  SinkRequest,   // the sink returned false from on_snapshot
};

/// Composable stop conditions for run_until; every zero field means
/// "unbounded". The legacy max_chunks knob is one condition among several.
struct StopCondition {
  /// Stop after this many snapshots have been delivered this call
  /// (re-deliveries of parked snapshots included, matching the legacy
  /// drivers' max_chunks accounting).
  std::size_t max_chunks = 0;
  /// Stop once this many snapshot columns have been delivered this call.
  std::size_t max_snapshots = 0;
  /// Stop pulling new chunks once this much wall time has elapsed. In the
  /// distributed topology only rank 0 evaluates the clock and announces the
  /// stop through the chunk handshake, so ranks never disagree.
  double max_seconds = 0.0;
};

/// What one run call delivered, handed to SnapshotSink::on_end and
/// returned by run/run_until.
struct RunSummary {
  /// Snapshots delivered to the sink this call.
  std::size_t chunks = 0;
  /// Snapshot columns delivered to the sink this call.
  std::size_t snapshots = 0;
  StopReason reason = StopReason::EndOfStream;
};

/// Push-based observer of a run's snapshot stream — the bounded-memory
/// replacement for the legacy vector-return contract.
///
/// Delivery contract (tests/snapshot_sink_test.cpp conformance harness):
/// snapshots arrive in chunk order, exactly once each across successive
/// run calls (a snapshot whose delivery throws is parked and re-delivered
/// first by the next run), and always BEFORE the periodic checkpoint hook
/// for their chunk — so anything a sink has not seen is also not yet part
/// of any checkpoint's past. In the distributed topology every rank's sink
/// sees the identical stream; sinks there must behave identically across
/// ranks (a rank-divergent stop request or throw desyncs the SPMD
/// collectives).
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// One processed chunk's results. Return false to request a graceful
  /// stop: the run finishes this chunk's checkpoint hook, parks any
  /// prefetched chunks for the next run, and returns StopReason::
  /// SinkRequest — no data is lost.
  virtual bool on_snapshot(const AssessmentSnapshot& snapshot) = 0;

  /// Rvalue delivery: the engine discards the snapshot after a successful
  /// delivery, so a sink that stores snapshots may override this overload
  /// and take ownership instead of copying (CollectingSink does). The
  /// default observes through the const& overload. Parking note: when
  /// on_snapshot throws, the engine parks whatever the sink left in the
  /// snapshot — the default forwarder leaves it untouched, and
  /// std::vector's strong push_back guarantee makes move-taking sinks
  /// equally safe; an ownership-taking sink must not throw *after*
  /// consuming the snapshot.
  virtual bool on_snapshot(AssessmentSnapshot&& snapshot) {
    return on_snapshot(static_cast<const AssessmentSnapshot&>(snapshot));
  }

  /// The periodic checkpoint hook wrote `path` after the chunk whose
  /// snapshot (already delivered) had `chunk_index`.
  virtual void on_checkpoint_written(const std::string& path,
                                     std::size_t chunk_index) {
    (void)path;
    (void)chunk_index;
  }

  /// The run returned normally (not called when it unwinds on an error).
  virtual void on_end(const RunSummary& summary) { (void)summary; }
};

/// Sink that appends every snapshot to a vector. Binds an external vector
/// when given one, otherwise collects internally.
class CollectingSink final : public SnapshotSink {
 public:
  CollectingSink() : out_(&owned_) {}
  explicit CollectingSink(std::vector<AssessmentSnapshot>* out)
      : out_(out != nullptr ? out : &owned_) {}

  bool on_snapshot(const AssessmentSnapshot& snapshot) override {
    out_->push_back(snapshot);
    return true;
  }
  bool on_snapshot(AssessmentSnapshot&& snapshot) override {
    out_->push_back(std::move(snapshot));
    return true;
  }

  const std::vector<AssessmentSnapshot>& snapshots() const { return *out_; }
  std::vector<AssessmentSnapshot> take() { return std::move(*out_); }

 private:
  std::vector<AssessmentSnapshot> owned_;
  std::vector<AssessmentSnapshot>* out_;
};

/// Builder for the engine: per-model/stage options plus topology,
/// checkpointing, and ingestion. Plain fields with fluent setters — set
/// either way, then hand to Assessor's constructor (which validates).
struct AssessorConfig {
  /// Per-group model options plus the global baseline/z-score stage.
  PipelineOptions pipeline_options;
  /// Fleet-wide sensor count P. 0 means "infer from the first chunk",
  /// which is only legal for the single-process monolithic topology (the
  /// sharded partition and the distributed replica buffers both need P up
  /// front).
  std::size_t sensor_count = 0;
  /// Disjoint sensor groups that together cover [0, P) exactly once.
  /// Empty means one group of all sensors (the monolithic topology).
  std::vector<std::vector<std::size_t>> groups;
  /// Concurrent worker lanes the local group updates are spread across;
  /// lane l processes local groups l, l + lanes, ... in order. 0 = one
  /// lane per local group; clamped to the local group count.
  std::size_t lanes = 0;
  /// Non-null selects the distributed topology: groups are spread across
  /// the communicator's ranks (rank r owns rank_group_range(G, R, r)), and
  /// process/run become collective calls. Must outlive the Assessor.
  dist::Communicator* comm = nullptr;
  /// Periodic checkpointing during run() (disabled by default).
  CheckpointPolicy checkpoint_policy;
  /// Prefetch policy of the run loop.
  IngestOptions ingest_options;
  /// Pool the worker lanes run on; null = global_pool().
  ThreadPool* worker_pool = nullptr;
  /// Multifidelity hierarchy: > 0 enables the coarse facility model over
  /// every coarse_stride-th sensor of each group (core/model_stack.hpp);
  /// 0 is flat mode, bitwise identical to the pre-hierarchy engine. When
  /// hierarchy() is never called explicitly, the IMRDMD_HIERARCHY_STRIDE
  /// environment variable supplies the default (mirrors
  /// IMRDMD_LINALG_BACKEND, so CI can re-run whole suites hierarchical).
  std::size_t coarse_stride = 0;
  /// True once hierarchy() ran — the environment default then stays inert
  /// (checkpoint resume always sets it explicitly, so a restored stride
  /// can never be overridden by the environment).
  bool hierarchy_set = false;
  /// Non-empty selects the process-wide linalg backend at construction via
  /// linalg::set_active_backend ("reference", "avx2", "openblas", or a
  /// register_backend() name). Explicit selection here beats the
  /// IMRDMD_LINALG_BACKEND environment variable; empty leaves whatever is
  /// already active. Unknown names throw InvalidArgument from the
  /// constructor.
  std::string linalg_backend;

  AssessorConfig& pipeline(PipelineOptions options) {
    pipeline_options = std::move(options);
    return *this;
  }
  AssessorConfig& sensors(std::size_t count) {
    sensor_count = count;
    return *this;
  }
  /// One model over every sensor (the paper's monolithic pipeline).
  AssessorConfig& monolithic() {
    groups.clear();
    lanes = 1;
    return *this;
  }
  /// One model per sensor group, spread across `lane_count` worker lanes.
  AssessorConfig& sharded(std::vector<std::vector<std::size_t>> partition,
                          std::size_t lane_count = 0) {
    groups = std::move(partition);
    lanes = lane_count;
    return *this;
  }
  /// Spread the configured groups across the communicator's SPMD ranks.
  AssessorConfig& distributed(dist::Communicator& communicator) {
    comm = &communicator;
    return *this;
  }
  AssessorConfig& checkpoint(CheckpointPolicy policy) {
    checkpoint_policy = std::move(policy);
    return *this;
  }
  AssessorConfig& ingest(IngestOptions options) {
    ingest_options = options;
    return *this;
  }
  AssessorConfig& pool(ThreadPool* p) {
    worker_pool = p;
    return *this;
  }
  /// Two-level multifidelity hierarchy; stride 0 = flat (and pins flat
  /// against the environment default).
  AssessorConfig& hierarchy(std::size_t stride) {
    coarse_stride = stride;
    hierarchy_set = true;
    return *this;
  }
  AssessorConfig& linalg(std::string backend_name) {
    linalg_backend = std::move(backend_name);
    return *this;
  }
};

/// The unified streaming assessment engine. One instance owns the group
/// models, the replicated global z-score stage, and the carry/parking
/// no-data-loss state; process() folds one chunk in, run/run_until drive a
/// ChunkSource through the single run loop shared by every topology.
///
/// SPMD contract (distributed topology): every rank constructs the engine
/// with the same config and calls process()/run_until()/checkpoint entry
/// points collectively, in the same order. A rank that fails
/// mid-collective poisons the world (dist::CollectiveAborted) instead of
/// deadlocking.
class Assessor {
 public:
  /// Validates the configuration: the groups must partition [0, P); an
  /// armed checkpoint policy must carry a path; sensor_count may be 0
  /// (deferred to the first chunk) only for the single-process monolithic
  /// topology. InvalidArgument otherwise.
  explicit Assessor(AssessorConfig config);

  /// Processes one P x T_chunk chunk (the first call performs the initial
  /// fit of every group model). Rejects zero-column chunks and row-count
  /// changes with InvalidArgument. Collective in the distributed topology:
  /// every rank passes the same chunk (rank disagreement on width OR
  /// content — checked through a bitwise digest — fails on every rank
  /// together).
  AssessmentSnapshot process(const Mat& chunk);

  /// Pulls chunks from `source` until exhaustion, pushing each snapshot to
  /// `sink` (see SnapshotSink for the delivery contract). Prefetches up to
  /// IngestOptions::prefetch_depth chunks ahead on a producer thread. A
  /// mid-run failure loses nothing: chunks the prefetch already consumed
  /// are parked and consumed first by the next run, and a snapshot whose
  /// sink delivery threw is parked and delivered first by the next run.
  /// With the checkpoint policy armed, a checkpoint is written atomically
  /// after every N-th processed chunk — and the run fails fast (before
  /// pulling anything) if `source` cannot report a position to record.
  RunSummary run(ChunkSource& source, SnapshotSink& sink);

  /// run() with composable stop conditions; max_chunks is one among
  /// several (snapshot budget, wall-clock deadline, sink-requested stop).
  RunSummary run_until(ChunkSource& source, SnapshotSink& sink,
                       const StopCondition& stop);

  /// Distributed entry point. Under IngestMode::Broadcast and Scatterv,
  /// rank 0 owns `source` (non-null there, null elsewhere) and the chunk
  /// payload is shipped per the mode; under IngestMode::PerRank every rank
  /// passes its own source, which must yield exactly this rank's owned
  /// sensor rows (owned_sensor_rows() order — RowSliceSource over a full
  /// replica does). Every rank's sink sees the identical snapshot stream.
  /// Each chunk's agreement collective carries the source's stream
  /// position; a replica whose source has drifted (e.g. a resumed rank
  /// that was never seek'd) raises StreamDesync on every rank together
  /// instead of folding divergent data into replicated state. Also accepts
  /// the single-process topologies (where `source` must be non-null).
  RunSummary run_until(ChunkSource* source, SnapshotSink& sink,
                       const StopCondition& stop);

  /// Elastic growth: appends `new_rows_history.rows()` new sensors to
  /// global group `group`, mid-stream. The new sensors take the next
  /// machine indices [sensors(), sensors() + w); `new_rows_history` is
  /// their raw history, w x snapshots_processed() (the models require
  /// keep_history and at least one processed chunk). In hierarchy mode the
  /// replicated coarse model grows on every rank (the new block's coarse
  /// rows append at the END of the grid; see ModelStack::grow_coarse) and
  /// the owning rank extends its fine model with the residual history.
  /// Collective in the distributed topology: every rank passes the same
  /// arguments (checked through a digest agreement — disagreement fails on
  /// every rank together). Subsequent chunks must carry the grown width.
  void add_sensors(std::size_t group, const Mat& new_rows_history);

  /// The machine sensor indices this process owns, concatenated in global
  /// group order then group-list order — the row layout of the sliced
  /// ingestion modes, and the row list to hand RowSliceSource for
  /// IngestMode::PerRank.
  std::vector<std::size_t> owned_sensor_rows() const;

  // --- introspection ----------------------------------------------------

  const AssessorConfig& config() const { return config_; }
  /// 0 until the first chunk fixes a deferred sensor count.
  std::size_t sensors() const { return sensors_; }
  /// Empty until a deferred sensor count is fixed.
  const std::vector<std::vector<std::size_t>>& groups() const {
    return groups_;
  }
  std::size_t group_count() const { return groups_.size(); }
  /// Worker lanes the local group updates are spread across.
  std::size_t lanes() const { return lanes_; }
  bool distributed_topology() const { return comm_ != nullptr; }
  int rank() const { return comm_ != nullptr ? comm_->rank() : 0; }
  int ranks() const { return comm_ != nullptr ? comm_->size() : 1; }
  /// This process's owned global group range [first, second).
  std::pair<std::size_t, std::size_t> local_groups() const {
    return {local_begin_, local_end_};
  }
  /// Model of owned global group `group` (InvalidArgument when this
  /// process does not own it). In hierarchy mode this is the group's
  /// residual-level model.
  const IncrementalMrdmd& model(std::size_t group) const;
  /// True when the two-level hierarchy is enabled (effective stride > 0).
  bool hierarchical() const { return stack_.hierarchical(); }
  /// Effective coarse stride (config, or the environment default); 0 flat.
  std::size_t coarse_stride() const { return stack_.coarse_stride(); }
  /// The coarse facility model (InvalidArgument in flat mode). Replicated:
  /// identical on every rank of a distributed engine.
  const IncrementalMrdmd& coarse_model() const { return stack_.coarse(); }
  /// Chunks processed so far (the next snapshot's chunk_index).
  std::size_t chunks_processed() const { return chunks_processed_; }
  /// Snapshots folded into the group models so far — the stream position a
  /// checkpoint records (prefetch-safe: counts processed chunks only, not
  /// chunks the prefetch queue has already pulled from the source).
  std::size_t snapshots_processed() const { return snapshots_seen_; }

 private:
  /// Checkpoint/resume (core/checkpoint.hpp) reads the models and stage
  /// state, and installs restored state, through this single access point.
  friend struct CheckpointAccess;

  /// A pulled chunk traveling with the stream position it started at
  /// (kUnknownPosition when the source cannot report one) — what the
  /// distributed per-chunk agreement verifies across replicas.
  struct CarriedChunk {
    std::size_t start_position = ChunkSource::kUnknownPosition;
    Mat chunk;
  };

  /// Fixes the sensor count, builds/validates the partition and ownership
  /// range, and creates the local group models (kept if already created by
  /// the deferred-monolithic constructor path).
  void finalize_topology(std::size_t sensors);
  ThreadPool& pool() const;
  /// Runs this process's group updates across the local lanes (the
  /// cost-balanced lane_groups_ assignment).
  void update_local_groups(const Mat& chunk,
                           std::vector<MagnitudeUpdate>& updates);
  /// The full-chunk processing path (every single-process call, and the
  /// distributed Broadcast mode).
  AssessmentSnapshot process_chunk_full(const Mat& chunk);
  /// The row-sliced processing path (Scatterv/PerRank): `local_rows` is
  /// this rank's owned raw rows (owned_sensor_rows() order) and
  /// `coarse_chunk` the assembled coarse grid rows (empty in flat mode).
  AssessmentSnapshot process_chunk_sliced(const Mat& local_rows,
                                          const Mat& coarse_chunk,
                                          std::size_t cols);
  /// The shared tail of both paths: merge the per-group updates in
  /// deterministic group order (allgatherv in the distributed topology),
  /// run the replicated z-score stage, fold the lane cost model, capture
  /// the delta journal record (`raw_rows`: the owned raw rows; empty when
  /// the journal is disarmed), and advance the counters. `timer` is the
  /// caller's running fit timer (fit_seconds spans fit + merge).
  AssessmentSnapshot merge_and_score(std::vector<MagnitudeUpdate>& updates,
                                     CoarseUpdate&& coarse, const Mat& raw_rows,
                                     std::size_t cols, WallTimer timer);
  /// Rebuilds owned_rows_ / group_of_sensor_ / local_row_of_sensor_ from
  /// the current partition and ownership range.
  void rebuild_owned_maps();
  /// Verifies a chunk's agreed start position against the replicated
  /// expected stream position (StreamDesync on mismatch — deterministic,
  /// so every rank throws together) and advances the expectation.
  void check_stream_position(std::size_t start, std::size_t cols);
  /// Assembles the full coarse grid rows from each rank's owned slice
  /// (one allgatherv; grid row order, bitwise what update_coarse would
  /// subsample from the full chunk).
  Mat assemble_coarse(const Mat& local_rows, std::size_t cols);
  /// Recomputes the cost-balanced lane assignment (LPT greedy over
  /// width x observed-update-time EWMA; width alone before the first
  /// chunk). Deterministic given the cost vector; outputs are bitwise
  /// invariant under ANY assignment, so rebalancing never changes results.
  void rebalance_lanes();
  /// Delivers one snapshot to the sink, parking it for redelivery if the
  /// sink throws. Returns the sink's keep-going verdict.
  bool deliver(SnapshotSink& sink, AssessmentSnapshot&& snapshot,
               RunSummary& summary);
  /// The periodic checkpoint hook (dispatches on topology), followed by a
  /// lane rebalance at the same boundary.
  void maybe_checkpoint(SnapshotSink& sink, std::size_t chunk_index);

  AssessorConfig config_;
  dist::Communicator* comm_ = nullptr;
  std::size_t sensors_ = 0;
  /// The FULL global partition (every process knows every group's sensor
  /// list; only the owned range has models). Empty while a deferred sensor
  /// count is pending.
  std::vector<std::vector<std::size_t>> groups_;
  std::size_t local_begin_ = 0;
  std::size_t local_end_ = 0;
  std::size_t lanes_ = 1;
  /// True for the trivial partition {0..P-1}: chunks bypass the row gather.
  bool identity_partition_ = false;
  /// Owned machine sensor indices, group order then group-list order — the
  /// row layout of the sliced ingestion modes and the delta journal.
  std::vector<std::size_t> owned_rows_;
  /// Machine sensor index -> owning global group (replicated).
  std::vector<std::size_t> group_of_sensor_;
  /// Machine sensor index -> row offset inside this rank's owned slice
  /// (npos when not owned).
  std::vector<std::size_t> local_row_of_sensor_;
  /// Cost-balanced lane assignment: lane_groups_[lane] lists the LOCAL
  /// group indices that lane updates, ascending. Recomputed at checkpoint
  /// boundaries from group_cost_ewma_; results are bitwise invariant under
  /// any assignment (merge order is global group order regardless).
  std::vector<std::vector<std::size_t>> lane_groups_;
  /// Per-local-group EWMA of the observed model-update seconds (0 until
  /// the first chunk; the initial assignment then balances width alone).
  std::vector<double> group_cost_ewma_;
  /// The replicated expected stream position of the next chunk
  /// (kUnknownPosition until a position is first observed or a resume sets
  /// it); the distributed per-chunk agreement raises StreamDesync when a
  /// chunk's agreed start disagrees.
  std::size_t stream_expect_ = ChunkSource::kUnknownPosition;
  /// Chunks the prefetch queue consumed before a failure or early stop;
  /// the next run consumes them, in order, before advancing the source.
  std::deque<CarriedChunk> carry_chunks_;
  // --- delta-checkpoint journal (CheckpointPolicy::delta; bookkeeping is
  // mutable because the container writer folds it under a const engine) ---
  /// Owned raw rows of each chunk processed since the last delta save.
  mutable std::vector<Mat> delta_pending_;
  /// True once this engine wrote its base record into the current epoch's
  /// part file; saves then append the pending records instead.
  mutable bool delta_base_written_ = false;
  /// Forces the next delta save to rewrite the base (set by add_sensors:
  /// the row layout changed, so pending records cannot extend the old
  /// base).
  mutable bool delta_force_compact_ = false;
  /// chunks_processed_/snapshots_seen_ at the moment the base was written.
  mutable std::size_t delta_base_chunks_ = 0;
  mutable std::size_t delta_base_position_ = 0;
  /// Epoch id (chunks_processed_ at base write) naming the part files.
  mutable std::size_t delta_epoch_ = 0;
  /// Bytes written to this rank's part file so far, and the running
  /// FNV-1a64 digest over them — recorded in the main file so a torn
  /// append is truncated away on load.
  mutable std::uint64_t delta_part_bytes_ = 0;
  mutable std::uint64_t delta_part_digest_ = 0;
  /// Snapshots whose sink delivery threw; delivered first (front to back)
  /// by the next run — the models have already folded those chunks in, so
  /// the results cannot be regenerated.
  std::deque<AssessmentSnapshot> parked_snapshots_;
  /// The two-level model stack: fine models of the owned groups only
  /// (local index l = global group local_begin_ + l; stable addresses, so
  /// pool tasks may hold raw pointers across an engine move) plus the
  /// optional coarse facility model, replicated per engine replica.
  ModelStack stack_;
  /// Replicated in the distributed topology: every rank feeds it the same
  /// merged bytes, so the state stays identical across ranks.
  BaselineZscoreStage zscore_stage_;
  std::size_t chunks_processed_ = 0;
  std::size_t snapshots_seen_ = 0;
};

/// Partitions [0, sensors) into `count` contiguous, near-equal groups (the
/// first `sensors % count` groups get one extra sensor).
std::vector<std::vector<std::size_t>> contiguous_groups(std::size_t sensors,
                                                        std::size_t count);

/// Deterministic contiguous assignment of `groups` global group indices to
/// `ranks` SPMD ranks: rank r owns the half-open range [first, second) of
/// group indices, near-equal (the first `groups % ranks` ranks get one
/// extra). Ranks beyond the group count own the empty range. A pure
/// function of (groups, ranks, rank) — every rank computes the same map
/// with no communication, and checkpoint resume at a different rank count
/// re-derives ownership from the same rule.
std::pair<std::size_t, std::size_t> rank_group_range(std::size_t groups,
                                                     std::size_t ranks,
                                                     std::size_t rank);

}  // namespace imrdmd::core
