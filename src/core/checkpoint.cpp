#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace imrdmd::core {

namespace {

constexpr char kMagic[8] = {'I', 'M', 'R', 'D', 'M', 'D', '1', '\n'};

// --- primitive writers/readers (little-endian native; the format is not
// exchanged across architectures) -------------------------------------

void put_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void put_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

// Reader that tracks how many bytes remain in the stream so every
// length-prefixed section can be bounded *before* it drives an allocation or
// a read past EOF: a truncated or corrupted header then yields the
// documented ParseError instead of a huge allocation / bad_alloc.
class BoundedReader {
 public:
  static constexpr std::uint64_t kUnknown = ~std::uint64_t{0};

  explicit BoundedReader(std::istream& in) : in_(in) {
    const std::istream::pos_type pos = in_.tellg();
    if (pos == std::istream::pos_type(-1)) return;  // non-seekable
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos) {
      remaining_ = static_cast<std::uint64_t>(end - pos);
    }
  }

  /// Bytes left in the stream (kUnknown when the stream is not seekable).
  std::uint64_t remaining() const { return remaining_; }

  /// Throws ParseError unless `bytes` more bytes are known to be available.
  /// A non-seekable stream has no exact size, so sections there are held to
  /// a hard ceiling instead — a corrupted header may still waste up to the
  /// ceiling, but never a fantasy-sized allocation.
  void require(std::uint64_t bytes, const char* what) const {
    constexpr std::uint64_t kMaxUnknownSection = std::uint64_t{1} << 30;
    const std::uint64_t limit =
        remaining_ == kUnknown ? kMaxUnknownSection : remaining_;
    if (bytes > limit) {
      throw ParseError(std::string("checkpoint truncated (") + what + ")");
    }
  }

  void read(char* dst, std::uint64_t bytes, const char* what) {
    require(bytes, what);
    in_.read(dst, static_cast<std::streamsize>(bytes));
    if (!in_) {
      throw ParseError(std::string("checkpoint truncated (") + what + ")");
    }
    if (remaining_ != kUnknown) remaining_ -= bytes;
  }

 private:
  std::istream& in_;
  std::uint64_t remaining_ = kUnknown;
};

std::uint64_t get_u64(BoundedReader& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value, "u64");
  return value;
}

double get_f64(BoundedReader& in) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value, "f64");
  return value;
}

void put_mat(std::ostream& out, const linalg::Mat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

linalg::Mat get_mat(BoundedReader& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  in.require(rows * cols * sizeof(double), "matrix");
  linalg::Mat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()), m.size() * sizeof(double),
          "matrix");
  return m;
}

void put_cmat(std::ostream& out, const linalg::CMat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(linalg::Complex)));
}

linalg::CMat get_cmat(BoundedReader& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  in.require(rows * cols * sizeof(linalg::Complex), "complex matrix");
  linalg::CMat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          m.size() * sizeof(linalg::Complex), "complex matrix");
  return m;
}

void put_node(std::ostream& out, const MrdmdNode& node) {
  put_u64(out, node.level);
  put_u64(out, node.bin_index);
  put_u64(out, node.t_begin);
  put_u64(out, node.t_end);
  put_u64(out, node.stride);
  put_f64(out, node.rho);
  put_u64(out, node.svd_rank);
  put_cmat(out, node.modes);
  put_u64(out, node.eigenvalues.size());
  for (const auto& value : node.eigenvalues) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
  for (const auto& value : node.amplitudes) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
}

MrdmdNode get_node(BoundedReader& in) {
  MrdmdNode node;
  node.level = get_u64(in);
  node.bin_index = get_u64(in);
  node.t_begin = get_u64(in);
  node.t_end = get_u64(in);
  node.stride = get_u64(in);
  node.rho = get_f64(in);
  node.svd_rank = get_u64(in);
  node.modes = get_cmat(in);
  const std::uint64_t modes = get_u64(in);
  // Each mode carries 4 doubles (eigenvalue + amplitude, re/im); bound the
  // count before resize so a garbage prefix cannot drive the allocation.
  if (modes > (1u << 26)) throw ParseError("checkpoint mode count implausible");
  in.require(modes * 4 * sizeof(double), "node modes");
  node.eigenvalues.resize(modes);
  node.amplitudes.resize(modes);
  for (auto& value : node.eigenvalues) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  for (auto& value : node.amplitudes) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  return node;
}

}  // namespace

void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model) {
  IMRDMD_REQUIRE_ARG(model.fitted(), "cannot checkpoint an unfitted model");
  out.write(kMagic, sizeof kMagic);

  // Options.
  const ImrdmdOptions& options = model.options_;
  put_u64(out, options.mrdmd.max_levels);
  put_u64(out, options.mrdmd.max_cycles);
  put_u64(out, options.mrdmd.use_svht ? 1 : 0);
  put_u64(out, options.mrdmd.max_rank);
  put_f64(out, options.mrdmd.dt);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.criterion));
  put_u64(out, options.mrdmd.parallel_bins ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.amplitude_fit));
  put_u64(out, options.isvd.max_rank);
  put_f64(out, options.isvd.truncation_tol);
  put_f64(out, options.drift_threshold);
  put_u64(out, options.recompute_on_drift ? 1 : 0);
  put_u64(out, options.keep_history ? 1 : 0);

  // Scalars.
  put_u64(out, model.sensors_);
  put_u64(out, model.time_steps_);
  put_u64(out, model.stride1_);

  // Level-1 state.
  put_mat(out, model.grid_);
  put_mat(out, model.isvd_.u());
  put_u64(out, model.isvd_.s().size());
  for (double s : model.isvd_.s()) put_f64(out, s);
  put_mat(out, model.isvd_.v());
  put_u64(out, model.isvd_.cols_seen());

  // Tree + caches.
  put_u64(out, model.nodes_.size());
  for (const MrdmdNode& node : model.nodes_) put_node(out, node);
  put_mat(out, model.cached_grid_recon_);
  put_mat(out, model.history_);

  if (!out) throw Error("checkpoint write failed");
}

IncrementalMrdmd load_checkpoint(std::istream& raw) {
  BoundedReader in(raw);
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("not an imrdmd checkpoint (bad magic)");
  }

  ImrdmdOptions options;
  options.mrdmd.max_levels = get_u64(in);
  options.mrdmd.max_cycles = get_u64(in);
  options.mrdmd.use_svht = get_u64(in) != 0;
  options.mrdmd.max_rank = get_u64(in);
  options.mrdmd.dt = get_f64(in);
  options.mrdmd.criterion = static_cast<SlowModeCriterion>(get_u64(in));
  options.mrdmd.parallel_bins = get_u64(in) != 0;
  options.mrdmd.amplitude_fit = static_cast<dmd::AmplitudeFit>(get_u64(in));
  options.isvd.max_rank = get_u64(in);
  options.isvd.truncation_tol = get_f64(in);
  options.drift_threshold = get_f64(in);
  options.recompute_on_drift = get_u64(in) != 0;
  options.keep_history = get_u64(in) != 0;

  IncrementalMrdmd model(options);
  model.sensors_ = get_u64(in);
  model.time_steps_ = get_u64(in);
  model.stride1_ = get_u64(in);

  model.grid_ = get_mat(in);
  linalg::Mat u = get_mat(in);
  const std::uint64_t rank = get_u64(in);
  if (rank > (1u << 26)) throw ParseError("checkpoint rank implausible");
  in.require(rank * sizeof(double), "singular values");
  std::vector<double> s(rank);
  for (auto& value : s) value = get_f64(in);
  linalg::Mat v = get_mat(in);
  const std::uint64_t cols_seen = get_u64(in);
  model.isvd_ = isvd::Isvd::from_state(options.isvd, std::move(u),
                                       std::move(s), std::move(v), cols_seen);

  const std::uint64_t node_count = get_u64(in);
  if (node_count == 0) throw ParseError("checkpoint has no tree nodes");
  // A node serializes to at least its 7 fixed words; bound the count before
  // reserving so a corrupted header cannot drive a huge allocation.
  if (node_count > (1u << 26)) {
    throw ParseError("checkpoint node count implausible");
  }
  in.require(node_count * 7 * sizeof(std::uint64_t), "tree nodes");
  // Cap the up-front reservation: the stream-byte bound above says nothing
  // about in-memory node size, so a garbage count within it could still
  // reserve GiBs. Growth past the cap amortizes normally.
  model.nodes_.reserve(std::min<std::uint64_t>(node_count, 1u << 16));
  for (std::uint64_t i = 0; i < node_count; ++i) {
    model.nodes_.push_back(get_node(in));
  }
  model.cached_grid_recon_ = get_mat(in);
  model.history_ = get_mat(in);
  model.fitted_ = true;

  // Consistency checks: the restored state must be internally coherent.
  if (model.nodes_[0].t_end != model.time_steps_ ||
      model.nodes_[0].level != 1) {
    throw ParseError("checkpoint root node inconsistent");
  }
  if (model.isvd_.v().rows() + 1 != model.grid_.cols()) {
    throw ParseError("checkpoint iSVD out of sync with the level-1 grid");
  }
  return model;
}

void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open checkpoint for writing: " + path);
  save_checkpoint(out, model);
}

IncrementalMrdmd load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint for reading: " + path);
  return load_checkpoint(in);
}

}  // namespace imrdmd::core
