#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace imrdmd::core {

namespace {

constexpr char kMagic[8] = {'I', 'M', 'R', 'D', 'M', 'D', '1', '\n'};
constexpr char kPipelineMagic[8] = {'I', 'M', 'R', 'D', 'P', 'L', '1', '\n'};
constexpr char kFleetMagic[8] = {'I', 'M', 'R', 'D', 'F', 'L', '1', '\n'};
// V2 = V1 plus a hierarchy section (coarse stride + one coarse-model
// section) between the group partition and the per-group model sections.
// Written only by hierarchical engines, so every flat save stays
// byte-identical to the V1 generation.
constexpr char kFleetMagic2[8] = {'I', 'M', 'R', 'D', 'F', 'L', '2', '\n'};
// V3 = the rank-local delta container (CheckpointPolicy::delta): the main
// file holds only the header, partition, hierarchy map, and a manifest of
// per-writer part files (<path>.r<writer>.e<epoch>) that each hold one
// process's model sections (the base) plus the raw rows of every chunk
// processed since (the deltas). Saving appends O(chunk) bytes per rank
// instead of gathering O(model history) to rank 0; loading replays the
// deltas through the restored base. The main file is atomically rewritten
// on every save and references its parts by exact byte count and digest,
// so a torn append is truncated away and a crash between a base rewrite
// and the main rewrite leaves the previous epoch's files authoritative.
constexpr char kFleetMagic3[8] = {'I', 'M', 'R', 'D', 'F', 'L', '3', '\n'};
constexpr char kPartMagic[8] = {'I', 'M', 'R', 'D', 'P', 'T', '3', '\n'};

// --- primitive writers/readers (little-endian native; the format is not
// exchanged across architectures) -------------------------------------

void put_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void put_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

// Reader that tracks how many bytes remain in the stream so every
// length-prefixed section can be bounded *before* it drives an allocation or
// a read past EOF: a truncated or corrupted header then yields the
// documented ParseError instead of a huge allocation / bad_alloc.
class BoundedReader {
 public:
  static constexpr std::uint64_t kUnknown = ~std::uint64_t{0};

  explicit BoundedReader(std::istream& in) : in_(in) {
    const std::istream::pos_type pos = in_.tellg();
    if (pos == std::istream::pos_type(-1)) return;  // non-seekable
    in_.seekg(0, std::ios::end);
    const std::istream::pos_type end = in_.tellg();
    in_.seekg(pos);
    if (end != std::istream::pos_type(-1) && end >= pos) {
      remaining_ = static_cast<std::uint64_t>(end - pos);
    }
  }

  /// Bytes left in the stream (kUnknown when the stream is not seekable).
  std::uint64_t remaining() const { return remaining_; }

  /// Throws ParseError unless `bytes` more bytes are known to be available.
  /// A non-seekable stream has no exact size, so sections there are held to
  /// a hard ceiling instead — a corrupted header may still waste up to the
  /// ceiling, but never a fantasy-sized allocation.
  void require(std::uint64_t bytes, const char* what) const {
    constexpr std::uint64_t kMaxUnknownSection = std::uint64_t{1} << 30;
    const std::uint64_t limit =
        remaining_ == kUnknown ? kMaxUnknownSection : remaining_;
    if (bytes > limit) {
      throw ParseError(std::string("checkpoint truncated (") + what + ")");
    }
  }

  void read(char* dst, std::uint64_t bytes, const char* what) {
    require(bytes, what);
    in_.read(dst, static_cast<std::streamsize>(bytes));
    if (!in_) {
      throw ParseError(std::string("checkpoint truncated (") + what + ")");
    }
    if (remaining_ != kUnknown) remaining_ -= bytes;
  }

 private:
  std::istream& in_;
  std::uint64_t remaining_ = kUnknown;
};

std::uint64_t get_u64(BoundedReader& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value, "u64");
  return value;
}

double get_f64(BoundedReader& in) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value, "f64");
  return value;
}

void put_mat(std::ostream& out, const linalg::Mat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

linalg::Mat get_mat(BoundedReader& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  in.require(rows * cols * sizeof(double), "matrix");
  linalg::Mat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()), m.size() * sizeof(double),
          "matrix");
  return m;
}

void put_cmat(std::ostream& out, const linalg::CMat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(linalg::Complex)));
}

linalg::CMat get_cmat(BoundedReader& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  in.require(rows * cols * sizeof(linalg::Complex), "complex matrix");
  linalg::CMat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          m.size() * sizeof(linalg::Complex), "complex matrix");
  return m;
}

void put_node(std::ostream& out, const MrdmdNode& node) {
  put_u64(out, node.level);
  put_u64(out, node.bin_index);
  put_u64(out, node.t_begin);
  put_u64(out, node.t_end);
  put_u64(out, node.stride);
  put_f64(out, node.rho);
  put_u64(out, node.svd_rank);
  put_cmat(out, node.modes);
  put_u64(out, node.eigenvalues.size());
  for (const auto& value : node.eigenvalues) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
  for (const auto& value : node.amplitudes) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
}

MrdmdNode get_node(BoundedReader& in) {
  MrdmdNode node;
  node.level = get_u64(in);
  node.bin_index = get_u64(in);
  node.t_begin = get_u64(in);
  node.t_end = get_u64(in);
  node.stride = get_u64(in);
  node.rho = get_f64(in);
  node.svd_rank = get_u64(in);
  node.modes = get_cmat(in);
  const std::uint64_t modes = get_u64(in);
  // Each mode carries 4 doubles (eigenvalue + amplitude, re/im); bound the
  // count before resize so a garbage prefix cannot drive the allocation.
  if (modes > (1u << 26)) throw ParseError("checkpoint mode count implausible");
  in.require(modes * 4 * sizeof(double), "node modes");
  node.eigenvalues.resize(modes);
  node.amplitudes.resize(modes);
  for (auto& value : node.eigenvalues) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  for (auto& value : node.amplitudes) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  return node;
}

// --- stage options / stage state (shared by pipeline + fleet headers) ---

void put_stage_options(std::ostream& out, const PipelineOptions& options) {
  put_f64(out, options.band.min_frequency_hz);
  put_f64(out, options.band.max_frequency_hz);
  put_f64(out, options.band.min_power);
  put_f64(out, options.baseline.value_min);
  put_f64(out, options.baseline.value_max);
  put_f64(out, options.zscore.near_band);
  put_f64(out, options.zscore.hot_threshold);
  put_u64(out, options.reselect_baseline_per_chunk ? 1 : 0);
}

void get_stage_options(BoundedReader& in, PipelineOptions& options) {
  options.band.min_frequency_hz = get_f64(in);
  options.band.max_frequency_hz = get_f64(in);
  options.band.min_power = get_f64(in);
  options.baseline.value_min = get_f64(in);
  options.baseline.value_max = get_f64(in);
  options.zscore.near_band = get_f64(in);
  options.zscore.hot_threshold = get_f64(in);
  options.reselect_baseline_per_chunk = get_u64(in) != 0;
}

void put_stage_state(std::ostream& out,
                     const BaselineZscoreStage::State& state) {
  put_u64(out, state.selected_once ? 1 : 0);
  put_u64(out, state.baseline_sensors.size());
  for (std::size_t sensor : state.baseline_sensors) put_u64(out, sensor);
}

BaselineZscoreStage::State get_stage_state(BoundedReader& in) {
  BaselineZscoreStage::State state;
  state.selected_once = get_u64(in) != 0;
  const std::uint64_t count = get_u64(in);
  if (count > (1u << 26)) {
    throw ParseError("checkpoint baseline population implausible");
  }
  in.require(count * sizeof(std::uint64_t), "baseline population");
  state.baseline_sensors.resize(count);
  for (auto& sensor : state.baseline_sensors) {
    sensor = static_cast<std::size_t>(get_u64(in));
  }
  return state;
}

/// Everything a pipeline or fleet container parses before assembly. A
/// pipeline-kind parse holds one model and the trivial identity partition,
/// so either kind can assemble into any topology.
struct ParsedCheckpoint {
  PipelineOptions stage_options;  // band/baseline/zscore/reselect only
  std::uint64_t chunks_processed = 0;
  std::uint64_t stream_position = 0;
  BaselineZscoreStage::State stage_state;
  std::uint64_t sensors = 0;
  std::vector<std::vector<std::size_t>> groups;
  std::vector<IncrementalMrdmd> models;
  /// Hierarchy section (V2/V3 containers): 0 = flat stack.
  std::uint64_t coarse_stride = 0;
  std::optional<IncrementalMrdmd> coarse_model;
  /// Explicit coarse grid + interpolation map (V3 only; empty grid =
  /// canonical, i.e. re-derivable as ModelStack::coarse_grid(groups,
  /// stride)). Carried because elastic growth appends grid rows the pure
  /// function cannot reproduce.
  std::vector<std::size_t> coarse_grid_rows;
  std::vector<std::uint64_t> interp_lo;
  std::vector<std::uint64_t> interp_hi;
  std::vector<double> interp_w;
};

// --- delta-container primitives ----------------------------------------

constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a64 fold of `bytes` over a running digest — how the V3 main file
/// fingerprints its part files so a torn or corrupted part fails the load
/// instead of silently replaying garbage.
std::uint64_t fnv1a64(std::uint64_t digest, const char* bytes,
                      std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    digest ^= static_cast<unsigned char>(bytes[i]);
    digest *= kFnvPrime;
  }
  return digest;
}

/// The sidecar part file of writer `writer` in epoch `epoch`:
/// <path>.r<writer>.e<epoch>. A base rewrite bumps the epoch, so the files
/// the previous main references are never overwritten in place.
std::string part_path(const std::string& path, std::size_t writer,
                      std::size_t epoch) {
  return path + ".r" + std::to_string(writer) + ".e" + std::to_string(epoch);
}

void put_header(std::ostream& out, const PipelineOptions& options,
                std::uint64_t chunks_processed, std::uint64_t stream_position,
                const BaselineZscoreStage::State& state) {
  put_stage_options(out, options);
  put_u64(out, chunks_processed);
  put_u64(out, stream_position);
  put_stage_state(out, state);
}

void get_header(BoundedReader& in, ParsedCheckpoint& parsed) {
  get_stage_options(in, parsed.stage_options);
  parsed.chunks_processed = get_u64(in);
  parsed.stream_position = get_u64(in);
  parsed.stage_state = get_stage_state(in);
  if (parsed.chunks_processed == 0) {
    throw ParseError("checkpoint has no processed chunks");
  }
}

}  // namespace

/// Single access point for every private member the checkpoint module
/// serializes: the model internals (IncrementalMrdmd) and the unified
/// engine's model stack, stage, counters, and lane structure (Assessor /
/// ModelStack). Defined only in this translation unit.
struct CheckpointAccess {
  /// `parallel_bins_override`, when non-null, is written in place of the
  /// model's own mrdmd.parallel_bins. The engine forces that knob off on
  /// its models as a nested-pool guard — a function of the LOCAL lane
  /// count, which differs across lane/rank configurations — so model
  /// sections canonicalize it to the configured pipeline value: checkpoint
  /// bytes stay a pure function of stream + partition + options, invariant
  /// across lane and rank counts.
  static void put_model(std::ostream& out, const IncrementalMrdmd& model,
                        const bool* parallel_bins_override = nullptr);
  static IncrementalMrdmd get_model(BoundedReader& in);
  /// The legacy "IMRDPL1" container over a flat monolithic engine.
  static void save_pipeline_container(std::ostream& out,
                                      const Assessor& assessor);
  /// The "IMRDFL1"/"IMRDFL2" container over any single-process engine.
  static void save_single(std::ostream& out, const Assessor& assessor);
  /// Collective save of a distributed-topology engine (same bytes).
  static void save_distributed(std::ostream* out, const Assessor& assessor);
  /// The "IMRDFL3" rank-local delta container: every process writes (or
  /// appends to) its own part file; rank 0 atomically rewrites the main
  /// manifest. Collective in the distributed topology.
  static void save_fleet3(const std::string& path, const Assessor& assessor);
  /// Loads an "IMRDFL3" container (`in` is the main file, magic already
  /// consumed): restores the base models from the part files, replays the
  /// journaled delta chunks through them, and validates the result against
  /// the manifest's final counters.
  static RestoredAssessor load_fleet3(const std::string& path,
                                      BoundedReader& in,
                                      dist::Communicator* comm,
                                      const AssessorResumeOptions& resume);
  /// Builds an engine of any topology from a parsed container.
  static RestoredAssessor assemble(ParsedCheckpoint parsed,
                                   dist::Communicator* comm,
                                   const AssessorResumeOptions& resume);
  static BaselineZscoreStage::State stage_state(const Assessor& assessor) {
    return assessor.zscore_stage_.state();
  }
};

namespace {

/// Load-time validation of the restored baseline selection: the fail-fast
/// contract is ParseError *at load*, not a DimensionError chunks later
/// inside the resumed stream's first z-scoring. The saved population is
/// strictly ascending (select_baseline_sensors walks sensors in order), so
/// anything else is corruption.
void check_stage_state(const ParsedCheckpoint& parsed) {
  const auto& sensors = parsed.stage_state.baseline_sensors;
  for (std::size_t i = 0; i < sensors.size(); ++i) {
    if (sensors[i] >= parsed.sensors ||
        (i > 0 && sensors[i] <= sensors[i - 1])) {
      throw ParseError("checkpoint baseline population corrupt");
    }
  }
}

/// Reads one length-prefixed model image, bounding the declared length
/// against the remaining stream before parsing and verifying afterwards
/// that the parse consumed exactly the declared bytes.
IncrementalMrdmd get_model_section(BoundedReader& in, const char* what) {
  const std::uint64_t length = get_u64(in);
  in.require(length, what);
  const std::uint64_t before = in.remaining();
  IncrementalMrdmd model = CheckpointAccess::get_model(in);
  if (before != BoundedReader::kUnknown && before - in.remaining() != length) {
    throw ParseError(std::string("checkpoint section length mismatch (") +
                     what + ")");
  }
  return model;
}

ParsedCheckpoint parse_pipeline_body(BoundedReader& in) {
  ParsedCheckpoint parsed;
  get_header(in, parsed);
  parsed.models.push_back(get_model_section(in, "pipeline model section"));
  if (parsed.models[0].time_steps() != parsed.stream_position) {
    throw ParseError("checkpoint stream position disagrees with the model");
  }
  parsed.sensors = parsed.models[0].sensors();
  parsed.groups.emplace_back();
  parsed.groups[0].reserve(parsed.sensors);
  for (std::size_t p = 0; p < parsed.sensors; ++p) {
    parsed.groups[0].push_back(p);
  }
  check_stage_state(parsed);
  return parsed;
}

/// Reads the sensor count + group partition shared by every fleet
/// container generation (V1/V2/V3), with the same bounded validation.
void parse_fleet_partition(BoundedReader& in, ParsedCheckpoint& parsed) {
  parsed.sensors = get_u64(in);
  if (parsed.sensors == 0 || parsed.sensors > (std::uint64_t{1} << 32)) {
    throw ParseError("fleet checkpoint sensor count implausible");
  }
  const std::uint64_t group_count = get_u64(in);
  if (group_count == 0 || group_count > parsed.sensors) {
    throw ParseError("fleet checkpoint group count implausible");
  }
  // Every group carries at least its size word; a partition of `sensors`
  // carries exactly `sensors` index words in total. Bound both before any
  // group drives an allocation.
  in.require((group_count + parsed.sensors) * sizeof(std::uint64_t),
             "fleet groups");
  parsed.groups.resize(group_count);
  for (auto& group : parsed.groups) {
    const std::uint64_t size = get_u64(in);
    if (size > parsed.sensors) {
      throw ParseError("fleet checkpoint group size implausible");
    }
    in.require(size * sizeof(std::uint64_t), "fleet group");
    group.resize(size);
    for (auto& sensor : group) {
      sensor = static_cast<std::size_t>(get_u64(in));
      if (sensor >= parsed.sensors) {
        throw ParseError("fleet checkpoint group sensor index out of range");
      }
    }
  }
}

ParsedCheckpoint parse_fleet_body(BoundedReader& in, bool v2) {
  ParsedCheckpoint parsed;
  get_header(in, parsed);
  parse_fleet_partition(in, parsed);
  if (v2) {
    // Hierarchy section: the stride and the replicated coarse model. A V2
    // container with a disabled stride would be a V1 spelled wrong (and
    // would break resave byte-identity), so it is rejected as corrupt.
    parsed.coarse_stride = get_u64(in);
    if (parsed.coarse_stride == 0 ||
        parsed.coarse_stride > (std::uint64_t{1} << 32)) {
      throw ParseError("fleet checkpoint coarse stride implausible");
    }
    parsed.coarse_model =
        get_model_section(in, "fleet coarse model section");
    const std::size_t coarse_rows =
        ModelStack::coarse_grid(parsed.groups,
                                static_cast<std::size_t>(
                                    parsed.coarse_stride))
            .size();
    if (parsed.coarse_model->sensors() != coarse_rows) {
      throw ParseError(
          "fleet coarse section row count disagrees with the partition");
    }
    if (parsed.coarse_model->time_steps() != parsed.stream_position) {
      throw ParseError(
          "fleet checkpoint stream position disagrees with the coarse "
          "model");
    }
  }
  const std::size_t group_count = parsed.groups.size();
  parsed.models.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    parsed.models.push_back(get_model_section(in, "fleet model section"));
    if (parsed.models.back().sensors() != parsed.groups[g].size()) {
      throw ParseError("fleet section row count disagrees with its group");
    }
    if (parsed.models.back().time_steps() != parsed.stream_position) {
      throw ParseError("fleet checkpoint stream position disagrees with a "
                       "group model");
    }
  }
  check_stage_state(parsed);
  return parsed;
}

ParsedCheckpoint parse_any(BoundedReader& in) {
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kPipelineMagic, sizeof magic) == 0) {
    return parse_pipeline_body(in);
  }
  if (std::memcmp(magic, kFleetMagic, sizeof magic) == 0) {
    return parse_fleet_body(in, /*v2=*/false);
  }
  if (std::memcmp(magic, kFleetMagic2, sizeof magic) == 0) {
    return parse_fleet_body(in, /*v2=*/true);
  }
  if (std::memcmp(magic, kFleetMagic3, sizeof magic) == 0) {
    throw ParseError(
        "the IMRDFL3 delta container references sidecar part files; load "
        "it through the file-path API");
  }
  throw ParseError("not an imrdmd pipeline/fleet checkpoint (bad magic)");
}

}  // namespace

void CheckpointAccess::put_model(std::ostream& out,
                                 const IncrementalMrdmd& model,
                                 const bool* parallel_bins_override) {
  IMRDMD_REQUIRE_ARG(model.fitted(), "cannot checkpoint an unfitted model");
  out.write(kMagic, sizeof kMagic);

  // Options.
  const ImrdmdOptions& options = model.options_;
  const bool parallel_bins = parallel_bins_override != nullptr
                                 ? *parallel_bins_override
                                 : options.mrdmd.parallel_bins;
  put_u64(out, options.mrdmd.max_levels);
  put_u64(out, options.mrdmd.max_cycles);
  put_u64(out, options.mrdmd.use_svht ? 1 : 0);
  put_u64(out, options.mrdmd.max_rank);
  put_f64(out, options.mrdmd.dt);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.criterion));
  put_u64(out, parallel_bins ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.amplitude_fit));
  put_u64(out, options.isvd.max_rank);
  put_f64(out, options.isvd.truncation_tol);
  put_f64(out, options.drift_threshold);
  put_u64(out, options.recompute_on_drift ? 1 : 0);
  put_u64(out, options.keep_history ? 1 : 0);

  // Scalars.
  put_u64(out, model.sensors_);
  put_u64(out, model.time_steps_);
  put_u64(out, model.stride1_);

  // Level-1 state.
  put_mat(out, model.grid_);
  put_mat(out, model.isvd_.u());
  put_u64(out, model.isvd_.s().size());
  for (double s : model.isvd_.s()) put_f64(out, s);
  put_mat(out, model.isvd_.v());
  put_u64(out, model.isvd_.cols_seen());

  // Tree + caches.
  put_u64(out, model.nodes_.size());
  for (const MrdmdNode& node : model.nodes_) put_node(out, node);
  put_mat(out, model.cached_grid_recon_);
  put_mat(out, model.history_);
}

IncrementalMrdmd CheckpointAccess::get_model(BoundedReader& in) {
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic, "magic");
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("not an imrdmd checkpoint (bad magic)");
  }

  ImrdmdOptions options;
  options.mrdmd.max_levels = get_u64(in);
  options.mrdmd.max_cycles = get_u64(in);
  options.mrdmd.use_svht = get_u64(in) != 0;
  options.mrdmd.max_rank = get_u64(in);
  options.mrdmd.dt = get_f64(in);
  options.mrdmd.criterion = static_cast<SlowModeCriterion>(get_u64(in));
  options.mrdmd.parallel_bins = get_u64(in) != 0;
  options.mrdmd.amplitude_fit = static_cast<dmd::AmplitudeFit>(get_u64(in));
  options.isvd.max_rank = get_u64(in);
  options.isvd.truncation_tol = get_f64(in);
  options.drift_threshold = get_f64(in);
  options.recompute_on_drift = get_u64(in) != 0;
  options.keep_history = get_u64(in) != 0;

  IncrementalMrdmd model(options);
  model.sensors_ = get_u64(in);
  model.time_steps_ = get_u64(in);
  model.stride1_ = get_u64(in);

  model.grid_ = get_mat(in);
  linalg::Mat u = get_mat(in);
  const std::uint64_t rank = get_u64(in);
  if (rank > (1u << 26)) throw ParseError("checkpoint rank implausible");
  in.require(rank * sizeof(double), "singular values");
  std::vector<double> s(rank);
  for (auto& value : s) value = get_f64(in);
  linalg::Mat v = get_mat(in);
  const std::uint64_t cols_seen = get_u64(in);
  model.isvd_ = isvd::Isvd::from_state(options.isvd, std::move(u),
                                       std::move(s), std::move(v), cols_seen);

  const std::uint64_t node_count = get_u64(in);
  if (node_count == 0) throw ParseError("checkpoint has no tree nodes");
  // A node serializes to at least its 7 fixed words; bound the count before
  // reserving so a corrupted header cannot drive a huge allocation.
  if (node_count > (1u << 26)) {
    throw ParseError("checkpoint node count implausible");
  }
  in.require(node_count * 7 * sizeof(std::uint64_t), "tree nodes");
  // Cap the up-front reservation: the stream-byte bound above says nothing
  // about in-memory node size, so a garbage count within it could still
  // reserve GiBs. Growth past the cap amortizes normally.
  model.nodes_.reserve(std::min<std::uint64_t>(node_count, 1u << 16));
  for (std::uint64_t i = 0; i < node_count; ++i) {
    model.nodes_.push_back(get_node(in));
  }
  model.cached_grid_recon_ = get_mat(in);
  model.history_ = get_mat(in);
  model.fitted_ = true;

  // Consistency checks: the restored state must be internally coherent.
  if (model.nodes_[0].t_end != model.time_steps_ ||
      model.nodes_[0].level != 1) {
    throw ParseError("checkpoint root node inconsistent");
  }
  if (model.isvd_.v().rows() + 1 != model.grid_.cols()) {
    throw ParseError("checkpoint iSVD out of sync with the level-1 grid");
  }
  return model;
}

void CheckpointAccess::save_pipeline_container(std::ostream& out,
                                               const Assessor& assessor) {
  IMRDMD_REQUIRE_ARG(assessor.stack_.fine_count() == 1 &&
                         assessor.stack_.fine(0).fitted(),
                     "cannot checkpoint a pipeline before its first chunk");
  IMRDMD_REQUIRE_ARG(
      !assessor.stack_.hierarchical(),
      "the legacy pipeline container cannot hold a hierarchy");
  out.write(kPipelineMagic, sizeof kPipelineMagic);
  put_header(out, assessor.config_.pipeline_options,
             assessor.chunks_processed_, assessor.snapshots_seen_,
             assessor.zscore_stage_.state());
  // The monolithic engine always runs its single group on the caller
  // thread, so the model's own parallel_bins is the configured value —
  // byte-identical to the pre-unification pipeline writer.
  std::ostringstream buffer;
  put_model(buffer, assessor.stack_.fine(0));
  const std::string bytes = std::move(buffer).str();
  put_u64(out, bytes.size());
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("pipeline checkpoint write failed");
}

namespace {

/// The container preamble shared by the single-process and distributed
/// writers: version magic (V2 exactly when hierarchical), stage header,
/// partition, and — V2 only — the hierarchy section with the replicated
/// coarse model (canonicalized like every model section).
void put_fleet_preamble(std::ostream& out, const Assessor& assessor,
                        bool canonical_bins) {
  const bool hierarchical = assessor.hierarchical();
  out.write(hierarchical ? kFleetMagic2 : kFleetMagic, sizeof kFleetMagic);
  put_header(out, assessor.config().pipeline_options,
             assessor.chunks_processed(), assessor.snapshots_processed(),
             CheckpointAccess::stage_state(assessor));
  put_u64(out, assessor.sensors());
  put_u64(out, assessor.groups().size());
  for (const auto& group : assessor.groups()) {
    put_u64(out, group.size());
    for (std::size_t sensor : group) put_u64(out, sensor);
  }
  if (hierarchical) {
    put_u64(out, assessor.coarse_stride());
    std::ostringstream buffer;
    CheckpointAccess::put_model(buffer, assessor.coarse_model(),
                                &canonical_bins);
    const std::string bytes = std::move(buffer).str();
    put_u64(out, bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

}  // namespace

void CheckpointAccess::save_single(std::ostream& out,
                                   const Assessor& assessor) {
  IMRDMD_REQUIRE_ARG(assessor.comm_ == nullptr,
                     "use the collective save for a distributed engine");
  IMRDMD_REQUIRE_ARG(assessor.chunks_processed_ >= 1,
                     "cannot checkpoint a fleet before its first chunk");
  IMRDMD_REQUIRE_ARG(
      !assessor.stack_.hierarchical() ||
          assessor.stack_.coarse_grid_canonical(),
      "an elastically grown hierarchical stack cannot be saved into the "
      "IMRDFL1/IMRDFL2 containers (they re-derive the coarse grid on "
      "load); enable the delta (IMRDFL3) checkpoint policy");
  const bool canonical_bins =
      assessor.config_.pipeline_options.imrdmd.mrdmd.parallel_bins;
  put_fleet_preamble(out, assessor, canonical_bins);

  // Serialize the per-group model images concurrently across the engine's
  // worker lanes (the same lane structure process() uses); the images are
  // then concatenated in deterministic group order, so the bytes are
  // identical for any lane count.
  const std::size_t group_count = assessor.groups_.size();
  std::vector<std::string> sections(group_count);
  run_lanes(
      assessor.lanes_,
      [&assessor, &sections, &canonical_bins, group_count](std::size_t lane) {
        for (std::size_t g = lane; g < group_count; g += assessor.lanes_) {
          std::ostringstream buffer;
          put_model(buffer, assessor.stack_.fine(g), &canonical_bins);
          sections[g] = std::move(buffer).str();
        }
      },
      &assessor.pool());
  for (const std::string& section : sections) {
    put_u64(out, section.size());
    out.write(section.data(), static_cast<std::streamsize>(section.size()));
  }
  if (!out) throw Error("fleet checkpoint write failed");
}

namespace {

/// Packs one rank's model sections into the doubles the communicator
/// speaks: [section_count, then per section: byte_length,
/// ceil(byte_length/8) words of raw bytes (zero-padded)]. Counts and
/// lengths ride as exact integers — sections are far below 2^53 bytes.
std::vector<double> pack_sections(const std::vector<std::string>& sections) {
  std::size_t words = 1;
  for (const std::string& s : sections) words += 1 + (s.size() + 7) / 8;
  std::vector<double> blob;
  blob.reserve(words);
  blob.push_back(static_cast<double>(sections.size()));
  for (const std::string& s : sections) {
    blob.push_back(static_cast<double>(s.size()));
    const std::size_t padded = (s.size() + 7) / 8;
    const std::size_t start = blob.size();
    blob.resize(start + padded, 0.0);
    std::memcpy(blob.data() + start, s.data(), s.size());
  }
  return blob;
}

/// Inverse of pack_sections; `expected` is the section count this rank was
/// supposed to contribute (its owned group count).
std::vector<std::string> unpack_sections(const std::vector<double>& blob,
                                         std::size_t expected) {
  IMRDMD_REQUIRE_DIMS(!blob.empty() &&
                          blob[0] == static_cast<double>(expected),
                      "distributed checkpoint rank section count mismatch");
  std::vector<std::string> sections;
  sections.reserve(expected);
  std::size_t cursor = 1;
  for (std::size_t s = 0; s < expected; ++s) {
    IMRDMD_REQUIRE_DIMS(cursor < blob.size(),
                        "distributed checkpoint rank blob truncated");
    const std::size_t bytes = static_cast<std::size_t>(blob[cursor++]);
    const std::size_t padded = (bytes + 7) / 8;
    IMRDMD_REQUIRE_DIMS(cursor + padded <= blob.size(),
                        "distributed checkpoint rank blob truncated");
    std::string section(bytes, '\0');
    std::memcpy(section.data(), blob.data() + cursor, bytes);
    sections.push_back(std::move(section));
    cursor += padded;
  }
  IMRDMD_REQUIRE_DIMS(cursor == blob.size(),
                      "distributed checkpoint rank blob has trailing bytes");
  return sections;
}

}  // namespace

void CheckpointAccess::save_distributed(std::ostream* out,
                                        const Assessor& assessor) {
  IMRDMD_REQUIRE_ARG(assessor.comm_ != nullptr,
                     "this engine is not distributed");
  dist::Communicator& comm = *assessor.comm_;
  const bool root = comm.rank() == 0;
  IMRDMD_REQUIRE_ARG(root == (out != nullptr),
                     "the checkpoint stream lives on rank 0 only (pass "
                     "nullptr on the other ranks)");
  // chunks_processed_ is replicated, so on an unstarted engine every rank
  // throws here together — before any collective.
  IMRDMD_REQUIRE_ARG(assessor.chunks_processed_ >= 1,
                     "cannot checkpoint a fleet before its first chunk");
  IMRDMD_REQUIRE_ARG(
      !assessor.stack_.hierarchical() ||
          assessor.stack_.coarse_grid_canonical(),
      "an elastically grown hierarchical stack cannot be saved into the "
      "IMRDFL1/IMRDFL2 containers (they re-derive the coarse grid on "
      "load); enable the delta (IMRDFL3) checkpoint policy");

  // Serialize the owned groups' model images concurrently across this
  // rank's local lanes (the same lane structure process() uses), in local
  // group order.
  const std::size_t local_count = assessor.local_end_ - assessor.local_begin_;
  const bool canonical_bins =
      assessor.config_.pipeline_options.imrdmd.mrdmd.parallel_bins;
  std::vector<std::string> sections(local_count);
  run_lanes(
      assessor.lanes_,
      [&assessor, &sections, &canonical_bins, local_count](std::size_t lane) {
        for (std::size_t l = lane; l < local_count; l += assessor.lanes_) {
          std::ostringstream buffer;
          put_model(buffer, assessor.stack_.fine(l), &canonical_bins);
          sections[l] = std::move(buffer).str();
        }
      },
      &assessor.pool());

  // One ragged gather moves every rank's sections to the writer. Rank
  // blocks arrive in rank order and ownership ranges are contiguous, so
  // concatenation IS global group order — the same order (and bytes) the
  // single-process save_single writes.
  const std::vector<double> blob = pack_sections(sections);
  const std::vector<std::vector<double>> blobs =
      comm.gatherv(std::span<const double>(blob.data(), blob.size()), 0);
  if (!root) return;

  // Rank 0's coarse replica is every rank's coarse replica (the coarse
  // update is deterministic over the digest-agreed broadcast chunk), so
  // the hierarchy section needs no gather and the bytes stay rank-count
  // invariant.
  put_fleet_preamble(*out, assessor, canonical_bins);
  const std::size_t ranks = static_cast<std::size_t>(comm.size());
  for (std::size_t r = 0; r < ranks; ++r) {
    const auto range = rank_group_range(assessor.groups_.size(), ranks, r);
    const std::vector<std::string> rank_sections =
        unpack_sections(blobs[r], range.second - range.first);
    for (const std::string& section : rank_sections) {
      put_u64(*out, section.size());
      out->write(section.data(),
                 static_cast<std::streamsize>(section.size()));
    }
  }
  if (!*out) throw Error("fleet checkpoint write failed");
}

void CheckpointAccess::save_fleet3(const std::string& path,
                                   const Assessor& assessor) {
  IMRDMD_REQUIRE_ARG(assessor.chunks_processed_ >= 1,
                     "cannot checkpoint a fleet before its first chunk");
  dist::Communicator* comm = assessor.comm_;
  const std::size_t writers =
      comm != nullptr ? static_cast<std::size_t>(comm->size()) : 1;
  const std::size_t writer =
      comm != nullptr ? static_cast<std::size_t>(comm->rank()) : 0;
  const bool root = writer == 0;
  const bool hierarchical = assessor.stack_.hierarchical();
  const bool canonical_bins =
      assessor.config_.pipeline_options.imrdmd.mrdmd.parallel_bins;

  // Base rewrite on the first save of this engine's life and after an
  // elastic growth (the journaled rows then have the pre-growth layout);
  // otherwise append only the rows processed since the last save. Every
  // input to this decision is replicated, so all ranks agree.
  const bool need_base =
      !assessor.delta_base_written_ || assessor.delta_force_compact_;
  const std::size_t old_epoch = assessor.delta_epoch_;
  const bool had_old_epoch = assessor.delta_base_written_;

  if (need_base) {
    // A monotonic epoch names the part files, so a base rewrite never
    // touches the files the still-current main references — a crash
    // before the main rewrite leaves the previous checkpoint whole.
    const std::size_t epoch = assessor.delta_epoch_ + 1;
    std::ostringstream part;
    part.write(kPartMagic, sizeof kPartMagic);
    const std::size_t local_count =
        assessor.local_end_ - assessor.local_begin_;
    put_u64(part,
            local_count + ((root && hierarchical) ? std::size_t{1} : 0));
    const auto put_section = [&part, &canonical_bins](
                                 const IncrementalMrdmd& model) {
      std::ostringstream buffer;
      put_model(buffer, model, &canonical_bins);
      const std::string bytes = std::move(buffer).str();
      put_u64(part, bytes.size());
      part.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    };
    if (root && hierarchical) put_section(assessor.stack_.coarse());
    for (std::size_t l = 0; l < local_count; ++l) {
      put_section(assessor.stack_.fine(l));
    }
    const std::string bytes = std::move(part).str();
    std::ofstream out(part_path(path, writer, epoch),
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw Error("delta checkpoint part write failed");
    assessor.delta_part_bytes_ = bytes.size();
    assessor.delta_part_digest_ =
        fnv1a64(kFnvOffsetBasis, bytes.data(), bytes.size());
    assessor.delta_epoch_ = epoch;
    assessor.delta_base_chunks_ = assessor.chunks_processed_;
    assessor.delta_base_position_ = assessor.snapshots_seen_;
    // The base is the full current model state, so it subsumes whatever
    // rows were pending.
    assessor.delta_pending_.clear();
    assessor.delta_base_written_ = true;
    assessor.delta_force_compact_ = false;
  } else {
    std::ostringstream append;
    for (const linalg::Mat& record : assessor.delta_pending_) {
      put_mat(append, record);
    }
    const std::string bytes = std::move(append).str();
    if (!bytes.empty()) {
      std::ofstream out(part_path(path, writer, assessor.delta_epoch_),
                        std::ios::binary | std::ios::app);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out.flush();
      if (!out) throw Error("delta checkpoint part append failed");
    }
    // The digest covers the bytes the main file will reference — a torn
    // tail past them is truncated away on load.
    assessor.delta_part_bytes_ += bytes.size();
    assessor.delta_part_digest_ =
        fnv1a64(assessor.delta_part_digest_, bytes.data(), bytes.size());
    assessor.delta_pending_.clear();
  }

  // The manifest needs every writer's (byte count, digest). The digest
  // travels as two exact 32-bit halves — doubles carry 32-bit integers
  // exactly, a raw 64-bit reinterpretation could be NaN.
  std::vector<std::uint64_t> all_bytes{assessor.delta_part_bytes_};
  std::vector<std::uint64_t> all_digest{assessor.delta_part_digest_};
  if (comm != nullptr) {
    const double mine[3] = {
        static_cast<double>(assessor.delta_part_bytes_),
        static_cast<double>(assessor.delta_part_digest_ >> 32),
        static_cast<double>(assessor.delta_part_digest_ & 0xffffffffull)};
    const std::vector<std::vector<double>> gathered =
        comm->gatherv(std::span<const double>(mine, 3), 0);
    if (root) {
      all_bytes.assign(writers, 0);
      all_digest.assign(writers, 0);
      for (std::size_t w = 0; w < writers; ++w) {
        IMRDMD_REQUIRE_DIMS(gathered[w].size() == 3,
                            "delta checkpoint manifest slot has the wrong "
                            "length");
        all_bytes[w] = static_cast<std::uint64_t>(gathered[w][0]);
        all_digest[w] =
            (static_cast<std::uint64_t>(gathered[w][1]) << 32) |
            static_cast<std::uint64_t>(gathered[w][2]);
      }
    }
  }

  if (root) {
    write_file_atomic(path, [&](std::ostream& out) {
      out.write(kFleetMagic3, sizeof kFleetMagic3);
      put_header(out, assessor.config_.pipeline_options,
                 assessor.chunks_processed_, assessor.snapshots_seen_,
                 assessor.zscore_stage_.state());
      put_u64(out, assessor.sensors_);
      put_u64(out, assessor.groups_.size());
      for (const auto& group : assessor.groups_) {
        put_u64(out, group.size());
        for (std::size_t sensor : group) put_u64(out, sensor);
      }
      put_u64(out, assessor.stack_.coarse_stride());
      if (hierarchical) {
        // The explicit grid + interpolation map: after elastic growth the
        // grid is no longer the pure function of (groups, stride), so the
        // container must carry it.
        const ModelStack& stack = assessor.stack_;
        put_u64(out, stack.rows_.size());
        for (std::size_t row : stack.rows_) put_u64(out, row);
        put_u64(out, stack.interp_.size());
        for (const auto& ip : stack.interp_) {
          put_u64(out, ip.lo);
          put_u64(out, ip.hi);
          put_f64(out, ip.w);
        }
      }
      put_u64(out, assessor.delta_epoch_);
      put_u64(out, writers);
      for (std::size_t w = 0; w < writers; ++w) {
        put_u64(out, all_bytes[w]);
        put_u64(out, all_digest[w]);
      }
      put_u64(out, assessor.delta_base_chunks_);
      put_u64(out, assessor.delta_base_position_);
      if (!out) throw Error("delta checkpoint manifest write failed");
    });
  }
  if (need_base && had_old_epoch) {
    // Old-epoch cleanup only after the new main is durable (the barrier
    // orders every rank's removal after rank 0's rewrite). A crash before
    // this point merely orphans the new epoch's files; a resumed process
    // that died here orphans the old ones — both are garbage, never
    // corruption, since the main always names its exact parts.
    if (comm != nullptr) comm->barrier();
    std::remove(part_path(path, writer, old_epoch).c_str());
  }
}

RestoredAssessor CheckpointAccess::load_fleet3(
    const std::string& path, BoundedReader& in, dist::Communicator* comm,
    const AssessorResumeOptions& resume) {
  ParsedCheckpoint parsed;
  get_header(in, parsed);
  parse_fleet_partition(in, parsed);

  parsed.coarse_stride = get_u64(in);
  if (parsed.coarse_stride > (std::uint64_t{1} << 32)) {
    throw ParseError("fleet checkpoint coarse stride implausible");
  }
  const bool hierarchical = parsed.coarse_stride > 0;
  if (hierarchical) {
    const std::uint64_t grid_count = get_u64(in);
    if (grid_count == 0 || grid_count > parsed.sensors) {
      throw ParseError("fleet delta coarse grid implausible");
    }
    in.require(grid_count * sizeof(std::uint64_t), "fleet delta grid");
    parsed.coarse_grid_rows.resize(grid_count);
    for (auto& row : parsed.coarse_grid_rows) {
      row = static_cast<std::size_t>(get_u64(in));
      if (row >= parsed.sensors) {
        throw ParseError("fleet delta coarse grid row out of range");
      }
    }
    const std::uint64_t interp_count = get_u64(in);
    if (interp_count != parsed.sensors) {
      throw ParseError("fleet delta interpolation map count mismatch");
    }
    in.require(interp_count * (2 * sizeof(std::uint64_t) + sizeof(double)),
               "fleet delta interpolation map");
    parsed.interp_lo.resize(interp_count);
    parsed.interp_hi.resize(interp_count);
    parsed.interp_w.resize(interp_count);
    for (std::uint64_t p = 0; p < interp_count; ++p) {
      parsed.interp_lo[p] = get_u64(in);
      parsed.interp_hi[p] = get_u64(in);
      parsed.interp_w[p] = get_f64(in);
      if (parsed.interp_lo[p] >= grid_count ||
          parsed.interp_hi[p] >= grid_count) {
        throw ParseError("fleet delta interpolation row out of range");
      }
    }
  }

  const std::uint64_t epoch = get_u64(in);
  const std::uint64_t writers = get_u64(in);
  if (writers == 0 || writers > (std::uint64_t{1} << 20)) {
    throw ParseError("fleet delta writer count implausible");
  }
  in.require(writers * 2 * sizeof(std::uint64_t) + 2 * sizeof(std::uint64_t),
             "fleet delta manifest");
  std::vector<std::uint64_t> part_bytes(writers);
  std::vector<std::uint64_t> part_digest(writers);
  for (std::uint64_t w = 0; w < writers; ++w) {
    part_bytes[w] = get_u64(in);
    part_digest[w] = get_u64(in);
  }
  const std::uint64_t base_chunks = get_u64(in);
  const std::uint64_t base_position = get_u64(in);
  if (base_chunks == 0 || base_chunks > parsed.chunks_processed ||
      base_position > parsed.stream_position) {
    throw ParseError("fleet delta base counters implausible");
  }
  const std::size_t record_count =
      static_cast<std::size_t>(parsed.chunks_processed - base_chunks);

  // Every process reads every part file independently: the base sections
  // restore in global group order (contiguous old-topology ownership), and
  // the journaled records replay below at ANY new rank count.
  std::vector<std::vector<linalg::Mat>> writer_records(writers);
  std::vector<std::size_t> writer_rows(writers, 0);
  for (std::size_t w = 0; w < writers; ++w) {
    const auto range = rank_group_range(parsed.groups.size(), writers, w);
    for (std::size_t g = range.first; g < range.second; ++g) {
      writer_rows[w] += parsed.groups[g].size();
    }
    std::ifstream file(part_path(path, w, epoch),
                       std::ios::binary | std::ios::ate);
    if (!file) {
      throw ParseError("delta checkpoint part missing: " +
                       part_path(path, w, epoch));
    }
    // Size check BEFORE the allocation: a corrupted manifest length must
    // fail as a truncated part, not as a giant buffer.
    const auto actual = file.tellg();
    if (actual < 0 ||
        static_cast<std::uint64_t>(actual) < part_bytes[w]) {
      throw ParseError("delta checkpoint part truncated: " +
                       part_path(path, w, epoch));
    }
    file.seekg(0);
    std::string data(static_cast<std::size_t>(part_bytes[w]), '\0');
    file.read(data.data(), static_cast<std::streamsize>(data.size()));
    if (static_cast<std::uint64_t>(file.gcount()) != part_bytes[w]) {
      throw ParseError("delta checkpoint part truncated: " +
                       part_path(path, w, epoch));
    }
    // A longer file is fine (a torn append past the manifest's bytes); a
    // digest mismatch inside them is not.
    if (fnv1a64(kFnvOffsetBasis, data.data(), data.size()) !=
        part_digest[w]) {
      throw ParseError("delta checkpoint part digest mismatch: " +
                       part_path(path, w, epoch));
    }
    std::istringstream stream(std::move(data));
    BoundedReader part(stream);
    char magic[sizeof kPartMagic];
    part.read(magic, sizeof magic, "part magic");
    if (std::memcmp(magic, kPartMagic, sizeof magic) != 0) {
      throw ParseError("not an imrdmd delta part (bad magic)");
    }
    const std::uint64_t sections = get_u64(part);
    const std::uint64_t expected_sections =
        (range.second - range.first) +
        ((w == 0 && hierarchical) ? std::uint64_t{1} : 0);
    if (sections != expected_sections) {
      throw ParseError("delta checkpoint part section count mismatch");
    }
    if (w == 0 && hierarchical) {
      parsed.coarse_model =
          get_model_section(part, "fleet delta coarse section");
      if (parsed.coarse_model->sensors() != parsed.coarse_grid_rows.size()) {
        throw ParseError(
            "fleet delta coarse section row count disagrees with the grid");
      }
      if (parsed.coarse_model->time_steps() != base_position) {
        throw ParseError(
            "fleet delta base position disagrees with the coarse model");
      }
    }
    for (std::size_t g = range.first; g < range.second; ++g) {
      parsed.models.push_back(
          get_model_section(part, "fleet delta model section"));
      if (parsed.models.back().sensors() != parsed.groups[g].size()) {
        throw ParseError(
            "fleet delta section row count disagrees with its group");
      }
      if (parsed.models.back().time_steps() != base_position) {
        throw ParseError(
            "fleet delta base position disagrees with a group model");
      }
    }
    // Reserve against the bytes actually present, not the (corruptible)
    // manifest counter — the loop below still parses exactly record_count
    // records or fails on the bounded reader.
    writer_records[w].reserve(std::min<std::size_t>(
        record_count, part.remaining() / (2 * sizeof(std::uint64_t)) + 1));
    for (std::size_t i = 0; i < record_count; ++i) {
      linalg::Mat record = get_mat(part);
      if (record.rows() != writer_rows[w] || record.cols() == 0) {
        throw ParseError("delta checkpoint record shape mismatch");
      }
      writer_records[w].push_back(std::move(record));
    }
    if (part.remaining() != 0) {
      throw ParseError("delta checkpoint part has trailing bytes");
    }
  }
  check_stage_state(parsed);

  // Cross-part consistency: every writer journaled the same chunk
  // sequence, and together the records span base -> final position.
  std::vector<std::size_t> record_cols(record_count);
  std::uint64_t replayed = 0;
  for (std::size_t i = 0; i < record_count; ++i) {
    record_cols[i] = writer_records[0][i].cols();
    for (std::size_t w = 1; w < writers; ++w) {
      if (writer_records[w][i].cols() != record_cols[i]) {
        throw ParseError(
            "delta checkpoint parts disagree on a record's width");
      }
    }
    replayed += record_cols[i];
  }
  if (base_position + replayed != parsed.stream_position) {
    throw ParseError(
        "delta checkpoint records do not span the recorded stream "
        "position");
  }

  const dmd::ModeBand band = parsed.stage_options.band;
  RestoredAssessor restored = assemble(std::move(parsed), comm, resume);
  Assessor& assessor = restored.assessor;

  // Replay: rebuild each journaled chunk at full width from the per-writer
  // slices and refold it — the identical deterministic operations the live
  // engine ran (replicated coarse update, per-group partial fits), so the
  // resumed models are bitwise the live ones.
  const std::size_t sensors = assessor.sensors_;
  for (std::size_t i = 0; i < record_count; ++i) {
    const std::size_t cols = record_cols[i];
    linalg::Mat chunk(sensors, cols);
    for (std::size_t w = 0; w < writers; ++w) {
      const auto range =
          rank_group_range(assessor.groups_.size(), writers, w);
      const linalg::Mat& slice = writer_records[w][i];
      std::size_t row = 0;
      for (std::size_t g = range.first; g < range.second; ++g) {
        for (std::size_t sensor : assessor.groups_[g]) {
          std::copy(slice.data() + row * cols,
                    slice.data() + (row + 1) * cols,
                    chunk.data() + sensor * cols);
          ++row;
        }
      }
    }
    linalg::Mat residual;
    if (hierarchical) {
      assessor.stack_.update_coarse(chunk, band, residual);
    }
    const linalg::Mat& fine_input = hierarchical ? residual : chunk;
    const std::size_t local_count =
        assessor.local_end_ - assessor.local_begin_;
    for (std::size_t l = 0; l < local_count; ++l) {
      const auto& group = assessor.groups_[assessor.local_begin_ + l];
      linalg::Mat block(group.size(), cols);
      for (std::size_t r = 0; r < group.size(); ++r) {
        std::copy(fine_input.data() + group[r] * cols,
                  fine_input.data() + (group[r] + 1) * cols,
                  block.data() + r * cols);
      }
      assessor.stack_.fine(l).partial_fit(block);
    }
  }

  // Post-replay coherence: every restored model must have arrived exactly
  // at the manifest's final position.
  const std::size_t local_count =
      assessor.local_end_ - assessor.local_begin_;
  for (std::size_t l = 0; l < local_count; ++l) {
    if (assessor.stack_.fine(l).time_steps() != restored.stream_position) {
      throw ParseError("delta checkpoint replay out of sync with a model");
    }
  }
  if (hierarchical && assessor.stack_.coarse().time_steps() !=
                          restored.stream_position) {
    throw ParseError(
        "delta checkpoint replay out of sync with the coarse model");
  }
  // Hand the loaded epoch to the resumed journal: its next base write must
  // pick a FRESH epoch — the main file it read still references this one,
  // and a crash mid-rewrite must leave that reference loadable.
  assessor.delta_epoch_ = static_cast<std::size_t>(epoch);
  return restored;
}

RestoredAssessor CheckpointAccess::assemble(
    ParsedCheckpoint parsed, dist::Communicator* comm,
    const AssessorResumeOptions& resume) {
  AssessorConfig config;
  config.pipeline_options = parsed.stage_options;
  config.pipeline_options.imrdmd = parsed.models[0].options();
  config.sensor_count = static_cast<std::size_t>(parsed.sensors);
  config.groups = parsed.groups;
  config.lanes = resume.lanes;
  config.comm = comm;
  config.ingest_options = resume.ingest;
  config.worker_pool = resume.pool;
  config.checkpoint_policy = resume.checkpoint;
  // The stride always comes from the container — explicitly, through
  // hierarchy(), so the IMRDMD_HIERARCHY_STRIDE environment default can
  // never override a resumed stream's topology ("IMRDFL1"/"IMRDPL1" files
  // load as stride-disabled flat stacks).
  config.hierarchy(static_cast<std::size_t>(parsed.coarse_stride));
  // The constructor re-validates the partition (disjoint, total cover) and
  // re-derives this process's ownership range — the checkpoint itself
  // carries nothing about the lane or rank count that wrote it.
  Assessor assessor(std::move(config));
  const std::size_t local_count = assessor.local_end_ - assessor.local_begin_;
  for (std::size_t l = 0; l < local_count; ++l) {
    *assessor.stack_.fine_[l] =
        std::move(parsed.models[assessor.local_begin_ + l]);
    // Re-apply the constructor's nested-pool guard to the *restored*
    // models: a checkpoint saved from a single-lane engine carries
    // parallel_bins = true, and resuming it with real lanes would fan each
    // lane task back out onto (and block on) its own pool.
    if (assessor.lanes_ > 1) {
      assessor.stack_.fine_[l]->options_.mrdmd.parallel_bins = false;
    }
  }
  if (parsed.coarse_model.has_value()) {
    // Every rank restores the full coarse replica (it is replicated at
    // runtime, so every rank needs it regardless of group ownership); the
    // coarse model runs on the caller thread and keeps its own options.
    *assessor.stack_.coarse_ = std::move(*parsed.coarse_model);
  }
  if (!parsed.coarse_grid_rows.empty()) {
    // V3 explicit hierarchy map: override the canonical grid the
    // constructor derived — elastic growth appended rows the pure
    // coarse_grid function cannot reproduce. Canonicality is re-derived,
    // so an ungrown V3 resave may return to the compact containers.
    ModelStack& stack = assessor.stack_;
    stack.canonical_grid_ =
        parsed.coarse_grid_rows ==
        ModelStack::coarse_grid(assessor.groups_,
                                static_cast<std::size_t>(
                                    parsed.coarse_stride));
    stack.rows_ = std::move(parsed.coarse_grid_rows);
    stack.interp_.assign(parsed.interp_lo.size(), {});
    for (std::size_t p = 0; p < stack.interp_.size(); ++p) {
      stack.interp_[p].lo = static_cast<std::size_t>(parsed.interp_lo[p]);
      stack.interp_[p].hi = static_cast<std::size_t>(parsed.interp_hi[p]);
      stack.interp_[p].w = parsed.interp_w[p];
    }
  }
  assessor.zscore_stage_.restore(std::move(parsed.stage_state));
  assessor.chunks_processed_ =
      static_cast<std::size_t>(parsed.chunks_processed);
  assessor.snapshots_seen_ =
      static_cast<std::size_t>(parsed.stream_position);
  // The resumed engine expects the source to continue exactly at the
  // recorded position: the run loop's per-chunk position agreement raises
  // StreamDesync if the first pulled chunk starts anywhere else.
  assessor.stream_expect_ =
      static_cast<std::size_t>(parsed.stream_position);
  return {std::move(assessor), parsed.stream_position};
}

void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model) {
  CheckpointAccess::put_model(out, model);
  if (!out) throw Error("checkpoint write failed");
}

IncrementalMrdmd load_checkpoint(std::istream& raw) {
  BoundedReader in(raw);
  return CheckpointAccess::get_model(in);
}

void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model) {
  write_file_atomic(
      path, [&model](std::ostream& out) { save_checkpoint(out, model); });
}

IncrementalMrdmd load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint for reading: " + path);
  return load_checkpoint(in);
}

// --- Assessor ------------------------------------------------------------

void save_assessor_checkpoint(std::ostream& out, const Assessor& assessor) {
  CheckpointAccess::save_single(out, assessor);
}

void save_assessor_checkpoint(std::ostream* out, const Assessor& assessor) {
  if (assessor.distributed_topology()) {
    CheckpointAccess::save_distributed(out, assessor);
  } else {
    IMRDMD_REQUIRE_ARG(out != nullptr,
                       "a single-process save needs an output stream");
    CheckpointAccess::save_single(*out, assessor);
  }
}

void save_assessor_checkpoint_file(const std::string& path,
                                   const Assessor& assessor) {
  if (assessor.config().checkpoint_policy.delta) {
    // The delta policy selects the rank-local IMRDFL3 container: every
    // process writes its own part file (no model-byte gather), rank 0
    // atomically rewrites the manifest.
    CheckpointAccess::save_fleet3(path, assessor);
    return;
  }
  if (assessor.distributed_topology() && assessor.rank() != 0) {
    // Peers only feed the gather; the file belongs to rank 0.
    CheckpointAccess::save_distributed(nullptr, assessor);
    return;
  }
  write_file_atomic(path, [&assessor](std::ostream& out) {
    save_assessor_checkpoint(&out, assessor);
  });
}

RestoredAssessor load_assessor_checkpoint(std::istream& raw,
                                          const AssessorResumeOptions& resume) {
  BoundedReader in(raw);
  return CheckpointAccess::assemble(parse_any(in), nullptr, resume);
}

namespace {

/// Peeks the container magic of an opened checkpoint file: true when it is
/// the IMRDFL3 delta container (the stream is then positioned after the
/// magic), false otherwise (the stream is rewound to the start).
bool peek_fleet3(std::ifstream& in) {
  char magic[sizeof kFleetMagic3];
  in.read(magic, sizeof magic);
  if (in.gcount() == sizeof magic &&
      std::memcmp(magic, kFleetMagic3, sizeof magic) == 0) {
    return true;
  }
  in.clear();
  in.seekg(0);
  return false;
}

}  // namespace

RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, const AssessorResumeOptions& resume) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint for reading: " + path);
  if (peek_fleet3(in)) {
    BoundedReader reader(in);
    return CheckpointAccess::load_fleet3(path, reader, nullptr, resume);
  }
  return load_assessor_checkpoint(in, resume);
}

RestoredAssessor load_assessor_checkpoint(std::istream& raw,
                                          dist::Communicator& comm,
                                          const AssessorResumeOptions& resume) {
  BoundedReader in(raw);
  return CheckpointAccess::assemble(parse_any(in), &comm, resume);
}

RestoredAssessor load_assessor_checkpoint_file(
    const std::string& path, dist::Communicator& comm,
    const AssessorResumeOptions& resume) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint for reading: " + path);
  if (peek_fleet3(in)) {
    BoundedReader reader(in);
    return CheckpointAccess::load_fleet3(path, reader, &comm, resume);
  }
  return load_assessor_checkpoint(in, comm, resume);
}

// --- Legacy container coverage -------------------------------------------

void save_legacy_pipeline_checkpoint(std::ostream& out,
                                     const Assessor& assessor) {
  CheckpointAccess::save_pipeline_container(out, assessor);
}

}  // namespace imrdmd::core
