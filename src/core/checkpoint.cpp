#include "core/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"

namespace imrdmd::core {

namespace {

constexpr char kMagic[8] = {'I', 'M', 'R', 'D', 'M', 'D', '1', '\n'};

// --- primitive writers/readers (little-endian native; the format is not
// exchanged across architectures) -------------------------------------

void put_u64(std::ostream& out, std::uint64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

void put_f64(std::ostream& out, double value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

std::uint64_t get_u64(std::istream& in) {
  std::uint64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw ParseError("checkpoint truncated (u64)");
  return value;
}

double get_f64(std::istream& in) {
  double value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) throw ParseError("checkpoint truncated (f64)");
  return value;
}

void put_mat(std::ostream& out, const linalg::Mat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

linalg::Mat get_mat(std::istream& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  linalg::Mat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  if (!in) throw ParseError("checkpoint truncated (matrix)");
  return m;
}

void put_cmat(std::ostream& out, const linalg::CMat& m) {
  put_u64(out, m.rows());
  put_u64(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(linalg::Complex)));
}

linalg::CMat get_cmat(std::istream& in) {
  const std::uint64_t rows = get_u64(in);
  const std::uint64_t cols = get_u64(in);
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw ParseError("checkpoint matrix shape implausible");
  }
  linalg::CMat m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(linalg::Complex)));
  if (!in) throw ParseError("checkpoint truncated (complex matrix)");
  return m;
}

void put_node(std::ostream& out, const MrdmdNode& node) {
  put_u64(out, node.level);
  put_u64(out, node.bin_index);
  put_u64(out, node.t_begin);
  put_u64(out, node.t_end);
  put_u64(out, node.stride);
  put_f64(out, node.rho);
  put_u64(out, node.svd_rank);
  put_cmat(out, node.modes);
  put_u64(out, node.eigenvalues.size());
  for (const auto& value : node.eigenvalues) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
  for (const auto& value : node.amplitudes) {
    put_f64(out, value.real());
    put_f64(out, value.imag());
  }
}

MrdmdNode get_node(std::istream& in) {
  MrdmdNode node;
  node.level = get_u64(in);
  node.bin_index = get_u64(in);
  node.t_begin = get_u64(in);
  node.t_end = get_u64(in);
  node.stride = get_u64(in);
  node.rho = get_f64(in);
  node.svd_rank = get_u64(in);
  node.modes = get_cmat(in);
  const std::uint64_t modes = get_u64(in);
  node.eigenvalues.resize(modes);
  node.amplitudes.resize(modes);
  for (auto& value : node.eigenvalues) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  for (auto& value : node.amplitudes) {
    const double re = get_f64(in);
    const double im = get_f64(in);
    value = {re, im};
  }
  return node;
}

}  // namespace

void save_checkpoint(std::ostream& out, const IncrementalMrdmd& model) {
  IMRDMD_REQUIRE_ARG(model.fitted(), "cannot checkpoint an unfitted model");
  out.write(kMagic, sizeof kMagic);

  // Options.
  const ImrdmdOptions& options = model.options_;
  put_u64(out, options.mrdmd.max_levels);
  put_u64(out, options.mrdmd.max_cycles);
  put_u64(out, options.mrdmd.use_svht ? 1 : 0);
  put_u64(out, options.mrdmd.max_rank);
  put_f64(out, options.mrdmd.dt);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.criterion));
  put_u64(out, options.mrdmd.parallel_bins ? 1 : 0);
  put_u64(out, static_cast<std::uint64_t>(options.mrdmd.amplitude_fit));
  put_u64(out, options.isvd.max_rank);
  put_f64(out, options.isvd.truncation_tol);
  put_f64(out, options.drift_threshold);
  put_u64(out, options.recompute_on_drift ? 1 : 0);
  put_u64(out, options.keep_history ? 1 : 0);

  // Scalars.
  put_u64(out, model.sensors_);
  put_u64(out, model.time_steps_);
  put_u64(out, model.stride1_);

  // Level-1 state.
  put_mat(out, model.grid_);
  put_mat(out, model.isvd_.u());
  put_u64(out, model.isvd_.s().size());
  for (double s : model.isvd_.s()) put_f64(out, s);
  put_mat(out, model.isvd_.v());
  put_u64(out, model.isvd_.cols_seen());

  // Tree + caches.
  put_u64(out, model.nodes_.size());
  for (const MrdmdNode& node : model.nodes_) put_node(out, node);
  put_mat(out, model.cached_grid_recon_);
  put_mat(out, model.history_);

  if (!out) throw Error("checkpoint write failed");
}

IncrementalMrdmd load_checkpoint(std::istream& in) {
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("not an imrdmd checkpoint (bad magic)");
  }

  ImrdmdOptions options;
  options.mrdmd.max_levels = get_u64(in);
  options.mrdmd.max_cycles = get_u64(in);
  options.mrdmd.use_svht = get_u64(in) != 0;
  options.mrdmd.max_rank = get_u64(in);
  options.mrdmd.dt = get_f64(in);
  options.mrdmd.criterion = static_cast<SlowModeCriterion>(get_u64(in));
  options.mrdmd.parallel_bins = get_u64(in) != 0;
  options.mrdmd.amplitude_fit = static_cast<dmd::AmplitudeFit>(get_u64(in));
  options.isvd.max_rank = get_u64(in);
  options.isvd.truncation_tol = get_f64(in);
  options.drift_threshold = get_f64(in);
  options.recompute_on_drift = get_u64(in) != 0;
  options.keep_history = get_u64(in) != 0;

  IncrementalMrdmd model(options);
  model.sensors_ = get_u64(in);
  model.time_steps_ = get_u64(in);
  model.stride1_ = get_u64(in);

  model.grid_ = get_mat(in);
  linalg::Mat u = get_mat(in);
  const std::uint64_t rank = get_u64(in);
  std::vector<double> s(rank);
  for (auto& value : s) value = get_f64(in);
  linalg::Mat v = get_mat(in);
  const std::uint64_t cols_seen = get_u64(in);
  model.isvd_ = isvd::Isvd::from_state(options.isvd, std::move(u),
                                       std::move(s), std::move(v), cols_seen);

  const std::uint64_t node_count = get_u64(in);
  if (node_count == 0) throw ParseError("checkpoint has no tree nodes");
  model.nodes_.reserve(node_count);
  for (std::uint64_t i = 0; i < node_count; ++i) {
    model.nodes_.push_back(get_node(in));
  }
  model.cached_grid_recon_ = get_mat(in);
  model.history_ = get_mat(in);
  model.fitted_ = true;

  // Consistency checks: the restored state must be internally coherent.
  if (model.nodes_[0].t_end != model.time_steps_ ||
      model.nodes_[0].level != 1) {
    throw ParseError("checkpoint root node inconsistent");
  }
  if (model.isvd_.v().rows() + 1 != model.grid_.cols()) {
    throw ParseError("checkpoint iSVD out of sync with the level-1 grid");
  }
  return model;
}

void save_checkpoint_file(const std::string& path,
                          const IncrementalMrdmd& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open checkpoint for writing: " + path);
  save_checkpoint(out, model);
}

IncrementalMrdmd load_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open checkpoint for reading: " + path);
  return load_checkpoint(in);
}

}  // namespace imrdmd::core
