// Q2 (Sec. I / Sec. III-A.1): "What is the difference in accuracy between
// online and regular mrDMD?" The paper: the reconstruction difference
// between I-mrDMD and mrDMD "increases only by a sum of 10-5000, depending
// on the underlying dynamics and the time step upgrades" — small for weeks
// of data but accumulating over many updates.
//
// Shapes to reproduce: the I-mrDMD-vs-mrDMD reconstruction gap (i) stays a
// small fraction of the data norm, (ii) grows (weakly) with the number of
// incremental updates, and (iii) collapses when recompute_on_drift refits
// the stale levels.
//
// Second gate (multifidelity hierarchy): on the coherent-drift scenario a
// facility-wide sub-noise warm-up must be detected by the two-level
// hierarchical config (coarse facility model + per-group residuals) while
// the flat per-group sharding misses it — the hierarchy's reason to exist.
// Emits BENCH_hierarchy.json with both configs' precision/recall.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/json.hpp"
#include "core/assessor.hpp"
#include "core/imrdmd.hpp"
#include "core/mrdmd.hpp"
#include "linalg/blas.hpp"
#include "telemetry/machine.hpp"
#include "telemetry/scenario.hpp"
#include "telemetry/sensor_model.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

struct Detection {
  std::size_t flagged_nodes = 0;
  std::size_t true_positives = 0;
  double precision = 1.0;
  double recall = 0.0;
};

Detection detect_drift(const telemetry::Scenario& scenario,
                       const linalg::Mat& data,
                       const std::vector<std::vector<std::size_t>>& groups,
                       std::size_t initial, std::size_t chunk,
                       std::size_t coarse_stride, double z_threshold,
                       std::size_t max_rank) {
  core::AssessorConfig config;
  config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
  config.pipeline_options.imrdmd.mrdmd.dt = scenario.machine.dt_seconds;
  // Tight per-group rank budget: each group keeps only its own dominant
  // dynamics, so a sub-noise shared drift must be caught (if at all) by
  // the pooled coarse model.
  config.pipeline_options.imrdmd.isvd.max_rank = max_rank;
  config.pipeline_options.baseline = {40.0, 60.0};
  config.sharded(groups, 1).sensors(data.rows()).hierarchy(coarse_stride);
  core::Assessor assessor(config);
  core::MatrixChunkSource source(data, initial, chunk);
  core::CollectingSink sink;
  assessor.run(source, sink);

  const std::size_t drift_begin = scenario.horizon / 3;
  // Drift is a CHANGE: each sensor is scored against its own pre-onset
  // z-level (canceling static heterogeneity), and must stay shifted in a
  // majority of the post-onset snapshots to screen out noise excursions.
  std::vector<double> pre_z(data.rows(), 0.0);
  std::vector<std::size_t> pre_n(data.rows(), 0);
  for (const core::AssessmentSnapshot& snapshot : sink.snapshots()) {
    if (snapshot.total_snapshots > drift_begin) continue;
    const auto& z = snapshot.zscores.zscores;
    for (std::size_t p = 0; p < z.size(); ++p) {
      if (std::isfinite(z[p])) {
        pre_z[p] += z[p];
        ++pre_n[p];
      }
    }
  }
  for (std::size_t p = 0; p < data.rows(); ++p) {
    if (pre_n[p] > 0) pre_z[p] /= static_cast<double>(pre_n[p]);
  }
  std::vector<std::size_t> exceedances(data.rows(), 0);
  std::size_t post_onset = 0;
  for (const core::AssessmentSnapshot& snapshot : sink.snapshots()) {
    if (snapshot.total_snapshots <= drift_begin) continue;
    ++post_onset;
    const auto& z = snapshot.zscores.zscores;
    for (std::size_t p = 0; p < z.size(); ++p) {
      if (std::isfinite(z[p]) && z[p] - pre_z[p] > z_threshold) {
        ++exceedances[p];
      }
    }
  }
  const std::size_t persist = std::max<std::size_t>(2, (post_onset + 2) / 3);
  std::vector<char> sensor_flagged(data.rows(), 0);
  for (std::size_t p = 0; p < data.rows(); ++p) {
    sensor_flagged[p] = exceedances[p] >= persist ? 1 : 0;
  }

  Detection result;
  const std::size_t per_node = scenario.machine.sensors_per_node;
  for (std::size_t node = 0; node < scenario.machine.node_count; ++node) {
    bool flagged = false;
    for (std::size_t c = 0; c < per_node; ++c) {
      if (sensor_flagged[node * per_node + c]) flagged = true;
    }
    if (!flagged) continue;
    ++result.flagged_nodes;
    if (std::binary_search(scenario.drift_nodes.begin(),
                           scenario.drift_nodes.end(), node)) {
      ++result.true_positives;
    }
  }
  if (result.flagged_nodes > 0) {
    result.precision = static_cast<double>(result.true_positives) /
                       static_cast<double>(result.flagged_nodes);
  }
  if (!scenario.drift_nodes.empty()) {
    result.recall = static_cast<double>(result.true_positives) /
                    static_cast<double>(scenario.drift_nodes.size());
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Q2 (accuracy gap: I-mrDMD vs batch mrDMD)",
                "gap is a small, slowly accumulating fraction of the data "
                "norm; recompute-on-drift closes it");

  const std::size_t p = args.full ? 1000 : 300;
  const std::size_t t_initial = 1000;
  const std::size_t increments = args.full ? 8 : 5;
  const std::size_t chunk = 1000;

  telemetry::MachineSpec machine = telemetry::MachineSpec::theta();
  machine.node_count = std::min(machine.slots(), p);
  telemetry::SensorModelOptions sensor_options;
  sensor_options.seed = 31;
  telemetry::SensorModel model(machine, sensor_options);
  std::vector<std::size_t> ids(p);
  for (std::size_t i = 0; i < p; ++i) ids[i] = i % machine.sensor_count();
  const linalg::Mat data = model.window_for(
      std::span<const std::size_t>(ids.data(), p), 0,
      t_initial + increments * chunk);

  core::MrdmdOptions mrdmd_options;
  mrdmd_options.max_levels = 5;
  mrdmd_options.dt = machine.dt_seconds;

  core::ImrdmdOptions inc_options;
  inc_options.mrdmd = mrdmd_options;
  core::IncrementalMrdmd inc(inc_options);
  inc.initial_fit(data.block(0, 0, p, t_initial));

  core::ImrdmdOptions fresh_options = inc_options;
  fresh_options.recompute_on_drift = true;
  fresh_options.drift_threshold = 0.0;
  core::IncrementalMrdmd inc_recompute(fresh_options);
  inc_recompute.initial_fit(data.block(0, 0, p, t_initial));

  CsvWriter csv(args.out_dir + "/q2_accuracy.csv",
                {"updates", "T", "gap_stale", "gap_recompute",
                 "err_imrdmd", "err_batch", "data_norm"});
  std::printf("%8s %8s %12s %14s %12s %12s\n", "updates", "T", "gap(stale)",
              "gap(recompute)", "err(inc)", "err(batch)");

  double prev_gap = 0.0;
  bool monotone_ish = true;
  for (std::size_t k = 1; k <= increments; ++k) {
    const std::size_t t0 = t_initial + (k - 1) * chunk;
    inc.partial_fit(data.block(0, t0, p, chunk));
    inc_recompute.partial_fit(data.block(0, t0, p, chunk));

    const std::size_t t_total = t_initial + k * chunk;
    const linalg::Mat window = data.block(0, 0, p, t_total);
    core::MrdmdTree batch(mrdmd_options);
    batch.fit(window);

    const linalg::Mat recon_inc = inc.reconstruct();
    const linalg::Mat recon_rec = inc_recompute.reconstruct();
    const linalg::Mat recon_batch = batch.reconstruct();
    const double gap_stale = linalg::frobenius_diff(recon_inc, recon_batch);
    const double gap_recompute =
        linalg::frobenius_diff(recon_rec, recon_batch);
    const double err_inc = linalg::frobenius_diff(recon_inc, window);
    const double err_batch = linalg::frobenius_diff(recon_batch, window);
    const double norm = linalg::frobenius_norm(window);

    std::printf("%8zu %8zu %12.2f %14.2f %12.2f %12.2f\n", k, t_total,
                gap_stale, gap_recompute, err_inc, err_batch);
    csv.write_row_numeric({static_cast<double>(k),
                           static_cast<double>(t_total), gap_stale,
                           gap_recompute, err_inc, err_batch, norm});
    if (k > 2 && gap_stale < 0.3 * prev_gap) monotone_ish = false;
    prev_gap = gap_stale;
  }
  csv.close();

  const linalg::Mat final_window = data.block(0, 0, p, data.cols());
  const double norm = linalg::frobenius_norm(final_window);
  std::printf("\nfinal stale gap = %.2f (= %.2f%% of data norm %.1f; paper "
              "reports absolute sums of 10-5000 at comparable scales)\n",
              prev_gap, 100.0 * prev_gap / norm, norm);
  std::printf("wrote %s/q2_accuracy.csv\n", args.out_dir.c_str());

  const bool shape_holds = prev_gap < 0.5 * norm;
  std::printf("shape claim %s%s\n", shape_holds ? "HOLDS" : "VIOLATED",
              monotone_ish ? "" : " (gap non-monotone across updates)");

  // --- multifidelity hierarchy gate: coherent drift, flat vs two-level ---
  telemetry::ScenarioOptions scenario_options;
  scenario_options.machine_scale = args.full ? 1.0 : 0.25;
  scenario_options.horizon = args.full ? 4000 : 1500;
  scenario_options.seed = 7;
  const telemetry::Scenario scenario =
      telemetry::make_coherent_drift(scenario_options);
  const linalg::Mat drift_data =
      scenario.sensors->window(0, scenario.horizon);
  // Per-blade groups: the paper's fine scale. Small groups keep each
  // residual model blind to the cross-rack coherence.
  const std::size_t blade_sensors = scenario.machine.nodes_per_blade *
                                    scenario.machine.sensors_per_node;
  std::vector<std::vector<std::size_t>> blade_groups;
  for (std::size_t start = 0; start < drift_data.rows();
       start += blade_sensors) {
    std::vector<std::size_t> group;
    for (std::size_t p = start;
         p < std::min(start + blade_sensors, drift_data.rows()); ++p) {
      group.push_back(p);
    }
    blade_groups.push_back(std::move(group));
  }
  const std::size_t drift_initial = scenario.horizon / 5;
  const std::size_t drift_chunk = scenario.horizon / 10;
  // Threshold on the post-onset SHIFT of each sensor's z-level (not the
  // raw z): the drift statistic is a change against the sensor's own
  // pre-onset behavior, so static heterogeneity cancels.
  const double z_threshold = 0.8;
  const std::size_t coarse_stride = 4;
  const std::size_t max_rank = 6;

  const Detection flat = detect_drift(scenario, drift_data, blade_groups,
                                      drift_initial, drift_chunk, 0,
                                      z_threshold, max_rank);
  const Detection hier = detect_drift(scenario, drift_data, blade_groups,
                                      drift_initial, drift_chunk,
                                      coarse_stride, z_threshold, max_rank);
  std::printf("\ncoherent drift (%zu of %zu nodes, z shift > %.1f after "
              "onset):\n",
              scenario.drift_nodes.size(), scenario.machine.node_count,
              z_threshold);
  std::printf("  flat sharding : precision %.2f recall %.2f (%zu flagged)\n",
              flat.precision, flat.recall, flat.flagged_nodes);
  std::printf("  hierarchical  : precision %.2f recall %.2f (%zu flagged)\n",
              hier.precision, hier.recall, hier.flagged_nodes);

  // The gate: the hierarchy must catch the drift band with decent fidelity
  // AND the flat configuration must demonstrably miss it.
  const bool hierarchy_detects = hier.recall >= 0.5 && hier.precision >= 0.5;
  const bool flat_misses = flat.recall <= 0.5 * hier.recall;
  std::printf("hierarchy gate %s (hierarchy %s the drift, flat %s)\n",
              hierarchy_detects && flat_misses ? "HOLDS" : "VIOLATED",
              hierarchy_detects ? "detects" : "misses",
              flat_misses ? "misses it" : "sees it too");

  JsonWriter json;
  json.begin_object();
  json.field("bench", "hierarchy_drift_detection");
  json.field("nodes", scenario.machine.node_count);
  json.field("drift_nodes", scenario.drift_nodes.size());
  json.field("horizon", scenario.horizon);
  json.field("coarse_stride", coarse_stride);
  json.field("z_threshold", z_threshold);
  json.key("flat");
  json.begin_object();
  json.field("precision", flat.precision);
  json.field("recall", flat.recall);
  json.field("flagged_nodes", flat.flagged_nodes);
  json.end_object();
  json.key("hierarchical");
  json.begin_object();
  json.field("precision", hier.precision);
  json.field("recall", hier.recall);
  json.field("flagged_nodes", hier.flagged_nodes);
  json.end_object();
  json.field("hierarchy_detects", hierarchy_detects);
  json.field("flat_misses", flat_misses);
  json.end_object();
  const std::string json_path = args.out_dir + "/BENCH_hierarchy.json";
  json.write_file(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  return shape_holds && hierarchy_detects && flat_misses ? 0 : 1;
}
