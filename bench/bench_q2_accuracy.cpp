// Q2 (Sec. I / Sec. III-A.1): "What is the difference in accuracy between
// online and regular mrDMD?" The paper: the reconstruction difference
// between I-mrDMD and mrDMD "increases only by a sum of 10-5000, depending
// on the underlying dynamics and the time step upgrades" — small for weeks
// of data but accumulating over many updates.
//
// Shapes to reproduce: the I-mrDMD-vs-mrDMD reconstruction gap (i) stays a
// small fraction of the data norm, (ii) grows (weakly) with the number of
// incremental updates, and (iii) collapses when recompute_on_drift refits
// the stale levels.
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/imrdmd.hpp"
#include "core/mrdmd.hpp"
#include "linalg/blas.hpp"
#include "telemetry/machine.hpp"
#include "telemetry/sensor_model.hpp"

using namespace imrdmd;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Q2 (accuracy gap: I-mrDMD vs batch mrDMD)",
                "gap is a small, slowly accumulating fraction of the data "
                "norm; recompute-on-drift closes it");

  const std::size_t p = args.full ? 1000 : 300;
  const std::size_t t_initial = 1000;
  const std::size_t increments = args.full ? 8 : 5;
  const std::size_t chunk = 1000;

  telemetry::MachineSpec machine = telemetry::MachineSpec::theta();
  machine.node_count = std::min(machine.slots(), p);
  telemetry::SensorModelOptions sensor_options;
  sensor_options.seed = 31;
  telemetry::SensorModel model(machine, sensor_options);
  std::vector<std::size_t> ids(p);
  for (std::size_t i = 0; i < p; ++i) ids[i] = i % machine.sensor_count();
  const linalg::Mat data = model.window_for(
      std::span<const std::size_t>(ids.data(), p), 0,
      t_initial + increments * chunk);

  core::MrdmdOptions mrdmd_options;
  mrdmd_options.max_levels = 5;
  mrdmd_options.dt = machine.dt_seconds;

  core::ImrdmdOptions inc_options;
  inc_options.mrdmd = mrdmd_options;
  core::IncrementalMrdmd inc(inc_options);
  inc.initial_fit(data.block(0, 0, p, t_initial));

  core::ImrdmdOptions fresh_options = inc_options;
  fresh_options.recompute_on_drift = true;
  fresh_options.drift_threshold = 0.0;
  core::IncrementalMrdmd inc_recompute(fresh_options);
  inc_recompute.initial_fit(data.block(0, 0, p, t_initial));

  CsvWriter csv(args.out_dir + "/q2_accuracy.csv",
                {"updates", "T", "gap_stale", "gap_recompute",
                 "err_imrdmd", "err_batch", "data_norm"});
  std::printf("%8s %8s %12s %14s %12s %12s\n", "updates", "T", "gap(stale)",
              "gap(recompute)", "err(inc)", "err(batch)");

  double prev_gap = 0.0;
  bool monotone_ish = true;
  for (std::size_t k = 1; k <= increments; ++k) {
    const std::size_t t0 = t_initial + (k - 1) * chunk;
    inc.partial_fit(data.block(0, t0, p, chunk));
    inc_recompute.partial_fit(data.block(0, t0, p, chunk));

    const std::size_t t_total = t_initial + k * chunk;
    const linalg::Mat window = data.block(0, 0, p, t_total);
    core::MrdmdTree batch(mrdmd_options);
    batch.fit(window);

    const linalg::Mat recon_inc = inc.reconstruct();
    const linalg::Mat recon_rec = inc_recompute.reconstruct();
    const linalg::Mat recon_batch = batch.reconstruct();
    const double gap_stale = linalg::frobenius_diff(recon_inc, recon_batch);
    const double gap_recompute =
        linalg::frobenius_diff(recon_rec, recon_batch);
    const double err_inc = linalg::frobenius_diff(recon_inc, window);
    const double err_batch = linalg::frobenius_diff(recon_batch, window);
    const double norm = linalg::frobenius_norm(window);

    std::printf("%8zu %8zu %12.2f %14.2f %12.2f %12.2f\n", k, t_total,
                gap_stale, gap_recompute, err_inc, err_batch);
    csv.write_row_numeric({static_cast<double>(k),
                           static_cast<double>(t_total), gap_stale,
                           gap_recompute, err_inc, err_batch, norm});
    if (k > 2 && gap_stale < 0.3 * prev_gap) monotone_ish = false;
    prev_gap = gap_stale;
  }
  csv.close();

  const linalg::Mat final_window = data.block(0, 0, p, data.cols());
  const double norm = linalg::frobenius_norm(final_window);
  std::printf("\nfinal stale gap = %.2f (= %.2f%% of data norm %.1f; paper "
              "reports absolute sums of 10-5000 at comparable scales)\n",
              prev_gap, 100.0 * prev_gap / norm, norm);
  std::printf("wrote %s/q2_accuracy.csv\n", args.out_dir.c_str());

  const bool shape_holds = prev_gap < 0.5 * norm;
  std::printf("shape claim %s%s\n", shape_holds ? "HOLDS" : "VIOLATED",
              monotone_ish ? "" : " (gap non-monotone across updates)");
  return shape_holds ? 0 : 1;
}
