// Fleet sharding bench: chunk throughput of the sharded core::Assessor
// topology as the shard (lane) count grows over a fixed group partition.
//
// Workload: G independent sensor groups streaming together as one machine
// (low-rank-plus-noise structure per group, like the telemetry the paper
// ingests). The group partition is held fixed — so every run computes the
// bitwise-identical snapshots, verified here — and only the number of
// concurrent worker lanes varies: 1, 2, 4, ... up to the group count.
// Emits BENCH_fleet.json with the shards-vs-throughput curve; the headline
// figure is speedup at 4 shards vs 1 (expect ~min(4, cores) on an idle
// multi-core box, 1x on a single-core CI runner — hardware_concurrency is
// recorded alongside so the curve can be interpreted).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "core/assessor.hpp"
#include "dist/communicator.hpp"

using namespace imrdmd;

namespace {

// Per-group coherent modes plus deterministic pseudo-noise; groups get
// distinct phases so their models do real, slightly uneven work.
linalg::Mat make_fleet_stream(std::size_t sensors, std::size_t cols) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.11 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 192.0;
      double value = 48.0 + 4.0 * std::sin(2.0 * M_PI * 0.35 * x + phase);
      value += 1.2 * std::sin(2.0 * M_PI * 5.0 * x + 2.0 * phase);
      value += 0.3 * noise();
      data(p, t) = value;
    }
  }
  return data;
}

struct ShardResult {
  std::size_t shards = 0;
  double seconds = 0.0;
  double chunks_per_sec = 0.0;
  double snapshots_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) try {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner(
      "Fleet sharding: per-group I-mrDMD models, global z-score reconciliation",
      "chunk throughput scales with shard lanes; results are shard-count "
      "invariant (bitwise)");

  const std::size_t group_count = args.full ? 16 : 8;
  const std::size_t sensors_per_group = args.full ? 256 : 96;
  const std::size_t initial = args.full ? 512 : 256;
  const std::size_t chunk = args.full ? 256 : 128;
  const std::size_t stream_chunks = args.full ? 8 : 4;
  const std::size_t sensors = group_count * sensors_per_group;
  const std::size_t total = initial + chunk * stream_chunks;
  const std::size_t repeats = std::max<std::size_t>(args.repeats, 1);

  std::printf("workload: %zu sensors in %zu groups, %zu+%zux%zu snapshots, "
              "%zu repeats, hardware_concurrency=%u\n",
              sensors, group_count, initial, stream_chunks, chunk, repeats,
              std::thread::hardware_concurrency());

  const linalg::Mat data = make_fleet_stream(sensors, total);
  const auto groups = core::contiguous_groups(sensors, group_count);

  std::vector<std::size_t> shard_counts{1, 2, 4};
  if (group_count >= 8) shard_counts.push_back(8);
  if (group_count >= 16) shard_counts.push_back(16);

  std::vector<ShardResult> results;
  std::vector<double> reference_z;  // last-chunk z-scores at 1 shard
  bool invariant = true;
  for (std::size_t shards : shard_counts) {
    ShardResult result;
    result.shards = shards;
    double total_seconds = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      core::AssessorConfig config;
      config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
      config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
      config.pipeline_options.baseline = {40.0, 60.0};
      config.sharded(groups, shards).sensors(sensors);
      core::Assessor assessor(config);
      core::MatrixChunkSource source(data, initial, chunk);
      core::CollectingSink sink;
      WallTimer timer;
      assessor.run(source, sink);
      total_seconds += timer.seconds();
      if (rep + 1 == repeats) {
        const auto& z = sink.snapshots().back().zscores.zscores;
        if (reference_z.empty()) {
          reference_z = z;
        } else {
          for (std::size_t i = 0; i < z.size(); ++i) {
            if (z[i] != reference_z[i]) invariant = false;
          }
        }
      }
    }
    result.seconds = total_seconds / static_cast<double>(repeats);
    result.chunks_per_sec =
        static_cast<double>(1 + stream_chunks) / result.seconds;
    result.snapshots_per_sec = static_cast<double>(total) / result.seconds;
    results.push_back(result);
    std::printf("  shards=%-3zu %8.3f s  %8.2f chunks/sec  %10.0f snaps/sec\n",
                result.shards, result.seconds, result.chunks_per_sec,
                result.snapshots_per_sec);
  }

  double speedup_4v1 = 0.0;
  for (const ShardResult& r : results) {
    if (r.shards == 4) speedup_4v1 = results.front().seconds / r.seconds;
  }
  std::printf("\nspeedup 4 shards vs 1: %.2fx  (shard-count invariant: %s)\n",
              speedup_4v1, invariant ? "yes" : "NO");

  // Ranks curve: the same fixed partition spread across SPMD ranks of the
  // distributed driver (one lane per rank, so the concurrency is purely
  // rank-driven), rank 0 ingesting and broadcasting. The last-chunk
  // z-scores must stay bitwise identical to the single-process runs above.
  std::printf("\ndistributed ranks (1 lane per rank):\n");
  std::vector<ShardResult> rank_results;
  bool rank_invariant = true;
  for (const std::size_t rank_count : {std::size_t{1}, std::size_t{2},
                                       std::size_t{4}}) {
    ShardResult result;
    result.shards = rank_count;
    double total_seconds = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      dist::World world(static_cast<int>(rank_count));
      std::vector<double> z;
      WallTimer timer;
      world.run([&](dist::Communicator& comm) {
        core::AssessorConfig config;
        config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
        config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
        config.pipeline_options.baseline = {40.0, 60.0};
        config.sharded(groups, 1).sensors(sensors).distributed(comm);
        core::Assessor assessor(config);
        std::optional<core::MatrixChunkSource> source;
        if (comm.rank() == 0) source.emplace(data, initial, chunk);
        core::CollectingSink sink;
        assessor.run_until(comm.rank() == 0 ? &*source : nullptr, sink,
                           core::StopCondition{});
        if (comm.rank() == 0) z = sink.snapshots().back().zscores.zscores;
      });
      total_seconds += timer.seconds();
      if (rep + 1 == repeats) {
        for (std::size_t i = 0; i < z.size(); ++i) {
          if (z[i] != reference_z[i]) rank_invariant = false;
        }
      }
    }
    result.seconds = total_seconds / static_cast<double>(repeats);
    result.chunks_per_sec =
        static_cast<double>(1 + stream_chunks) / result.seconds;
    result.snapshots_per_sec = static_cast<double>(total) / result.seconds;
    rank_results.push_back(result);
    std::printf("  ranks=%-3zu  %8.3f s  %8.2f chunks/sec  %10.0f snaps/sec\n",
                result.shards, result.seconds, result.chunks_per_sec,
                result.snapshots_per_sec);
  }
  std::printf("rank-count invariant vs single-process: %s\n",
              rank_invariant ? "yes" : "NO");

  // Wire-bytes curve: the same distributed run under the two root-fed
  // delivery modes, summing every rank's communicator byte counter.
  // Broadcast ships the full P x T chunk to every non-root — O(P*T*R) per
  // chunk; scatterv ships each non-root only its owned rows — O(P*T) total
  // regardless of R. The merge traffic is identical, so the gate below
  // checks the totals differ by at least the payload saving.
  std::printf("\nwire bytes per ingestion mode (4 ranks):\n");
  const std::size_t wire_ranks = 4;
  const std::uint64_t stream_bytes =
      static_cast<std::uint64_t>(sensors) * total * sizeof(double);
  std::uint64_t wire_totals[2] = {0, 0};
  bool wire_invariant = true;
  for (int mode_index = 0; mode_index < 2; ++mode_index) {
    const core::IngestMode mode = mode_index == 0
                                      ? core::IngestMode::Broadcast
                                      : core::IngestMode::Scatterv;
    dist::World world(static_cast<int>(wire_ranks));
    std::vector<std::uint64_t> per_rank(wire_ranks, 0);
    std::vector<double> z;
    world.run([&](dist::Communicator& comm) {
      core::AssessorConfig config;
      config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
      config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
      config.pipeline_options.baseline = {40.0, 60.0};
      config.sharded(groups, 1).sensors(sensors).distributed(comm);
      config.ingest_options.with_mode(mode);
      core::Assessor assessor(config);
      std::optional<core::MatrixChunkSource> source;
      if (comm.rank() == 0) source.emplace(data, initial, chunk);
      comm.reset_wire_bytes();
      core::CollectingSink sink;
      assessor.run_until(comm.rank() == 0 ? &*source : nullptr, sink,
                         core::StopCondition{});
      per_rank[static_cast<std::size_t>(comm.rank())] = comm.wire_bytes();
      if (comm.rank() == 0) z = sink.snapshots().back().zscores.zscores;
    });
    for (const std::uint64_t b : per_rank) {
      wire_totals[mode_index] += b;
    }
    for (std::size_t i = 0; i < z.size(); ++i) {
      if (z[i] != reference_z[i]) wire_invariant = false;
    }
    std::printf("  %-10s %12llu bytes total  %10.0f bytes/chunk\n",
                mode_index == 0 ? "broadcast" : "scatterv",
                static_cast<unsigned long long>(wire_totals[mode_index]),
                static_cast<double>(wire_totals[mode_index]) /
                    static_cast<double>(1 + stream_chunks));
  }
  // Payload saving: broadcast pays (R-1) x stream payload, scatterv's
  // slices sum to at most one stream payload — the totals must differ by
  // the remaining (R-2) payloads.
  const bool wire_gate =
      wire_totals[1] + (wire_ranks - 2) * stream_bytes <= wire_totals[0];
  std::printf("scatterv saves >= (R-2) x payload vs broadcast: %s "
              "(bitwise invariant: %s)\n",
              wire_gate ? "yes" : "NO", wire_invariant ? "yes" : "NO");

  // Prefetch-depth curve: the unified Assessor's bounded ingestion queue
  // over the same fixed partition at a fixed lane count. Depth 0 is fully
  // synchronous, 1 the classic double buffer, deeper queues smooth bursty
  // sources; the last-chunk z-scores must stay bitwise identical to the
  // shard runs above at every depth (the gate this bench exits nonzero
  // on).
  std::printf("\nprefetch depth (4 lanes, bounded queue):\n");
  const std::size_t depth_lanes = std::min<std::size_t>(4, group_count);
  std::vector<ShardResult> depth_results;
  bool depth_invariant = true;
  for (const std::size_t depth : {std::size_t{0}, std::size_t{1},
                                  std::size_t{2}, std::size_t{4}}) {
    ShardResult result;
    result.shards = depth;
    double total_seconds = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      core::AssessorConfig config;
      config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
      config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
      config.pipeline_options.baseline = {40.0, 60.0};
      config.sharded(groups, depth_lanes).sensors(sensors);
      config.ingest_options.prefetch_depth = depth;
      core::Assessor assessor(config);
      core::MatrixChunkSource source(data, initial, chunk);
      core::CollectingSink sink;
      WallTimer timer;
      assessor.run(source, sink);
      total_seconds += timer.seconds();
      if (rep + 1 == repeats) {
        const auto& z = sink.snapshots().back().zscores.zscores;
        for (std::size_t i = 0; i < z.size(); ++i) {
          if (z[i] != reference_z[i]) depth_invariant = false;
        }
      }
    }
    result.seconds = total_seconds / static_cast<double>(repeats);
    result.chunks_per_sec =
        static_cast<double>(1 + stream_chunks) / result.seconds;
    result.snapshots_per_sec = static_cast<double>(total) / result.seconds;
    depth_results.push_back(result);
    std::printf("  depth=%-3zu  %8.3f s  %8.2f chunks/sec  %10.0f snaps/sec\n",
                result.shards, result.seconds, result.chunks_per_sec,
                result.snapshots_per_sec);
  }
  std::printf("prefetch-depth invariant vs shard runs: %s\n",
              depth_invariant ? "yes" : "NO");

  JsonWriter json;
  json.begin_object();
  json.field("bench", "fleet");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("groups", group_count);
  json.field("initial_snapshots", initial);
  json.field("chunk_snapshots", chunk);
  json.field("stream_chunks", stream_chunks);
  json.field("repeats", repeats);
  json.end_object();
  json.field("hardware_concurrency",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.key("curve");
  json.begin_array();
  for (const ShardResult& r : results) {
    json.begin_object();
    json.field("shards", r.shards);
    json.field("seconds", r.seconds);
    json.field("chunks_per_sec", r.chunks_per_sec);
    json.field("snapshots_per_sec", r.snapshots_per_sec);
    json.field("speedup_vs_1", results.front().seconds / r.seconds);
    json.end_object();
  }
  json.end_array();
  json.field("speedup_4_vs_1", speedup_4v1);
  json.field("shard_count_invariant", invariant);
  json.key("rank_curve");
  json.begin_array();
  for (const ShardResult& r : rank_results) {
    json.begin_object();
    json.field("ranks", r.shards);
    json.field("seconds", r.seconds);
    json.field("chunks_per_sec", r.chunks_per_sec);
    json.field("snapshots_per_sec", r.snapshots_per_sec);
    json.field("speedup_vs_1", rank_results.front().seconds / r.seconds);
    json.end_object();
  }
  json.end_array();
  json.field("rank_count_invariant", rank_invariant);
  json.key("bytes_per_chunk");
  json.begin_array();
  for (int mode_index = 0; mode_index < 2; ++mode_index) {
    json.begin_object();
    json.field("mode", mode_index == 0 ? "broadcast" : "scatterv");
    json.field("ranks", wire_ranks);
    json.field("total_wire_bytes",
               static_cast<std::size_t>(wire_totals[mode_index]));
    json.field("bytes_per_chunk",
               static_cast<double>(wire_totals[mode_index]) /
                   static_cast<double>(1 + stream_chunks));
    json.end_object();
  }
  json.end_array();
  json.field("scatterv_wire_gate", wire_gate);
  json.key("prefetch_curve");
  json.begin_array();
  for (const ShardResult& r : depth_results) {
    json.begin_object();
    json.field("prefetch_depth", r.shards);
    json.field("seconds", r.seconds);
    json.field("chunks_per_sec", r.chunks_per_sec);
    json.field("snapshots_per_sec", r.snapshots_per_sec);
    json.field("speedup_vs_sync", depth_results.front().seconds / r.seconds);
    json.end_object();
  }
  json.end_array();
  json.field("prefetch_depth_invariant", depth_invariant);
  json.end_object();
  const std::string path = args.out_dir + "/BENCH_fleet.json";
  json.write_file(path);
  std::printf("wrote %s\n", path.c_str());

  return invariant && rank_invariant && depth_invariant && wire_gate &&
                 wire_invariant
             ? 0
             : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
