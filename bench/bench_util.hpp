// Shared plumbing for the per-figure/per-table bench harnesses.
//
// Every bench binary:
//   * prints the paper artifact it reproduces and the shape claim to check,
//   * accepts --full (paper-scale sizes), --repeats N, --out DIR,
//   * writes its series/rows as CSV next to the stdout report.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/strings.hpp"

namespace imrdmd::bench {

struct BenchArgs {
  bool full = false;        // paper-scale sizes instead of CI-scale
  std::size_t repeats = 1;  // timing repetitions (paper averages 10)
  std::string out_dir = ".";

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (!std::strcmp(argv[i], "--full")) {
        args.full = true;
      } else if (!std::strcmp(argv[i], "--repeats") && i + 1 < argc) {
        args.repeats =
            static_cast<std::size_t>(parse_long(argv[++i], "--repeats"));
      } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
        args.out_dir = argv[++i];
      } else if (!std::strcmp(argv[i], "--help")) {
        std::printf("usage: %s [--full] [--repeats N] [--out DIR]\n", argv[0]);
        std::exit(0);
      }
    }
    return args;
  }
};

inline void banner(const char* artifact, const char* claim) {
  std::printf("================================================================\n");
  std::printf("Reproduces: %s\n", artifact);
  std::printf("Shape claim: %s\n", claim);
  std::printf("================================================================\n");
}

}  // namespace imrdmd::bench
