// Fleet checkpoint bench: save/load throughput of the fleet checkpoint
// container as the group count grows over a fixed sensor population.
//
// Workload: the bench_fleet-style synthetic stream partitioned into G
// contiguous groups, streamed into a core::Assessor, then checkpointed.
// Per-group model images are serialized concurrently across the fleet's
// worker lanes and concatenated in deterministic group order, so more
// groups mean more lane parallelism during save (and smaller per-group
// models) at a roughly constant total byte size. Emits
// BENCH_checkpoint.json with the groups-vs-throughput curve; the fidelity
// gate is that re-serializing a loaded checkpoint reproduces the container
// byte for byte (exit status reflects it).
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "core/assessor.hpp"
#include "core/checkpoint.hpp"

using namespace imrdmd;

namespace {

// Per-group coherent modes plus deterministic pseudo-noise (the same
// low-rank-plus-noise structure the fleet bench streams).
linalg::Mat make_fleet_stream(std::size_t sensors, std::size_t cols) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.13 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 192.0;
      double value = 48.0 + 4.0 * std::sin(2.0 * M_PI * 0.35 * x + phase);
      value += 1.2 * std::sin(2.0 * M_PI * 5.0 * x + 2.0 * phase);
      value += 0.3 * noise();
      data(p, t) = value;
    }
  }
  return data;
}

struct GroupResult {
  std::size_t groups = 0;
  std::size_t bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  double save_mb_per_sec = 0.0;
  double load_mb_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) try {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner(
      "Fleet checkpoint container: parallel per-group sections, atomic files",
      "save/load throughput holds as the group count grows; a loaded "
      "checkpoint re-serializes byte-identically");

  const std::size_t sensors = args.full ? 2048 : 512;
  const std::size_t initial = args.full ? 512 : 256;
  const std::size_t chunk = args.full ? 256 : 128;
  const std::size_t stream_chunks = 2;
  const std::size_t total = initial + chunk * stream_chunks;
  const std::size_t repeats = std::max<std::size_t>(args.repeats, 1);

  std::printf("workload: %zu sensors, %zu+%zux%zu snapshots, %zu repeats, "
              "hardware_concurrency=%u\n",
              sensors, initial, stream_chunks, chunk, repeats,
              std::thread::hardware_concurrency());

  const linalg::Mat data = make_fleet_stream(sensors, total);

  std::vector<std::size_t> group_counts{1, 2, 4};
  if (sensors >= 512) group_counts.push_back(8);

  std::vector<GroupResult> results;
  bool resave_identical = true;
  for (std::size_t group_count : group_counts) {
    core::AssessorConfig config;
    config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
    config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
    config.pipeline_options.baseline = {40.0, 60.0};
    config.sharded(core::contiguous_groups(sensors, group_count))
        .sensors(sensors);
    core::Assessor assessor(config);
    core::MatrixChunkSource source(data, initial, chunk);
    core::CollectingSink sink;
    assessor.run(source, sink);

    GroupResult result;
    result.groups = group_count;
    std::string bytes;
    {
      double save_total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::ostringstream buffer;
        WallTimer timer;
        core::save_assessor_checkpoint(buffer, assessor);
        save_total += timer.seconds();
        if (rep + 1 == repeats) bytes = buffer.str();
      }
      result.save_seconds = save_total / static_cast<double>(repeats);
    }
    result.bytes = bytes.size();
    {
      double load_total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::istringstream buffer(bytes);
        WallTimer timer;
        core::RestoredAssessor restored =
            core::load_assessor_checkpoint(buffer);
        load_total += timer.seconds();
        if (rep + 1 == repeats) {
          std::ostringstream resaved;
          core::save_assessor_checkpoint(resaved, restored.assessor);
          if (resaved.str() != bytes) resave_identical = false;
        }
      }
      result.load_seconds = load_total / static_cast<double>(repeats);
    }
    const double mb = static_cast<double>(result.bytes) / (1024.0 * 1024.0);
    result.save_mb_per_sec = mb / result.save_seconds;
    result.load_mb_per_sec = mb / result.load_seconds;
    results.push_back(result);
    std::printf(
        "  groups=%-3zu %8.2f KiB  save %8.3f ms (%7.1f MiB/s)  load %8.3f "
        "ms (%7.1f MiB/s)\n",
        result.groups, static_cast<double>(result.bytes) / 1024.0,
        result.save_seconds * 1e3, result.save_mb_per_sec,
        result.load_seconds * 1e3, result.load_mb_per_sec);
  }

  std::printf("\nresave byte-identical: %s\n",
              resave_identical ? "yes" : "NO");

  JsonWriter json;
  json.begin_object();
  json.field("bench", "checkpoint");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("initial_snapshots", initial);
  json.field("chunk_snapshots", chunk);
  json.field("stream_chunks", stream_chunks);
  json.field("repeats", repeats);
  json.end_object();
  json.field("hardware_concurrency",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.key("curve");
  json.begin_array();
  for (const GroupResult& r : results) {
    json.begin_object();
    json.field("groups", r.groups);
    json.field("bytes", r.bytes);
    json.field("save_seconds", r.save_seconds);
    json.field("load_seconds", r.load_seconds);
    json.field("save_mb_per_sec", r.save_mb_per_sec);
    json.field("load_mb_per_sec", r.load_mb_per_sec);
    json.end_object();
  }
  json.end_array();
  json.field("resave_identical", resave_identical);
  json.end_object();
  const std::string path = args.out_dir + "/BENCH_checkpoint.json";
  json.write_file(path);
  std::printf("wrote %s\n", path.c_str());

  return resave_identical ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
