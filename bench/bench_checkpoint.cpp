// Fleet checkpoint bench: save/load throughput of the fleet checkpoint
// container as the group count grows over a fixed sensor population.
//
// Workload: the bench_fleet-style synthetic stream partitioned into G
// contiguous groups, streamed into a core::Assessor, then checkpointed.
// Per-group model images are serialized concurrently across the fleet's
// worker lanes and concatenated in deterministic group order, so more
// groups mean more lane parallelism during save (and smaller per-group
// models) at a roughly constant total byte size. Emits
// BENCH_checkpoint.json with the groups-vs-throughput curve; the fidelity
// gate is that re-serializing a loaded checkpoint reproduces the container
// byte for byte (exit status reflects it).
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "core/assessor.hpp"
#include "core/checkpoint.hpp"

using namespace imrdmd;

namespace {

// Per-group coherent modes plus deterministic pseudo-noise (the same
// low-rank-plus-noise structure the fleet bench streams).
linalg::Mat make_fleet_stream(std::size_t sensors, std::size_t cols) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.13 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 192.0;
      double value = 48.0 + 4.0 * std::sin(2.0 * M_PI * 0.35 * x + phase);
      value += 1.2 * std::sin(2.0 * M_PI * 5.0 * x + 2.0 * phase);
      value += 0.3 * noise();
      data(p, t) = value;
    }
  }
  return data;
}

struct GroupResult {
  std::size_t groups = 0;
  std::size_t bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  double save_mb_per_sec = 0.0;
  double load_mb_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) try {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner(
      "Fleet checkpoint container: parallel per-group sections, atomic files",
      "save/load throughput holds as the group count grows; a loaded "
      "checkpoint re-serializes byte-identically");

  const std::size_t sensors = args.full ? 2048 : 512;
  const std::size_t initial = args.full ? 512 : 256;
  const std::size_t chunk = args.full ? 256 : 128;
  const std::size_t stream_chunks = 2;
  const std::size_t total = initial + chunk * stream_chunks;
  const std::size_t repeats = std::max<std::size_t>(args.repeats, 1);

  std::printf("workload: %zu sensors, %zu+%zux%zu snapshots, %zu repeats, "
              "hardware_concurrency=%u\n",
              sensors, initial, stream_chunks, chunk, repeats,
              std::thread::hardware_concurrency());

  const linalg::Mat data = make_fleet_stream(sensors, total);

  std::vector<std::size_t> group_counts{1, 2, 4};
  if (sensors >= 512) group_counts.push_back(8);

  std::vector<GroupResult> results;
  bool resave_identical = true;
  for (std::size_t group_count : group_counts) {
    core::AssessorConfig config;
    config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
    config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
    config.pipeline_options.baseline = {40.0, 60.0};
    config.sharded(core::contiguous_groups(sensors, group_count))
        .sensors(sensors);
    core::Assessor assessor(config);
    core::MatrixChunkSource source(data, initial, chunk);
    core::CollectingSink sink;
    assessor.run(source, sink);

    GroupResult result;
    result.groups = group_count;
    std::string bytes;
    {
      double save_total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::ostringstream buffer;
        WallTimer timer;
        core::save_assessor_checkpoint(buffer, assessor);
        save_total += timer.seconds();
        if (rep + 1 == repeats) bytes = buffer.str();
      }
      result.save_seconds = save_total / static_cast<double>(repeats);
    }
    result.bytes = bytes.size();
    {
      double load_total = 0.0;
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        std::istringstream buffer(bytes);
        WallTimer timer;
        core::RestoredAssessor restored =
            core::load_assessor_checkpoint(buffer);
        load_total += timer.seconds();
        if (rep + 1 == repeats) {
          std::ostringstream resaved;
          core::save_assessor_checkpoint(resaved, restored.assessor);
          if (resaved.str() != bytes) resave_identical = false;
        }
      }
      result.load_seconds = load_total / static_cast<double>(repeats);
    }
    const double mb = static_cast<double>(result.bytes) / (1024.0 * 1024.0);
    result.save_mb_per_sec = mb / result.save_seconds;
    result.load_mb_per_sec = mb / result.load_seconds;
    results.push_back(result);
    std::printf(
        "  groups=%-3zu %8.2f KiB  save %8.3f ms (%7.1f MiB/s)  load %8.3f "
        "ms (%7.1f MiB/s)\n",
        result.groups, static_cast<double>(result.bytes) / 1024.0,
        result.save_seconds * 1e3, result.save_mb_per_sec,
        result.load_seconds * 1e3, result.load_mb_per_sec);
  }

  std::printf("\nresave byte-identical: %s\n",
              resave_identical ? "yes" : "NO");

  // Delta curve: per-checkpoint save cost as the stream grows, full
  // container (IMRDFL1, re-serializes every model each time) vs the
  // rank-local delta container (IMRDFL3, appends the chunk's raw rows to
  // an epoch-named part). The delta's append cost — time and bytes — must
  // stay flat at O(chunk) while the full save scales with the model state.
  std::printf("\nper-checkpoint save cost, full vs delta container:\n");
  const std::size_t delta_chunks = args.full ? 10 : 6;
  const std::size_t delta_groups = 8;
  const linalg::Mat delta_data =
      make_fleet_stream(sensors, initial + chunk * delta_chunks);
  const std::string full_path = args.out_dir + "/bench_full.ckpt";
  const std::string delta_path = args.out_dir + "/bench_delta.ckpt";
  const std::string delta_part = delta_path + ".r0.e1";
  std::remove(full_path.c_str());
  std::remove(delta_path.c_str());
  for (int e = 1; e <= 2; ++e) {
    std::remove((delta_path + ".r0.e" + std::to_string(e)).c_str());
  }

  auto delta_config = [&](bool delta) {
    core::AssessorConfig config;
    config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
    config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
    config.pipeline_options.baseline = {40.0, 60.0};
    config.sharded(core::contiguous_groups(sensors, delta_groups))
        .sensors(sensors);
    config.checkpoint_policy.with_delta(delta);
    return config;
  };
  core::Assessor full_engine(delta_config(false));
  core::Assessor delta_engine(delta_config(true));

  struct DeltaPoint {
    std::size_t chunk_index = 0;
    double full_seconds = 0.0;
    double delta_seconds = 0.0;
    std::uintmax_t full_bytes = 0;
    std::uintmax_t delta_bytes = 0;
  };
  std::vector<DeltaPoint> delta_points;
  auto file_bytes = [](const std::string& p) -> std::uintmax_t {
    std::error_code ec;
    const std::uintmax_t n = std::filesystem::file_size(p, ec);
    return ec ? 0 : n;
  };
  std::uintmax_t last_part_bytes = 0;
  for (std::size_t c = 0; c <= delta_chunks; ++c) {
    const std::size_t at = c == 0 ? 0 : initial + (c - 1) * chunk;
    const std::size_t width = c == 0 ? initial : chunk;
    const linalg::Mat window =
        delta_data.block(0, at, sensors, width);
    full_engine.process(window);
    delta_engine.process(window);

    DeltaPoint point;
    point.chunk_index = c;
    {
      WallTimer timer;
      core::save_assessor_checkpoint_file(full_path, full_engine);
      point.full_seconds = timer.seconds();
    }
    point.full_bytes = file_bytes(full_path);
    {
      WallTimer timer;
      core::save_assessor_checkpoint_file(delta_path, delta_engine);
      point.delta_seconds = timer.seconds();
    }
    const std::uintmax_t part_now = file_bytes(delta_part);
    point.delta_bytes =
        c == 0 ? part_now + file_bytes(delta_path) : part_now - last_part_bytes;
    last_part_bytes = part_now;
    delta_points.push_back(point);
    std::printf("  chunk=%-3zu full %8.3f ms / %8.1f KiB   delta %8.3f ms / "
                "%8.1f KiB written\n",
                c, point.full_seconds * 1e3,
                static_cast<double>(point.full_bytes) / 1024.0,
                point.delta_seconds * 1e3,
                static_cast<double>(point.delta_bytes) / 1024.0);
  }
  // Gates: the delta appends (past the base write) stay under the full
  // container's byte cost and do not grow with the stream.
  bool delta_flat = true;
  for (std::size_t c = 2; c < delta_points.size(); ++c) {
    if (delta_points[c].delta_bytes >
        2 * delta_points[1].delta_bytes + 4096) {
      delta_flat = false;
    }
    if (delta_points[c].delta_bytes >= delta_points[c].full_bytes) {
      delta_flat = false;
    }
  }
  // Fidelity: the delta container restores to the same engine.
  bool delta_matches = true;
  {
    core::RestoredAssessor restored =
        core::load_assessor_checkpoint_file(delta_path);
    const linalg::Mat probe = delta_data.block(
        0, delta_data.cols() - chunk, sensors, chunk);
    // Both engines saw the identical stream; replaying one more (repeated)
    // chunk through each must produce identical results.
    const auto a = full_engine.process(probe);
    const auto b = restored.assessor.process(probe);
    if (a.magnitudes != b.magnitudes ||
        a.zscores.zscores != b.zscores.zscores) {
      delta_matches = false;
    }
  }
  std::printf("delta append cost flat: %s   delta restore bitwise: %s\n",
              delta_flat ? "yes" : "NO", delta_matches ? "yes" : "NO");
  std::remove(full_path.c_str());
  std::remove(delta_path.c_str());
  for (int e = 1; e <= 2; ++e) {
    std::remove((delta_path + ".r0.e" + std::to_string(e)).c_str());
  }

  JsonWriter json;
  json.begin_object();
  json.field("bench", "checkpoint");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("initial_snapshots", initial);
  json.field("chunk_snapshots", chunk);
  json.field("stream_chunks", stream_chunks);
  json.field("repeats", repeats);
  json.end_object();
  json.field("hardware_concurrency",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.key("curve");
  json.begin_array();
  for (const GroupResult& r : results) {
    json.begin_object();
    json.field("groups", r.groups);
    json.field("bytes", r.bytes);
    json.field("save_seconds", r.save_seconds);
    json.field("load_seconds", r.load_seconds);
    json.field("save_mb_per_sec", r.save_mb_per_sec);
    json.field("load_mb_per_sec", r.load_mb_per_sec);
    json.end_object();
  }
  json.end_array();
  json.field("resave_identical", resave_identical);
  json.key("delta_curve");
  json.begin_array();
  for (const DeltaPoint& p : delta_points) {
    json.begin_object();
    json.field("chunk", p.chunk_index);
    json.field("full_save_seconds", p.full_seconds);
    json.field("full_bytes", static_cast<std::size_t>(p.full_bytes));
    json.field("delta_save_seconds", p.delta_seconds);
    json.field("delta_bytes_written",
               static_cast<std::size_t>(p.delta_bytes));
    json.end_object();
  }
  json.end_array();
  json.field("delta_append_flat", delta_flat);
  json.field("delta_restore_identical", delta_matches);
  json.end_object();
  const std::string path = args.out_dir + "/BENCH_checkpoint.json";
  json.write_file(path);
  std::printf("wrote %s\n", path.c_str());

  return resave_identical && delta_flat && delta_matches ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
