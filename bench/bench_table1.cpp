// Table I: completion time (seconds) of the initial data fit and the
// incremental addition of 1,000 time points, for the SC Log (supercomputer
// temperatures, 6 levels) and GPU Metrics (7 levels) datasets,
// N = 1,000 series, T in {2,000, 5,000, 10,000, 16,000}.
//
// Shape to reproduce: Initial Fit grows steeply with T while Partial Fit
// stays roughly flat (~constant per 1,000 added points), for both datasets;
// the GPU preset (deeper tree, more modes) costs more across the board.
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "telemetry/machine.hpp"
#include "telemetry/sensor_model.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

// N=1000 series cut from a preset machine's sensor model.
linalg::Mat dataset(const telemetry::MachineSpec& base, std::size_t n,
                    std::size_t t, std::uint64_t seed) {
  telemetry::MachineSpec spec = base;
  // Enough slots for n sensors.
  while (spec.slots() * spec.sensors_per_node < n) spec.racks *= 2;
  spec.node_count = (n + spec.sensors_per_node - 1) / spec.sensors_per_node;
  telemetry::SensorModelOptions options;
  options.seed = seed;
  telemetry::SensorModel model(spec, options);
  std::vector<std::size_t> sensors(n);
  for (std::size_t i = 0; i < n; ++i) sensors[i] = i;
  return model.window_for(
      std::span<const std::size_t>(sensors.data(), sensors.size()), 0, t);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner(
      "Table I (completion time of Initial Fit vs Partial Fit)",
      "initial fit grows with T; +1,000-point partial fit stays ~flat");

  const std::size_t n = args.full ? 1000 : 250;
  const std::vector<std::size_t> t_values =
      args.full ? std::vector<std::size_t>{2000, 5000, 10000, 16000}
                : std::vector<std::size_t>{2000, 5000, 10000, 16000};
  const std::size_t increment = 1000;

  struct Preset {
    const char* name;
    telemetry::MachineSpec machine;
    std::size_t levels;
  };
  const std::vector<Preset> presets = {
      {"SC Log", telemetry::MachineSpec::theta(), 6},
      {"GPU Metrics", telemetry::MachineSpec::polaris(), 7},
  };

  CsvWriter csv(args.out_dir + "/table1.csv",
                {"dataset", "N", "T", "initial_fit_s", "partial_fit_s"});
  std::printf("%-12s %6s %7s %12s %12s   (paper: init grows, partial flat)\n",
              "Dataset", "N", "T", "InitialFit", "PartialFit");

  for (const Preset& preset : presets) {
    for (std::size_t t : t_values) {
      const linalg::Mat data =
          dataset(preset.machine, n, t + increment, 7 + t);

      double initial_seconds = 0.0;
      double partial_seconds = 0.0;
      for (std::size_t rep = 0; rep < args.repeats; ++rep) {
        core::ImrdmdOptions options;
        options.mrdmd.max_levels = preset.levels;
        options.mrdmd.dt = preset.machine.dt_seconds;
        core::IncrementalMrdmd model(options);

        WallTimer timer;
        model.initial_fit(data.block(0, 0, n, t));
        initial_seconds += timer.seconds();

        timer.reset();
        model.partial_fit(data.block(0, t, n, increment));
        partial_seconds += timer.seconds();
      }
      initial_seconds /= static_cast<double>(args.repeats);
      partial_seconds /= static_cast<double>(args.repeats);

      std::printf("%-12s %6zu %7zu %12.4f %12.4f\n", preset.name, n, t + increment,
                  initial_seconds, partial_seconds);
      csv.write_row({preset.name, std::to_string(n), std::to_string(t + increment),
                     std::to_string(initial_seconds),
                     std::to_string(partial_seconds)});
    }
  }
  csv.close();
  std::printf("\nwrote %s/table1.csv\n", args.out_dir.c_str());
  if (!args.full) {
    std::printf("(CI scale N=%zu; run with --full for the paper's N=1000)\n",
                n);
  }
  return 0;
}
