// Fig. 9: completion-time scaling with data size, P = 1,000 series, T from
// 1,000 to 30,000 snapshots (Sec. VI settings: I-mrDMD max_levels=4,
// max_cycles=2, do_svht; PCA n_components=2; IPCA batch_size=10; UMAP
// n_neighbors=15, min_dist=0.1; streaming methods get 1,000-point initial
// fits then 1,000-point partial fits).
//
// Shapes to reproduce (paper Sec. VI):
//   * I-mrDMD partial fit always beats the full mrDMD recompute;
//   * I-mrDMD beats Aligned-UMAP and (at scale) full PCA/UMAP;
//   * IPCA's partial fit and accelerated t-SNE beat I-mrDMD.
#include <vector>

#include "baselines/pca.hpp"
#include "baselines/tsne.hpp"
#include "baselines/umap.hpp"
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "core/mrdmd.hpp"
#include "telemetry/machine.hpp"
#include "telemetry/sensor_model.hpp"

using namespace imrdmd;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner(
      "Fig. 9 (completion time vs data size, P=1000)",
      "I-mrDMD partial << mrDMD full; IPCA partial < I-mrDMD partial; "
      "UMAP/Aligned-UMAP slowest");

  const std::size_t p = args.full ? 1000 : 400;
  const std::vector<std::size_t> t_values =
      args.full
          ? std::vector<std::size_t>{1000, 2000, 5000, 10000, 20000, 30000}
          : std::vector<std::size_t>{1000, 2000, 5000, 10000};
  const std::size_t chunk = 1000;

  // P series from the Theta sensor model.
  telemetry::MachineSpec machine = telemetry::MachineSpec::theta();
  machine.node_count = std::min(machine.slots(), p);
  telemetry::SensorModelOptions sensor_options;
  sensor_options.seed = 21;
  telemetry::SensorModel model(machine, sensor_options);
  std::vector<std::size_t> sensor_ids(p);
  for (std::size_t i = 0; i < p; ++i) sensor_ids[i] = i % machine.sensor_count();
  std::printf("generating %zu x %zu dataset...\n", p, t_values.back());
  const linalg::Mat data = model.window_for(
      std::span<const std::size_t>(sensor_ids.data(), p), 0, t_values.back());

  CsvWriter csv(args.out_dir + "/fig9_scaling.csv",
                {"T", "mrdmd_fit_s", "imrdmd_partial_s", "pca_fit_s",
                 "ipca_partial_s", "tsne_fit_s", "umap_fit_s",
                 "aligned_umap_partial_s"});
  std::printf("\n%7s %10s %10s %10s %10s %10s %10s %10s\n", "T", "mrDMD",
              "I-mrDMD", "PCA", "IPCA", "TSNE", "UMAP", "A-UMAP");

  for (const std::size_t t : t_values) {
    const linalg::Mat window = data.block(0, 0, p, t);
    WallTimer timer;

    // mrDMD: full fit on P x T (Fig. 9 settings).
    core::MrdmdOptions mrdmd_options;
    mrdmd_options.max_levels = 4;
    mrdmd_options.max_cycles = 2;
    mrdmd_options.use_svht = true;
    timer.reset();
    core::MrdmdTree tree(mrdmd_options);
    tree.fit(window);
    const double mrdmd_s = timer.seconds();

    // I-mrDMD: 1,000-point initial fit, 1,000-point partial fits; the
    // reported time is the (stable) cost of the final partial fit.
    core::ImrdmdOptions imrdmd_options;
    imrdmd_options.mrdmd = mrdmd_options;
    core::IncrementalMrdmd inc(imrdmd_options);
    inc.initial_fit(window.block(0, 0, p, chunk));
    double imrdmd_partial_s = 0.0;
    for (std::size_t t0 = chunk; t0 < t; t0 += chunk) {
      timer.reset();
      inc.partial_fit(window.block(0, t0, p, chunk));
      imrdmd_partial_s = timer.seconds();
    }
    if (t == chunk) {  // no partial fit happens at the smallest size
      timer.reset();
      inc.partial_fit(data.block(0, chunk, p, chunk));
      imrdmd_partial_s = timer.seconds();
    }

    // PCA: full fit (sensors as samples, snapshots as features).
    timer.reset();
    baselines::Pca pca;
    pca.fit(window);
    const double pca_s = timer.seconds();

    // IPCA: time-as-samples streaming; the reported time is one 1,000-
    // sample partial fit on the transposed window (features = P sensors).
    const linalg::Mat window_t =
        window.block(0, t - chunk, p, chunk).transposed();
    baselines::IncrementalPca ipca;
    timer.reset();
    for (std::size_t r = 0; r < chunk; r += 10) {  // batch_size=10
      ipca.partial_fit(window_t.block(r, 0, 10, p));
    }
    const double ipca_s = timer.seconds();

    // t-SNE: accelerated (PCA-reduced) fit of the P series.
    baselines::TsneOptions tsne_options;
    tsne_options.iterations = 250;
    tsne_options.exaggeration_iters = 100;
    timer.reset();
    baselines::Tsne tsne(tsne_options);
    tsne.fit_transform(window);
    const double tsne_s = timer.seconds();

    // UMAP: full fit of the P series.
    baselines::UmapOptions umap_options;
    timer.reset();
    baselines::Umap umap(umap_options);
    umap.fit_transform(window);
    const double umap_s = timer.seconds();

    // Aligned-UMAP: aligned partial fit of the latest 1,000-point window.
    baselines::AlignedUmapOptions aligned_options;
    aligned_options.umap = umap_options;
    baselines::AlignedUmap aligned(aligned_options);
    aligned.fit(window.block(0, 0, p, chunk));
    timer.reset();
    aligned.update(window.block(0, t - chunk, p, chunk));
    const double aligned_s = timer.seconds();

    std::printf("%7zu %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n", t,
                mrdmd_s, imrdmd_partial_s, pca_s, ipca_s, tsne_s, umap_s,
                aligned_s);
    csv.write_row_numeric({static_cast<double>(t), mrdmd_s, imrdmd_partial_s,
                           pca_s, ipca_s, tsne_s, umap_s, aligned_s});
  }
  csv.close();
  std::printf("\nwrote %s/fig9_scaling.csv\n", args.out_dir.c_str());
  std::printf("(expected orderings hold per-row: I-mrDMD < mrDMD; "
              "IPCA < I-mrDMD at large T)\n");
  return 0;
}
