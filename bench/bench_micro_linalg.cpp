// Microbenchmark of the linalg backend seam on the iSVD hot-path shapes:
// every registered backend (reference / avx2 / openblas when built in)
// times the same small-block kernels — the tall-skinny GEMM rotation, the
// orthogonal-complement projection, the thin QR of an update panel, and
// the dense core-matrix SVD — and is checked against the reference result
// under the banded contract while it runs. Not a paper artifact: these
// curves track the substrate every experiment is built from, and the
// emitted BENCH_linalg.json records speedup_vs_reference per kernel so CI
// can watch accelerated backends stay accelerated.
//
// Exit status: 0 when every backend stays inside its accuracy band;
// nonzero on divergence (the speedups themselves are informational —
// debug builds legitimately invert them).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/backend.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

linalg::Mat random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  linalg::Mat m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

double max_rel_err(const linalg::Mat& got, const linalg::Mat& want) {
  double scale = 1.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    scale = std::max(scale, std::abs(want.data()[i]));
  }
  double err = 0.0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    err = std::max(err, std::abs(got.data()[i] - want.data()[i]) / scale);
  }
  return err;
}

struct KernelTiming {
  std::string kernel;
  double mean_seconds = 0.0;
  double rel_err = 0.0;  // vs the reference backend's result
};

struct BackendCurve {
  std::string backend;
  std::string capabilities;
  std::vector<KernelTiming> kernels;
};

}  // namespace

int main(int argc, char** argv) try {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner(
      "linalg backend seam (reference vs accelerated kernels)",
      "accelerated backends match reference within the banded contract "
      "on iSVD small-block shapes");

  // The steady-state iSVD shapes: a P x r basis rotated/projected against
  // c-column update panels, and the (r + c)-sized dense core SVD.
  const std::size_t P = args.full ? 4392 : 1000;
  const std::size_t r = 16;
  const std::size_t c = 8;
  const std::size_t core_n = 40;
  const std::size_t repeats = std::max<std::size_t>(args.repeats, 3);

  Rng rng(17);
  const linalg::Mat u = linalg::thin_qr(random_matrix(P, r, rng)).q;
  const linalg::Mat rot = random_matrix(r, r + c, rng);
  const linalg::Mat panel = random_matrix(P, c, rng);
  const linalg::Mat core = random_matrix(core_n, core_n, rng);

  std::printf("shapes: P=%zu r=%zu c=%zu core=%zux%zu, repeats=%zu\n\n", P, r,
              c, core_n, core_n, repeats);

  // Reference results once, as the accuracy anchor for every backend.
  linalg::Backend* reference = linalg::find_backend("reference");
  IMRDMD_REQUIRE_ARG(reference != nullptr, "reference backend missing");

  linalg::Mat ref_gemm(P, r + c);
  reference->matmul_into(u, rot, ref_gemm);
  linalg::Mat ref_residual = panel;
  linalg::Mat ref_accum(r, c);
  linalg::Mat ref_ws;
  reference->project_out(u, ref_residual, ref_accum, ref_ws);
  linalg::QrResult ref_qr;
  linalg::QrWorkspace ref_qr_ws;
  reference->thin_qr_into(panel, ref_qr, ref_qr_ws);
  linalg::SvdResult ref_svd;
  linalg::SvdWorkspace ref_svd_ws;
  reference->svd_into(core, ref_svd, ref_svd_ws);

  std::vector<BackendCurve> curves;
  bool in_band = true;

  for (const std::string& name : linalg::backend_names()) {
    linalg::Backend* backend = linalg::find_backend(name);
    BackendCurve curve;
    curve.backend = name;
    curve.capabilities = backend->capabilities();
    std::printf("backend %-10s %s\n", name.c_str(),
                curve.capabilities.c_str());

    // GEMM rotation: out = U * rot, the dominant iSVD update flop count.
    {
      linalg::Mat out(P, r + c);
      const RunStats stats = time_repeated(
          [&](std::size_t) {
            for (int it = 0; it < 20; ++it) {
              out.assign_zero(P, r + c);
              backend->matmul_into(u, rot, out);
            }
          },
          repeats, 1);
      curve.kernels.push_back({"gemm_rotation", stats.mean / 20.0,
                               max_rel_err(out, ref_gemm)});
    }

    // Orthogonal-complement projection of the update panel.
    {
      linalg::Mat residual;
      linalg::Mat accum;
      linalg::Mat ws;
      const RunStats stats = time_repeated(
          [&](std::size_t) {
            for (int it = 0; it < 20; ++it) {
              residual = panel;
              accum.assign_zero(r, c);
              backend->project_out(u, residual, accum, ws);
            }
          },
          repeats, 1);
      curve.kernels.push_back({"project_out", stats.mean / 20.0,
                               max_rel_err(residual, ref_residual)});
    }

    // Thin QR of the projected panel (re-orthogonalization step). Compared
    // through the factors' product: accelerated QR may pick different
    // (equally valid) factor signs on degenerate columns.
    {
      linalg::QrResult qr;
      linalg::QrWorkspace ws;
      const RunStats stats = time_repeated(
          [&](std::size_t) {
            for (int it = 0; it < 10; ++it) backend->thin_qr_into(panel, qr, ws);
          },
          repeats, 1);
      curve.kernels.push_back({"thin_qr", stats.mean / 10.0,
                               max_rel_err(linalg::matmul(qr.q, qr.r), panel)});
    }

    // Dense SVD of the (r + c)-sized core matrix. Accuracy through the
    // singular values (factors carry sign/rotation ambiguity).
    {
      linalg::SvdResult svd;
      linalg::SvdWorkspace ws;
      const RunStats stats = time_repeated(
          [&](std::size_t) {
            for (int it = 0; it < 5; ++it) backend->svd_into(core, svd, ws);
          },
          repeats, 1);
      double err = 0.0;
      for (std::size_t i = 0; i < svd.s.size(); ++i) {
        err = std::max(err, std::abs(svd.s[i] - ref_svd.s[i]) /
                                (1.0 + ref_svd.s.front()));
      }
      curve.kernels.push_back({"core_svd", stats.mean / 5.0, err});
    }

    const BackendCurve* ref_curve = curves.empty() ? nullptr : &curves.front();
    for (const KernelTiming& k : curve.kernels) {
      double speedup = 1.0;
      if (ref_curve != nullptr) {
        for (const KernelTiming& rk : ref_curve->kernels) {
          if (rk.kernel == k.kernel && k.mean_seconds > 0.0) {
            speedup = rk.mean_seconds / k.mean_seconds;
          }
        }
      }
      const bool ok = k.rel_err <= 1e-10;
      in_band = in_band && ok;
      std::printf("  %-14s %9.1f us  speedup %5.2fx  rel_err %.2e %s\n",
                  k.kernel.c_str(), k.mean_seconds * 1e6, speedup, k.rel_err,
                  ok ? "" : "OUT OF BAND");
    }
    curves.push_back(std::move(curve));
  }

  JsonWriter json;
  json.begin_object();
  json.field("bench", "linalg_backends");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", P);
  json.field("rank", r);
  json.field("panel_cols", c);
  json.field("core_n", core_n);
  json.field("repeats", repeats);
  json.end_object();
  json.key("backends");
  json.begin_array();
  const BackendCurve& ref_curve = curves.front();
  for (const BackendCurve& curve : curves) {
    json.begin_object();
    json.field("backend", curve.backend);
    json.field("capabilities", curve.capabilities);
    json.key("kernels");
    json.begin_array();
    for (std::size_t i = 0; i < curve.kernels.size(); ++i) {
      const KernelTiming& k = curve.kernels[i];
      json.begin_object();
      json.field("kernel", k.kernel);
      json.field("mean_seconds", k.mean_seconds);
      json.field("speedup_vs_reference",
                 k.mean_seconds > 0.0
                     ? ref_curve.kernels[i].mean_seconds / k.mean_seconds
                     : 1.0);
      json.field("rel_err_vs_reference", k.rel_err);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.field("in_band", in_band);
  json.end_object();
  const std::string path = args.out_dir + "/BENCH_linalg.json";
  json.write_file(path);
  std::printf("\nwrote %s\n", path.c_str());

  std::printf("shape claim %s\n", in_band ? "HOLDS" : "VIOLATED");
  return in_band ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
