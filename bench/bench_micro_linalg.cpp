// Microbenchmarks of the numeric substrates (google-benchmark): GEMM, QR,
// Jacobi SVD, randomized SVD, the complex eigensolver, incremental SVD
// updates, TSQR, and one mrDMD bin fit. Not a paper artifact — these track
// the kernels every experiment above is built from.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/mrdmd.hpp"
#include "dist/communicator.hpp"
#include "isvd/isvd.hpp"
#include "isvd/tsqr.hpp"
#include "linalg/blas.hpp"
#include "linalg/eig.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

using namespace imrdmd;

namespace {

linalg::Mat random_matrix(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  Rng rng(seed);
  linalg::Mat m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Mat a = random_matrix(n, n, 1);
  const linalg::Mat b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ThinQr(benchmark::State& state) {
  const linalg::Mat a =
      random_matrix(static_cast<std::size_t>(state.range(0)), 32, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::thin_qr(a));
  }
}
BENCHMARK(BM_ThinQr)->Arg(256)->Arg(1024);

void BM_JacobiSvd(benchmark::State& state) {
  // The mrDMD workhorse shape: tall-and-skinny after subsampling.
  const linalg::Mat a =
      random_matrix(static_cast<std::size_t>(state.range(0)), 16, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::svd(a));
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(512)->Arg(4096);

void BM_RandomizedSvd(benchmark::State& state) {
  const linalg::Mat a = random_matrix(1000,
                                      static_cast<std::size_t>(state.range(0)),
                                      5);
  for (auto _ : state) {
    Rng rng(6);
    benchmark::DoNotOptimize(linalg::randomized_svd(a, 2, rng));
  }
}
BENCHMARK(BM_RandomizedSvd)->Arg(1000)->Arg(5000);

void BM_ComplexEig(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const linalg::Mat a = random_matrix(n, n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::eig(a));
  }
}
BENCHMARK(BM_ComplexEig)->Arg(8)->Arg(16)->Arg(32);

void BM_IsvdUpdate(benchmark::State& state) {
  const std::size_t p = static_cast<std::size_t>(state.range(0));
  const linalg::Mat initial = random_matrix(p, 16, 8);
  const linalg::Mat update = random_matrix(p, 4, 9);
  for (auto _ : state) {
    state.PauseTiming();
    isvd::IsvdOptions options;
    options.max_rank = 16;
    isvd::Isvd isvd(options);
    isvd.initialize(initial);
    state.ResumeTiming();
    isvd.update(update);
  }
}
BENCHMARK(BM_IsvdUpdate)->Arg(1000)->Arg(4392);

void BM_Tsqr(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const linalg::Mat block = random_matrix(512, 16, 10);
  for (auto _ : state) {
    dist::World world(ranks);
    world.run([&](dist::Communicator& comm) {
      benchmark::DoNotOptimize(isvd::tsqr(comm, block));
    });
  }
}
BENCHMARK(BM_Tsqr)->Arg(2)->Arg(4);

void BM_MrdmdFit(benchmark::State& state) {
  const std::size_t t = static_cast<std::size_t>(state.range(0));
  const linalg::Mat data = random_matrix(256, t, 11);
  for (auto _ : state) {
    core::MrdmdOptions options;
    options.max_levels = 4;
    core::MrdmdTree tree(options);
    tree.fit(data);
    benchmark::DoNotOptimize(tree.total_modes());
  }
}
BENCHMARK(BM_MrdmdFit)->Arg(1024)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
