// Fig. 3 (case study 1): actual environment-log data vs the I-mrDMD
// reconstruction, for the 871 job nodes of two projects; 1,000 initial time
// steps + 1,000 incrementally added, 6 levels, modes kept in the 0-60 Hz
// band. Paper numbers: initial step 12.49 s, incremental update ~7.6 s,
// Frobenius norm of (actual - reconstruction) = 3958.58.
//
// Shape to reproduce: the reconstruction tracks the data but with less
// high-frequency noise (we quantify noise as first-difference energy), and
// the Frobenius difference is a modest fraction of the data norm.
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "linalg/blas.hpp"
#include "telemetry/scenario.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

// Energy of the first differences along time: the "high-frequency" content.
double roughness(const linalg::Mat& m) {
  double sum = 0.0;
  for (std::size_t p = 0; p < m.rows(); ++p) {
    for (std::size_t t = 1; t < m.cols(); ++t) {
      const double d = m(p, t) - m(p, t - 1);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Fig. 3 (actual vs I-mrDMD reconstruction, case study 1)",
                "reconstruction tracks the data with less high-frequency "
                "noise; Frobenius diff << data norm (paper: 3958.58)");

  telemetry::ScenarioOptions scenario_options;
  scenario_options.machine_scale = args.full ? 1.0 : 0.1;
  scenario_options.horizon = 2000;
  telemetry::Scenario scenario =
      telemetry::make_case_study_1(scenario_options);
  const std::size_t nodes = scenario.analyzed_nodes.size();
  std::printf("analyzed nodes: %zu (paper: 871)\n", nodes);

  const linalg::Mat data = scenario.sensors->window_for(
      std::span<const std::size_t>(scenario.analyzed_nodes.data(), nodes), 0,
      2000);

  core::ImrdmdOptions options;
  options.mrdmd.max_levels = 6;
  options.mrdmd.dt = scenario.machine.dt_seconds;
  core::IncrementalMrdmd model(options);

  WallTimer timer;
  model.initial_fit(data.block(0, 0, nodes, 1000));
  const double initial_s = timer.seconds();
  timer.reset();
  model.partial_fit(data.block(0, 1000, nodes, 1000));
  const double partial_s = timer.seconds();

  dmd::ModeBand band;
  band.max_frequency_hz = 60.0;  // the paper's 0-60 Hz isolation
  const linalg::Mat recon = model.reconstruct(0, 2000, &band);

  const double frob = linalg::frobenius_diff(recon, data);
  const double data_norm = linalg::frobenius_norm(data);
  const double rough_data = roughness(data);
  const double rough_recon = roughness(recon);

  std::printf("\ninitial fit:        %8.3f s   (paper: 12.49 s)\n", initial_s);
  std::printf("incremental update: %8.3f s   (paper: ~7.6 s)\n", partial_s);
  std::printf("||actual - recon||_F = %.2f  (paper: 3958.58; data norm "
              "%.2f -> %.1f%%)\n",
              frob, data_norm, 100.0 * frob / data_norm);
  std::printf("first-difference energy: data %.2f vs reconstruction %.2f "
              "(noise reduction %.1fx)\n",
              rough_data, rough_recon, rough_data / rough_recon);

  // The figure's content: a band of example time series, actual + recon.
  CsvWriter csv(args.out_dir + "/fig3_series.csv",
                {"node", "t", "actual", "reconstruction"});
  for (std::size_t row = 0; row < std::min<std::size_t>(8, nodes); ++row) {
    for (std::size_t t = 0; t < 2000; t += 4) {
      csv.write_row_numeric({static_cast<double>(scenario.analyzed_nodes[row]),
                             static_cast<double>(t), data(row, t),
                             recon(row, t)});
    }
  }
  csv.close();
  std::printf("\nwrote %s/fig3_series.csv\n", args.out_dir.c_str());

  const bool shape_holds = rough_recon < rough_data && frob < data_norm;
  std::printf("shape claim %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
