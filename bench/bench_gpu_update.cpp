// Sec. IV, "Evaluation with GPU metrics data":
// Polaris GPU temperature series of size 5,824 x 16,329 (~24 h), then
// 5,825 incrementally added time points, max_levels = 9.
// Paper: incremental additions complete in 29.945 s vs 59.263 s without the
// incremental algorithm; more modes are extracted than in the env-log case
// because of the deeper tree.
//
// Shape to reproduce: incremental < full recompute (paper ~0.5x), and the
// 9-level tree extracts more modes than an 8-level fit of the same data.
#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "core/mrdmd.hpp"
#include "telemetry/machine.hpp"
#include "telemetry/scenario.hpp"
#include "telemetry/sensor_model.hpp"

using namespace imrdmd;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner(
      "Sec. IV GPU-metrics experiment (5,824 x 16,329 + 5,825 points, "
      "9 levels)",
      "incremental update < full recompute; deeper tree -> more modes");

  const double machine_scale = args.full ? 1.0 : 0.25;
  const std::size_t t_initial = args.full ? 16329 : 2048;
  const std::size_t t_increment = args.full ? 5825 : 728;
  const std::size_t levels = 9;

  telemetry::MachineSpec machine = telemetry::scale_machine(
      telemetry::MachineSpec::polaris(), machine_scale);
  // The paper's GPU dataset has 5,824 series; at full scale our 560 x 4 =
  // 2,240 GPU channels are augmented with extra per-GPU channels to match.
  if (args.full) machine.sensors_per_node = 10;  // 560 * 10 = 5,600 ~ 5,824
  telemetry::SensorModelOptions sensor_options;
  sensor_options.seed = 13;
  sensor_options.base_temp_c = 52.0;
  telemetry::SensorModel model(machine, sensor_options);
  std::printf("machine: %zu GPU channels, initial T=%zu, increment=%zu, "
              "levels=%zu\n",
              machine.sensor_count(), t_initial, t_increment, levels);

  const linalg::Mat data = model.window(0, t_initial + t_increment);

  core::ImrdmdOptions options;
  options.mrdmd.max_levels = levels;
  options.mrdmd.dt = machine.dt_seconds;

  double incremental_s = 0.0, full_s = 0.0;
  std::size_t modes_9 = 0;
  for (std::size_t rep = 0; rep < args.repeats; ++rep) {
    core::IncrementalMrdmd inc(options);
    inc.initial_fit(data.block(0, 0, data.rows(), t_initial));
    WallTimer timer;
    inc.partial_fit(data.block(0, t_initial, data.rows(), t_increment));
    incremental_s += timer.seconds();
    modes_9 = inc.total_modes();

    core::MrdmdTree batch(options.mrdmd);
    timer.reset();
    batch.fit(data);
    full_s += timer.seconds();
  }
  incremental_s /= static_cast<double>(args.repeats);
  full_s /= static_cast<double>(args.repeats);

  // Mode count comparison against a shallower tree (the paper attributes
  // the higher GPU-case mode count to the extra level).
  core::MrdmdOptions shallow = options.mrdmd;
  shallow.max_levels = 8;
  core::MrdmdTree tree8(shallow);
  tree8.fit(data);

  std::printf("\n%-34s %10.3f s   (paper: 29.945 s)\n",
              "incremental addition:", incremental_s);
  std::printf("%-34s %10.3f s   (paper: 59.263 s)\n",
              "full recomputation:", full_s);
  std::printf("%-34s %10.2fx   (paper: 1.98x)\n",
              "speedup:", full_s / incremental_s);
  std::printf("%-34s %10zu vs %zu (8 levels)\n",
              "modes at 9 levels:", modes_9, tree8.total_modes());

  CsvWriter csv(args.out_dir + "/gpu_update.csv",
                {"sensors", "t_initial", "t_increment", "incremental_s",
                 "full_s", "modes_9_levels", "modes_8_levels"});
  csv.write_row_numeric({static_cast<double>(machine.sensor_count()),
                         static_cast<double>(t_initial),
                         static_cast<double>(t_increment), incremental_s,
                         full_s, static_cast<double>(modes_9),
                         static_cast<double>(tree8.total_modes())});
  csv.close();
  std::printf("\nwrote %s/gpu_update.csv\n", args.out_dir.c_str());
  return incremental_s < full_s ? 0 : 1;
}
