// Unified bench runner.
//
// Always runs the iSVD streaming-update suite — the paper's enabling kernel
// — on a bench_envlog_update-style workload (wide sensor dimension, a long
// stream of column updates) and emits machine-readable BENCH_isvd.json
// tracking ns/update-column, columns/sec, and the speedup of the blocked
// workspace-reusing fast path over the per-column baseline. CI uploads the
// JSON as an artifact so the perf trajectory is visible from PR 1 onward.
//
// Without --quick it then drives the per-figure/per-table bench binaries
// (built next to this one) so a single invocation reproduces every artifact.
//
//   bench_main [--quick] [--full] [--repeats N] [--out DIR] [--figures]
//     --quick    CI mode: small iSVD workload, skip the figure benches
//                (unless --figures is also given)
//     --full     paper-scale iSVD workload; figure benches get --full too
//     --figures  force the figure benches to run even with --quick
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "isvd/isvd.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

using namespace imrdmd;

namespace {

// Envlog-style synthetic stream: a few coherent spatio-temporal modes plus
// deterministic pseudo-noise, matching the low-rank-plus-noise structure of
// the machine telemetry the paper ingests.
linalg::Mat make_stream(std::size_t sensors, std::size_t cols) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.07 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 256.0;
      double value = 40.0 + 5.0 * std::sin(2.0 * 3.14159265358979 * 0.4 * x + phase);
      value += 1.5 * std::sin(2.0 * 3.14159265358979 * 6.0 * x + 2.0 * phase);
      value += 0.2 * noise();
      data(p, t) = value;
    }
  }
  return data;
}

struct VariantResult {
  std::size_t block = 0;
  double seconds = 0.0;
  double ns_per_col = 0.0;
  double cols_per_sec = 0.0;
  std::size_t final_rank = 0;
  std::vector<double> spectrum;
};

// Streams `data` columns [initial_cols, …) into a fresh Isvd in blocks of
// `block` columns; returns timing over the streamed region only.
VariantResult run_variant(const linalg::Mat& data, std::size_t initial_cols,
                          std::size_t block, std::size_t repeats) {
  const std::size_t sensors = data.rows();
  const std::size_t streamed = data.cols() - initial_cols;
  isvd::IsvdOptions options;
  options.max_rank = 32;
  options.truncation_tol = 1e-10;

  VariantResult result;
  result.block = block;
  double total = 0.0;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    isvd::Isvd isvd(options);
    isvd.initialize(data.block(0, 0, sensors, initial_cols));
    WallTimer timer;
    for (std::size_t c0 = initial_cols; c0 < data.cols(); c0 += block) {
      const std::size_t w = std::min(block, data.cols() - c0);
      isvd.update(data.block(0, c0, sensors, w));
    }
    total += timer.seconds();
    if (rep + 1 == repeats) {
      result.final_rank = isvd.rank();
      result.spectrum = isvd.s();
    }
  }
  result.seconds = total / static_cast<double>(repeats);
  result.ns_per_col =
      result.seconds * 1e9 / static_cast<double>(streamed);
  result.cols_per_sec = static_cast<double>(streamed) / result.seconds;
  return result;
}

int run_figure_benches(const std::string& self, const std::string& out_dir,
                       bool full) {
  // Everything bench/CMakeLists.txt builds next to bench_main.
  const char* benches[] = {
      "bench_envlog_update", "bench_gpu_update",   "bench_sensor_add",
      "bench_fig3_case1",    "bench_fig4_rackview", "bench_fig5_spectrum",
      "bench_fig6_case2",    "bench_fig7_spectrum2", "bench_fig8_embeddings",
      "bench_fig9_scaling",  "bench_q2_accuracy",  "bench_table1",
      "bench_ablation",      "bench_fleet",        "bench_checkpoint",
      "bench_micro_linalg",  "bench_serve",        "bench_net",
  };
  std::string dir = ".";
  const std::size_t slash = self.find_last_of('/');
  if (slash != std::string::npos) dir = self.substr(0, slash);

  int failures = 0;
  for (const char* name : benches) {
    const std::string path = dir + "/" + name;
    std::string command = path + " --out " + out_dir;
    if (full) command += " --full";
    std::printf("\n>>> %s\n", command.c_str());
    const int status = std::system(command.c_str());
    if (status != 0) {
      std::printf("!!! %s exited with status %d\n", name, status);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  bool full = false;
  bool force_figures = false;
  std::size_t repeats = 3;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--quick")) {
      quick = true;
    } else if (!std::strcmp(argv[i], "--full")) {
      full = true;
    } else if (!std::strcmp(argv[i], "--figures")) {
      force_figures = true;
    } else if (!std::strcmp(argv[i], "--repeats") && i + 1 < argc) {
      const long parsed = parse_long(argv[++i], "--repeats");
      if (parsed < 1) {
        std::fprintf(stderr, "error: --repeats must be >= 1\n");
        return 2;
      }
      repeats = static_cast<std::size_t>(parsed);
    } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_dir = argv[++i];
    } else {
      std::printf(
          "usage: %s [--quick] [--full] [--repeats N] [--out DIR] "
          "[--figures]\n",
          argv[0]);
      return !std::strcmp(argv[i], "--help") ? 0 : 2;
    }
  }

  // Fail on an unwritable --out before minutes of benchmarking, not after.
  {
    const std::string probe_path = out_dir + "/BENCH_isvd.json";
    std::FILE* probe = std::fopen(probe_path.c_str(), "w");
    if (probe == nullptr) {
      std::fprintf(stderr, "error: cannot write to --out dir: %s\n",
                   out_dir.c_str());
      return 2;
    }
    std::fclose(probe);
  }

  bench::banner(
      "Unified runner: iSVD hot-path suite + per-figure benches",
      "blocked workspace updates sustain >= 1.5x the per-column baseline");

  const std::size_t sensors = full ? 4392 : (quick ? 256 : 1024);
  const std::size_t initial_cols = quick ? 64 : 96;
  const std::size_t streamed = full ? 4096 : (quick ? 512 : 1024);
  std::printf("workload: %zu sensors, %zu initial cols, %zu streamed cols, "
              "%zu repeats\n",
              sensors, initial_cols, streamed, repeats);

  const linalg::Mat data = make_stream(sensors, initial_cols + streamed);

  const std::size_t blocks[] = {1, 8, 32};
  std::vector<VariantResult> variants;
  for (std::size_t block : blocks) {
    variants.push_back(run_variant(data, initial_cols, block, repeats));
    const VariantResult& v = variants.back();
    std::printf("  block=%-3zu %10.1f ns/col %12.0f cols/sec  rank=%zu\n",
                v.block, v.ns_per_col, v.cols_per_sec, v.final_rank);
  }

  // Cross-variant sanity: every block width folds the same columns, so the
  // retained spectra must agree closely. (Not bitwise: rank truncation
  // triggers at different points along the stream for different widths; the
  // exact-equivalence case without truncation is a unit test.)
  double spectrum_diff = 0.0;
  for (const VariantResult& v : variants) {
    for (std::size_t i = 0;
         i < std::min(v.spectrum.size(), variants[0].spectrum.size()); ++i) {
      spectrum_diff = std::max(
          spectrum_diff, std::abs(v.spectrum[i] - variants[0].spectrum[i]) /
                             variants[0].spectrum[0]);
    }
  }

  const VariantResult* best = &variants.front();
  for (const VariantResult& v : variants) {
    if (v.block > 1 && v.seconds < best->seconds) best = &v;
  }
  const double speedup = variants.front().seconds / best->seconds;
  std::printf("\nspeedup blocked(%zu) vs per-column: %.2fx  "
              "(spectrum agreement: %.2e)\n",
              best->block, speedup, spectrum_diff);

  JsonWriter json;
  json.begin_object();
  json.field("bench", "isvd_update");
  json.field("mode", full ? "full" : (quick ? "quick" : "default"));
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("initial_cols", initial_cols);
  json.field("streamed_cols", streamed);
  json.field("repeats", repeats);
  json.field("max_rank", std::size_t{32});
  json.end_object();
  json.key("variants");
  json.begin_array();
  for (const VariantResult& v : variants) {
    json.begin_object();
    json.field("block", v.block);
    json.field("seconds", v.seconds);
    json.field("ns_per_col", v.ns_per_col);
    json.field("cols_per_sec", v.cols_per_sec);
    json.field("final_rank", v.final_rank);
    json.end_object();
  }
  json.end_array();
  json.field("best_block", best->block);
  json.field("speedup_blocked_vs_percol", speedup);
  json.field("relative_spectrum_diff", spectrum_diff);
  json.end_object();
  const std::string json_path = out_dir + "/BENCH_isvd.json";
  json.write_file(json_path);
  std::printf("wrote %s\n", json_path.c_str());

  int failures = 0;
  if (!quick || force_figures) {
    failures = run_figure_benches(argv[0], out_dir, full);
  }
  if (spectrum_diff > 1e-3) {
    std::printf("!!! blocked/per-column spectra disagree\n");
    ++failures;
  }
  return failures == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
