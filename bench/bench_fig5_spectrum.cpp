// Fig. 5 (case study 1): the I-mrDMD spectrum — mode amplitude as a function
// of frequency (Eq. 9/10) for the case-study-1 data. The paper plots modes
// across a 0-100 Hz range with amplitudes up to ~1.4 and most mass at low
// frequency.
//
// Shape to reproduce: a dense cluster of high-amplitude modes at the lowest
// frequencies (the slow facility/diurnal dynamics) with amplitude decaying
// toward the high-frequency end.
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/imrdmd.hpp"
#include "telemetry/scenario.hpp"

using namespace imrdmd;
using bench::BenchArgs;

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Fig. 5 (I-mrDMD spectrum: amplitude vs frequency)",
                "amplitude mass concentrates at low frequency and decays "
                "toward high frequency");

  telemetry::ScenarioOptions scenario_options;
  scenario_options.machine_scale = args.full ? 1.0 : 0.1;
  scenario_options.horizon = 2000;
  telemetry::Scenario scenario =
      telemetry::make_case_study_1(scenario_options);
  const std::size_t nodes = scenario.analyzed_nodes.size();
  const linalg::Mat data = scenario.sensors->window_for(
      std::span<const std::size_t>(scenario.analyzed_nodes.data(), nodes), 0,
      2000);

  core::ImrdmdOptions options;
  options.mrdmd.max_levels = 6;
  options.mrdmd.dt = scenario.machine.dt_seconds;
  core::IncrementalMrdmd model(options);
  model.initial_fit(data.block(0, 0, nodes, 1000));
  model.partial_fit(data.block(0, 1000, nodes, 1000));

  std::vector<dmd::SpectrumPoint> points = model.spectrum();
  std::sort(points.begin(), points.end(),
            [](const auto& a, const auto& b) {
              return a.frequency_hz < b.frequency_hz;
            });

  // Normalize amplitudes for comparability with the paper's axis (0-1.4ish).
  double amp_max = 0.0;
  for (const auto& sp : points) amp_max = std::max(amp_max, sp.amplitude);
  CsvWriter csv(args.out_dir + "/fig5_spectrum.csv",
                {"frequency_hz", "amplitude", "normalized_amplitude", "power",
                 "growth_rate", "level"});
  for (const auto& sp : points) {
    csv.write_row_numeric({sp.frequency_hz, sp.amplitude,
                           sp.amplitude / amp_max, sp.power, sp.growth_rate,
                           static_cast<double>(sp.level)});
  }
  csv.close();

  // Text rendition: amplitude histogram over frequency deciles.
  const double f_max =
      points.empty() ? 1.0 : points.back().frequency_hz + 1e-12;
  double bins[10] = {0};
  for (const auto& sp : points) {
    const int bin = std::min(9, static_cast<int>(10.0 * sp.frequency_hz /
                                                 f_max));
    bins[bin] = std::max(bins[bin], sp.amplitude / amp_max);
  }
  std::printf("modes: %zu, frequency range: [0, %.4g] Hz\n", points.size(),
              f_max);
  std::printf("max normalized amplitude per frequency decile:\n");
  for (int b = 0; b < 10; ++b) {
    std::printf("  %4.0f%%-%3.0f%% |", b * 10.0, (b + 1) * 10.0);
    for (int bar = 0; bar < static_cast<int>(bins[b] * 40); ++bar) {
      std::printf("#");
    }
    std::printf(" %.3f\n", bins[b]);
  }

  // Shape check: mean amplitude in the lowest fifth of the range exceeds
  // the mean in the highest fifth.
  double low_sum = 0.0, high_sum = 0.0;
  std::size_t low_count = 0, high_count = 0;
  for (const auto& sp : points) {
    if (sp.frequency_hz < 0.2 * f_max) {
      low_sum += sp.amplitude;
      ++low_count;
    } else if (sp.frequency_hz > 0.8 * f_max) {
      high_sum += sp.amplitude;
      ++high_count;
    }
  }
  const double low_mean = low_count ? low_sum / low_count : 0.0;
  const double high_mean = high_count ? high_sum / high_count : 0.0;
  std::printf("\nmean amplitude: lowest fifth %.4f vs highest fifth %.4f\n",
              low_mean, high_mean);
  std::printf("wrote %s/fig5_spectrum.csv\n", args.out_dir.c_str());
  const bool shape_holds = low_mean > high_mean;
  std::printf("shape claim %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
