// Ablations of the design choices DESIGN.md calls out:
//   * do_svht on/off (rank selection),
//   * max_cycles 1/2/4 (slow-mode cutoff + subsample density),
//   * slow-mode criterion |ln lambda| (reference impl.) vs |Im ln lambda|
//     (original mrDMD papers),
//   * amplitude fit: optimized all-snapshot [44] vs classic first-snapshot.
// Each variant reports reconstruction error, retained modes, and fit time
// on the same planted multi-timescale dataset.
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/mrdmd.hpp"
#include "linalg/blas.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

linalg::Mat planted(std::size_t sensors, std::size_t steps, double noise,
                    Rng& rng) {
  linalg::Mat m(sensors, steps);
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.13 * static_cast<double>(p);
    for (std::size_t t = 0; t < steps; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(steps);
      double v = 2.0 * std::sin(2.0 * M_PI * 1.0 * x + phase) +
                 0.8 * std::sin(2.0 * M_PI * 12.0 * x + 2.0 * phase) +
                 0.3 * std::sin(2.0 * M_PI * 70.0 * x + 3.0 * phase);
      if (noise > 0.0) v += noise * rng.normal();
      m(p, t) = v;
    }
  }
  return m;
}

struct Variant {
  const char* name;
  core::MrdmdOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Ablations (SVHT, max_cycles, slow criterion, amplitude fit)",
                "defaults are on the accuracy/cost frontier");

  const std::size_t p = args.full ? 512 : 128;
  const std::size_t t = args.full ? 8192 : 4096;
  Rng rng(9);
  const linalg::Mat clean = planted(p, t, 0.0, rng);
  Rng noise_rng(10);
  linalg::Mat noisy = clean;
  for (std::size_t i = 0; i < noisy.size(); ++i) {
    noisy.data()[i] += 0.4 * noise_rng.normal();
  }

  core::MrdmdOptions base;
  base.max_levels = 5;
  base.max_cycles = 2;
  base.use_svht = true;
  base.criterion = core::SlowModeCriterion::AbsLog;
  base.amplitude_fit = dmd::AmplitudeFit::AllSnapshots;

  std::vector<Variant> variants;
  variants.push_back({"default", base});
  {
    core::MrdmdOptions v = base;
    v.use_svht = false;
    variants.push_back({"no-svht", v});
  }
  for (std::size_t cycles : {1u, 4u}) {
    core::MrdmdOptions v = base;
    v.max_cycles = cycles;
    variants.push_back({cycles == 1 ? "max_cycles=1" : "max_cycles=4", v});
  }
  {
    core::MrdmdOptions v = base;
    v.criterion = core::SlowModeCriterion::ImagLog;
    variants.push_back({"imag-log", v});
  }
  {
    core::MrdmdOptions v = base;
    v.amplitude_fit = dmd::AmplitudeFit::FirstSnapshot;
    variants.push_back({"first-snapshot-b", v});
  }

  CsvWriter csv(args.out_dir + "/ablation.csv",
                {"variant", "err_vs_clean", "err_vs_noisy", "modes",
                 "fit_seconds"});
  std::printf("%-18s %14s %14s %8s %10s\n", "variant", "err(vs clean)",
              "err(vs noisy)", "modes", "fit (s)");

  const double clean_norm = linalg::frobenius_norm(clean);
  double default_err = 0.0;
  for (const Variant& variant : variants) {
    WallTimer timer;
    core::MrdmdTree tree(variant.options);
    tree.fit(noisy);
    const double seconds = timer.seconds();
    const linalg::Mat recon = tree.reconstruct();
    const double err_clean = linalg::frobenius_diff(recon, clean);
    const double err_noisy = linalg::frobenius_diff(recon, noisy);
    if (variant.name == std::string("default")) default_err = err_clean;
    std::printf("%-18s %14.2f %14.2f %8zu %10.3f\n", variant.name, err_clean,
                err_noisy, tree.total_modes(), seconds);
    csv.write_row({variant.name, std::to_string(err_clean),
                   std::to_string(err_noisy),
                   std::to_string(tree.total_modes()),
                   std::to_string(seconds)});
  }
  csv.close();

  std::printf("\n(default err = %.1f%% of clean-data norm %.1f)\n",
              100.0 * default_err / clean_norm, clean_norm);
  std::printf("wrote %s/ablation.csv\n", args.out_dir.c_str());
  return 0;
}
