// Serving-layer bench: multi-tenant throughput of AssessorService as the
// tenant count grows over one shared worker pool.
//
// Workload: N identical-shape (distinct-seed) synthetic facility streams,
// each its own tenant with the default lossless AsyncSink in the delivery
// chain, all started together and drained. Reports wall seconds and
// aggregate snapshot-columns/s for the concurrent service run against the
// sum of the same configs run solo, so the curve shows how much of the
// multi-tenant wall time the shared pool hides. Gates (exit status): every
// tenant's streamed snapshots are bitwise identical to its solo run, and
// the shared registry saw every chunk. Emits BENCH_serve.json.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "core/assessor.hpp"
#include "serve/service.hpp"

using namespace imrdmd;

namespace {

linalg::Mat make_tenant_stream(std::size_t sensors, std::size_t cols,
                               std::uint64_t seed) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.13 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 192.0;
      double value = 48.0 + 4.0 * std::sin(2.0 * M_PI * 0.35 * x + phase);
      value += 1.2 * std::sin(2.0 * M_PI * 5.0 * x + 2.0 * phase);
      value += 0.3 * noise();
      data(p, t) = value;
    }
  }
  return data;
}

struct TenantPoint {
  std::size_t tenants = 0;
  double service_seconds = 0.0;
  double solo_seconds = 0.0;
  double service_columns_per_sec = 0.0;
  double speedup_vs_sequential = 0.0;
  bool bitwise_identical = true;
};

bool snapshots_identical(const std::vector<core::AssessmentSnapshot>& a,
                         const std::vector<core::AssessmentSnapshot>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].chunk_index != b[i].chunk_index ||
        a[i].magnitudes != b[i].magnitudes ||
        a[i].sensor_means != b[i].sensor_means ||
        a[i].zscores.zscores != b[i].zscores.zscores) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) try {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner(
      "Assessor-as-a-service: N tenants over one shared pool "
      "(ROADMAP item 2)",
      "tenant streams through AssessorService + AsyncSink stay bitwise "
      "identical to solo runs while the shared pool overlaps their compute");

  const std::size_t sensors = args.full ? 512 : 128;
  const std::size_t groups = 4;
  const std::size_t initial = args.full ? 384 : 192;
  const std::size_t chunk = args.full ? 128 : 64;
  const std::size_t stream_chunks = args.full ? 6 : 3;
  const std::size_t total = initial + chunk * stream_chunks;

  std::printf("workload per tenant: %zu sensors x %zu groups, %zu+%zux%zu "
              "snapshots, hardware_concurrency=%u\n",
              sensors, groups, initial, stream_chunks, chunk,
              std::thread::hardware_concurrency());

  const auto make_config = [&] {
    core::AssessorConfig config;
    config.pipeline_options.imrdmd.mrdmd.max_levels = 4;
    config.pipeline_options.imrdmd.mrdmd.dt = 15.0;
    config.pipeline_options.baseline = {40.0, 60.0};
    config.sharded(core::contiguous_groups(sensors, groups))
        .sensors(sensors);
    return config;
  };

  bool all_bitwise = true;
  bool metrics_complete = true;
  std::vector<TenantPoint> points;
  for (const std::size_t tenant_count : {std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8}}) {
    std::vector<linalg::Mat> streams;
    streams.reserve(tenant_count);
    for (std::size_t i = 0; i < tenant_count; ++i) {
      streams.push_back(make_tenant_stream(sensors, total, 11 + i));
    }

    // Reference: the same configs run solo, sequentially.
    std::vector<std::vector<core::AssessmentSnapshot>> reference;
    double solo_seconds = 0.0;
    for (std::size_t i = 0; i < tenant_count; ++i) {
      core::Assessor assessor(make_config());
      core::MatrixChunkSource source(streams[i], initial, chunk);
      core::CollectingSink sink;
      WallTimer timer;
      assessor.run(source, sink);
      solo_seconds += timer.seconds();
      reference.push_back(sink.take());
    }

    serve::AssessorService service;
    std::vector<std::unique_ptr<core::MatrixChunkSource>> sources;
    std::vector<std::unique_ptr<core::CollectingSink>> sinks;
    for (std::size_t i = 0; i < tenant_count; ++i) {
      sources.push_back(std::make_unique<core::MatrixChunkSource>(
          streams[i], initial, chunk));
      sinks.push_back(std::make_unique<core::CollectingSink>());
      serve::TenantOptions options;
      options.config = make_config();
      options.source = sources.back().get();
      options.sink = sinks.back().get();
      service.add_tenant("t" + std::to_string(i), options);
    }
    WallTimer timer;
    service.start_all();
    service.drain_all();
    const double service_seconds = timer.seconds();

    TenantPoint point;
    point.tenants = tenant_count;
    point.service_seconds = service_seconds;
    point.solo_seconds = solo_seconds;
    point.service_columns_per_sec =
        static_cast<double>(total * tenant_count) / service_seconds;
    point.speedup_vs_sequential = solo_seconds / service_seconds;
    for (std::size_t i = 0; i < tenant_count; ++i) {
      if (!snapshots_identical(sinks[i]->snapshots(), reference[i])) {
        point.bitwise_identical = false;
      }
      const double chunks_seen = service.metrics().value(
          "imrdmd_tenant_chunks_total", {{"tenant", "t" + std::to_string(i)}});
      if (chunks_seen != static_cast<double>(reference[i].size())) {
        metrics_complete = false;
      }
    }
    all_bitwise = all_bitwise && point.bitwise_identical;
    points.push_back(point);
    std::printf("  tenants=%-2zu service %8.3f s (%9.0f cols/s)  "
                "sequential-solo %8.3f s  speedup %5.2fx  bitwise %s\n",
                point.tenants, point.service_seconds,
                point.service_columns_per_sec, point.solo_seconds,
                point.speedup_vs_sequential,
                point.bitwise_identical ? "yes" : "NO");
  }

  std::printf("\nall tenant streams bitwise identical to solo: %s\n",
              all_bitwise ? "yes" : "NO");
  std::printf("per-tenant chunk counters complete: %s\n",
              metrics_complete ? "yes" : "NO");

  JsonWriter json;
  json.begin_object();
  json.field("bench", "serve");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("groups", groups);
  json.field("initial_snapshots", initial);
  json.field("chunk_snapshots", chunk);
  json.field("stream_chunks", stream_chunks);
  json.end_object();
  json.field("hardware_concurrency",
             static_cast<std::size_t>(std::thread::hardware_concurrency()));
  json.key("curve");
  json.begin_array();
  for (const TenantPoint& p : points) {
    json.begin_object();
    json.field("tenants", p.tenants);
    json.field("service_seconds", p.service_seconds);
    json.field("sequential_solo_seconds", p.solo_seconds);
    json.field("service_columns_per_sec", p.service_columns_per_sec);
    json.field("speedup_vs_sequential", p.speedup_vs_sequential);
    json.field("bitwise_identical", p.bitwise_identical);
    json.end_object();
  }
  json.end_array();
  json.field("all_bitwise_identical", all_bitwise);
  json.field("metrics_complete", metrics_complete);
  json.end_object();
  const std::string path = args.out_dir + "/BENCH_serve.json";
  json.write_file(path);
  std::printf("wrote %s\n", path.c_str());

  return all_bitwise && metrics_complete ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
