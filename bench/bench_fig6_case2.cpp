// Fig. 6 (case study 2): all 4,392 nodes over 16 hours in two 8-hour
// windows. Window (a) is hot and busy (baselines picked at 45-60 C); window
// (b) is cooler and less utilized (baselines 30-45 C); nodes persistently
// reporting hardware errors are outlined. Paper: initial mrDMD 21.12 s,
// incremental updates ~20.45 s, Frobenius diff 3423.847; z-scores are
// computed per-window against per-window baselines.
//
// Shape to reproduce: window (a) is hotter than (b) in raw temperature, yet
// per-window baselines keep both windows' z-score populations centered —
// the relative view adapts to the machine state (the paper's point).
#include <algorithm>
#include <cmath>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "common/timer.hpp"
#include "core/imrdmd.hpp"
#include "core/zscore.hpp"
#include "linalg/blas.hpp"
#include "rack/render.hpp"
#include "telemetry/scenario.hpp"

using namespace imrdmd;
using bench::BenchArgs;

namespace {

double mean_of(const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  return values.empty() ? 0.0 : sum / static_cast<double>(values.size());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = BenchArgs::parse(argc, argv);
  bench::banner("Fig. 6 (two 8-hour windows, whole machine, per-window "
                "baselines)",
                "window (a) hotter than (b); per-window baselines re-center "
                "both z-score populations");

  telemetry::ScenarioOptions scenario_options;
  scenario_options.machine_scale = args.full ? 1.0 : 0.15;
  scenario_options.horizon = args.full ? 3840 : 2048;  // 16 h at 15 s
  telemetry::Scenario scenario =
      telemetry::make_case_study_2(scenario_options);
  const std::size_t nodes = scenario.machine.node_count;
  const std::size_t half = scenario.horizon / 2;

  const linalg::Mat data = scenario.sensors->window(0, scenario.horizon);

  // mrDMD fit: initial fit on the first window ("first 7 hours"), then
  // incremental updates across the second (the paper uses 1,000-step
  // increments).
  core::ImrdmdOptions options;
  options.mrdmd.max_levels = 7;
  options.mrdmd.dt = scenario.machine.dt_seconds;
  core::IncrementalMrdmd model(options);
  WallTimer timer;
  model.initial_fit(data.block(0, 0, nodes, half));
  const double initial_s = timer.seconds();
  timer.reset();
  const std::size_t step = 1000;
  for (std::size_t t0 = half; t0 < scenario.horizon; t0 += step) {
    const std::size_t w = std::min(step, scenario.horizon - t0);
    model.partial_fit(data.block(0, t0, nodes, w));
  }
  const double update_s = timer.seconds();
  const double frob =
      linalg::frobenius_diff(model.reconstruct(), data);

  std::printf("initial fit: %.3f s (paper: 21.120 s), updates: %.3f s "
              "(paper: ~20.452 s)\n",
              initial_s, update_s);
  std::printf("||actual - recon||_F = %.2f (paper: 3423.847; data norm "
              "%.2f)\n",
              frob, linalg::frobenius_norm(data));

  // Per-window z-scores with per-window baseline ranges. The paper uses
  // absolute ranges (45-60 C hot window, 30-45 C cool window); our synthetic
  // machine's absolute levels differ slightly, so each window's range is the
  // quantile-equivalent band of its own temperature distribution — the same
  // "baselines chosen relative to the system state" policy.
  struct Window {
    const char* name;
    std::size_t t0, t1;
    core::BaselineRange range;  // filled from window quantiles below
  };
  Window windows[2] = {
      {"a (hot)", 0, half, {0.0, 0.0}},
      {"b (cool)", half, scenario.horizon, {0.0, 0.0}},
  };
  for (Window& window : windows) {
    const linalg::Mat slice =
        data.block(0, window.t0, nodes, window.t1 - window.t0);
    std::vector<double> means = core::row_means(slice);
    std::sort(means.begin(), means.end());
    window.range.value_min = means[means.size() / 5];          // P20
    window.range.value_max = means[(means.size() * 4) / 5];    // P80
  }

  CsvWriter csv(args.out_dir + "/fig6_windows.csv",
                {"window", "node", "mean_temp", "zscore"});
  double window_mean_temp[2] = {0, 0};
  double window_mean_z[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    const Window& window = windows[w];
    const linalg::Mat slice =
        data.block(0, window.t0, nodes, window.t1 - window.t0);
    const std::vector<double> means = core::row_means(slice);
    const auto baseline = core::select_baseline_sensors(
        std::span<const double>(means.data(), means.size()), window.range);
    // Magnitudes from the nodes' modes restricted to this window's span.
    const linalg::Mat recon_window =
        model.reconstruct(window.t0, window.t1, nullptr);
    // Window-local magnitude: mean reconstructed level per sensor relative
    // to the fit; z-scores computed from the window means (temperature
    // domain), mirroring "baselines chosen from each dataset".
    const core::ZscoreAnalysis analysis = core::zscore_from_baseline(
        std::span<const double>(means.data(), means.size()),
        std::span<const std::size_t>(baseline.data(), baseline.size()));
    window_mean_temp[w] = mean_of(means);
    window_mean_z[w] = mean_of(analysis.zscores);

    for (std::size_t node = 0; node < nodes; ++node) {
      csv.write_row_numeric({static_cast<double>(w),
                             static_cast<double>(node), means[node],
                             analysis.zscores[node]});
    }

    rack::RackViewData view;
    view.values = analysis.zscores;
    view.populated = nodes;
    view.outlined = scenario.memory_error_nodes;
    rack::RenderOptions render_options;
    render_options.title = std::string("Fig. 6") + window.name;
    const rack::LayoutSpec layout =
        rack::parse_layout(scenario.machine.layout_string);
    rack::write_svg_file(args.out_dir + "/fig6_window_" +
                             std::string(w == 0 ? "a" : "b") + ".svg",
                         rack::render_svg(layout, view, render_options));
  }
  csv.close();

  std::printf("\nwindow      mean temp   baseline range     mean z\n");
  for (int w = 0; w < 2; ++w) {
    std::printf("  %-9s %8.2f C  [%5.1f, %5.1f] C  %+8.3f\n", windows[w].name,
                window_mean_temp[w], windows[w].range.value_min,
                windows[w].range.value_max, window_mean_z[w]);
  }
  std::printf("\nwrote fig6_window_a.svg, fig6_window_b.svg, "
              "fig6_windows.csv in %s\n",
              args.out_dir.c_str());

  // Shape: raw temps differ, z-populations both re-centered near zero.
  const bool shape_holds =
      window_mean_temp[0] > window_mean_temp[1] + 1.0 &&
      std::abs(window_mean_z[0]) < 1.5 && std::abs(window_mean_z[1]) < 1.5;
  std::printf("shape claim %s\n", shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
