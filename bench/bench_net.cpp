// Network ingestion bench: localhost throughput of the IMRDWP1 wire
// (shipper -> listener -> journaled TcpChunkSource) as the chunk width
// grows, plus the recovery latency of a mid-stream listener outage
// (connection killed, listener restarted on the same port, shipper
// reconnects-with-resume).
//
// Gates (exit status): for every point the journaled stream drained back
// out of the TcpChunkSource is bitwise identical to the shipped matrix —
// over the happy path AND across the forced reconnect — and the outage run
// actually reconnected. Emits BENCH_net.json.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "core/stream.hpp"
#include "net/listener.hpp"
#include "net/shipper.hpp"
#include "net/tcp_source.hpp"

using namespace imrdmd;

namespace {

linalg::Mat make_stream(std::size_t sensors, std::size_t cols) {
  linalg::Mat data(sensors, cols);
  std::uint64_t state = 0x51ee9ull;
  auto noise = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) / 9007199254740992.0 - 0.5;
  };
  for (std::size_t p = 0; p < sensors; ++p) {
    const double phase = 0.11 * static_cast<double>(p);
    for (std::size_t t = 0; t < cols; ++t) {
      const double x = static_cast<double>(t) / 256.0;
      data(p, t) = 42.0 + 4.0 * std::sin(2.0 * M_PI * 0.5 * x + phase) +
                   0.3 * noise();
    }
  }
  return data;
}

bool drain_matches(net::TcpChunkSource& source, const linalg::Mat& data) {
  std::size_t at = 0;
  while (std::optional<linalg::Mat> chunk = source.next_chunk()) {
    if (chunk->rows() != data.rows() || at + chunk->cols() > data.cols()) {
      return false;
    }
    for (std::size_t r = 0; r < chunk->rows(); ++r) {
      for (std::size_t c = 0; c < chunk->cols(); ++c) {
        if ((*chunk)(r, c) != data(r, at + c)) return false;
      }
    }
    at += chunk->cols();
  }
  return at == data.cols();
}

struct ThroughputPoint {
  std::size_t chunk_cols = 0;
  double seconds = 0.0;
  double snapshots_per_sec = 0.0;
  double mbytes_per_sec = 0.0;
  std::size_t wire_bytes = 0;
  bool bitwise_identical = false;
};

/// MatrixChunkSource with a per-chunk delay so a mid-stream outage lands
/// mid-stream (the recovery measurement).
class PacedSource final : public core::ChunkSource {
 public:
  PacedSource(const linalg::Mat& data, std::size_t initial,
              std::size_t chunk, std::chrono::milliseconds delay)
      : inner_(data, initial, chunk), delay_(delay) {}
  std::optional<linalg::Mat> next_chunk() override {
    std::this_thread::sleep_for(delay_);
    return inner_.next_chunk();
  }
  std::size_t sensors() const override { return inner_.sensors(); }
  std::size_t position() const override { return inner_.position(); }
  void seek(std::size_t snapshot) override { inner_.seek(snapshot); }

 private:
  core::MatrixChunkSource inner_;
  std::chrono::milliseconds delay_;
};

}  // namespace

int main(int argc, char** argv) try {
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  bench::banner(
      "Network ingestion: IMRDWP1 localhost throughput + outage recovery",
      "the socket-fed stream is bitwise identical to the shipped matrix, "
      "reconnect included");

  const std::size_t sensors = args.full ? 512 : 96;
  const std::size_t streamed = args.full ? 16384 : 2048;
  const std::size_t chunk_widths[] = {16, 64, 256};
  std::printf("workload: %zu sensors, %zu streamed snapshots, %zu repeats\n",
              sensors, streamed, args.repeats);

  const linalg::Mat data = make_stream(sensors, streamed);
  int failures = 0;

  std::vector<ThroughputPoint> points;
  for (const std::size_t chunk_cols : chunk_widths) {
    ThroughputPoint point;
    point.chunk_cols = chunk_cols;
    double total = 0.0;
    for (std::size_t rep = 0; rep < args.repeats; ++rep) {
      const std::string journal_path = args.out_dir + "/bench_net_" +
                                       std::to_string(chunk_cols) + "_" +
                                       std::to_string(rep) + ".jl";
      std::remove(journal_path.c_str());
      net::TcpChunkSource::Options source_options;
      source_options.journal_path = journal_path;
      net::TcpChunkSource received(sensors, source_options);
      net::IngestListener listener(net::IngestListenerOptions{});
      listener.register_stream("bench", &received);

      core::MatrixChunkSource source(data, chunk_cols, chunk_cols);
      net::ShipperOptions ship_options;
      ship_options.port = listener.port();
      ship_options.stream_id = "bench";
      net::ChunkShipper shipper(ship_options);
      WallTimer timer;
      const net::ShipSummary summary = shipper.ship(source);
      total += timer.seconds();
      point.wire_bytes = summary.wire_bytes;
      point.bitwise_identical = drain_matches(received, data);
      listener.stop();
      std::remove(journal_path.c_str());
    }
    point.seconds = total / static_cast<double>(args.repeats);
    point.snapshots_per_sec =
        static_cast<double>(streamed) / point.seconds;
    point.mbytes_per_sec = static_cast<double>(point.wire_bytes) /
                           point.seconds / (1024.0 * 1024.0);
    if (!point.bitwise_identical) ++failures;
    std::printf("  chunk=%-4zu %8.3f ms %12.0f snapshots/s %9.1f MiB/s  %s\n",
                point.chunk_cols, point.seconds * 1e3,
                point.snapshots_per_sec, point.mbytes_per_sec,
                point.bitwise_identical ? "bitwise OK" : "MISMATCH");
    points.push_back(point);
  }

  // --- outage recovery: kill the listener mid-stream, restart, resume ----
  const std::string journal_path = args.out_dir + "/bench_net_recovery.jl";
  std::remove(journal_path.c_str());
  net::TcpChunkSource::Options source_options;
  source_options.journal_path = journal_path;
  net::TcpChunkSource received(sensors, source_options);

  auto listener = std::make_unique<net::IngestListener>(
      net::IngestListenerOptions{});
  const std::uint16_t port = listener->port();
  listener->register_stream("bench", &received);

  const std::size_t recovery_chunk = 32;
  const std::uint64_t total_chunks = streamed / recovery_chunk;
  std::atomic<double> recovery_seconds{0.0};
  std::thread controller([&] {
    // Outage once half the stream is journaled; recovery = first new ack
    // after the replacement listener binds the same port.
    while (received.acked_seq() < total_chunks / 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const std::uint64_t watermark = received.acked_seq();
    listener->stop();
    listener.reset();
    WallTimer timer;
    listener = std::make_unique<net::IngestListener>(
        net::IngestListenerOptions{port});
    listener->register_stream("bench", &received);
    while (received.acked_seq() <= watermark && !received.ended()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    recovery_seconds.store(timer.seconds());
  });

  PacedSource paced(data, recovery_chunk, recovery_chunk,
                    std::chrono::milliseconds(1));
  net::ShipperOptions ship_options;
  ship_options.port = port;
  ship_options.stream_id = "bench";
  ship_options.backoff_base_seconds = 0.005;
  ship_options.backoff_cap_seconds = 0.1;
  ship_options.max_attempts = 64;
  net::ChunkShipper shipper(ship_options);
  const net::ShipSummary summary = shipper.ship(paced);
  controller.join();
  const bool recovered_bitwise = drain_matches(received, data);
  if (summary.reconnects < 1 || !recovered_bitwise) ++failures;
  std::printf("\noutage recovery: %.1f ms to first post-restart ack, "
              "%zu reconnects, resume %s\n",
              recovery_seconds.load() * 1e3, summary.reconnects,
              recovered_bitwise ? "bitwise OK" : "MISMATCH");
  listener->stop();
  std::remove(journal_path.c_str());

  JsonWriter json;
  json.begin_object();
  json.field("bench", "net_ingestion");
  json.field("mode", args.full ? "full" : "default");
  json.key("workload");
  json.begin_object();
  json.field("sensors", sensors);
  json.field("streamed_snapshots", streamed);
  json.field("repeats", args.repeats);
  json.end_object();
  json.key("throughput");
  json.begin_array();
  for (const ThroughputPoint& point : points) {
    json.begin_object();
    json.field("chunk_cols", point.chunk_cols);
    json.field("seconds", point.seconds);
    json.field("snapshots_per_sec", point.snapshots_per_sec);
    json.field("mbytes_per_sec", point.mbytes_per_sec);
    json.field("wire_bytes", point.wire_bytes);
    json.field("bitwise_identical", point.bitwise_identical);
    json.end_object();
  }
  json.end_array();
  json.key("recovery");
  json.begin_object();
  json.field("recovery_seconds", recovery_seconds.load());
  json.field("reconnects", summary.reconnects);
  json.field("bitwise_identical", recovered_bitwise);
  json.end_object();
  json.field("gates_passed", failures == 0);
  json.end_object();
  const std::string json_path = args.out_dir + "/BENCH_net.json";
  json.write_file(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return failures == 0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
